"""Setuptools shim.

This environment is offline and has no ``wheel`` package, so PEP-517
editable installs (which need ``bdist_wheel``) fail.  Keeping a classic
``setup.py`` lets ``pip install -e . --no-build-isolation`` use the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
