"""Ablation: integration method — fixed Simpson grid vs adaptive QUADPACK.

The paper integrates with SciPy's QUADPACK (adaptive Gauss–Kronrod); we
default to a vectorised Simpson grid because tree-ensemble integrands
are piecewise constant and a single batched evaluation is far cheaper
than many adaptive point-wise calls.  This bench quantifies both claims.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import SAMPLE_100K, make_dbest, write_figure
from repro.harness import run_workload
from repro.workloads import generate_range_queries

PAIR = ("ss_list_price", "ss_wholesale_cost")


@pytest.fixture(scope="module")
def ablation(store_sales, tpcds_truth):
    workload = generate_range_queries(
        store_sales, [PAIR], n_per_aggregate=6, aggregates=("AVG", "SUM"),
        range_fraction=0.05, seed=137, anchor="data",
    )
    rows = []
    engines = {}
    for method in ("simpson", "quad"):
        engine = make_dbest(
            store_sales, regressor="plr", seed=13, integration_method=method
        )
        engine.build_model(
            "store_sales", x=PAIR[0], y=PAIR[1], sample_size=SAMPLE_100K
        )
        run = run_workload(engine, workload, tpcds_truth, engine_name=method)
        rows.append(
            {
                "method": method,
                "AVG_error": run.mean_relative_error("AVG"),
                "SUM_error": run.mean_relative_error("SUM"),
                "mean_latency_s": run.mean_latency(),
            }
        )
        engines[method] = engine
    write_figure(
        "Ablation integration", "Simpson grid vs adaptive QUADPACK", rows,
        notes="accuracies should agree to ~1e-2; Simpson should be much faster",
    )
    return rows, engines


def test_methods_agree(benchmark, ablation):
    rows, engines = ablation
    by_method = {r["method"]: r for r in rows}
    assert by_method["simpson"]["AVG_error"] == pytest.approx(
        by_method["quad"]["AVG_error"], abs=0.02
    )
    sql = (
        "SELECT AVG(ss_wholesale_cost) FROM store_sales "
        "WHERE ss_list_price BETWEEN 10 AND 40;"
    )
    benchmark(engines["simpson"].execute, sql)


def test_simpson_faster(benchmark, ablation):
    rows, engines = ablation
    by_method = {r["method"]: r for r in rows}
    assert (
        by_method["simpson"]["mean_latency_s"]
        <= by_method["quad"]["mean_latency_s"]
    )
    sql = (
        "SELECT AVG(ss_wholesale_cost) FROM store_sales "
        "WHERE ss_list_price BETWEEN 10 AND 40;"
    )
    benchmark(engines["quad"].execute, sql)


def test_count_identical_between_methods(benchmark, ablation):
    """COUNT uses the analytic CDF under simpson and quadrature under quad;
    both must agree closely."""
    _rows, engines = ablation
    sql = (
        "SELECT COUNT(ss_wholesale_cost) FROM store_sales "
        "WHERE ss_list_price BETWEEN 10 AND 40;"
    )
    simpson = engines["simpson"].execute(sql).scalar()
    quad = engines["quad"].execute(sql).scalar()
    assert simpson == pytest.approx(quad, rel=0.02)
    benchmark(engines["simpson"].execute, sql)


def test_grid_resolution_convergence(benchmark, store_sales, tpcds_truth):
    """Doubling the Simpson grid barely moves the answers (converged)."""
    answers = {}
    for points in (65, 257):
        engine = make_dbest(
            store_sales, regressor="plr", seed=13, integration_points=points
        )
        engine.build_model(
            "store_sales", x=PAIR[0], y=PAIR[1], sample_size=SAMPLE_100K
        )
        sql = (
            "SELECT AVG(ss_wholesale_cost) FROM store_sales "
            "WHERE ss_list_price BETWEEN 10 AND 40;"
        )
        answers[points] = engine.execute(sql).scalar()
        if points == 257:
            benchmark(engine.execute, sql)
    assert answers[65] == pytest.approx(answers[257], rel=0.01)
