"""Figures 13 & 14: the Beijing PM2.5 workload.

Paper setup (§4.5): 100M-row scale-up (repo: 100k), 72 random queries
over four column pairs [DEWP/PRES/TEMP/IWS -> PM25]; DBEst vs VerdictDB
at 10k and 100k samples.

Paper shape: DBEst 4.72% vs VerdictDB 9.57% at 10k; 1.67% vs 4.41% at
100k; DBEst 0.013-0.23s vs VerdictDB 0.38-0.6s.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    SAMPLE_10K,
    SAMPLE_100K,
    make_dbest,
    write_figure,
)
from repro import UniformAQPEngine
from repro.harness import compare_engines, summarize_by_aggregate
from repro.workloads import BEIJING_COLUMN_PAIRS, generate_range_queries

AFS = ("COUNT", "SUM", "AVG")


@pytest.fixture(scope="module")
def comparison(beijing, beijing_truth):
    workload = generate_range_queries(
        beijing, BEIJING_COLUMN_PAIRS, n_per_aggregate=2, aggregates=AFS,
        range_fraction=[0.01, 0.05, 0.1], seed=109, anchor="data",
    )
    results = {}
    for label, size in (("10k", SAMPLE_10K), ("100k", SAMPLE_100K)):
        dbest = make_dbest(beijing, regressor="xgboost", seed=13)
        for x, y in BEIJING_COLUMN_PAIRS:
            dbest.build_model("beijing", x=x, y=y, sample_size=size)
        verdict = UniformAQPEngine(sample_size=size, random_seed=13)
        verdict.register_table(beijing)
        verdict.prepare_table("beijing")
        runs = compare_engines(
            {f"DBEst_{label}": dbest, f"VerdictDB_{label}": verdict},
            workload,
            beijing_truth,
        )
        results[label] = (dbest, verdict, runs)

    error_rows, time_rows = [], []
    for label, (_d, _v, runs) in results.items():
        error_rows.extend(summarize_by_aggregate(runs, aggregates=AFS))
        for name, run in runs.items():
            time_rows.append({"engine": name, "mean_latency_s": run.mean_latency()})
    write_figure(
        "Fig 13", "Beijing PM2.5 relative error", error_rows,
        notes="paper: DBEst 4.72%/1.67% vs VerdictDB 9.57%/4.41% (10k/100k)",
    )
    write_figure(
        "Fig 14", "Beijing PM2.5 response time", time_rows,
        notes="paper: DBEst 0.013-0.23s (1 thread) vs VerdictDB 0.38-0.6s (12 cores)",
    )
    return results


def test_fig13_model_generalisation(benchmark, comparison):
    """Models built on tiny samples stay accurate (the paper's key claim)."""
    _dbest, _verdict, runs = comparison["10k"]
    assert runs["DBEst_10k"].mean_relative_error() < 0.25
    dbest = comparison["10k"][0]
    sql = "SELECT AVG(PM25) FROM beijing WHERE TEMP BETWEEN 0 AND 5;"
    result = benchmark(dbest.execute, sql)
    assert result.source == "model"


def test_fig14_latency_100k(benchmark, comparison):
    dbest = comparison["100k"][0]
    sql = "SELECT SUM(PM25) FROM beijing WHERE IWS BETWEEN 1 AND 40;"
    benchmark(dbest.execute, sql)
