"""Figures 10 & 11: the TPC-DS multi-column-pair workload.

Paper setup (§4.4): ~100 SELECT-FROM-WHERE queries over 16 column pairs;
DBEst vs VerdictDB at 10k and 100k samples (repo: 2k / 10k over a
150k-row store_sales).

Paper shape: DBEst beats VerdictDB clearly at the small sample (5.26% vs
>10% overall) and slightly at the large one; DBEst answers 3.5x–16x
faster despite VerdictDB using all cores.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    SAMPLE_10K,
    SAMPLE_100K,
    make_dbest,
    write_figure,
)
from repro import UniformAQPEngine
from repro.harness import compare_engines, summarize_by_aggregate
from repro.workloads import TPCDS_COLUMN_PAIRS, generate_range_queries

AFS = ("COUNT", "SUM", "AVG")
# A representative subset of the paper's 16 pairs keeps bench runtime sane;
# the multi-pair structure (different x distributions) is what matters.
PAIRS = TPCDS_COLUMN_PAIRS[:6]


@pytest.fixture(scope="module")
def comparison(store_sales, tpcds_truth):
    results = {}
    workload = generate_range_queries(
        store_sales, PAIRS, n_per_aggregate=4, aggregates=AFS,
        range_fraction=[0.01, 0.05], seed=107, anchor="data",
    )
    for label, size in (("10k", SAMPLE_10K), ("100k", SAMPLE_100K)):
        dbest = make_dbest(store_sales, regressor="xgboost", seed=13)
        for x, y in PAIRS:
            dbest.build_model("store_sales", x=x, y=y, sample_size=size)
        verdict = UniformAQPEngine(sample_size=size, random_seed=13)
        verdict.register_table(store_sales)
        verdict.prepare_table("store_sales")
        runs = compare_engines(
            {f"DBEst_{label}": dbest, f"VerdictDB_{label}": verdict},
            workload,
            tpcds_truth,
        )
        results[label] = (dbest, verdict, runs)

    error_rows = []
    time_rows = []
    for label, (_d, _v, runs) in results.items():
        error_rows.extend(summarize_by_aggregate(runs, aggregates=AFS))
        for name, run in runs.items():
            time_rows.append({"engine": name, "mean_latency_s": run.mean_latency()})
    time_rows.append(_paper_scale_latency_row())
    write_figure(
        "Fig 10", "TPC-DS relative error: DBEst vs VerdictDB", error_rows,
        notes="paper: overall 5.26% (DBEst_10k) vs >10% (VerdictDB_10k); "
        "both excellent at 100k",
    )
    write_figure(
        "Fig 11", "TPC-DS response time: DBEst vs VerdictDB", time_rows,
        notes="paper: DBEst <0.02s / 0.12s vs VerdictDB 0.33-0.40s. "
        "Sample-scan latency grows linearly with the sample; DBEst's is "
        "flat — the paper-scale row scans a 2M-row sample (the paper's "
        "samples are >=10M rows) and loses to DBEst.",
    )
    return results


def _paper_scale_latency_row() -> dict:
    """Latency of sample scanning at a paper-scale sample size.

    The repo's scaled samples (2k-30k rows) are so small that numpy scans
    them in sub-millisecond time, hiding the paper's latency story.  The
    story is about asymptotics: VerdictDB scans samples of >=10M rows per
    query while DBEst evaluates fixed-size models.  One 2M-row sample
    makes the crossover visible on this machine.
    """
    import numpy as np

    from repro import UniformAQPEngine
    from repro.workloads import generate_store_sales

    big = generate_store_sales(2_000_000, seed=19)
    verdict = UniformAQPEngine(sample_size=2_000_000, random_seed=19)
    verdict.register_table(big)
    verdict.prepare_table("store_sales")
    sql = (
        "SELECT AVG(ss_wholesale_cost) FROM store_sales "
        "WHERE ss_list_price BETWEEN 15 AND 25;"
    )
    times = []
    for _ in range(5):
        times.append(verdict.execute(sql).elapsed_seconds)
    return {
        "engine": "VerdictDB_paper_scale(2m rows)",
        "mean_latency_s": float(np.mean(times)),
    }


def test_fig10_small_sample_advantage(benchmark, comparison):
    _dbest, _verdict, runs = comparison["10k"]
    dbest_err = runs["DBEst_10k"].mean_relative_error()
    assert dbest_err < 0.25
    sql = (
        "SELECT SUM(ss_wholesale_cost) FROM store_sales "
        "WHERE ss_list_price BETWEEN 15 AND 25;"
    )
    benchmark(comparison["10k"][0].execute, sql)


@pytest.mark.parametrize("label", ["10k", "100k"])
def test_fig11_latency(benchmark, comparison, label):
    dbest, _verdict, _runs = comparison[label]
    sql = (
        "SELECT AVG(ss_wholesale_cost) FROM store_sales "
        "WHERE ss_list_price BETWEEN 15 AND 25;"
    )
    result = benchmark(dbest.execute, sql)
    assert result.source == "model"
