"""Figure 29 (Appendix D): complex TPC-DS queries 5, 77 and 7.

The paper runs three real benchmark queries: multi-way joins, several
AFs per query, and group counts from 57 (Q5, Q77) up to >25 000 (Q7,
where groups have <20 rows each — an extreme stress test DBEst handles
by training on the complete join table, keeping raw tuples per tiny
group).

Repo-scale emulation over the synthetic TPC-DS subset:

* **Q77-like** — store_sales ⋈ store, two AFs, GROUP BY ss_store_sk
  (57 groups).
* **Q5-like**  — same join, different measure pair, GROUP BY ss_store_sk.
* **Q7-like**  — GROUP BY ss_sold_date_sk: ~1800 groups with <100 rows
  each, exercising the raw-tuple path for low-support groups.

Paper shape: DBEst's error drops from ~7.5% (10k) to ~2.8% (100k) on
Q77; Q7's overall error stays <6% despite tiny groups.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import (
    SAMPLE_10K,
    SAMPLE_100K,
    make_dbest,
    write_figure,
)
from repro.harness.runner import record_error

Q77_SQL = (
    "SELECT ss_store_sk, SUM(ss_net_profit), AVG(ss_net_profit) "
    "FROM store_sales JOIN store ON ss_store_sk = s_store_sk "
    "WHERE s_number_of_employees BETWEEN 210 AND 290 GROUP BY ss_store_sk;"
)
Q5_SQL = (
    "SELECT ss_store_sk, SUM(ss_wholesale_cost), AVG(ss_wholesale_cost) "
    "FROM store_sales JOIN store ON ss_store_sk = s_store_sk "
    "WHERE s_number_of_employees BETWEEN 210 AND 290 GROUP BY ss_store_sk;"
)
Q7_SQL = (
    "SELECT ss_sold_date_sk, COUNT(ss_sales_price), AVG(ss_sales_price) "
    "FROM store_sales WHERE ss_list_price BETWEEN 5 AND 120 "
    "GROUP BY ss_sold_date_sk;"
)


@pytest.fixture(scope="module")
def engines(store_sales, store):
    built = {}
    for label, size in (("10k", SAMPLE_10K), ("100k", SAMPLE_100K)):
        engine = make_dbest(
            store_sales, store, regressor="plr", seed=13, min_group_rows=40,
        )
        engine.build_join_model(
            "store_sales", "store", "ss_store_sk", "s_store_sk",
            x="s_number_of_employees", y="ss_net_profit",
            sample_size=40_000, group_by="ss_store_sk",
        )
        engine.build_join_model(
            "store_sales", "store", "ss_store_sk", "s_store_sk",
            x="s_number_of_employees", y="ss_wholesale_cost",
            sample_size=40_000, group_by="ss_store_sk",
        )
        built[label] = engine

    # Q7: >1800 groups with tiny support; per the paper, DBEst trains on
    # the complete table (sample = population) and keeps raw tuples for
    # under-supported groups.
    q7_engine = make_dbest(
        store_sales, regressor="plr", seed=13,
        min_group_rows=200, max_groups=5000,
    )
    q7_engine.build_model(
        "store_sales", x="ss_list_price", y="ss_sales_price",
        sample_size=store_sales.n_rows, group_by="ss_sold_date_sk",
    )
    built["q7"] = q7_engine
    return built


@pytest.fixture(scope="module")
def figure29(engines, tpcds_truth):
    rows = []
    latencies = {}
    for query_name, sql in (("Query 5", Q5_SQL), ("Query 77", Q77_SQL)):
        truth = tpcds_truth.execute(sql)
        for label in ("10k", "100k"):
            result = engines[label].execute(sql)
            errors = [
                record_error(truth.values[key], result.values.get(key))
                for key in truth.values
            ]
            rows.append(
                {
                    "query": query_name,
                    "engine": f"DBEst_{label}",
                    "mean_rel_error": float(np.nanmean(errors)),
                    "latency_s": result.elapsed_seconds,
                }
            )
            latencies[(query_name, label)] = result.elapsed_seconds

    truth = tpcds_truth.execute(Q7_SQL)
    result = engines["q7"].execute(Q7_SQL)
    errors = [
        record_error(truth.values[key], result.values.get(key))
        for key in truth.values
    ]
    rows.append(
        {
            "query": "Query 7",
            "engine": "DBEst (full table)",
            "mean_rel_error": float(np.nanmean(errors)),
            "latency_s": result.elapsed_seconds,
        }
    )
    write_figure(
        "Fig 29", "complex TPC-DS queries 5 / 77 / 7", rows,
        notes="paper: Q77 7.56%->2.76% (10k->100k); Q7 <6% overall despite "
        ">25k tiny groups (repo: ~1800 groups)",
    )
    return rows


def test_fig29_q77_accuracy(benchmark, engines, figure29):
    q77 = {r["engine"]: r["mean_rel_error"] for r in figure29 if r["query"] == "Query 77"}
    assert q77["DBEst_100k"] < 0.15
    result = benchmark(engines["100k"].execute, Q77_SQL)
    assert len(result.groups("SUM(ss_net_profit)")) > 40


def test_fig29_q7_many_small_groups(benchmark, engines, figure29):
    q7 = next(r for r in figure29 if r["query"] == "Query 7")
    assert q7["mean_rel_error"] < 0.25
    result = benchmark.pedantic(
        engines["q7"].execute, args=(Q7_SQL,), rounds=2, iterations=1
    )
    assert len(result.groups("AVG(ss_sales_price)")) > 1000
