"""Figures 18, 19 & 23: parallel execution.

* Fig. 18 (§4.7.1): a 57-group GROUP BY query with per-group model
  evaluation parallelised — single-thread DBEst vs multi-core DBEst.
* Fig. 19 (§4.7.2) and Fig. 23 (Appendix B): total workload drain time vs
  number of worker processes (inter-query parallelism) for the CCPP and
  TPC-DS workloads.

Paper shape: multi-core DBEst cuts the GROUP BY latency (1.46s -> 0.57s);
workload drain time falls steadily with workers (up to ~10x at 12), while
VerdictDB's total is flat because each query already uses every core.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import SAMPLE_100K, make_dbest, write_figure
from repro.harness.timing import stopwatch, total_workload_time
from repro.workloads import generate_range_queries

X, Y, GROUP = "ss_sold_date_sk", "ss_sales_price", "ss_store_sk"
MAX_WORKERS = min(8, os.cpu_count() or 2)
GROUPBY_SQL = (
    "SELECT ss_store_sk, SUM(ss_sales_price) FROM store_sales "
    "WHERE ss_sold_date_sk BETWEEN 2451000 AND 2451900 GROUP BY ss_store_sk;"
)


@pytest.fixture(scope="module")
def group_engine(store_sales):
    engine = make_dbest(
        store_sales, regressor="gboost", seed=13, min_group_rows=50
    )
    engine.build_model(
        "store_sales", x=X, y=Y, sample_size=40_000, group_by=GROUP
    )
    return engine


@pytest.fixture(scope="module")
def figure18(group_engine):
    # Warm the persistent process pool so Fig. 18 measures evaluation, not
    # worker spawn (the paper's engine keeps its processes alive too).
    group_engine.config.n_workers = MAX_WORKERS
    group_engine.execute(GROUPBY_SQL)
    rows = []
    for label, workers in (
        ("DBEst (1 thread)", 1),
        (f"DBEst ({MAX_WORKERS} workers)", MAX_WORKERS),
    ):
        group_engine.config.n_workers = workers
        with stopwatch() as timer:
            group_engine.execute(GROUPBY_SQL)
        rows.append({"configuration": label, "latency_s": timer.seconds})
    group_engine.config.n_workers = 1
    write_figure(
        "Fig 18", "GROUP BY latency: sequential vs parallel model evaluation",
        rows,
        notes="paper: 1.46s single-thread -> 0.57s with 12 cores",
    )
    return rows


@pytest.fixture(scope="module")
def figure19_23(ccpp, store_sales):
    datasets = {
        "CCPP (Fig 19)": (ccpp, [("T", "EP")]),
        "TPC-DS (Fig 23a)": (store_sales, [("ss_list_price", "ss_wholesale_cost")]),
    }
    all_rows = {}
    for label, (table, pairs) in datasets.items():
        engine = make_dbest(table, regressor="gboost", seed=13)
        for x, y in pairs:
            engine.build_model(table.name, x=x, y=y, sample_size=SAMPLE_100K)
        workload = generate_range_queries(
            table, pairs, n_per_aggregate=8, aggregates=("COUNT", "SUM", "AVG"),
            range_fraction=0.05, seed=113, anchor="data",
        )
        rows = []
        for workers in (1, 2, 4, MAX_WORKERS):
            elapsed = total_workload_time(engine, workload, n_processes=workers)
            rows.append({"processes": workers, "total_time_s": elapsed})
        write_figure(
            f"Fig 19/23 - {label}",
            f"total workload time vs processes ({label})",
            rows,
            notes="paper: DBEst total time drops with workers; "
            "VerdictDB stays flat (intra-query parallelism)",
        )
        all_rows[label] = rows
    return all_rows


def test_fig18_parallel_groupby(benchmark, group_engine, figure18):
    sequential, parallel = figure18[0]["latency_s"], figure18[1]["latency_s"]
    # With a warm pool, parallel evaluation beats sequential (paper: 2.5x).
    assert parallel < sequential * 1.2 + 0.1
    result = benchmark(group_engine.execute, GROUPBY_SQL)
    assert len(result.groups()) == 57


def test_fig19_throughput_scales(benchmark, figure19_23, ccpp):
    for rows in figure19_23.values():
        single = rows[0]["total_time_s"]
        most = rows[-1]["total_time_s"]
        # Multi-process drain should beat the sequential drain (paper: up
        # to 10x with 12 cores; exact factor depends on the container).
        assert most < single * 1.1 + 0.2
    engine = make_dbest(ccpp, regressor="plr", seed=13)
    engine.build_model("ccpp", x="T", y="EP", sample_size=5000)
    benchmark(engine.execute, "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 8 AND 15;")
