"""Ablation: KDE vs histogram density estimator.

Paper §3 rejects histograms as the density estimator because "their
discrete nature is at odds with the continuous-function view employed
within DBEst".  This bench quantifies the trade: COUNT accuracy over
narrow ranges (where histogram discretisation bites) and evaluation
latency.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_figure
from repro.ml import HistogramDensity, KernelDensityEstimator


@pytest.fixture(scope="module")
def ablation(store_sales):
    x = store_sales["ss_list_price"][:10_000].astype(float)
    n = store_sales.n_rows
    full = store_sales["ss_list_price"]
    kde = KernelDensityEstimator().fit(x)
    histograms = {
        bins: HistogramDensity(n_bins=bins).fit(x) for bins in (16, 64, 256)
    }

    rng = np.random.default_rng(7)
    lo, hi = float(x.min()), float(x.max())
    rows = []
    estimators = {"kde": kde, **{f"hist_{b}": h for b, h in histograms.items()}}
    for name, estimator in estimators.items():
        errors = []
        for _ in range(60):
            anchor = float(x[rng.integers(0, x.size)])
            width = 0.01 * (hi - lo)
            a = min(max(anchor - width * rng.random(), lo), hi - width)
            b = a + width
            truth = float(((full >= a) & (full <= b)).sum())
            estimate = n * estimator.integrate(a, b)
            if truth > 0:
                errors.append(abs(estimate - truth) / truth)
        rows.append(
            {
                "estimator": name,
                "narrow_range_count_error": float(np.mean(errors)),
            }
        )
    write_figure(
        "Ablation density", "KDE vs histogram density (1% ranges)", rows,
        notes="paper rejects histograms for their discreteness; the KDE "
        "should beat coarse histograms on narrow ranges",
    )
    return rows, estimators


def test_kde_beats_coarse_histogram(benchmark, ablation):
    rows, estimators = ablation
    by_name = {r["estimator"]: r["narrow_range_count_error"] for r in rows}
    assert by_name["kde"] < by_name["hist_16"]
    grid = np.linspace(*estimators["kde"].support, 257)
    benchmark(estimators["kde"].pdf, grid)


def test_fine_histogram_competitive(benchmark, ablation):
    """With enough bins the histogram closes the gap — the trade is
    resolution vs the smoothness DBEst's integrals rely on."""
    rows, estimators = ablation
    by_name = {r["estimator"]: r["narrow_range_count_error"] for r in rows}
    assert by_name["hist_256"] < by_name["hist_16"]
    grid = np.linspace(*estimators["hist_256"].support, 257)
    benchmark(estimators["hist_256"].pdf, grid)
