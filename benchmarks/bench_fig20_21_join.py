"""Figures 20 & 21: join query processing.

Paper setup (§4.8): store_sales ⋈ store on ss_store_sk; 42 queries over
[s_number_of_employees -> ss_net_profit] and [... -> ss_wholesale_cost];
DBEst trained on 10k/100k/1m samples of the *precomputed* join, VerdictDB
joining a 10m-row fact sample with the 60-row dimension table at query
time.

Paper shape: DBEst error 4.48% (10k) to 2.24% (1m) vs VerdictDB 1.66%
(with a 100x larger sample); DBEst answers in 0.028-0.82s vs 6.7s and
needs 0.37-1.12MB vs >270MB — speedups up to >200x, space 100-250x.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import (
    SAMPLE_1M,
    SAMPLE_10K,
    SAMPLE_100K,
    make_dbest,
    write_figure,
)
from repro import UniformAQPEngine
from repro.harness import run_workload
from repro.workloads.queries import generate_join_queries

AFS = ("COUNT", "SUM", "AVG")
Y_COLUMNS = ["ss_net_profit", "ss_wholesale_cost"]
JOIN_SQL = (
    "SELECT AVG(ss_net_profit) FROM store_sales JOIN store "
    "ON ss_store_sk = s_store_sk "
    "WHERE s_number_of_employees BETWEEN 220 AND 260;"
)


@pytest.fixture(scope="module")
def workload(store):
    domain = (
        float(store["s_number_of_employees"].min()),
        float(store["s_number_of_employees"].max()),
    )
    return generate_join_queries(
        "store_sales", "store", "ss_store_sk", "s_store_sk",
        "s_number_of_employees", domain, Y_COLUMNS,
        n_per_aggregate=3, aggregates=AFS, range_fraction=0.4, seed=117,
    )


@pytest.fixture(scope="module")
def comparison(store_sales, store, tpcds_truth, workload):
    sizes = {"10k": SAMPLE_10K, "100k": SAMPLE_100K, "1m": SAMPLE_1M}
    engines = {}
    stats = {}
    for label, size in sizes.items():
        dbest = make_dbest(store_sales, store, regressor="xgboost", seed=13)
        key = dbest.build_join_model(
            "store_sales", "store", "ss_store_sk", "s_store_sk",
            x="s_number_of_employees", y=None, sample_size=size,
        )
        # One model per y column (the paper's 2 column pairs).
        for y in Y_COLUMNS:
            key = dbest.build_join_model(
                "store_sales", "store", "ss_store_sk", "s_store_sk",
                x="s_number_of_employees", y=y, sample_size=size,
            )
        engines[f"DBEst_{label}"] = dbest
        stats[f"DBEst_{label}"] = dbest.build_stats[key]

    # The paper's VerdictDB joins a *fixed 10m-row* fact sample with the
    # 60-row dimension table at query time; at repo scale that sample is
    # most of the population — which is exactly why its query-time join
    # is so much more expensive than DBEst's model evaluation.
    verdict_sample = 100_000
    verdict = UniformAQPEngine(sample_size=verdict_sample, random_seed=13)
    verdict.register_table(store_sales)
    verdict.register_table(store)
    verdict.prepare_table("store_sales", sample_size=verdict_sample)
    engines["VerdictDB_10m"] = verdict

    error_rows, perf_rows = [], []
    for name, engine in engines.items():
        run = run_workload(engine, workload, tpcds_truth, engine_name=name)
        row = {"engine": name}
        for af in AFS:
            row[af] = run.mean_relative_error(af)
        row["OVERALL"] = run.mean_relative_error()
        error_rows.append(row)
        if name.startswith("DBEst"):
            space = stats[name]["model_bytes"] / 1e6
        else:
            space = verdict.state_size_bytes() / 1e6
        perf_rows.append(
            {
                "engine": name,
                "mean_latency_s": run.mean_latency(),
                "space_MB": space,
            }
        )
    write_figure(
        "Fig 20", "join accuracy comparison", error_rows,
        notes="paper: DBEst 4.48% (10k) - 2.24% (1m); VerdictDB 1.66% with "
        "a 100x larger sample",
    )
    write_figure(
        "Fig 21", "join response time and space overhead", perf_rows,
        notes="paper: DBEst 0.028-0.82s / 0.37-1.12MB vs VerdictDB 6.7s / >270MB",
    )
    return engines, error_rows, perf_rows


def test_fig20_join_accuracy(benchmark, comparison):
    engines, error_rows, _ = comparison
    by_name = {row["engine"]: row["OVERALL"] for row in error_rows}
    assert by_name["DBEst_1m"] < 0.15
    # Bigger training samples should not hurt accuracy.
    assert by_name["DBEst_1m"] <= by_name["DBEst_10k"] * 1.5 + 0.02
    result = benchmark(engines["DBEst_10k"].execute, JOIN_SQL)
    assert result.source == "model"


def test_fig21_space_advantage(benchmark, comparison):
    engines, _, perf_rows = comparison
    dbest_space = next(
        r["space_MB"] for r in perf_rows if r["engine"] == "DBEst_10k"
    )
    verdict_space = next(
        r["space_MB"] for r in perf_rows if r["engine"] == "VerdictDB_10m"
    )
    assert dbest_space < verdict_space
    benchmark(engines["VerdictDB_10m"].execute, JOIN_SQL)


def test_fig21_dbest_faster_than_sample_join(comparison, benchmark):
    engines, _, perf_rows = comparison
    times = {r["engine"]: r["mean_latency_s"] for r in perf_rows}
    # DBEst avoids the query-time join entirely; it must win on latency.
    assert times["DBEst_10k"] < times["VerdictDB_10m"]
    result = benchmark(engines["DBEst_1m"].execute, JOIN_SQL)
    assert not np.isnan(result.scalar())
