"""Ablation: uniform reservoir vs stratified sampling for group-by training.

Paper §3 "Sampling": stratified sampling is the usual choice for grouped
data but complicates model fitting; DBEst uses plain reservoir samples
and reports that this suffices.  This bench trains the same 57-group
model set from (a) a uniform reservoir sample and (b) a per-group-capped
stratified sample of the same total size, then compares per-group error.

Expected shape: stratified helps the rare groups (more rows for them),
uniform matches it on the popular groups — with skewed store popularity
the two end up close overall, which is the paper's justification.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_figure
from repro.core import DBEstConfig, GroupByModelSet
from repro.harness.runner import record_error
from repro.sampling import reservoir_sample_indices, stratified_sample_indices
from repro.sql.ast import AggregateCall

X, Y, GROUP = "ss_sold_date_sk", "ss_sales_price", "ss_store_sk"
TOTAL_SAMPLE = 40_000


def _train(store_sales, indices, config):
    return GroupByModelSet.train(
        sample_x=store_sales[X][indices].astype(float),
        sample_y=store_sales[Y][indices].astype(float),
        sample_groups=store_sales[GROUP][indices],
        full_groups=store_sales[GROUP],
        full_x=store_sales[X].astype(float),
        full_y=store_sales[Y].astype(float),
        table_name="store_sales",
        x_columns=(X,),
        y_column=Y,
        group_column=GROUP,
        config=config,
    )


@pytest.fixture(scope="module")
def model_sets(store_sales):
    rng = np.random.default_rng(13)
    config = DBEstConfig(regressor="plr", min_group_rows=50, random_seed=13)
    uniform_idx = reservoir_sample_indices(store_sales.n_rows, TOTAL_SAMPLE, rng=rng)
    n_groups = int(np.unique(store_sales[GROUP]).shape[0])
    cap = TOTAL_SAMPLE // n_groups
    stratified_idx = stratified_sample_indices(store_sales[GROUP], cap, rng=rng)
    return {
        "uniform": _train(store_sales, uniform_idx, config),
        "stratified": _train(store_sales, stratified_idx, config),
    }


@pytest.fixture(scope="module")
def ablation_rows(model_sets, store_sales, tpcds_truth):
    lo, hi = store_sales.column_range(X)
    sql = (
        f"SELECT {GROUP}, AVG({Y}) FROM store_sales "
        f"WHERE {X} BETWEEN {lo + 0.2 * (hi - lo)!r} AND {lo + 0.6 * (hi - lo)!r} "
        f"GROUP BY {GROUP};"
    )
    truth = tpcds_truth.execute(sql).groups()
    ranges = {X: (lo + 0.2 * (hi - lo), lo + 0.6 * (hi - lo))}
    rows = []
    for name, model_set in model_sets.items():
        answers = model_set.answer(AggregateCall("AVG", Y), ranges)
        errors = [
            record_error(truth[value], answers.get(value, float("nan")))
            for value in truth
        ]
        rows.append(
            {
                "sampling": name,
                "mean_group_error": float(np.nanmean(errors)),
                "max_group_error": float(np.nanmax(errors)),
                "raw_groups": len(model_set.raw_groups),
            }
        )
    write_figure(
        "Ablation sampling", "uniform reservoir vs stratified group-by training",
        rows,
        notes="paper: uniform reservoir sampling 'suffices to provide "
        "excellent performance' — the two should be close",
    )
    return rows


def test_uniform_sampling_suffices(benchmark, model_sets, ablation_rows):
    by_name = {r["sampling"]: r for r in ablation_rows}
    # The paper's claim: uniform is competitive with stratified.
    assert by_name["uniform"]["mean_group_error"] <= (
        by_name["stratified"]["mean_group_error"] * 2.0 + 0.05
    )
    ranges = {X: (2451000.0, 2451900.0)}
    benchmark(
        model_sets["uniform"].answer, AggregateCall("AVG", Y), ranges
    )


def test_stratified_covers_rare_groups(benchmark, model_sets, ablation_rows):
    """Stratified sampling never leaves more raw (tiny) groups than uniform."""
    by_name = {r["sampling"]: r for r in ablation_rows}
    assert by_name["stratified"]["raw_groups"] <= by_name["uniform"]["raw_groups"]
    ranges = {X: (2451000.0, 2451900.0)}
    benchmark(
        model_sets["stratified"].answer, AggregateCall("AVG", Y), ranges
    )
