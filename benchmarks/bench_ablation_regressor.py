"""Ablation: regression-model choice (paper §3 "Regression Model Selection").

The paper motivates its classifier-routed ensemble by noting "different
models work better for different data regions".  This bench builds one
column-set model per backend on the same sample and reports
accuracy/latency/size, plus how often the ensemble's selector picks each
constituent.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import SAMPLE_100K, make_dbest, write_figure
from repro.harness import run_workload
from repro.ml.ensemble import EnsembleRegressor
from repro.workloads import generate_range_queries

PAIR = ("ss_list_price", "ss_net_profit")
BACKENDS = ("ensemble", "gboost", "xgboost", "plr", "linear", "tree")


@pytest.fixture(scope="module")
def ablation(store_sales, tpcds_truth):
    workload = generate_range_queries(
        store_sales, [PAIR], n_per_aggregate=8, aggregates=("AVG", "SUM"),
        range_fraction=[0.02, 0.1], seed=131, anchor="data",
    )
    rows = []
    engines = {}
    for backend in BACKENDS:
        engine = make_dbest(store_sales, regressor=backend, seed=13)
        key = engine.build_model(
            "store_sales", x=PAIR[0], y=PAIR[1], sample_size=SAMPLE_100K
        )
        run = run_workload(engine, workload, tpcds_truth, engine_name=backend)
        stats = engine.build_stats[key]
        rows.append(
            {
                "regressor": backend,
                "AVG_error": run.mean_relative_error("AVG"),
                "SUM_error": run.mean_relative_error("SUM"),
                "latency_s": run.mean_latency(),
                "train_s": stats["training_seconds"],
                "model_MB": stats["model_bytes"] / 1e6,
            }
        )
        engines[backend] = engine
    write_figure(
        "Ablation regressor", "regression backend trade-offs", rows,
        notes="paper picks the classifier-routed ensemble; boosted trees "
        "should beat plain linear on nonlinear pairs",
    )
    return rows, engines


def test_boosted_trees_beat_linear(benchmark, ablation):
    rows, engines = ablation
    by_name = {r["regressor"]: r for r in rows}
    best_tree = min(
        by_name["gboost"]["AVG_error"], by_name["xgboost"]["AVG_error"]
    )
    assert best_tree <= by_name["linear"]["AVG_error"] * 1.5
    sql = (
        "SELECT AVG(ss_net_profit) FROM store_sales "
        "WHERE ss_list_price BETWEEN 20 AND 40;"
    )
    benchmark(engines["gboost"].execute, sql)


def test_ensemble_is_competitive(benchmark, ablation):
    rows, engines = ablation
    by_name = {r["regressor"]: r for r in rows}
    single_best = min(
        by_name[b]["AVG_error"] for b in ("gboost", "xgboost", "plr")
    )
    # The routed ensemble should track its best constituent.
    assert by_name["ensemble"]["AVG_error"] <= single_best * 2.0 + 0.01
    sql = (
        "SELECT AVG(ss_net_profit) FROM store_sales "
        "WHERE ss_list_price BETWEEN 20 AND 40;"
    )
    benchmark(engines["ensemble"].execute, sql)


def test_selector_routes_by_range(benchmark, store_sales):
    """The ensemble's classifier actually differentiates query ranges."""
    x = store_sales["ss_list_price"][:20_000].astype(float)
    y = store_sales["ss_net_profit"][:20_000].astype(float)
    ensemble = EnsembleRegressor(n_eval_queries=60, random_state=13).fit(x, y)
    picks = {
        ensemble.select(float(a), float(a) + 10.0)
        for a in np.linspace(x.min(), x.max() - 10.0, 25)
    }
    assert picks <= set(ensemble.constituent_names)
    benchmark(ensemble.predict, np.linspace(5, 50, 257), 5.0, 50.0)
