"""Figures 5 & 6: sensitivity of DBEst to the query-range selectivity.

Paper setup (§4.2.2): sample fixed at 100k (repo: 10k), query ranges at
0.1%, 1% and 10% of the attribute domain; Fig. 5 reports relative error
per AF, Fig. 6 response time per AF.

Paper shape: error *decreases* as ranges grow (small ranges find fewer
sample representatives); times *increase* with range width (integration
spans more of the domain); everything stays sub-second except PERCENTILE
which pays for the bisection's repeated CDF evaluations.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import SAMPLE_100K, make_dbest, write_figure
from repro.harness import run_workload
from repro.workloads import generate_range_queries

AFS = ("COUNT", "PERCENTILE", "VARIANCE", "STDDEV", "SUM", "AVG")
PAIR = ("ss_list_price", "ss_wholesale_cost")
FRACTIONS = (0.001, 0.01, 0.1)


@pytest.fixture(scope="module")
def engine(store_sales):
    built = make_dbest(store_sales, seed=13)
    built.build_model(
        "store_sales", x=PAIR[0], y=PAIR[1], sample_size=SAMPLE_100K
    )
    return built


@pytest.fixture(scope="module")
def figure_rows(engine, store_sales, tpcds_truth):
    error_rows, time_rows = [], []
    for fraction in FRACTIONS:
        workload = generate_range_queries(
            store_sales, [PAIR], n_per_aggregate=5, aggregates=AFS,
            range_fraction=fraction, seed=101, anchor="data",
        )
        run = run_workload(engine, workload, tpcds_truth)
        label = f"{fraction * 100:g}%"
        error_row = {"query_range": label}
        time_row = {"query_range": label}
        for af in AFS:
            error_row[af] = run.mean_relative_error(af)
            time_row[af] = float(
                np.mean([r.elapsed_seconds for r in run.records if r.aggregate == af])
            )
        error_rows.append(error_row)
        time_rows.append(time_row)
    write_figure(
        "Fig 5", "relative error vs query range (per AF)", error_rows,
        notes="paper: error decreases as the range grows",
    )
    write_figure(
        "Fig 6", "query response time (s) vs query range (per AF)", time_rows,
        notes="paper: all AFs < 1s except PERCENTILE (~1.2s)",
    )
    return error_rows, time_rows


def test_fig5_error_decreases_with_range(benchmark, engine, figure_rows):
    error_rows, _ = figure_rows
    narrow = np.nanmean([error_rows[0][af] for af in AFS])
    wide = np.nanmean([error_rows[-1][af] for af in AFS])
    assert wide <= narrow
    sql = (
        "SELECT AVG(ss_wholesale_cost) FROM store_sales "
        "WHERE ss_list_price BETWEEN 10 AND 30;"
    )
    benchmark(engine.execute, sql)


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_fig6_latency_by_range(benchmark, engine, figure_rows, store_sales, fraction):
    lo, hi = store_sales.column_range(PAIR[0])
    width = fraction * (hi - lo)
    sql = (
        f"SELECT SUM(ss_wholesale_cost) FROM store_sales "
        f"WHERE ss_list_price BETWEEN {10.0!r} AND {10.0 + width!r};"
    )
    result = benchmark(engine.execute, sql)
    assert result.source == "model"
