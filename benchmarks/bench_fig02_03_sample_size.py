"""Figures 2 & 3: sensitivity of DBEst to the training-sample size.

Paper setup (§4.2.1): column pair [ss_list_price, ss_wholesale_cost],
query ranges at 1% of the domain, sample sizes 10k/100k/1M/5M; Fig. 2
reports relative error per AF, Fig. 3 response time per AF.  Here sample
sizes map to 2k/10k/30k (see conftest) over a 150k-row population.

Paper shape to reproduce: error < 10% at the smallest sample and drops
roughly an order of magnitude by the largest; response times grow with
sample size but stay sub-second.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import (
    SAMPLE_1M,
    SAMPLE_10K,
    SAMPLE_100K,
    make_dbest,
    write_figure,
)
from repro.harness import run_workload
from repro.workloads import generate_range_queries

AFS = ("COUNT", "PERCENTILE", "VARIANCE", "STDDEV", "SUM", "AVG")
PAIR = ("ss_list_price", "ss_wholesale_cost")
SIZES = {"10k": SAMPLE_10K, "100k": SAMPLE_100K, "1m": SAMPLE_1M}


@pytest.fixture(scope="module")
def engines(store_sales):
    built = {}
    for label, size in SIZES.items():
        engine = make_dbest(store_sales, seed=13)
        engine.build_model("store_sales", x=PAIR[0], y=PAIR[1], sample_size=size)
        built[label] = engine
    return built


@pytest.fixture(scope="module")
def workload(store_sales):
    return generate_range_queries(
        store_sales, [PAIR], n_per_aggregate=5, aggregates=AFS,
        range_fraction=0.01, seed=97, anchor="data",
    )


@pytest.fixture(scope="module")
def figure_rows(engines, workload, tpcds_truth):
    error_rows, time_rows = [], []
    for label, engine in engines.items():
        run = run_workload(engine, workload, tpcds_truth, engine_name=label)
        error_row = {"sample": label}
        time_row = {"sample": label}
        for af in AFS:
            error_row[af] = run.mean_relative_error(af)
            times = [
                r.elapsed_seconds for r in run.records if r.aggregate == af
            ]
            time_row[af] = float(np.mean(times))
        error_rows.append(error_row)
        time_rows.append(time_row)
    write_figure(
        "Fig 2", "relative error vs sample size (per AF)", error_rows,
        notes="paper: <10% at smallest sample, ~1% at 1m-equivalent",
    )
    write_figure(
        "Fig 3", "query response time (s) vs sample size (per AF)", time_rows,
        notes="paper: times grow with sample size, sub-second overall",
    )
    return error_rows, time_rows


def test_fig2_error_shape(benchmark, engines, figure_rows):
    """Error at the largest sample beats the smallest on average (Fig. 2)."""
    error_rows, _ = figure_rows
    small = np.nanmean([error_rows[0][af] for af in AFS])
    large = np.nanmean([error_rows[-1][af] for af in AFS])
    assert large <= small
    assert small < 0.25  # paper: <10% even at 10k; generous scaled bound
    sql = (
        "SELECT COUNT(ss_wholesale_cost) FROM store_sales "
        "WHERE ss_list_price BETWEEN 20 AND 22;"
    )
    benchmark(engines["10k"].execute, sql)


@pytest.mark.parametrize("label", list(SIZES))
def test_fig3_query_latency(benchmark, engines, figure_rows, label):
    """Times one representative AVG query per sample size (Fig. 3)."""
    engine = engines[label]
    sql = (
        "SELECT AVG(ss_wholesale_cost) FROM store_sales "
        "WHERE ss_list_price BETWEEN 20 AND 22;"
    )
    result = benchmark(engine.execute, sql)
    assert result.source == "model"
