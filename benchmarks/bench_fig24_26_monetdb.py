"""Figures 24, 25 & 26 (Appendix C): DBEst vs "approximate MonetDB".

Approximate MonetDB = an exact-answer columnar engine evaluating queries
over a uniform sample with N/n scaling — our :class:`ExactEngine` in
sample mode.  The paper's point: such an engine is extremely fast but,
at equal (small) sample sizes, its error is far worse than DBEst's,
especially per group.

Paper shape: TPC-DS GROUP BY overall error 4.43% (DBEst) vs 12.46%
(MonetDB) at 10k; per-group error histograms show MonetDB's long tail
(>30% for some groups); on CCPP DBEst at 10k beats MonetDB at 100k.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    SAMPLE_10K,
    SAMPLE_100K,
    make_dbest,
    write_figure,
)
from repro import ExactEngine
from repro.harness import compare_engines, summarize_by_aggregate
from repro.harness.report import histogram_rows
from repro.harness.runner import per_group_errors
from repro.sampling import uniform_sample_table
from repro.workloads import CCPP_COLUMN_PAIRS, generate_range_queries

AFS = ("COUNT", "SUM", "AVG")
X, Y, GROUP = "ss_sold_date_sk", "ss_sales_price", "ss_store_sk"


def _monetdb_over_sample(table, size, seed=13):
    """Exact engine over a uniform sample, masquerading as the base table."""
    import numpy as np

    sample = uniform_sample_table(table, size, rng=np.random.default_rng(seed))
    renamed = sample.select(sample.column_names, name=table.name)
    engine = ExactEngine()
    engine.register_sample(renamed, population_size=table.n_rows)
    return engine


# Equal-sample comparison, as in the paper's Appendix C.  The sample must
# stay a small fraction of the population for the comparison to have the
# paper's regime (their 10k sample is 1e-4 of a 100M-row table): 15k over
# 150k rows and 57 groups leaves ~260 rows per group, where sample-scan
# noise exceeds DBEst's model bias.
EQUAL_SAMPLE = 15_000


@pytest.fixture(scope="module")
def groupby_engines(store_sales):
    dbest = make_dbest(store_sales, regressor="plr", seed=13, min_group_rows=50)
    dbest.build_model(
        "store_sales", x=X, y=Y, sample_size=EQUAL_SAMPLE, group_by=GROUP
    )
    monet = _monetdb_over_sample(store_sales, EQUAL_SAMPLE)
    return {"DBEst_10k": dbest, "MonetDB_10k": monet}


@pytest.fixture(scope="module")
def figure25(groupby_engines, store_sales, tpcds_truth):
    workload = generate_range_queries(
        store_sales, [(X, Y)], n_per_aggregate=5, aggregates=AFS,
        range_fraction=[0.1, 0.25], group_by=GROUP, seed=119, anchor="data",
    )
    runs = compare_engines(groupby_engines, workload, tpcds_truth)
    rows = summarize_by_aggregate(runs, aggregates=AFS)
    write_figure(
        "Fig 25", "error vs MonetDB: TPC-DS GROUP BY", rows,
        notes="paper: DBEst 4.43% overall vs MonetDB 12.46% at equal samples",
    )
    return runs


@pytest.fixture(scope="module")
def figure24(groupby_engines, store_sales, tpcds_truth):
    lo, hi = store_sales.column_range(X)
    width = 0.25 * (hi - lo)
    sql_template = (
        f"SELECT {GROUP}, {{af}}({Y}) FROM store_sales "
        f"WHERE {X} BETWEEN {lo + width!r} AND {lo + 2 * width!r} GROUP BY {GROUP};"
    )
    histograms = {}
    for af in AFS:
        sql = sql_template.format(af=af)
        for name, engine in groupby_engines.items():
            errors = per_group_errors(engine, sql, tpcds_truth)
            histograms[(af, name)] = errors
            write_figure(
                f"Fig 24 ({af}, {name})",
                f"per-group {af} error histogram — {name}",
                histogram_rows(errors, n_bins=8),
                notes="paper: MonetDB shows a long per-group error tail, "
                "DBEst stays concentrated at low error",
            )
    return histograms


@pytest.fixture(scope="module")
def figure26(ccpp, ccpp_truth):
    workload = generate_range_queries(
        ccpp, CCPP_COLUMN_PAIRS, n_per_aggregate=4, aggregates=AFS,
        range_fraction=[0.005, 0.01], seed=121, anchor="data",
    )
    engines = {}
    dbest = make_dbest(ccpp, seed=13)
    for x, y in CCPP_COLUMN_PAIRS:
        dbest.build_model("ccpp", x=x, y=y, sample_size=SAMPLE_10K)
    engines["DBEst_10k"] = dbest
    engines["MonetDB_10k"] = _monetdb_over_sample(ccpp, SAMPLE_10K)
    engines["MonetDB_100k"] = _monetdb_over_sample(ccpp, SAMPLE_100K)
    runs = compare_engines(engines, workload, ccpp_truth)
    rows = summarize_by_aggregate(runs, aggregates=AFS)
    write_figure(
        "Fig 26", "error vs MonetDB: CCPP workload", rows,
        notes="paper: DBEst_10k beats MonetDB even at 10x the sample "
        "(53x smaller state for equal error)",
    )
    return runs


def test_fig25_dbest_beats_monetdb_per_group(benchmark, groupby_engines, figure25):
    dbest = figure25["DBEst_10k"].mean_relative_error()
    monet = figure25["MonetDB_10k"].mean_relative_error()
    assert dbest < monet * 1.3  # DBEst at worst comparable, usually better
    sql = (
        f"SELECT {GROUP}, SUM({Y}) FROM store_sales "
        f"WHERE {X} BETWEEN 2451000 AND 2451900 GROUP BY {GROUP};"
    )
    benchmark(groupby_engines["MonetDB_10k"].execute, sql)


def test_fig24_histogram_tails(benchmark, groupby_engines, figure24):
    import numpy as np

    dbest_errors = np.asarray(list(figure24[("SUM", "DBEst_10k")].values()))
    monet_errors = np.asarray(list(figure24[("SUM", "MonetDB_10k")].values()))
    # MonetDB's worst group should be worse than DBEst's typical group.
    assert monet_errors.max() > np.median(dbest_errors)
    sql = (
        f"SELECT {GROUP}, AVG({Y}) FROM store_sales "
        f"WHERE {X} BETWEEN 2451000 AND 2451900 GROUP BY {GROUP};"
    )
    benchmark(groupby_engines["DBEst_10k"].execute, sql)


def test_fig26_ccpp_comparison(benchmark, figure26, ccpp):
    dbest = figure26["DBEst_10k"].mean_relative_error()
    monet_small = figure26["MonetDB_10k"].mean_relative_error()
    assert dbest < monet_small * 1.3
    engine = _monetdb_over_sample(ccpp, SAMPLE_10K)
    benchmark(
        engine.execute, "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 12;"
    )
