"""Benchmark suite: one module per paper figure/table plus ablations."""
