"""Figures 4, 12 & 16: state-building time and space overheads.

* Fig. 4 (§4.2.1): DBEst sampling+training time and model size vs
  VerdictDB's sampling time and sample size, swept over sample sizes.
* Fig. 12 (§4.4.3): the same two overheads for the TPC-DS workload at the
  10k/100k points.
* Fig. 16 (§4.6): overheads for the 57-group GROUP BY models.

Paper shape: DBEst total state-building time is comparable to or below
VerdictDB's sampling time, while DBEst's stored state (models) is 1–2
orders of magnitude smaller than VerdictDB's samples.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    SAMPLE_10K,
    SAMPLE_100K,
    make_dbest,
    write_figure,
)
from repro import UniformAQPEngine

PAIR = ("ss_list_price", "ss_wholesale_cost")


@pytest.fixture(scope="module")
def overhead_rows(store_sales):
    rows = []
    for label, size in (("10k", SAMPLE_10K), ("100k", SAMPLE_100K)):
        dbest = make_dbest(store_sales, seed=13)
        key = dbest.build_model(
            "store_sales", x=PAIR[0], y=PAIR[1], sample_size=size
        )
        stats = dbest.build_stats[key]

        verdict = UniformAQPEngine(sample_size=size, random_seed=13)
        verdict.register_table(store_sales)
        verdict_sampling = verdict.prepare_table("store_sales")

        rows.append(
            {
                "sample": label,
                "dbest_sampling_s": stats["sampling_seconds"],
                "dbest_training_s": stats["training_seconds"],
                "dbest_model_MB": stats["model_bytes"] / 1e6,
                "verdict_sampling_s": verdict_sampling,
                "verdict_sample_MB": verdict.state_size_bytes() / 1e6,
            }
        )
    write_figure(
        "Fig 4 and 12", "state-building time and space overhead vs sample size",
        rows,
        notes="paper: DBEst models are 1-2 orders of magnitude smaller than "
        "VerdictDB samples",
    )
    return rows


@pytest.fixture(scope="module")
def groupby_overheads(store_sales):
    dbest = make_dbest(store_sales, regressor="plr", seed=13, min_group_rows=25)
    key = dbest.build_model(
        "store_sales", x="ss_sold_date_sk", y="ss_sales_price",
        sample_size=SAMPLE_100K, group_by="ss_store_sk",
    )
    stats = dbest.build_stats[key]

    verdict = UniformAQPEngine(sample_size=SAMPLE_100K, random_seed=13)
    verdict.register_table(store_sales)
    verdict_sampling = verdict.prepare_table("store_sales")

    rows = [
        {
            "engine": "DBEst (57 groups)",
            "sampling_s": stats["sampling_seconds"],
            "training_s": stats["training_seconds"],
            "state_MB": stats["model_bytes"] / 1e6,
        },
        {
            "engine": "VerdictDB",
            "sampling_s": verdict_sampling,
            "training_s": 0.0,
            "state_MB": verdict.state_size_bytes() / 1e6,
        },
    ]
    write_figure(
        "Fig 16", "overheads for 57 group-by values", rows,
        notes="paper: per-group training dominates DBEst's time; "
        "parallel training would cut it 1 order of magnitude",
    )
    return rows, dbest


def test_fig4_space_shape(benchmark, overhead_rows, store_sales):
    """DBEst's model state is (near-)constant in the sample size while the
    sample-based engine's state grows linearly — so models win from the
    100k-equivalent point on.  (Our model at the smallest point weighs
    ~0.18MB, matching the paper's reported 0.192MB; the paper's VerdictDB
    sample is bigger there only because its tables are ~23 columns wide.)
    """
    small, large = overhead_rows
    assert large["dbest_model_MB"] < large["verdict_sample_MB"]
    # Model size is roughly flat; sample size grows ~linearly.
    assert large["dbest_model_MB"] < 2.0 * small["dbest_model_MB"]
    assert large["verdict_sample_MB"] > 3.0 * small["verdict_sample_MB"]

    def build_small_model():
        engine = make_dbest(store_sales, regressor="plr", seed=13)
        engine.build_model(
            "store_sales", x=PAIR[0], y=PAIR[1], sample_size=SAMPLE_10K
        )
        return engine

    benchmark.pedantic(build_small_model, rounds=3, iterations=1)


def test_fig16_groupby_overheads(benchmark, groupby_overheads):
    """Group-by state stays compact even with 57 per-group models."""
    rows, dbest = groupby_overheads
    assert rows[0]["state_MB"] < 60  # paper's bundle of 500 models ~97MB
    sql = (
        "SELECT ss_store_sk, SUM(ss_sales_price) FROM store_sales "
        "WHERE ss_sold_date_sk BETWEEN 2451000 AND 2451500 "
        "GROUP BY ss_store_sk;"
    )
    result = benchmark(dbest.execute, sql)
    assert len(result.groups()) > 40
