"""Shared fixtures and reporting helpers for the benchmark suite.

Every bench module reproduces one or more figures of the paper.  Because
pytest captures stdout, each figure's rows are (a) printed — visible with
``pytest -s`` — and (b) written to ``benchmarks/results/<figure>.txt`` so
the series survive a plain ``pytest benchmarks/ --benchmark-only`` run.
EXPERIMENTS.md indexes those files against the paper's plots.

Scale note: populations and sample sizes are laptop-scaled (DESIGN.md
"Substitutions").  The mapping used throughout:

    paper sample 10k  -> repo 2k      paper population: billions of rows
    paper sample 100k -> repo 10k     repo population: 100k-300k rows
    paper sample 1m   -> repo 30k
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import DBEst, DBEstConfig, ExactEngine
from repro.harness import format_table
from repro.workloads import generate_beijing, generate_ccpp, generate_store, generate_store_sales

RESULTS_DIR = Path(__file__).parent / "results"

# Laptop-scale stand-ins for the paper's sample sizes.
SAMPLE_10K = 2_000
SAMPLE_100K = 10_000
SAMPLE_1M = 30_000

TPCDS_ROWS = 150_000
CCPP_ROWS = 200_000
BEIJING_ROWS = 100_000


def write_figure(
    figure_id: str,
    title: str,
    rows: list[dict],
    columns: list[str] | None = None,
    notes: str | None = None,
) -> None:
    """Print a figure-shaped table and persist it under benchmarks/results."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    body = format_table(rows, columns)
    text = f"== {figure_id}: {title} ==\n{body}\n"
    if notes:
        text += f"note: {notes}\n"
    print("\n" + text)
    safe_name = figure_id.lower().replace(" ", "_").replace("/", "-")
    (RESULTS_DIR / f"{safe_name}.txt").write_text(text)


@pytest.fixture(scope="session")
def store_sales():
    return generate_store_sales(TPCDS_ROWS, seed=7)


@pytest.fixture(scope="session")
def store():
    return generate_store(57, seed=11)


@pytest.fixture(scope="session")
def ccpp():
    return generate_ccpp(CCPP_ROWS, seed=23)


@pytest.fixture(scope="session")
def beijing():
    return generate_beijing(BEIJING_ROWS, seed=31)


@pytest.fixture(scope="session")
def tpcds_truth(store_sales, store):
    engine = ExactEngine()
    engine.register_table(store_sales)
    engine.register_table(store)
    return engine


@pytest.fixture(scope="session")
def ccpp_truth(ccpp):
    engine = ExactEngine()
    engine.register_table(ccpp)
    return engine


@pytest.fixture(scope="session")
def beijing_truth(beijing):
    engine = ExactEngine()
    engine.register_table(beijing)
    return engine


def make_dbest(*tables, regressor: str = "ensemble", seed: int = 13, **kwargs) -> DBEst:
    """A DBEst engine with registered tables and a deterministic config."""
    config = DBEstConfig(regressor=regressor, random_seed=seed, **kwargs)
    engine = DBEst(config=config)
    for table in tables:
        engine.register_table(table)
    return engine
