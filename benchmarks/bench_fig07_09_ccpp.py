"""Figures 7, 8 & 9: the CCPP workload — DBEst vs VerdictDB vs BlinkDB.

Paper setup (§4.3): CCPP scaled to 2.6B rows (repo: 200k), 108 random
COUNT/SUM/AVG queries over the [T,EP], [AP,EP], [RH,EP] column pairs with
low-selectivity ranges; engines compared at 10k and 100k sample sizes
(repo: 2k / 10k).

Paper shape: at the small sample DBEst's overall error (3.5%) is ~3x
better than VerdictDB's (>10%), BlinkDB worse than VerdictDB; at the
large sample the gap narrows (1.9% vs 3.5%).  DBEst answers in
0.02–0.27s single-threaded vs VerdictDB's 0.6–0.9s on 12 cores.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    SAMPLE_10K,
    SAMPLE_100K,
    make_dbest,
    write_figure,
)
from repro import StratifiedAQPEngine, UniformAQPEngine
from repro.harness import compare_engines, summarize_by_aggregate
from repro.workloads import CCPP_COLUMN_PAIRS, generate_range_queries

AFS = ("COUNT", "SUM", "AVG")


def _build_engines(ccpp, size):
    dbest = make_dbest(ccpp, seed=13)
    for x, y in CCPP_COLUMN_PAIRS:
        dbest.build_model("ccpp", x=x, y=y, sample_size=size)

    verdict = UniformAQPEngine(sample_size=size, random_seed=13)
    verdict.register_table(ccpp)
    verdict.prepare_table("ccpp")

    blink = StratifiedAQPEngine(random_seed=13)
    # BlinkDB stratifies on the workload's predicate columns; whole-degree
    # temperature bins stand in for its column-set strata (stratifying on
    # the raw continuous column would keep one row per distinct value,
    # i.e. degenerate to the full table).
    binned = ccpp.with_column("T_bin", ccpp["T"].round())
    blink.register_table(binned)
    blink.prepare_table("ccpp", stratify_on="T_bin", sample_size=size)
    return {"DBEst": dbest, "VerdictDB": verdict, "BlinkDB": blink}


@pytest.fixture(scope="module", params=[("10k", SAMPLE_10K), ("100k", SAMPLE_100K)],
                ids=["10k", "100k"])
def comparison(request, ccpp, ccpp_truth):
    label, size = request.param
    engines = _build_engines(ccpp, size)
    workload = generate_range_queries(
        ccpp, CCPP_COLUMN_PAIRS, n_per_aggregate=6, aggregates=AFS,
        range_fraction=[0.001, 0.005, 0.01], seed=103, anchor="data",
    )
    runs = compare_engines(engines, workload, ccpp_truth)
    rows = summarize_by_aggregate(runs, aggregates=AFS)
    figure = "Fig 7" if label == "10k" else "Fig 8"
    write_figure(
        figure, f"CCPP relative error by engine ({label} samples)", rows,
        notes="paper: DBEst overall 3.5% (10k) / 1.9% (100k); "
        "VerdictDB >10% / 3.5%; BlinkDB worst",
    )
    time_rows = [
        {"engine": name, "mean_latency_s": run.mean_latency()}
        for name, run in runs.items()
        if name != "BlinkDB"
    ]
    write_figure(
        f"Fig 9 ({label})", f"CCPP response time ({label} samples)", time_rows,
        notes="paper: DBEst 0.02-0.27s single-thread, VerdictDB 0.6-0.9s on 12 cores",
    )
    return label, engines, runs


def test_ccpp_dbest_beats_verdict_at_small_samples(benchmark, comparison):
    label, engines, runs = comparison
    if label == "10k":
        assert (
            runs["DBEst"].mean_relative_error()
            <= runs["VerdictDB"].mean_relative_error() * 1.5
        )
    sql = "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 12;"
    result = benchmark(engines["DBEst"].execute, sql)
    assert result.source == "model"


def test_ccpp_verdict_latency(benchmark, comparison):
    _label, engines, _runs = comparison
    sql = "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 12;"
    benchmark(engines["VerdictDB"].execute, sql)
