"""Serving throughput: coalescing query server vs naive sequential execute.

Not a paper figure: this benchmarks the repo's own serving subsystem
(:mod:`repro.serve`) against the one-blocking-query-at-a-time
``DBEst.execute`` loop it layers over.  The workload models dashboard
traffic against a 200-group model set: 400 queries drawn from 16
templates mixing COUNT/SUM/AVG group-by aggregates and scalar AVG over
four bounds templates — many users asking near-identical questions.
The sequential baseline answers them one by one on a warm engine (so it
keeps the engine's own memoised pdf grids); the server additionally
parses each template once, coalesces queued lookalikes into shared
engine passes, and memoises per-aggregate answers.

Results are asserted (the server must clear ``SPEEDUP_FLOOR`` queries/s
over sequential with every answer within 1e-9 relative) and recorded to
``BENCH_serving.json`` at the repo root so the performance trajectory
is tracked across PRs.

Run directly (``python benchmarks/bench_serving.py``) or through pytest
(``pytest benchmarks/bench_serving.py``; marked slow).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cli import _serving_divergence, _serving_fixture
from repro.serve import QueryServer

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"

N_GROUPS = 200
ROWS_PER_GROUP = 40
N_QUERIES = 400
N_WORKERS = 4
SPEEDUP_FLOOR = 3.0
PARITY_BOUND = 1e-9
SEED = 7


def run_benchmark() -> dict:
    engine, distinct = _serving_fixture(N_GROUPS, ROWS_PER_GROUP, SEED)
    rng = np.random.default_rng(SEED)
    workload = [
        distinct[i] for i in rng.integers(0, len(distinct), N_QUERIES)
    ]
    engine.execute(workload[0])  # warm-up: evaluator stacking, imports

    start = time.perf_counter()
    sequential = [engine.execute(sql) for sql in workload]
    sequential_s = time.perf_counter() - start

    with QueryServer(engine, n_workers=N_WORKERS) as server:
        start = time.perf_counter()
        served = server.run(workload)
        served_s = time.perf_counter() - start
        stats = server.stats()

    record = {
        "bench": "serving",
        "n_groups": N_GROUPS,
        "rows_per_group": ROWS_PER_GROUP,
        "n_queries": N_QUERIES,
        "n_templates": len(distinct),
        "n_workers": N_WORKERS,
        "sequential_seconds": sequential_s,
        "served_seconds": served_s,
        "sequential_qps": N_QUERIES / sequential_s,
        "served_qps": N_QUERIES / served_s,
        "speedup": sequential_s / served_s,
        "max_divergence": _serving_divergence(sequential, served),
        "batches": stats["batches"],
        "coalesced": stats["coalesced"],
        "engine_calls": stats["engine_calls"],
        "answer_cache": stats["answer_cache"],
        "plan_cache": stats["plan_cache"],
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return record


@pytest.mark.slow
def test_serving_throughput_and_parity():
    record = run_benchmark()
    assert record["max_divergence"] <= PARITY_BOUND
    assert record["speedup"] >= SPEEDUP_FLOOR, (
        f"query server only {record['speedup']:.1f}x over sequential "
        f"execute; need >= {SPEEDUP_FLOOR}x "
        f"({record['sequential_qps']:.0f} -> {record['served_qps']:.0f} q/s, "
        f"{record['engine_calls']} engine calls for "
        f"{record['n_queries']} queries)"
    )


def main() -> int:
    record = run_benchmark()
    print(f"serving benchmark ({record['n_queries']} queries, "
          f"{record['n_templates']} templates, {record['n_groups']} groups, "
          f"{record['n_workers']} workers)")
    print(f"  sequential execute {record['sequential_seconds']:8.3f}s "
          f"({record['sequential_qps']:8.0f} q/s)")
    print(f"  query server       {record['served_seconds']:8.3f}s "
          f"({record['served_qps']:8.0f} q/s)   "
          f"{record['speedup']:.1f}x")
    print(f"  {record['batches']} batches, {record['coalesced']} coalesced, "
          f"{record['engine_calls']} engine calls, "
          f"max divergence {record['max_divergence']:.2e}")
    print(f"record written to {RESULT_PATH}")
    return 0 if (
        record["speedup"] >= SPEEDUP_FLOOR
        and record["max_divergence"] <= PARITY_BOUND
    ) else 1


if __name__ == "__main__":
    raise SystemExit(main())
