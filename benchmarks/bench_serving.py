"""Serving throughput: coalescing query server vs naive sequential execute.

Not a paper figure: this benchmarks the repo's own serving subsystem
(:mod:`repro.serve`) against the one-blocking-query-at-a-time
``DBEst.execute`` loop it layers over.  The workload models dashboard
traffic against a 200-group model set: 400 queries drawn from 16
templates mixing COUNT/SUM/AVG group-by aggregates and scalar AVG over
four bounds templates — many users asking near-identical questions.
The sequential baseline answers them one by one on a warm engine (so it
keeps the engine's own memoised pdf grids); the server additionally
parses each template once, coalesces queued lookalikes into shared
engine passes, and memoises per-aggregate answers.

Results are asserted (the server must clear ``SPEEDUP_FLOOR`` queries/s
over sequential with every answer within 1e-9 relative) and recorded to
``BENCH_serving.json`` at the repo root so the performance trajectory
is tracked across PRs.

A *cold-start* leg writes the same catalog to disk in both store
formats and measures store-open to first GROUP BY answer: the pickle
format unpickles and restacks every CSR array up front, the mmap format
maps the persisted arrays in place (``coldstart`` record; the mapped
path must clear ``COLDSTART_FLOOR`` with bit-identical answers and
pickle worker segments as path references, not arrays).

A second *chaos* leg re-serves a 500-query workload from an on-disk
model store under injected faults — 10% of record loads suffer a
latency spike, 1% return corrupted bytes, and one worker thread is
killed mid-run — with bounded admission (drop-oldest).  Every future
must resolve (answered, degraded, or shed — never hung), non-degraded
answers must match the fault-free oracle exactly, and degraded answers
must stay within a loose AQP tolerance of it; shed/degraded rates are
recorded alongside the throughput numbers.

Run directly (``python benchmarks/bench_serving.py``) or through pytest
(``pytest benchmarks/bench_serving.py``; marked slow).
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro import DBEst
from repro.cli import _serving_divergence, _serving_fixture
from repro.sql.ast import AggregateCall
from repro.errors import ServerOverloadedError
from repro.serve import (
    SERVER_WORKER,
    STORE_LOAD,
    FaultInjector,
    ModelStore,
    QueryServer,
)

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"

N_GROUPS = 200
ROWS_PER_GROUP = 40
N_QUERIES = 400
N_WORKERS = 4
SPEEDUP_FLOOR = 3.0
PARITY_BOUND = 1e-9
SEED = 7

N_COLDSTART_REPEATS = 5
COLDSTART_FLOOR = 3.0

N_CHAOS_QUERIES = 500
CHAOS_MAX_QUEUE = 256
#: Degraded answers are judged against exact ground truth (not the
#: model's estimate): an exact-scan route must match it, a sampling
#: route must land within the advisor's CLT-style bound.  Loose enough
#: to cover either route on this fixture.
DEGRADED_BOUND = 0.25
FUTURE_TIMEOUT_S = 60.0


def run_benchmark() -> dict:
    engine, distinct = _serving_fixture(N_GROUPS, ROWS_PER_GROUP, SEED)
    rng = np.random.default_rng(SEED)
    workload = [
        distinct[i] for i in rng.integers(0, len(distinct), N_QUERIES)
    ]
    engine.execute(workload[0])  # warm-up: evaluator stacking, imports

    start = time.perf_counter()
    sequential = [engine.execute(sql) for sql in workload]
    sequential_s = time.perf_counter() - start

    with QueryServer(engine, n_workers=N_WORKERS) as server:
        start = time.perf_counter()
        served = server.run(workload)
        served_s = time.perf_counter() - start
        stats = server.stats()

    record = {
        "bench": "serving",
        "n_groups": N_GROUPS,
        "rows_per_group": ROWS_PER_GROUP,
        "n_queries": N_QUERIES,
        "n_templates": len(distinct),
        "n_workers": N_WORKERS,
        "sequential_seconds": sequential_s,
        "served_seconds": served_s,
        "sequential_qps": N_QUERIES / sequential_s,
        "served_qps": N_QUERIES / served_s,
        "speedup": sequential_s / served_s,
        "max_divergence": _serving_divergence(sequential, served),
        "batches": stats["batches"],
        "coalesced": stats["coalesced"],
        "engine_calls": stats["engine_calls"],
        "answer_cache": stats["answer_cache"],
        "plan_cache": stats["plan_cache"],
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return record


def _pool_worker_rss_kb(workers: int) -> float | None:
    """Mean resident set size (kB) of the persistent process pool's
    workers, from /proc; None where unsupported.  Informational — the
    asserted no-copy signal is the pickled-segment payload size."""
    from repro.core.parallel import _POOLS

    pool = _POOLS.get(("process", workers))
    if pool is None:
        return None
    try:
        sizes = []
        for pid in list(getattr(pool, "_processes", {})):
            status = Path(f"/proc/{pid}/status").read_text()
            for line in status.splitlines():
                if line.startswith("VmRSS:"):
                    sizes.append(float(line.split()[1]))
                    break
        return float(np.mean(sizes)) if sizes else None
    except OSError:
        return None


def run_coldstart_benchmark() -> dict:
    """Cold start (store open -> first GROUP BY answer), pickle vs mmap.

    The pickle path unpickles the whole group-by set and restacks its
    CSR arrays; the mapped path is an mmap + header check with the
    derived arrays persisted.  Answers must be bit-identical.  Also
    records the pickled-payload size of one worker-pool segment under
    each format (mapped segments pickle as path references) and the
    pool workers' RSS after a fanned-out pass.  Merges a ``coldstart``
    record into BENCH_serving.json.
    """
    engine, distinct = _serving_fixture(N_GROUPS, ROWS_PER_GROUP, SEED)
    gb_queries = [sql for sql in distinct if "GROUP BY" in sql]
    group_key = next(k for k in engine.catalog.keys() if k.group_by)
    first_aggregate = AggregateCall("COUNT", "x")
    first_ranges = {"x": (20.0, 60.0)}
    serving_config = dataclasses.replace(engine.config, n_workers=N_WORKERS)

    legs: dict[str, dict] = {}
    answers: dict[str, list] = {}
    with tempfile.TemporaryDirectory() as tmp:
        paths = {
            fmt: Path(tmp) / f"{fmt}.store" for fmt in ("mmap", "pickle")
        }
        for fmt, store_path in paths.items():
            ModelStore.write(engine.catalog, store_path, store_format=fmt)
        # The mmap leg runs first so the persistent process pool's RSS
        # reading cannot be inflated by pickle-leg allocations.
        for fmt, store_path in paths.items():
            times = []
            # Timed region: store open -> group-by model load -> first
            # batched answer.  That is exactly what the record format
            # changes (unpickle + restack vs mmap + header check); the
            # SQL layer above it is format-independent and is parity-
            # checked separately below.  One warm-up repeat absorbs
            # first-touch costs shared by both legs (imports, page
            # cache for the record file); min over the rest is the
            # noise-robust cold-start statistic.
            for repeat in range(N_COLDSTART_REPEATS + 1):
                start = time.perf_counter()
                cold = ModelStore(store_path)
                cold.get(group_key).answer(first_aggregate, first_ranges)
                if repeat > 0:
                    times.append(time.perf_counter() - start)
            # Warm handle for parity answers + worker fan-out metrics.
            serving = DBEst(config=serving_config)
            serving.catalog = ModelStore(store_path)
            answers[fmt] = [serving.execute(sql) for sql in gb_queries]
            evaluator = serving.catalog.get(group_key).batched_evaluator()
            segment_bytes = max(
                len(pickle.dumps(segment))
                for segment in evaluator.split(N_WORKERS)
            )
            legs[fmt] = {
                "first_answer_seconds": float(np.min(times)),
                "segment_pickle_bytes": segment_bytes,
                "worker_rss_kb": _pool_worker_rss_kb(N_WORKERS),
            }

    coldstart = {
        "n_groups": N_GROUPS,
        "repeats": N_COLDSTART_REPEATS,
        "n_workers": N_WORKERS,
        "pickle": legs["pickle"],
        "mmap": legs["mmap"],
        "speedup": (
            legs["pickle"]["first_answer_seconds"]
            / legs["mmap"]["first_answer_seconds"]
        ),
        "divergence": _serving_divergence(answers["pickle"], answers["mmap"]),
    }
    try:
        record = json.loads(RESULT_PATH.read_text())
    except (OSError, ValueError):
        record = {"bench": "serving"}
    record["coldstart"] = coldstart
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return coldstart


OVERHEAD_BOUND = 0.05


def run_overhead_benchmark() -> dict:
    """Instrumentation overhead (metrics + tracing fully on) on the
    serving workload; merges an ``overhead`` record into
    BENCH_serving.json.  Must stay under ``OVERHEAD_BOUND``."""
    from repro.cli import measure_observability_overhead

    result = measure_observability_overhead(N_GROUPS, ROWS_PER_GROUP, SEED)
    overhead = {
        "baseline_s": result["off_s"],
        "instrumented_s": result["on_s"],
        "relative": result["overhead"],
        "bound": OVERHEAD_BOUND,
    }
    try:
        record = json.loads(RESULT_PATH.read_text())
    except (OSError, ValueError):
        record = {"bench": "serving"}
    record["overhead"] = overhead
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return overhead


def run_chaos_benchmark() -> dict:
    """The fault-injected leg; merges its record into BENCH_serving.json."""
    engine, distinct = _serving_fixture(N_GROUPS, ROWS_PER_GROUP, SEED)
    rng = np.random.default_rng(SEED + 1)
    workload = [
        distinct[i] for i in rng.integers(0, len(distinct), N_CHAOS_QUERIES)
    ]
    engine.execute(workload[0])  # warm-up
    oracle = [engine.execute(sql) for sql in workload]
    # Ground truth for judging degraded answers: the advisor's error
    # bound is relative to the true aggregate, not to the model's own
    # estimate (which carries its KDE/regression approximation error).
    from repro.engines import ExactEngine

    exact_engine = ExactEngine()
    exact_engine.register_table(engine.tables["served"])
    truth = [exact_engine.execute(sql) for sql in workload]

    faults = FaultInjector(seed=SEED)
    faults.inject(STORE_LOAD, probability=0.10, latency_s=0.002)
    faults.inject(STORE_LOAD, probability=0.01, corrupt=True)
    # One guaranteed corruption so the quarantine -> breaker -> degrade
    # chain is always exercised (the 1% draw alone may never fire).
    faults.inject(STORE_LOAD, corrupt=True, times=1)
    faults.inject(SERVER_WORKER, kill_worker=True, times=1)

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "models.store"
        ModelStore.write(engine.catalog, store_path)
        # cache_bytes=1 evicts each record after use, a 1-entry answer
        # cache keeps thrashing, and coalescing is off, so every query
        # re-crosses the faulty store.load seam instead of hiding
        # behind warm caches or batch-mates.
        engine.catalog = ModelStore(store_path, cache_bytes=1, faults=faults)
        start = time.perf_counter()
        with QueryServer(
            engine,
            n_workers=N_WORKERS,
            answer_cache_size=1,
            coalesce=False,
            max_queue=CHAOS_MAX_QUEUE,
            shed_policy="drop-oldest",
            degrade=True,
            faults=faults,
        ) as server:
            futures = []
            for sql in workload:
                try:
                    futures.append(server.submit(sql))
                except ServerOverloadedError:
                    futures.append(None)
            served = []
            shed = 0
            hung = 0
            for future in futures:
                if future is None:
                    shed += 1
                    served.append(None)
                    continue
                try:
                    served.append(future.result(timeout=FUTURE_TIMEOUT_S))
                except ServerOverloadedError:
                    shed += 1
                    served.append(None)
                except TimeoutError:
                    hung += 1
                    served.append(None)
            chaos_s = time.perf_counter() - start
            stats = server.stats()

    answered = [
        (want, true, got)
        for want, true, got in zip(oracle, truth, served)
        if got is not None
    ]
    exact = [(want, got) for want, _, got in answered if not got.degraded]
    degraded = [(true, got) for _, true, got in answered if got.degraded]
    chaos = {
        "n_queries": N_CHAOS_QUERIES,
        "n_workers": N_WORKERS,
        "max_queue": CHAOS_MAX_QUEUE,
        "seconds": chaos_s,
        "qps": N_CHAOS_QUERIES / chaos_s,
        "answered": len(answered),
        "hung": hung,
        "shed": shed,
        "shed_rate": shed / N_CHAOS_QUERIES,
        "degraded": len(degraded),
        "degraded_rate": len(degraded) / N_CHAOS_QUERIES,
        "exact_divergence": _serving_divergence(
            [want for want, _ in exact], [got for _, got in exact]
        ),
        "degraded_divergence": _serving_divergence(
            [want for want, _ in degraded], [got for _, got in degraded]
        ),
        "faults_fired": faults.stats()["fired"],
        "store_retries": stats.get("retried", 0),
        "breaker_opens": stats["breaker"]["opens"],
        "worker_deaths": stats["worker_deaths"],
    }
    try:
        record = json.loads(RESULT_PATH.read_text())
    except (OSError, ValueError):
        record = {"bench": "serving"}
    record["chaos"] = chaos
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return chaos


@pytest.mark.slow
def test_serving_throughput_and_parity():
    record = run_benchmark()
    assert record["max_divergence"] <= PARITY_BOUND
    assert record["speedup"] >= SPEEDUP_FLOOR, (
        f"query server only {record['speedup']:.1f}x over sequential "
        f"execute; need >= {SPEEDUP_FLOOR}x "
        f"({record['sequential_qps']:.0f} -> {record['served_qps']:.0f} q/s, "
        f"{record['engine_calls']} engine calls for "
        f"{record['n_queries']} queries)"
    )


@pytest.mark.slow
def test_serving_coldstart():
    coldstart = run_coldstart_benchmark()
    assert coldstart["divergence"] <= PARITY_BOUND, (
        "mmap answers diverged from the pickle oracle: "
        f"{coldstart['divergence']:.2e}"
    )
    assert coldstart["speedup"] >= COLDSTART_FLOOR, (
        f"mmap cold start only {coldstart['speedup']:.1f}x over pickle "
        f"({coldstart['pickle']['first_answer_seconds'] * 1e3:.1f}ms -> "
        f"{coldstart['mmap']['first_answer_seconds'] * 1e3:.1f}ms); "
        f"need >= {COLDSTART_FLOOR}x"
    )
    # Mapped worker segments must pickle as path references, never as
    # the stacked arrays themselves.
    assert coldstart["mmap"]["segment_pickle_bytes"] < 4096
    assert (
        coldstart["pickle"]["segment_pickle_bytes"]
        > 10 * coldstart["mmap"]["segment_pickle_bytes"]
    )


@pytest.mark.slow
def test_serving_observability_overhead():
    overhead = run_overhead_benchmark()
    assert overhead["relative"] < OVERHEAD_BOUND, (
        f"metrics + tracing cost {overhead['relative']:.1%} of serving "
        f"throughput; budget is {OVERHEAD_BOUND:.0%} "
        f"({overhead['baseline_s'] * 1e3:.1f}ms -> "
        f"{overhead['instrumented_s'] * 1e3:.1f}ms)"
    )


@pytest.mark.slow
def test_serving_chaos_availability():
    chaos = run_chaos_benchmark()
    assert chaos["hung"] == 0, f"{chaos['hung']} futures never resolved"
    assert chaos["answered"] + chaos["shed"] == chaos["n_queries"]
    assert chaos["exact_divergence"] <= PARITY_BOUND, (
        "non-degraded answers diverged from the fault-free oracle: "
        f"{chaos['exact_divergence']:.2e}"
    )
    assert chaos["degraded_divergence"] <= DEGRADED_BOUND, (
        "degraded answers strayed beyond the AQP tolerance: "
        f"{chaos['degraded_divergence']:.2e}"
    )
    assert chaos["worker_deaths"] == 1  # the injected kill was absorbed


def main() -> int:
    record = run_benchmark()
    print(f"serving benchmark ({record['n_queries']} queries, "
          f"{record['n_templates']} templates, {record['n_groups']} groups, "
          f"{record['n_workers']} workers)")
    print(f"  sequential execute {record['sequential_seconds']:8.3f}s "
          f"({record['sequential_qps']:8.0f} q/s)")
    print(f"  query server       {record['served_seconds']:8.3f}s "
          f"({record['served_qps']:8.0f} q/s)   "
          f"{record['speedup']:.1f}x")
    print(f"  {record['batches']} batches, {record['coalesced']} coalesced, "
          f"{record['engine_calls']} engine calls, "
          f"max divergence {record['max_divergence']:.2e}")
    coldstart = run_coldstart_benchmark()
    print(f"cold-start leg ({coldstart['n_groups']} groups, "
          f"best of {coldstart['repeats']})")
    for fmt in ("pickle", "mmap"):
        leg = coldstart[fmt]
        rss = (f"{leg['worker_rss_kb'] / 1024:7.1f} MB worker rss"
               if leg["worker_rss_kb"] else "worker rss n/a")
        print(f"  {fmt:6s} first answer {leg['first_answer_seconds'] * 1e3:8.1f}ms, "
              f"{leg['segment_pickle_bytes']:8d} B segment pickle, {rss}")
    print(f"  {coldstart['speedup']:.1f}x cold-start speedup, "
          f"divergence {coldstart['divergence']:.2e}")
    overhead = run_overhead_benchmark()
    print(f"observability leg (metrics + tracing fully enabled)")
    print(f"  {overhead['baseline_s'] * 1e3:8.1f}ms off -> "
          f"{overhead['instrumented_s'] * 1e3:8.1f}ms on "
          f"({overhead['relative']:.1%} overhead, "
          f"budget {overhead['bound']:.0%})")
    chaos = run_chaos_benchmark()
    print(f"chaos leg ({chaos['n_queries']} queries, faulty store, "
          f"one worker kill)")
    print(f"  {chaos['seconds']:8.3f}s ({chaos['qps']:8.0f} q/s), "
          f"{chaos['answered']} answered / {chaos['shed']} shed / "
          f"{chaos['hung']} hung")
    print(f"  {chaos['degraded']} degraded "
          f"(rate {chaos['degraded_rate']:.1%}), "
          f"exact divergence {chaos['exact_divergence']:.2e}, "
          f"degraded divergence {chaos['degraded_divergence']:.2e}")
    print(f"  faults fired {chaos['faults_fired']}, "
          f"{chaos['store_retries']} store retries, "
          f"{chaos['breaker_opens']} breaker opens, "
          f"{chaos['worker_deaths']} worker deaths")
    print(f"record written to {RESULT_PATH}")
    return 0 if (
        record["speedup"] >= SPEEDUP_FLOOR
        and record["max_divergence"] <= PARITY_BOUND
        and coldstart["speedup"] >= COLDSTART_FLOOR
        and coldstart["divergence"] <= PARITY_BOUND
        and overhead["relative"] < OVERHEAD_BOUND
        and chaos["hung"] == 0
        and chaos["exact_divergence"] <= PARITY_BOUND
        and chaos["degraded_divergence"] <= DEGRADED_BOUND
    ) else 1


if __name__ == "__main__":
    raise SystemExit(main())
