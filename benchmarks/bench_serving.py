"""Serving throughput: coalescing query server vs naive sequential execute.

Not a paper figure: this benchmarks the repo's own serving subsystem
(:mod:`repro.serve`) against the one-blocking-query-at-a-time
``DBEst.execute`` loop it layers over.  The workload models dashboard
traffic against a 200-group model set: 400 queries drawn from 16
templates mixing COUNT/SUM/AVG group-by aggregates and scalar AVG over
four bounds templates — many users asking near-identical questions.
The sequential baseline answers them one by one on a warm engine (so it
keeps the engine's own memoised pdf grids); the server additionally
parses each template once, coalesces queued lookalikes into shared
engine passes, and memoises per-aggregate answers.

Results are asserted (the server must clear ``SPEEDUP_FLOOR`` queries/s
over sequential with every answer within 1e-9 relative) and recorded to
``BENCH_serving.json`` at the repo root so the performance trajectory
is tracked across PRs.

A second *chaos* leg re-serves a 500-query workload from an on-disk
model store under injected faults — 10% of record loads suffer a
latency spike, 1% return corrupted bytes, and one worker thread is
killed mid-run — with bounded admission (drop-oldest).  Every future
must resolve (answered, degraded, or shed — never hung), non-degraded
answers must match the fault-free oracle exactly, and degraded answers
must stay within a loose AQP tolerance of it; shed/degraded rates are
recorded alongside the throughput numbers.

Run directly (``python benchmarks/bench_serving.py``) or through pytest
(``pytest benchmarks/bench_serving.py``; marked slow).
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cli import _serving_divergence, _serving_fixture
from repro.errors import ServerOverloadedError
from repro.serve import (
    SERVER_WORKER,
    STORE_LOAD,
    FaultInjector,
    ModelStore,
    QueryServer,
)

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"

N_GROUPS = 200
ROWS_PER_GROUP = 40
N_QUERIES = 400
N_WORKERS = 4
SPEEDUP_FLOOR = 3.0
PARITY_BOUND = 1e-9
SEED = 7

N_CHAOS_QUERIES = 500
CHAOS_MAX_QUEUE = 256
#: Degraded answers are judged against exact ground truth (not the
#: model's estimate): an exact-scan route must match it, a sampling
#: route must land within the advisor's CLT-style bound.  Loose enough
#: to cover either route on this fixture.
DEGRADED_BOUND = 0.25
FUTURE_TIMEOUT_S = 60.0


def run_benchmark() -> dict:
    engine, distinct = _serving_fixture(N_GROUPS, ROWS_PER_GROUP, SEED)
    rng = np.random.default_rng(SEED)
    workload = [
        distinct[i] for i in rng.integers(0, len(distinct), N_QUERIES)
    ]
    engine.execute(workload[0])  # warm-up: evaluator stacking, imports

    start = time.perf_counter()
    sequential = [engine.execute(sql) for sql in workload]
    sequential_s = time.perf_counter() - start

    with QueryServer(engine, n_workers=N_WORKERS) as server:
        start = time.perf_counter()
        served = server.run(workload)
        served_s = time.perf_counter() - start
        stats = server.stats()

    record = {
        "bench": "serving",
        "n_groups": N_GROUPS,
        "rows_per_group": ROWS_PER_GROUP,
        "n_queries": N_QUERIES,
        "n_templates": len(distinct),
        "n_workers": N_WORKERS,
        "sequential_seconds": sequential_s,
        "served_seconds": served_s,
        "sequential_qps": N_QUERIES / sequential_s,
        "served_qps": N_QUERIES / served_s,
        "speedup": sequential_s / served_s,
        "max_divergence": _serving_divergence(sequential, served),
        "batches": stats["batches"],
        "coalesced": stats["coalesced"],
        "engine_calls": stats["engine_calls"],
        "answer_cache": stats["answer_cache"],
        "plan_cache": stats["plan_cache"],
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return record


def run_chaos_benchmark() -> dict:
    """The fault-injected leg; merges its record into BENCH_serving.json."""
    engine, distinct = _serving_fixture(N_GROUPS, ROWS_PER_GROUP, SEED)
    rng = np.random.default_rng(SEED + 1)
    workload = [
        distinct[i] for i in rng.integers(0, len(distinct), N_CHAOS_QUERIES)
    ]
    engine.execute(workload[0])  # warm-up
    oracle = [engine.execute(sql) for sql in workload]
    # Ground truth for judging degraded answers: the advisor's error
    # bound is relative to the true aggregate, not to the model's own
    # estimate (which carries its KDE/regression approximation error).
    from repro.engines import ExactEngine

    exact_engine = ExactEngine()
    exact_engine.register_table(engine.tables["served"])
    truth = [exact_engine.execute(sql) for sql in workload]

    faults = FaultInjector(seed=SEED)
    faults.inject(STORE_LOAD, probability=0.10, latency_s=0.002)
    faults.inject(STORE_LOAD, probability=0.01, corrupt=True)
    # One guaranteed corruption so the quarantine -> breaker -> degrade
    # chain is always exercised (the 1% draw alone may never fire).
    faults.inject(STORE_LOAD, corrupt=True, times=1)
    faults.inject(SERVER_WORKER, kill_worker=True, times=1)

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "models.store"
        ModelStore.write(engine.catalog, store_path)
        # cache_bytes=1 evicts each record after use, a 1-entry answer
        # cache keeps thrashing, and coalescing is off, so every query
        # re-crosses the faulty store.load seam instead of hiding
        # behind warm caches or batch-mates.
        engine.catalog = ModelStore(store_path, cache_bytes=1, faults=faults)
        start = time.perf_counter()
        with QueryServer(
            engine,
            n_workers=N_WORKERS,
            answer_cache_size=1,
            coalesce=False,
            max_queue=CHAOS_MAX_QUEUE,
            shed_policy="drop-oldest",
            degrade=True,
            faults=faults,
        ) as server:
            futures = []
            for sql in workload:
                try:
                    futures.append(server.submit(sql))
                except ServerOverloadedError:
                    futures.append(None)
            served = []
            shed = 0
            hung = 0
            for future in futures:
                if future is None:
                    shed += 1
                    served.append(None)
                    continue
                try:
                    served.append(future.result(timeout=FUTURE_TIMEOUT_S))
                except ServerOverloadedError:
                    shed += 1
                    served.append(None)
                except TimeoutError:
                    hung += 1
                    served.append(None)
            chaos_s = time.perf_counter() - start
            stats = server.stats()

    answered = [
        (want, true, got)
        for want, true, got in zip(oracle, truth, served)
        if got is not None
    ]
    exact = [(want, got) for want, _, got in answered if not got.degraded]
    degraded = [(true, got) for _, true, got in answered if got.degraded]
    chaos = {
        "n_queries": N_CHAOS_QUERIES,
        "n_workers": N_WORKERS,
        "max_queue": CHAOS_MAX_QUEUE,
        "seconds": chaos_s,
        "qps": N_CHAOS_QUERIES / chaos_s,
        "answered": len(answered),
        "hung": hung,
        "shed": shed,
        "shed_rate": shed / N_CHAOS_QUERIES,
        "degraded": len(degraded),
        "degraded_rate": len(degraded) / N_CHAOS_QUERIES,
        "exact_divergence": _serving_divergence(
            [want for want, _ in exact], [got for _, got in exact]
        ),
        "degraded_divergence": _serving_divergence(
            [want for want, _ in degraded], [got for _, got in degraded]
        ),
        "faults_fired": faults.stats()["fired"],
        "store_retries": stats.get("retried", 0),
        "breaker_opens": stats["breaker"]["opens"],
        "worker_deaths": stats["worker_deaths"],
    }
    try:
        record = json.loads(RESULT_PATH.read_text())
    except (OSError, ValueError):
        record = {"bench": "serving"}
    record["chaos"] = chaos
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return chaos


@pytest.mark.slow
def test_serving_throughput_and_parity():
    record = run_benchmark()
    assert record["max_divergence"] <= PARITY_BOUND
    assert record["speedup"] >= SPEEDUP_FLOOR, (
        f"query server only {record['speedup']:.1f}x over sequential "
        f"execute; need >= {SPEEDUP_FLOOR}x "
        f"({record['sequential_qps']:.0f} -> {record['served_qps']:.0f} q/s, "
        f"{record['engine_calls']} engine calls for "
        f"{record['n_queries']} queries)"
    )


@pytest.mark.slow
def test_serving_chaos_availability():
    chaos = run_chaos_benchmark()
    assert chaos["hung"] == 0, f"{chaos['hung']} futures never resolved"
    assert chaos["answered"] + chaos["shed"] == chaos["n_queries"]
    assert chaos["exact_divergence"] <= PARITY_BOUND, (
        "non-degraded answers diverged from the fault-free oracle: "
        f"{chaos['exact_divergence']:.2e}"
    )
    assert chaos["degraded_divergence"] <= DEGRADED_BOUND, (
        "degraded answers strayed beyond the AQP tolerance: "
        f"{chaos['degraded_divergence']:.2e}"
    )
    assert chaos["worker_deaths"] == 1  # the injected kill was absorbed


def main() -> int:
    record = run_benchmark()
    print(f"serving benchmark ({record['n_queries']} queries, "
          f"{record['n_templates']} templates, {record['n_groups']} groups, "
          f"{record['n_workers']} workers)")
    print(f"  sequential execute {record['sequential_seconds']:8.3f}s "
          f"({record['sequential_qps']:8.0f} q/s)")
    print(f"  query server       {record['served_seconds']:8.3f}s "
          f"({record['served_qps']:8.0f} q/s)   "
          f"{record['speedup']:.1f}x")
    print(f"  {record['batches']} batches, {record['coalesced']} coalesced, "
          f"{record['engine_calls']} engine calls, "
          f"max divergence {record['max_divergence']:.2e}")
    chaos = run_chaos_benchmark()
    print(f"chaos leg ({chaos['n_queries']} queries, faulty store, "
          f"one worker kill)")
    print(f"  {chaos['seconds']:8.3f}s ({chaos['qps']:8.0f} q/s), "
          f"{chaos['answered']} answered / {chaos['shed']} shed / "
          f"{chaos['hung']} hung")
    print(f"  {chaos['degraded']} degraded "
          f"(rate {chaos['degraded_rate']:.1%}), "
          f"exact divergence {chaos['exact_divergence']:.2e}, "
          f"degraded divergence {chaos['degraded_divergence']:.2e}")
    print(f"  faults fired {chaos['faults_fired']}, "
          f"{chaos['store_retries']} store retries, "
          f"{chaos['breaker_opens']} breaker opens, "
          f"{chaos['worker_deaths']} worker deaths")
    print(f"record written to {RESULT_PATH}")
    return 0 if (
        record["speedup"] >= SPEEDUP_FLOOR
        and record["max_divergence"] <= PARITY_BOUND
        and chaos["hung"] == 0
        and chaos["exact_divergence"] <= PARITY_BOUND
        and chaos["degraded_divergence"] <= DEGRADED_BOUND
    ) else 1


if __name__ == "__main__":
    raise SystemExit(main())
