"""Ablation: binned KDE fast path vs exact KDE.

DESIGN.md design decision: above a size threshold the KDE compresses the
training sample into a weighted histogram.  This bench measures what the
compression costs in accuracy (COUNT error vs the exact estimator) and
what it buys in evaluation speed.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_figure
from repro.ml import KernelDensityEstimator


@pytest.fixture(scope="module")
def fitted(store_sales):
    x = store_sales["ss_list_price"][:30_000].astype(float)
    binned = KernelDensityEstimator(binned=True, bin_threshold=1000).fit(x)
    exact = KernelDensityEstimator(binned=False).fit(x)
    return x, binned, exact


@pytest.fixture(scope="module")
def ablation_rows(fitted):
    x, binned, exact = fitted
    rng = np.random.default_rng(5)
    lo, hi = float(x.min()), float(x.max())
    deltas = []
    for _ in range(50):
        a, b = np.sort(rng.uniform(lo, hi, size=2))
        deltas.append(abs(binned.integrate(a, b) - exact.integrate(a, b)))
    grid = np.linspace(lo, hi, 257)

    import time

    start = time.perf_counter()
    for _ in range(20):
        binned.pdf(grid)
    binned_time = (time.perf_counter() - start) / 20

    start = time.perf_counter()
    for _ in range(20):
        exact.pdf(grid)
    exact_time = (time.perf_counter() - start) / 20

    rows = [
        {
            "variant": "binned (2048 bins)",
            "max_integral_delta": float(np.max(deltas)),
            "pdf_eval_s": binned_time,
            "centres": int(binned._centres.shape[0]),
        },
        {
            "variant": "exact",
            "max_integral_delta": 0.0,
            "pdf_eval_s": exact_time,
            "centres": int(exact._centres.shape[0]),
        },
    ]
    write_figure(
        "Ablation KDE", "binned vs exact KDE (30k training points)", rows,
        notes="binning should cost <1e-3 integral error and win on pdf time",
    )
    return rows


def test_binned_kde_accuracy(benchmark, ablation_rows, fitted):
    assert ablation_rows[0]["max_integral_delta"] < 5e-3
    _x, binned, _exact = fitted
    grid = np.linspace(*binned.support, 257)
    benchmark(binned.pdf, grid)


def test_exact_kde_latency(benchmark, ablation_rows, fitted):
    _x, _binned, exact = fitted
    grid = np.linspace(*exact.support, 257)
    benchmark(exact.pdf, grid)
    # The binned path must not be slower than the exact path.
    assert ablation_rows[0]["pdf_eval_s"] <= ablation_rows[1]["pdf_eval_s"] * 1.2
