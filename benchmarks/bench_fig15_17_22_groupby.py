"""Figures 15, 17 & 22: the TPC-DS GROUP BY workload (57 groups).

Paper setup (§4.6): 90 queries (30 per AF of COUNT/SUM/AVG) over
[ss_sold_date_sk -> ss_sales_price] grouped by ss_store_sk (57 distinct
values); sample sized for ~10k rows per group.  Fig. 15 reports mean
per-group error and latency, Figs. 17/22 the per-group error histograms
for SUM/COUNT/AVG.

Paper shape: DBEst beats VerdictDB clearly for COUNT and SUM (5.34% and
5.84% vs ~16%), slightly for AVG; DBEst's per-group error variance is
small where VerdictDB's is large; VerdictDB is somewhat faster per
GROUP BY query since DBEst evaluates 57 models sequentially.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_dbest, write_figure
from repro import UniformAQPEngine
from repro.harness import compare_engines, summarize_by_aggregate
from repro.harness.report import histogram_rows
from repro.harness.runner import per_group_errors
from repro.workloads import generate_range_queries

AFS = ("COUNT", "SUM", "AVG")
X, Y, GROUP = "ss_sold_date_sk", "ss_sales_price", "ss_store_sk"
# The paper's asymmetry (§3, §4.6): DBEst's training sample is *discarded*
# after model building, so it is "chosen so that on average there will be
# 10k rows for each GROUP BY value"; the sample-based engine must *keep*
# its sample in memory as query-time state.  We therefore compare at
# comparable state size: DBEst trains on 40k rows (~700/group, then
# discarded, leaving ~0.2MB of models) while VerdictDB keeps a 5k-row
# sample (~0.36MB) it scans per query.
DBEST_TRAINING_SAMPLE = 40_000
VERDICT_KEPT_SAMPLE = 5_000


@pytest.fixture(scope="module")
def engines(store_sales):
    dbest = make_dbest(
        store_sales, regressor="plr", seed=13, min_group_rows=50
    )
    dbest.build_model(
        "store_sales", x=X, y=Y, sample_size=DBEST_TRAINING_SAMPLE,
        group_by=GROUP,
    )
    verdict = UniformAQPEngine(sample_size=VERDICT_KEPT_SAMPLE, random_seed=13)
    verdict.register_table(store_sales)
    verdict.prepare_table("store_sales")
    return {"DBEst": dbest, "VerdictDB": verdict}


@pytest.fixture(scope="module")
def figure15(engines, store_sales, tpcds_truth):
    workload = generate_range_queries(
        store_sales, [(X, Y)], n_per_aggregate=5, aggregates=AFS,
        range_fraction=[0.1, 0.25], group_by=GROUP, seed=111, anchor="data",
    )
    runs = compare_engines(engines, workload, tpcds_truth)
    rows = summarize_by_aggregate(runs, aggregates=AFS)
    dbest_state = engines["DBEst"].state_size_bytes() / 1e6
    verdict_state = engines["VerdictDB"].state_size_bytes() / 1e6
    write_figure(
        "Fig 15a", "GROUP BY relative error (57 groups, comparable state)",
        rows,
        notes=f"paper: DBEst ~5% COUNT/SUM vs VerdictDB ~16%; AVG similar. "
        f"State: DBEst {dbest_state:.2f}MB models vs VerdictDB "
        f"{verdict_state:.2f}MB in-memory sample",
    )
    time_rows = [
        {"engine": name, "mean_latency_s": run.mean_latency()}
        for name, run in runs.items()
    ]
    write_figure(
        "Fig 15b", "GROUP BY response time", time_rows,
        notes="paper: VerdictDB slightly faster (12 cores vs 1 thread)",
    )
    return runs


@pytest.fixture(scope="module")
def figure17_22(engines, store_sales, tpcds_truth):
    lo, hi = store_sales.column_range(X)
    width = 0.25 * (hi - lo)
    histograms = {}
    for af in AFS:
        sql = (
            f"SELECT {GROUP}, {af}({Y}) FROM store_sales "
            f"WHERE {X} BETWEEN {lo + width!r} AND {lo + 2 * width!r} "
            f"GROUP BY {GROUP};"
        )
        errors = per_group_errors(engines["DBEst"], sql, tpcds_truth)
        histograms[af] = errors
        figure = "Fig 17" if af == "SUM" else f"Fig 22 ({af})"
        write_figure(
            figure,
            f"per-group error histogram for {af} (57 groups)",
            histogram_rows(errors, n_bins=8),
            notes="paper: DBEst errors concentrate at low values with small "
            "variance across groups",
        )
    return histograms


def test_fig15_groupby_accuracy(benchmark, engines, figure15):
    dbest_run = figure15["DBEst"]
    verdict_run = figure15["VerdictDB"]
    assert dbest_run.mean_relative_error("AVG") < 0.15
    # The paper's Fig. 15 shape: DBEst beats the sample-based engine on
    # COUNT/SUM at equal sample sizes.
    assert dbest_run.mean_relative_error("COUNT") < (
        verdict_run.mean_relative_error("COUNT") * 1.2
    )
    sql = (
        "SELECT ss_store_sk, AVG(ss_sales_price) FROM store_sales "
        "WHERE ss_sold_date_sk BETWEEN 2451000 AND 2451900 "
        "GROUP BY ss_store_sk;"
    )
    result = benchmark(engines["DBEst"].execute, sql)
    assert len(result.groups()) == 57


def test_fig17_per_group_variance_small(benchmark, engines, figure17_22):
    import numpy as np

    sum_errors = np.asarray(list(figure17_22["SUM"].values()))
    # Most groups land under a modest error bound (paper: >80% below 7%).
    assert np.median(sum_errors) < 0.25
    sql = (
        "SELECT ss_store_sk, SUM(ss_sales_price) FROM store_sales "
        "WHERE ss_sold_date_sk BETWEEN 2451000 AND 2451900 "
        "GROUP BY ss_store_sk;"
    )
    benchmark(engines["VerdictDB"].execute, sql)
