"""Batched vs per-group-loop *multivariate* GROUP BY on 200 groups.

Not a paper figure: this benchmarks the repo's own multivariate batching
(product-kernel KDEs through :mod:`repro.core.batched_train` and
:mod:`repro.core.batched`) against the per-group scalar loop it replaced
as the default for multi-column predicates.  The workload mirrors
``bench_training.py`` — one model set over [(a, b) -> y] with 200 groups
— and times both sides of the engine: model-set *training* (per-dimension
bandwidth reductions, the vectorised d-dimensional binning pass, stacked
OLS solves) and *query answering* (stacked box integrals for COUNT, the
shared tensor-Simpson pdf pass for SUM/AVG/VARIANCE).

Results are asserted (batched must be >= 3x faster overall with every
model parameter within 1e-12 of the loop-trained oracle and every answer
within 1e-9 of the scalar loop) and recorded to
``BENCH_multivariate.json`` at the repo root so the performance
trajectory is tracked across PRs.

Run directly (``python benchmarks/bench_multivariate.py``) or through
pytest (``pytest benchmarks/bench_multivariate.py``; marked slow).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import DBEstConfig
from repro.core.groupby import GroupByModelSet
from repro.sql.ast import AggregateCall

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_multivariate.json"

N_GROUPS = 200
ROWS_PER_GROUP = 40
SPEEDUP_FLOOR = 3.0
PARAM_PARITY_BOUND = 1e-12
ANSWER_PARITY_BOUND = 1e-9
REPEATS = 3

RANGES = {"a": (20.0, 60.0), "b": (-3.0, 3.0)}
AGGREGATES = (
    AggregateCall("COUNT", None),
    AggregateCall("SUM", "y"),
    AggregateCall("AVG", "y"),
    AggregateCall("VARIANCE", "y"),
)


def _make_workload(seed: int = 7):
    rng = np.random.default_rng(seed)
    n = N_GROUPS * ROWS_PER_GROUP
    groups = np.repeat(np.arange(N_GROUPS), ROWS_PER_GROUP)
    x = np.column_stack([
        rng.uniform(0.0, 100.0, size=n),
        rng.uniform(-5.0, 5.0, size=n),
    ])
    y = (1.0 + groups * 0.05) * x[:, 0] + 2.0 * x[:, 1] \
        + rng.normal(0.0, 1.0, size=n)
    return x, y, groups


def _train(batched: bool, seed: int = 7) -> GroupByModelSet:
    x, y, groups = _make_workload(seed)
    # "linear" joins the stacked normal-equation solve; piecewise-linear
    # splines are 1-D only and tree ensembles fit per group identically
    # on either path, so linear isolates the batching gain.
    config = DBEstConfig(
        regressor="linear", min_group_rows=30,
        integration_points=65, random_seed=seed,
    )
    return GroupByModelSet.train(
        sample_x=x, sample_y=y, sample_groups=groups,
        full_groups=groups, full_x=x, full_y=y,
        table_name="bench", x_columns=("a", "b"), y_column="y",
        group_column="g", config=config, batched=batched,
    )


def _time_training(batched: bool) -> float:
    """Best-of-REPEATS wall seconds for one full model-set build."""
    _train(batched)  # warm-up (imports, allocator, BLAS)
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        _train(batched)
        best = min(best, time.perf_counter() - start)
    return best


def _time_answers(model_set: GroupByModelSet, batched: bool) -> float:
    """Best-of-REPEATS wall seconds for all benchmark aggregates."""
    for aggregate in AGGREGATES:  # warm-up (also primes the grid cache
        model_set.answer(aggregate, RANGES, batched=batched)
    best = float("inf")
    for _ in range(REPEATS):
        if batched:
            # Time cold evaluations: drop the memoised pdf grids so the
            # batched side re-does its real work each repeat.
            model_set.batched_evaluator()._grid_cache.clear()
        start = time.perf_counter()
        for aggregate in AGGREGATES:
            model_set.answer(aggregate, RANGES, batched=batched)
        best = min(best, time.perf_counter() - start)
    return best


def _divergence(got, expected) -> float:
    got = np.asarray(got, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if got.shape != expected.shape:
        return float("inf")
    scale = np.maximum(1.0, np.abs(expected))
    return float(np.max(np.abs(got - expected) / scale, initial=0.0))


def max_param_divergence(
    batched: GroupByModelSet, scalar: GroupByModelSet
) -> float:
    if set(batched.models) != set(scalar.models):
        return float("inf")
    worst = 0.0
    for value, expected in scalar.models.items():
        got = batched.models[value]
        for got_arr, expected_arr in (
            (got.density._centres, expected.density._centres),
            (got.density._weights, expected.density._weights),
            (got.density._h, expected.density._h),
            (np.asarray(got.density._norm), np.asarray(expected.density._norm)),
            (got.regressor._coef, expected.regressor._coef),
        ):
            worst = max(worst, _divergence(got_arr, expected_arr))
    return worst


def max_answer_divergence(model_set: GroupByModelSet) -> float:
    worst = 0.0
    for aggregate in AGGREGATES:
        got = model_set.answer(aggregate, RANGES, batched=True)
        expected = model_set.answer(aggregate, RANGES, batched=False)
        if set(got) != set(expected):
            return float("inf")
        for value, answer in expected.items():
            if np.isnan(answer) or np.isnan(got[value]):
                if np.isnan(answer) != np.isnan(got[value]):
                    return float("inf")
                continue
            worst = max(worst, _divergence(got[value], answer))
    return worst


def run_benchmark() -> dict:
    loop_train = _time_training(batched=False)
    batched_train = _time_training(batched=True)
    model_set = _train(batched=True)
    loop_query = _time_answers(model_set, batched=False)
    batched_query = _time_answers(model_set, batched=True)
    param_divergence = max_param_divergence(
        _train(batched=True), _train(batched=False)
    )
    answer_divergence = max_answer_divergence(model_set)
    loop_total = loop_train + loop_query
    batched_total = batched_train + batched_query
    record = {
        "bench": "batched_multivariate",
        "n_groups": N_GROUPS,
        "rows_per_group": ROWS_PER_GROUP,
        "n_dims": 2,
        "repeats": REPEATS,
        "train": {
            "loop_seconds": loop_train,
            "batched_seconds": batched_train,
            "speedup": loop_train / batched_train,
        },
        "query": {
            "loop_seconds": loop_query,
            "batched_seconds": batched_query,
            "speedup": loop_query / batched_query,
        },
        "loop_seconds": loop_total,
        "batched_seconds": batched_total,
        "overall_speedup": loop_total / batched_total,
        "max_param_divergence": param_divergence,
        "max_answer_divergence": answer_divergence,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return record


@pytest.mark.slow
def test_batched_multivariate_speedup_and_parity():
    record = run_benchmark()
    assert record["max_param_divergence"] <= PARAM_PARITY_BOUND
    assert record["max_answer_divergence"] <= ANSWER_PARITY_BOUND
    assert record["overall_speedup"] >= SPEEDUP_FLOOR, (
        f"batched multivariate only {record['overall_speedup']:.1f}x faster; "
        f"need >= {SPEEDUP_FLOOR}x (train "
        f"{record['train']['speedup']:.1f}x, query "
        f"{record['query']['speedup']:.1f}x)"
    )


def main() -> int:
    record = run_benchmark()
    print(f"batched multivariate benchmark ({N_GROUPS} groups, "
          f"{ROWS_PER_GROUP} rows/group, 2 dims, best of {REPEATS})")
    for leg in ("train", "query"):
        row = record[leg]
        print(
            f"  {leg:<6} loop {row['loop_seconds'] * 1e3:8.2f} ms   "
            f"batched {row['batched_seconds'] * 1e3:7.2f} ms   "
            f"{row['speedup']:5.1f}x"
        )
    print(f"overall speedup: {record['overall_speedup']:.1f}x "
          f"(floor {SPEEDUP_FLOOR}x); param/answer divergence "
          f"{record['max_param_divergence']:.1e}/"
          f"{record['max_answer_divergence']:.1e}; "
          f"record written to {RESULT_PATH}")
    return 0 if record["overall_speedup"] >= SPEEDUP_FLOOR else 1


if __name__ == "__main__":
    raise SystemExit(main())
