"""Batched vs per-group-loop GROUP BY *training* on a 200-group workload.

Not a paper figure: this benchmarks the repo's own batched trainer
(:mod:`repro.core.batched_train`) against the per-group training loop it
replaced as the default in ``GroupByModelSet.train``.  The workload is
the same shape as ``bench_batched_groupby.py`` — one model set over
[x -> y] with 200 groups — but here the timed region is model
*construction* (partition, KDE fits, regressor solves, residual state),
the side that dominates end-to-end latency when models are rebuilt on
every sample refresh.

Results are asserted (batched must be >= 5x faster with every model
parameter — KDE centres/weights/bandwidth/support, regressor
coefficients and knots — within 1e-12 of the loop-trained oracle, and
the derived residual-variance bins within 1e-9: they square residuals,
which amplifies coefficient rounding by the data's magnitude) and
recorded to ``BENCH_training.json`` at the repo root so the performance
trajectory is tracked across PRs.

The nonlinear legs (tree / gboost / xgboost) time the level-synchronous
forest kernel (:mod:`repro.core.batched_forest`) against the chunked
``map_parallel`` per-group fits it replaced: each must be >= 3x faster
with **bit-identical** node arrays (feature / threshold / left / right /
value across every boosting round — exact equality, not a tolerance).

Run directly (``python benchmarks/bench_training.py``) or through pytest
(``pytest benchmarks/bench_training.py``; marked slow).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import DBEstConfig
from repro.core.groupby import GroupByModelSet

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_training.json"

N_GROUPS = 200
ROWS_PER_GROUP = 40
SPEEDUP_FLOOR = 5.0
FOREST_SPEEDUP_FLOOR = 3.0
PARITY_BOUND = 1e-12
RESIDUAL_PARITY_BOUND = 1e-9
REPEATS = 3
FOREST_REPEATS = 1  # loop-path booster fits run seconds per build

# plr exercises the full stacked pipeline (segmented quantile knots,
# bucketed normal-equation solves, batched residual state); linear is the
# minimal stacked design.
REGRESSORS = ("plr", "linear")
# Nonlinear legs time the level-synchronous forest kernel against the
# chunked per-group fits; their node arrays must match exactly.
FOREST_REGRESSORS = ("tree", "gboost", "xgboost")


def _make_workload(seed: int = 7):
    rng = np.random.default_rng(seed)
    n = N_GROUPS * ROWS_PER_GROUP
    groups = np.repeat(np.arange(N_GROUPS), ROWS_PER_GROUP)
    x = rng.uniform(0.0, 100.0, size=n)
    y = (1.0 + groups * 0.05) * x + rng.normal(0.0, 1.0, size=n)
    return x, y, groups


def _train(regressor: str, batched: bool, seed: int = 7) -> GroupByModelSet:
    x, y, groups = _make_workload(seed)
    config = DBEstConfig(
        regressor=regressor, min_group_rows=30,
        integration_points=65, random_seed=seed,
    )
    return GroupByModelSet.train(
        sample_x=x, sample_y=y, sample_groups=groups,
        full_groups=groups, full_x=x, full_y=y,
        table_name="bench", x_columns=("x",), y_column="y", group_column="g",
        config=config, batched=batched,
    )


def _time_training(regressor: str, batched: bool, repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` wall seconds for one full model-set build."""
    _train(regressor, batched)  # warm-up (imports, allocator, BLAS)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _train(regressor, batched)
        best = min(best, time.perf_counter() - start)
    return best


def _divergence(got, expected) -> float:
    got = np.asarray(got, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if got.shape != expected.shape:
        return float("inf")
    scale = np.maximum(1.0, np.abs(expected))
    return float(np.max(np.abs(got - expected) / scale, initial=0.0))


def max_divergences(
    batched: GroupByModelSet, scalar: GroupByModelSet
) -> tuple[float, float]:
    """Worst relative divergence over (primary params, residual state).

    Primary parameters (density mixture state, regressor coefficients
    and knots) must match to 1e-12.  The residual-variance bins are mean
    *squared* residuals, so a 1e-13 coefficient difference scaled by
    x-values in the hundreds lands them near 1e-12–1e-11; they are
    tracked separately against the 1e-9 answer-oracle bound.
    """
    if set(batched.models) != set(scalar.models):
        return float("inf"), float("inf")
    worst = residual_worst = 0.0
    for value, expected in scalar.models.items():
        got = batched.models[value]
        pairs = [
            (got.density._centres, expected.density._centres),
            (got.density._weights, expected.density._weights),
            (got.density._h, expected.density._h),
            (got.density._support, expected.density._support),
        ]
        for attr in ("_coef", "_knots"):
            if getattr(expected.regressor, attr, None) is not None:
                pairs.append(
                    (getattr(got.regressor, attr),
                     getattr(expected.regressor, attr))
                )
        for got_arr, expected_arr in pairs:
            worst = max(worst, _divergence(got_arr, expected_arr))
        residual_pairs = [
            (got._residual_var_global, expected._residual_var_global),
        ]
        if expected._residual_edges is not None:
            residual_pairs.append(
                (got._residual_edges, expected._residual_edges)
            )
            residual_pairs.append((got._residual_var, expected._residual_var))
        for got_arr, expected_arr in residual_pairs:
            residual_worst = max(
                residual_worst, _divergence(got_arr, expected_arr)
            )
    return worst, residual_worst


def _node_arrays(regressor):
    """Every fitted node array of a tree/booster, in a fixed order."""
    if hasattr(regressor, "_nodes"):  # DecisionTreeRegressor
        return [regressor._nodes[key]
                for key in ("feature", "threshold", "left", "right", "value")]
    arrays = [np.asarray([regressor._base])]
    for tree in regressor._trees:
        if hasattr(tree, "_nodes"):  # gboost stages
            arrays.extend(tree._nodes[key]
                          for key in ("feature", "threshold", "left",
                                      "right", "value"))
        else:  # xgboost rounds
            arrays.extend(getattr(tree, attr)
                          for attr in ("_feature_arr", "_threshold_arr",
                                       "_left_arr", "_right_arr",
                                       "_value_arr"))
    return arrays


def forest_nodes_identical(
    batched: GroupByModelSet, scalar: GroupByModelSet
) -> bool:
    """Exact (bitwise) equality of every group's fitted node arrays."""
    if set(batched.models) != set(scalar.models):
        return False
    for value, expected in scalar.models.items():
        got_arrays = _node_arrays(batched.models[value].regressor)
        exp_arrays = _node_arrays(expected.regressor)
        if len(got_arrays) != len(exp_arrays):
            return False
        for got_arr, exp_arr in zip(got_arrays, exp_arrays):
            if got_arr.dtype != exp_arr.dtype or not np.array_equal(
                got_arr, exp_arr
            ):
                return False
    return True


def run_benchmark() -> dict:
    per_regressor = {}
    loop_total = batched_total = 0.0
    max_divergence = max_residual = 0.0
    for regressor in REGRESSORS:
        loop_s = _time_training(regressor, batched=False)
        batched_s = _time_training(regressor, batched=True)
        divergence, residual_divergence = max_divergences(
            _train(regressor, batched=True), _train(regressor, batched=False)
        )
        loop_total += loop_s
        batched_total += batched_s
        max_divergence = max(max_divergence, divergence)
        max_residual = max(max_residual, residual_divergence)
        per_regressor[regressor] = {
            "loop_seconds": loop_s,
            "batched_seconds": batched_s,
            "speedup": loop_s / batched_s,
            "max_param_divergence": divergence,
            "max_residual_divergence": residual_divergence,
        }
    for regressor in FOREST_REGRESSORS:
        loop_s = _time_training(regressor, batched=False,
                                repeats=FOREST_REPEATS)
        batched_s = _time_training(regressor, batched=True,
                                   repeats=FOREST_REPEATS)
        batched_set = _train(regressor, batched=True)
        scalar_set = _train(regressor, batched=False)
        divergence, residual_divergence = max_divergences(
            batched_set, scalar_set
        )
        max_divergence = max(max_divergence, divergence)
        max_residual = max(max_residual, residual_divergence)
        per_regressor[regressor] = {
            "loop_seconds": loop_s,
            "batched_seconds": batched_s,
            "speedup": loop_s / batched_s,
            "nodes_identical": forest_nodes_identical(
                batched_set, scalar_set
            ),
            "max_param_divergence": divergence,
            "max_residual_divergence": residual_divergence,
        }
    record = {
        "bench": "batched_training",
        "n_groups": N_GROUPS,
        "rows_per_group": ROWS_PER_GROUP,
        "repeats": REPEATS,
        "per_regressor": per_regressor,
        "loop_seconds": loop_total,
        "batched_seconds": batched_total,
        "overall_speedup": loop_total / batched_total,
        "max_param_divergence": max_divergence,
        "max_residual_divergence": max_residual,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return record


@pytest.mark.slow
def test_batched_training_speedup_and_parity():
    record = run_benchmark()
    assert record["max_param_divergence"] <= PARITY_BOUND
    assert record["max_residual_divergence"] <= RESIDUAL_PARITY_BOUND
    assert record["overall_speedup"] >= SPEEDUP_FLOOR, (
        f"batched training only {record['overall_speedup']:.1f}x faster; "
        f"need >= {SPEEDUP_FLOOR}x (per-regressor: "
        + ", ".join(
            f"{name}: {row['speedup']:.1f}x"
            for name, row in record["per_regressor"].items()
        )
        + ")"
    )
    for name in FOREST_REGRESSORS:
        row = record["per_regressor"][name]
        assert row["nodes_identical"], f"{name}: node arrays diverged"
        assert row["speedup"] >= FOREST_SPEEDUP_FLOOR, (
            f"forest kernel only {row['speedup']:.1f}x faster for {name}; "
            f"need >= {FOREST_SPEEDUP_FLOOR}x"
        )


def main() -> int:
    record = run_benchmark()
    print(f"batched training benchmark ({N_GROUPS} groups, "
          f"{ROWS_PER_GROUP} rows/group, best of {REPEATS}; "
          f"forest legs best of {FOREST_REPEATS})")
    for name, row in record["per_regressor"].items():
        nodes = ""
        if "nodes_identical" in row:
            nodes = ("   nodes identical" if row["nodes_identical"]
                     else "   NODES DIVERGED")
        print(
            f"  {name:<8} loop {row['loop_seconds'] * 1e3:8.2f} ms   "
            f"batched {row['batched_seconds'] * 1e3:7.2f} ms   "
            f"{row['speedup']:5.1f}x   param/residual divergence "
            f"{row['max_param_divergence']:.1e}/"
            f"{row['max_residual_divergence']:.1e}{nodes}"
        )
    print(f"overall speedup: {record['overall_speedup']:.1f}x "
          f"(floor {SPEEDUP_FLOOR}x, forest legs {FOREST_SPEEDUP_FLOOR}x); "
          f"record written to {RESULT_PATH}")
    ok = record["overall_speedup"] >= SPEEDUP_FLOOR and all(
        record["per_regressor"][name]["nodes_identical"]
        and record["per_regressor"][name]["speedup"] >= FOREST_SPEEDUP_FLOOR
        for name in FOREST_REGRESSORS
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
