"""Figures 27 & 28 (Appendix C): joins under skewed key distributions.

Paper setup: tables A(x, y) and B(z, y) joined on y, where y has a
Zipf(s=2) *skewed region* and a uniform *non-skewed region*; 20 queries
(10 per region) aggregate COUNT/SUM/AVG of z for specific key ranges.
Approximate MonetDB answers over uniform samples of B; a uniform sample
contains (almost) no rows for the Zipf tail keys, so on the skewed
region it "could not answer any query with the 10k samples" and stays
at 25%+ error even at 1m.  DBEst keeps per-key-value models over the
precomputed join (its nominal-categorical-attribute mechanism) and is
accurate everywhere.

Repo mapping: B has 200k rows; samples 2k/10k/30k stand in for
10k/100k/1m.  Queries target individual keys — popular and tail — in
each region.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from benchmarks.conftest import make_dbest, write_figure
from repro import ExactEngine
from repro.sampling import uniform_sample_table
from repro.workloads import generate_zipf_join_tables

AFS = ("COUNT", "SUM", "AVG")
SIZES = {"10k": 2_000, "100k": 10_000, "1m": 30_000}
# Query keys per region: a mix of popular and tail ranks.
SKEWED_KEYS = (1, 2, 3, 5, 8, 12, 18, 25, 35, 48)
UNIFORM_KEYS = (51, 55, 60, 65, 70, 75, 80, 85, 90, 99)


@pytest.fixture(scope="module")
def tables():
    return generate_zipf_join_tables(
        n_dim_rows=200, n_fact_rows=200_000, s=2.0, seed=41
    )


@pytest.fixture(scope="module")
def truth(tables):
    a, b = tables
    engine = ExactEngine()
    engine.register_table(a)
    engine.register_table(b)
    return engine


def _query(af: str, key: int) -> str:
    return (
        f"SELECT {af}(z) FROM zipf_a JOIN zipf_b ON y = y "
        f"WHERE x BETWEEN -1000 AND 1000 AND y = {key};"
    )


@pytest.fixture(scope="module")
def engines(tables):
    a, b = tables
    built = {}
    dbest = make_dbest(a, b, regressor="plr", seed=13, min_group_rows=30)
    # Per-key models over the precomputed join: DBEst's treatment of
    # nominal attributes mirrors GROUP BY (paper §2.3).
    dbest.build_join_model(
        "zipf_a", "zipf_b", "y", "y", x="x", y="z",
        sample_size=50_000, group_by="y",
    )
    built["DBEst"] = dbest
    for label, size in SIZES.items():
        monet = ExactEngine()
        sample = uniform_sample_table(b, size, rng=np.random.default_rng(13))
        renamed = sample.select(sample.column_names, name="zipf_b")
        monet.register_sample(renamed, population_size=b.n_rows)
        monet.register_table(a)
        built[f"MonetDB_{label}"] = monet
    return built


def _mean_error(engine, truth, keys) -> float:
    errors = []
    for key in keys:
        for af in AFS:
            sql = _query(af, key)
            expected = truth.execute(sql).scalar()
            if isinstance(expected, float) and math.isnan(expected):
                continue
            try:
                got = engine.execute(sql).scalar()
            except Exception:
                errors.append(1.0)  # could not answer (paper's failure case)
                continue
            if isinstance(got, float) and math.isnan(got):
                errors.append(1.0)
            elif expected == 0.0:
                errors.append(abs(got))
            else:
                errors.append(min(abs(got - expected) / abs(expected), 1.0))
    return float(np.mean(errors))


@pytest.fixture(scope="module")
def figure27(engines, truth):
    rows = []
    for region_name, keys in (("skewed", SKEWED_KEYS), ("non-skewed", UNIFORM_KEYS)):
        for name, engine in engines.items():
            rows.append(
                {
                    "region": region_name,
                    "engine": name,
                    "mean_rel_error": _mean_error(engine, truth, keys),
                }
            )
    write_figure(
        "Fig 27", "join accuracy under Zipf skew (per-key queries)", rows,
        notes="paper: MonetDB cannot answer tail-key queries from small "
        "samples and keeps 25%+ error at 1m; DBEst 1.7-3.5% everywhere",
    )
    return rows


def test_fig27_dbest_robust_to_skew(benchmark, engines, figure27):
    by_key = {(r["region"], r["engine"]): r["mean_rel_error"] for r in figure27}
    assert by_key[("skewed", "DBEst")] < 0.25
    # Small-sample scanning collapses on the skewed region; DBEst does not.
    assert by_key[("skewed", "MonetDB_10k")] > 2 * by_key[("skewed", "DBEst")]
    benchmark(engines["DBEst"].execute, _query("AVG", 25))


def test_fig27_nonskewed_sanity(benchmark, engines, figure27):
    by_key = {(r["region"], r["engine"]): r["mean_rel_error"] for r in figure27}
    # On the uniform region large samples answer well.
    assert by_key[("non-skewed", "MonetDB_1m")] < 0.25
    benchmark(engines["MonetDB_1m"].execute, _query("AVG", 70))


def test_fig28_monetdb_latency(benchmark, engines, figure27):
    """Fig 28: MonetDB wins on raw per-query latency (columnar scan)."""
    result = benchmark(engines["MonetDB_100k"].execute, _query("SUM", 70))
    assert result.elapsed_seconds < 5.0
