"""Streaming ingest: dirty-group refresh vs full retrain, plus a
serving-through-republish chaos leg.

Not a paper figure: this benchmarks the repo's incremental maintenance
path (PR 9) against the rebuild it replaces.  The workload models a
200-group streaming table taking a ~5% append that lands in at most 10%
of the groups — the situation the refresh path exists for: most groups'
models (and their CSR segments in the stacked evaluator) are untouched,
so absorbing the delta should cost a small fraction of retraining every
group from scratch.

The refresh leg times ``GroupByModelSet.refresh`` (reservoir decisions,
incremental partition merge, dirty-group re-fit through the batched
trainer's ``group_mask``, and the evaluator splice) on pickled clones of
the trained set, against a full ``train`` + evaluator stack on exactly
the final sample arrays the refresh produced.  Results are asserted —
the refresh must clear ``SPEEDUP_FLOOR`` over the retrain with every
COUNT/SUM/AVG group answer within ``PARITY_BOUND`` relative of the
retrain oracle — and recorded to ``BENCH_ingest.json`` at the repo root
so the trajectory is tracked across PRs.

A *chaos* leg serves a query workload through a :class:`QueryServer`
backed by an on-disk :class:`ModelStore` while a writer thread keeps
republishing refreshed generations via ``write_refresh``: every future
must resolve (zero hung), and every answer returned after a republish
must match the generation that was live when it was answered — the
version-tagged answer cache may never serve a stale entry.

Run directly (``python benchmarks/bench_ingest.py``) or through pytest
(``pytest benchmarks/bench_ingest.py``; marked slow).
"""

from __future__ import annotations

import json
import pickle
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import DBEstConfig
from repro.core.engine import DBEst
from repro.core.groupby import GroupByModelSet
from repro.sql.ast import AggregateCall
from repro.storage.table import Table

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_ingest.json"

N_GROUPS = 200
ROWS_PER_GROUP = 2000  # full-table rows; the sample is 40x smaller
SAMPLE_SIZE = 10_000
DIRTY_GROUPS = 20  # <= 10% of the groups take the append
DELTA_ROWS = N_GROUPS * ROWS_PER_GROUP // 20  # a ~5% append
N_REPEATS = 5
SPEEDUP_FLOOR = 5.0
PARITY_BOUND = 1e-9
SEED = 7

N_CHAOS_QUERIES = 120
N_REPUBLISHES = 6
FUTURE_TIMEOUT_S = 60.0


def _make_data(rng, n, groups):
    g = rng.integers(0, groups, size=n).astype(np.float64)
    x = rng.uniform(0.0, 100.0, size=n)
    y = (1.0 + g * 0.05) * x + rng.normal(0.0, 1.0, size=n)
    return g, x, y


def _config():
    return DBEstConfig(
        regressor="plr", min_group_rows=30, integration_points=65,
        random_seed=SEED,
    )


def _train_kwargs(g, x, y):
    return dict(
        full_groups=g, full_x=x, full_y=y,
        table_name="ingest", x_columns=("x",), y_column="y",
        group_column="g", config=_config(),
    )


def _answers(model_set):
    ranges = {"x": (20.0, 60.0)}
    return {
        func: model_set.answer(AggregateCall(func, "y"), ranges, batched=True)
        for func in ("COUNT", "SUM", "AVG")
    }


def _divergence(got, expected) -> float:
    import math

    worst = 0.0
    for func in expected:
        for value, want in expected[func].items():
            have = got[func][value]
            if math.isnan(want) or math.isnan(have):
                if math.isnan(want) != math.isnan(have):
                    worst = float("inf")
                continue
            worst = max(worst, abs(have - want) / max(1.0, abs(want)))
    return worst


def run_benchmark() -> dict:
    rng = np.random.default_rng(SEED)
    n = N_GROUPS * ROWS_PER_GROUP
    g, x, y = _make_data(rng, n, N_GROUPS)
    # The paper's setting: the models train on a uniform sample an
    # order of magnitude smaller than the table, so a full rebuild
    # pays both the sample-wide re-fit and the full-table group census.
    idx = np.sort(rng.choice(n, size=SAMPLE_SIZE, replace=False))
    base = GroupByModelSet.train(
        sample_x=x[idx], sample_y=y[idx], sample_groups=g[idx],
        streaming=True, **_train_kwargs(g, x, y),
    )
    assert base.batched_evaluator() is not None
    frozen = pickle.dumps(base)

    dg = rng.integers(0, DIRTY_GROUPS, size=DELTA_ROWS).astype(np.float64)
    dx = rng.uniform(0.0, 100.0, size=DELTA_ROWS)
    dy = (1.0 + dg * 0.05) * dx + rng.normal(0.0, 1.0, size=DELTA_ROWS)

    # Refresh leg: each repeat refreshes a pristine clone (refresh
    # mutates streaming state, so repeats cannot share one set).  The
    # timed region is exactly what an ingest tick costs: reservoir
    # decisions, partition merge, dirty re-fit, evaluator splice.  The
    # evaluator is stacked before the clock starts (a serving set is
    # warm) so the timed refresh includes the splice, symmetric with
    # the retrain leg timing its stack.
    refresh_times = []
    refreshed = None
    for _ in range(N_REPEATS):
        clone = pickle.loads(frozen)
        assert clone.batched_evaluator() is not None
        start = time.perf_counter()
        dirty = clone.refresh(dx, dy, dg)
        refresh_times.append(time.perf_counter() - start)
        refreshed = clone
    assert refreshed._batched_built, (
        "refresh fell back to a lazy evaluator rebuild — the splice "
        "should have kept it warm"
    )

    # Retrain leg: a from-scratch train on the same final sample arrays
    # plus evaluator stacking — the cost refresh replaces.
    stream = refreshed._stream
    full = _train_kwargs(
        np.concatenate([g, dg]), np.concatenate([x, dx]),
        np.concatenate([y, dy]),
    )
    retrain_times = []
    oracle = None
    for _ in range(N_REPEATS):
        start = time.perf_counter()
        oracle = GroupByModelSet.train(
            sample_x=stream.sample_x, sample_y=stream.sample_y,
            sample_groups=stream.sample_groups, **full,
        )
        assert oracle.batched_evaluator() is not None
        retrain_times.append(time.perf_counter() - start)

    refresh_s = float(np.min(refresh_times))
    retrain_s = float(np.min(retrain_times))
    record = {
        "bench": "ingest",
        "n_groups": N_GROUPS,
        "rows_per_group": ROWS_PER_GROUP,
        "delta_rows": DELTA_ROWS,
        "dirty_groups": len(dirty),
        "repeats": N_REPEATS,
        "refresh_seconds": refresh_s,
        "retrain_seconds": retrain_s,
        "speedup": retrain_s / refresh_s,
        "max_divergence": _divergence(_answers(refreshed), _answers(oracle)),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    try:
        existing = json.loads(RESULT_PATH.read_text())
    except (OSError, ValueError):
        existing = {}
    existing.update(record)
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    return record


def run_chaos_benchmark() -> dict:
    """Serve through repeated store republishes; merge a ``chaos``
    record into BENCH_ingest.json."""
    from repro.serve import ModelStore, QueryServer

    rng = np.random.default_rng(SEED + 1)
    n = 40 * ROWS_PER_GROUP
    g, x, y = _make_data(rng, n, 40)
    engine = DBEst(config=_config())
    engine.register_table(Table({"x": x, "y": y, "g": g}, name="ingest"))
    key = engine.build_model(
        "ingest", x="x", y="y", group_by="g", streaming=True
    )
    sql = "SELECT COUNT(x) FROM ingest WHERE x BETWEEN 20 AND 60 GROUP BY g;"
    aggregate, ranges = AggregateCall("COUNT", "x"), {"x": (20.0, 60.0)}

    hung = 0
    stale_hits = 0
    publishes = []  # (version, oracle per-group answers) in publish order
    with tempfile.TemporaryDirectory() as tmp:
        store = engine.pack_store(Path(tmp) / "models.store")
        engine.catalog = store
        model = store.get(key)
        publishes.append((store.version, model.answer(aggregate, ranges)))
        stop = threading.Event()

        def writer():
            w_rng = np.random.default_rng(SEED + 2)
            for _ in range(N_REPUBLISHES):
                if stop.is_set():
                    return
                m = DELTA_ROWS // 4
                wg = w_rng.integers(0, 4, size=m).astype(np.float64)
                wx = w_rng.uniform(0.0, 100.0, size=m)
                wy = (1.0 + wg * 0.05) * wx \
                    + w_rng.normal(0.0, 1.0, size=m)
                model.refresh(wx, wy, wg)
                store.write_refresh(key, model)
                publishes.append(
                    (store.version, model.answer(aggregate, ranges))
                )
                time.sleep(0.005)

        start = time.perf_counter()
        with QueryServer(engine, n_workers=4) as server:
            thread = threading.Thread(target=writer)
            thread.start()
            futures = []
            for _ in range(N_CHAOS_QUERIES):
                futures.append((store.version, server.submit(sql)))
                time.sleep(0.001)
            results = []
            for version_at_submit, future in futures:
                try:
                    results.append(
                        (version_at_submit,
                         future.result(timeout=FUTURE_TIMEOUT_S))
                    )
                except TimeoutError:
                    hung += 1
            stop.set()
            thread.join()
        chaos_s = time.perf_counter() - start
        pruned = len(store.prune())

    # Every answer must match SOME generation no older than the one
    # live at submit time — matching an older generation would mean a
    # stale cache entry survived an invalidation sweep.
    worst = 0.0
    for version_at_submit, result in results:
        got = result.values["COUNT(x)"]
        best = None
        best_version = None
        for version, oracle in publishes:
            div = max(
                abs(got[value] - want) / max(1.0, abs(want))
                for value, want in oracle.items()
            )
            if best is None or div < best:
                best, best_version = div, version
        worst = max(worst, best)
        if best <= PARITY_BOUND and best_version < version_at_submit:
            stale_hits += 1

    chaos = {
        "n_queries": N_CHAOS_QUERIES,
        "republishes": N_REPUBLISHES,
        "seconds": chaos_s,
        "answered": len(results),
        "hung": hung,
        "stale_hits": stale_hits,
        "pruned": pruned,
        "generation_divergence": worst,
    }
    try:
        record = json.loads(RESULT_PATH.read_text())
    except (OSError, ValueError):
        record = {"bench": "ingest"}
    record["chaos"] = chaos
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return chaos


@pytest.mark.slow
def test_refresh_speedup_and_parity():
    record = run_benchmark()
    assert record["max_divergence"] <= PARITY_BOUND, (
        "refreshed answers diverged from the from-scratch retrain: "
        f"{record['max_divergence']:.2e}"
    )
    assert record["dirty_groups"] <= N_GROUPS // 10
    assert record["speedup"] >= SPEEDUP_FLOOR, (
        f"dirty-group refresh only {record['speedup']:.1f}x over a full "
        f"retrain ({record['retrain_seconds'] * 1e3:.1f}ms -> "
        f"{record['refresh_seconds'] * 1e3:.1f}ms for "
        f"{record['dirty_groups']}/{record['n_groups']} dirty groups); "
        f"need >= {SPEEDUP_FLOOR}x"
    )


@pytest.mark.slow
def test_serving_through_republish():
    chaos = run_chaos_benchmark()
    assert chaos["hung"] == 0, f"{chaos['hung']} futures never resolved"
    assert chaos["answered"] == chaos["n_queries"]
    assert chaos["stale_hits"] == 0, (
        f"{chaos['stale_hits']} answers matched a generation older than "
        "the one live at submit time (stale cache hits)"
    )
    assert chaos["generation_divergence"] <= PARITY_BOUND, (
        "some answer matched no published generation: "
        f"{chaos['generation_divergence']:.2e}"
    )


def main() -> int:
    record = run_benchmark()
    print(f"ingest benchmark ({record['n_groups']} groups, "
          f"{record['delta_rows']} delta rows into "
          f"{record['dirty_groups']} groups)")
    print(f"  full retrain        {record['retrain_seconds'] * 1e3:8.2f}ms")
    print(f"  dirty-group refresh {record['refresh_seconds'] * 1e3:8.2f}ms   "
          f"{record['speedup']:.1f}x")
    print(f"  max divergence vs retrain: {record['max_divergence']:.2e}")
    chaos = run_chaos_benchmark()
    print(f"chaos: {chaos['answered']}/{chaos['n_queries']} answered through "
          f"{chaos['republishes']} republishes in {chaos['seconds']:.2f}s; "
          f"{chaos['hung']} hung, {chaos['stale_hits']} stale cache hits, "
          f"{chaos['pruned']} generations pruned")
    ok = (
        record["max_divergence"] <= PARITY_BOUND
        and record["speedup"] >= SPEEDUP_FLOOR
        and chaos["hung"] == 0
        and chaos["stale_hits"] == 0
        and chaos["generation_divergence"] <= PARITY_BOUND
    )
    print("ok" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
