"""Batched vs scalar GROUP BY evaluation on a 200-group workload.

Not a paper figure: this benchmarks the repo's own batched evaluation
engine (:mod:`repro.core.batched`) against the per-group scalar loop the
paper's §4.7 identifies as its Python bottleneck.  The workload is the
fig15/17/22 shape — one model set over [x -> y] with a couple of hundred
groups, answered for the paper's aggregate functions over random range
predicates — scaled so the whole comparison runs in seconds.

Results are asserted (batched must be >= 5x faster overall and agree to
1e-9) and recorded to ``BENCH_groupby.json`` at the repo root so the
performance trajectory is tracked across PRs.

Run directly (``python benchmarks/bench_batched_groupby.py``) or through
pytest (``pytest benchmarks/bench_batched_groupby.py``; marked slow).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import DBEstConfig
from repro.core.groupby import GroupByModelSet
from repro.sql.ast import AggregateCall

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_groupby.json"

N_GROUPS = 200
ROWS_PER_GROUP = 40
INTEGRATION_POINTS = 65
SPEEDUP_FLOOR = 5.0
PARITY_BOUND = 1e-9

# The paper's GROUP BY experiments sweep COUNT/SUM/AVG; VARIANCE and
# PERCENTILE exercise the residual-variance pass and the lock-step
# bisection respectively.
AGGREGATES = (
    AggregateCall("COUNT", "y"),
    AggregateCall("SUM", "y"),
    AggregateCall("AVG", "y"),
    AggregateCall("VARIANCE", "y"),
    AggregateCall("PERCENTILE", "x", 0.5),
)
QUERY_RANGES = [{"x": (a, a + 25.0)} for a in (5.0, 20.0, 35.0, 50.0, 65.0)]


def build_model_set(seed: int = 7) -> GroupByModelSet:
    """200 modelled groups with distinct linear relations over x."""
    rng = np.random.default_rng(seed)
    n = N_GROUPS * ROWS_PER_GROUP
    groups = np.repeat(np.arange(N_GROUPS), ROWS_PER_GROUP)
    x = rng.uniform(0.0, 100.0, size=n)
    y = (1.0 + groups * 0.05) * x + rng.normal(0.0, 1.0, size=n)
    config = DBEstConfig(
        regressor="plr",
        min_group_rows=30,
        integration_points=INTEGRATION_POINTS,
        random_seed=seed,
    )
    return GroupByModelSet.train(
        sample_x=x, sample_y=y, sample_groups=groups,
        full_groups=groups, full_x=x, full_y=y,
        table_name="bench", x_columns=("x",), y_column="y", group_column="g",
        config=config,
    )


def _time_path(model_set: GroupByModelSet, aggregate, batched: bool) -> float:
    """Mean seconds per GROUP BY query over the range workload."""
    model_set.answer(aggregate, QUERY_RANGES[0], batched=batched)  # warm-up
    start = time.perf_counter()
    for ranges in QUERY_RANGES:
        model_set.answer(aggregate, ranges, batched=batched)
    return (time.perf_counter() - start) / len(QUERY_RANGES)


def _max_divergence(model_set: GroupByModelSet, aggregate) -> float:
    worst = 0.0
    for ranges in QUERY_RANGES:
        batched = model_set.answer(aggregate, ranges, batched=True)
        scalar = model_set.answer(aggregate, ranges, batched=False)
        for value, expected in scalar.items():
            got = batched[value]
            if np.isnan(expected) or np.isnan(got):
                if np.isnan(expected) != np.isnan(got):
                    return float("inf")  # one-sided NaN is a divergence
                continue
            worst = max(worst, abs(got - expected) / max(1.0, abs(expected)))
    return worst


def run_benchmark() -> dict:
    model_set = build_model_set()
    model_set.batched_evaluator()  # build outside the timed region
    per_aggregate = {}
    scalar_total = batched_total = 0.0
    max_divergence = 0.0
    for aggregate in AGGREGATES:
        scalar_s = _time_path(model_set, aggregate, batched=False)
        batched_s = _time_path(model_set, aggregate, batched=True)
        divergence = _max_divergence(model_set, aggregate)
        max_divergence = max(max_divergence, divergence)
        scalar_total += scalar_s
        batched_total += batched_s
        per_aggregate[str(aggregate)] = {
            "scalar_seconds": scalar_s,
            "batched_seconds": batched_s,
            "speedup": scalar_s / batched_s,
            "max_rel_divergence": divergence,
        }
    record = {
        "bench": "batched_groupby",
        "n_groups": N_GROUPS,
        "rows_per_group": ROWS_PER_GROUP,
        "integration_points": INTEGRATION_POINTS,
        "n_queries_per_aggregate": len(QUERY_RANGES),
        "per_aggregate": per_aggregate,
        "scalar_seconds_per_query": scalar_total,
        "batched_seconds_per_query": batched_total,
        "overall_speedup": scalar_total / batched_total,
        "max_rel_divergence": max_divergence,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return record


@pytest.mark.slow
def test_batched_speedup_and_parity():
    record = run_benchmark()
    assert record["max_rel_divergence"] <= PARITY_BOUND
    assert record["overall_speedup"] >= SPEEDUP_FLOOR, (
        f"batched path only {record['overall_speedup']:.1f}x faster; "
        f"need >= {SPEEDUP_FLOOR}x (per-aggregate: "
        + ", ".join(
            f"{name}: {row['speedup']:.1f}x"
            for name, row in record["per_aggregate"].items()
        )
        + ")"
    )


def main() -> int:
    record = run_benchmark()
    print(f"batched group-by benchmark ({N_GROUPS} groups, "
          f"{len(QUERY_RANGES)} queries/AF)")
    for name, row in record["per_aggregate"].items():
        print(
            f"  {name:<22} scalar {row['scalar_seconds'] * 1e3:8.2f} ms   "
            f"batched {row['batched_seconds'] * 1e3:7.2f} ms   "
            f"{row['speedup']:5.1f}x   max divergence {row['max_rel_divergence']:.1e}"
        )
    print(f"overall speedup: {record['overall_speedup']:.1f}x "
          f"(floor {SPEEDUP_FLOOR}x); record written to {RESULT_PATH}")
    return 0 if record["overall_speedup"] >= SPEEDUP_FLOOR else 1


if __name__ == "__main__":
    raise SystemExit(main())
