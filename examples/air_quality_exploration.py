"""Exploratory air-quality analytics (the paper's Beijing PM2.5 workload).

An environmental analyst explores pollution against weather covariates:
descriptive statistics over data subspaces, percentiles, multivariate
predicates, and persisting the model catalog to disk so a later session
answers queries without the base data — the paper's §1 "exploratory
analytics" motivation.

Run with:  python examples/air_quality_exploration.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import repro
from repro.core import ModelCatalog
from repro.workloads import BEIJING_COLUMN_PAIRS


def main() -> None:
    air = repro.generate_beijing(200_000, seed=31)
    exact = repro.ExactEngine()
    exact.register_table(air)

    engine = repro.DBEst(config=repro.DBEstConfig(random_seed=3))
    engine.register_table(air)
    for x, y in BEIJING_COLUMN_PAIRS:
        engine.build_model("beijing", x=x, y=y, sample_size=10_000)
    # A multivariate model: pollution given (temperature, wind) jointly.
    engine.build_model(
        "beijing", x=("TEMP", "IWS"), y="PM25", sample_size=20_000
    )

    print("== exploring pollution by weather subspace ==")
    explorations = [
        ("calm winter air (IWS < 5)",
         "SELECT AVG(PM25) FROM beijing WHERE IWS BETWEEN 0.45 AND 5;"),
        ("windy hours (IWS > 150)",
         "SELECT AVG(PM25) FROM beijing WHERE IWS BETWEEN 150 AND 585;"),
        ("humid episodes (DEWP near TEMP)",
         "SELECT AVG(PM25) FROM beijing WHERE DEWP BETWEEN 15 AND 28;"),
        ("cold + calm (multivariate predicate)",
         "SELECT AVG(PM25) FROM beijing "
         "WHERE TEMP BETWEEN -19 AND 0 AND IWS BETWEEN 0.45 AND 10;"),
    ]
    for label, sql in explorations:
        truth = exact.execute(sql).scalar()
        estimate = engine.execute(sql).scalar()
        print(f"  {label:<42} truth {truth:7.1f}  DBEst {estimate:7.1f}")

    print("\n== distribution of pollution levels (PERCENTILE) ==")
    for p in (0.5, 0.9, 0.99):
        sql = f"SELECT PERCENTILE(PM25, {p}) FROM beijing;"
        truth = exact.execute(sql).scalar()
        # Percentiles are density-based: build one density-only model on
        # PM25 itself the first time.
        if p == 0.5:
            engine.build_model("beijing", x="PM25", sample_size=10_000)
        estimate = engine.execute(sql).scalar()
        print(f"  p{int(p * 100):<3} truth {truth:7.1f}   DBEst {estimate:7.1f}")

    # Persist the catalog: a later analysis session can answer the same
    # query classes with no access to the 200k-row base table at all.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "beijing_models.pkl"
        written = engine.catalog.save(path)
        print(f"\ncatalog saved: {written / 1e6:.2f} MB at {path.name}")

        later = repro.DBEst(config=repro.DBEstConfig(random_seed=3))
        later.catalog = ModelCatalog.load(path)
        sql = "SELECT COUNT(PM25) FROM beijing WHERE TEMP BETWEEN 20 AND 30;"
        estimate = later.execute(sql).scalar()
        truth = exact.execute(sql).scalar()
        print(f"restored-catalog answer: {estimate:.0f} (truth {truth:.0f}) — "
              "no base data needed")


if __name__ == "__main__":
    main()
