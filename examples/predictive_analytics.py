"""Predictive analytics and workload-driven model selection.

The paper's introduction argues DBEst's models are useful beyond AQP:
imputing missing values, what-if estimation, relationship discovery, and
quick descriptive statistics.  Its §3 notes that choosing *which* models
to build can be mined from a workload prefix (à la BlinkDB).  This
example shows both: an advisor learns model templates from a query log,
builds them, and the resulting models power the predictive analytics.

Run with:  python examples/predictive_analytics.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core import (
    ModelKey,
    WorkloadAdvisor,
    describe_subspace,
    estimate_y,
    impute_missing,
    rank_relationships,
    sketch_density,
    what_if_aggregate,
)


def main() -> None:
    plant = repro.generate_ccpp(200_000, seed=23)
    engine = repro.DBEst(config=repro.DBEstConfig(random_seed=5))
    engine.register_table(plant)

    # -- 1. mine a workload prefix, build only what it needs --------------
    workload_prefix = [
        "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 5 AND 10;",
        "SELECT SUM(EP) FROM ccpp WHERE T BETWEEN 20 AND 30;",
        "SELECT COUNT(EP) FROM ccpp WHERE T BETWEEN 0 AND 15;",
        "SELECT AVG(EP) FROM ccpp WHERE RH BETWEEN 60 AND 80;",
        "SELECT AVG(EP) FROM ccpp WHERE V BETWEEN 40 AND 60;",
        "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 12;",
    ]
    advisor = WorkloadAdvisor()
    advisor.observe_all(workload_prefix)
    print("advisor recommendations:")
    for rec in advisor.recommend():
        print(f"  {rec.coverage * 100:5.1f}%  {rec.template.describe()}")
    built = advisor.build_recommended(engine, sample_size=10_000)
    print(f"built {len(built)} models; "
          f"state = {engine.state_size_bytes() / 1e6:.2f} MB")

    models = {
        "T -> EP": engine.catalog.get(ModelKey.make("ccpp", "T", "EP")),
        "RH -> EP": engine.catalog.get(ModelKey.make("ccpp", "RH", "EP")),
        "V -> EP": engine.catalog.get(ModelKey.make("ccpp", "V", "EP")),
    }

    # -- 2. relationship discovery (paper §1, item iv) ---------------------
    print("\nwhich ambient variable drives output? (model-derived R²)")
    for name, strength in rank_relationships(models):
        print(f"  {name:<9} {strength:.3f}")

    # -- 3. what-if estimation (items ii & iii) ---------------------------
    model = models["T -> EP"]
    print("\nwhat-if: output at hypothesised temperatures")
    for temperature in (2.0, 18.0, 35.0):
        ep = estimate_y(model, temperature)[0]
        print(f"  T = {temperature:5.1f} C -> EP ~ {ep:6.1f} MW")
    heatwave_avg = what_if_aggregate(model, "AVG", 30.0, 37.0)
    print(f"  heatwave scenario AVG(EP | 30<=T<=37) ~ {heatwave_avg:.1f} MW")

    # -- 4. imputing missing sensor readings (item i) ----------------------
    rng = np.random.default_rng(9)
    broken = plant.head(1000)
    missing = rng.random(1000) < 0.2
    ep = broken["EP"].astype(float).copy()
    ep[missing] = np.nan
    broken = broken.with_column("EP", ep)
    repaired = impute_missing(broken, model)
    true_values = plant.head(1000)["EP"][missing]
    error = np.mean(
        np.abs(repaired["EP"][missing] - true_values) / true_values
    )
    print(f"\nimputed {int(missing.sum())} missing EP readings, "
          f"mean error {error * 100:.2f}%")

    # -- 5. quick descriptive statistics + density sketch (item v) --------
    print("\ndescribe: output on cold days (T in [2, 8])")
    for stat, value in describe_subspace(model, 2.0, 8.0).items():
        print(f"  {stat:<18} {value:,.2f}")
    print("\ntemperature density sketch:")
    print(sketch_density(model, n_bins=12, width=36))


if __name__ == "__main__":
    main()
