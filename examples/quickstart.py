"""Quickstart: build models over a table, answer SQL approximately.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # 1. Some data: a synthetic TPC-DS store_sales fact table.
    sales = repro.generate_store_sales(200_000, seed=7)
    print(f"population: {sales.n_rows} rows, columns {sales.column_names}")

    # 2. An exact engine for ground truth (this is what DBEst avoids
    #    having to run at query time).
    exact = repro.ExactEngine()
    exact.register_table(sales)

    # 3. DBEst: one model per popular column pair, built from a small
    #    reservoir sample.  The sample is discarded after training.
    engine = repro.DBEst(config=repro.DBEstConfig(random_seed=1))
    engine.register_table(sales)
    engine.build_model(
        "store_sales",
        x="ss_list_price",
        y="ss_wholesale_cost",
        sample_size=10_000,
    )
    print(f"model state: {engine.state_size_bytes() / 1e6:.2f} MB "
          f"(vs {sales.nbytes() / 1e6:.1f} MB of base data)")

    # 4. Ask analytical questions.
    queries = [
        "SELECT COUNT(ss_wholesale_cost) FROM store_sales "
        "WHERE ss_list_price BETWEEN 20 AND 40;",
        "SELECT AVG(ss_wholesale_cost) FROM store_sales "
        "WHERE ss_list_price BETWEEN 20 AND 40;",
        "SELECT SUM(ss_wholesale_cost) FROM store_sales "
        "WHERE ss_list_price BETWEEN 20 AND 40;",
        "SELECT STDDEV(ss_wholesale_cost) FROM store_sales "
        "WHERE ss_list_price BETWEEN 20 AND 40;",
        "SELECT PERCENTILE(ss_list_price, 0.9) FROM store_sales "
        "WHERE ss_list_price BETWEEN 20 AND 40;",
    ]
    print(f"\n{'query':<52} {'truth':>12} {'DBEst':>12} {'err':>7} {'ms':>7}")
    for sql in queries:
        truth = exact.execute(sql).scalar()
        result = engine.execute(sql)
        estimate = result.scalar()
        error = abs(estimate - truth) / abs(truth) * 100
        print(
            f"{sql[7:50]:<52} {truth:>12.2f} {estimate:>12.2f} "
            f"{error:>6.2f}% {result.elapsed_seconds * 1000:>6.1f}"
        )


if __name__ == "__main__":
    main()
