"""Retail warehouse analytics: GROUP BY, joins, bundles, parallelism.

The paper's TPC-DS scenarios in one script: per-store revenue breakdowns
(GROUP BY over 57 stores), fact ⋈ dimension joins answered from models of
the precomputed join, model bundles serialised to disk for
large-group-count queries, and parallel per-group evaluation.

Run with:  python examples/retail_groupby_join.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import repro


def main() -> None:
    sales = repro.generate_store_sales(300_000, seed=7)
    store = repro.generate_store(57, seed=11)
    exact = repro.ExactEngine()
    exact.register_table(sales)
    exact.register_table(store)

    engine = repro.DBEst(
        config=repro.DBEstConfig(
            regressor="gboost", random_seed=4, min_group_rows=50
        )
    )
    engine.register_table(sales)
    engine.register_table(store)

    # -- GROUP BY: revenue per store over a date range -------------------
    group_key = engine.build_model(
        "store_sales", x="ss_sold_date_sk", y="ss_sales_price",
        sample_size=50_000, group_by="ss_store_sk",
    )
    sql = (
        "SELECT ss_store_sk, SUM(ss_sales_price) FROM store_sales "
        "WHERE ss_sold_date_sk BETWEEN 2451000 AND 2451900 "
        "GROUP BY ss_store_sk;"
    )
    truth = exact.execute(sql).groups()
    result = engine.execute(sql)
    estimate = result.groups()
    errors = sorted(
        abs(estimate[k] - v) / abs(v) for k, v in truth.items() if v
    )
    print(f"GROUP BY over {len(truth)} stores: "
          f"median group error {errors[len(errors) // 2] * 100:.1f}%, "
          f"latency {result.elapsed_seconds * 1000:.0f} ms")

    # -- parallel per-group evaluation (paper §4.7.1) ---------------------
    engine.config.n_workers = 4
    engine.execute(sql)  # warm the worker pool
    start = time.perf_counter()
    engine.execute(sql)
    parallel_s = time.perf_counter() - start
    engine.config.n_workers = 1
    start = time.perf_counter()
    engine.execute(sql)
    sequential_s = time.perf_counter() - start
    print(f"parallel groups: {sequential_s * 1000:.0f} ms sequential -> "
          f"{parallel_s * 1000:.0f} ms with 4 workers")

    # -- join: profit by store size, from models of the join --------------
    engine.build_join_model(
        "store_sales", "store", "ss_store_sk", "s_store_sk",
        x="s_number_of_employees", y="ss_net_profit", sample_size=20_000,
    )
    join_sql = (
        "SELECT AVG(ss_net_profit) FROM store_sales "
        "JOIN store ON ss_store_sk = s_store_sk "
        "WHERE s_number_of_employees BETWEEN 220 AND 270;"
    )
    truth_avg = exact.execute(join_sql).scalar()
    join_result = engine.execute(join_sql)
    print(f"join AVG(profit): truth {truth_avg:.2f}, "
          f"DBEst {join_result.scalar():.2f} "
          f"in {join_result.elapsed_seconds * 1000:.1f} ms "
          "(no join executed at query time)")

    # -- model bundles: keep group models on disk until needed ------------
    with tempfile.TemporaryDirectory() as tmp:
        bundle = engine.bundle_model(group_key, Path(tmp) / "stores.bundle")
        print(f"bundle written: {bundle.size_bytes() / 1e6:.2f} MB on disk, "
              f"loaded={bundle.loaded}")
        result = engine.execute(sql)  # transparently loads the bundle
        print(f"query via bundle: {len(result.groups())} groups, "
              f"load took {bundle.last_load_seconds * 1000:.0f} ms "
              f"(paper: <132 ms for a 500-model bundle)")


if __name__ == "__main__":
    main()
