"""Power-plant sensor analytics (the paper's CCPP workload).

An operations analyst explores how ambient conditions drive the plant's
electrical output, comparing DBEst against a sample-based AQP engine —
the paper's §4.3 scenario.  Demonstrates: multiple column-pair models,
accuracy-vs-state trade-offs, and VerdictDB-style confidence intervals.

Run with:  python examples/power_plant_analytics.py
"""

from __future__ import annotations

import repro
from repro.workloads import CCPP_COLUMN_PAIRS


def main() -> None:
    plant = repro.generate_ccpp(300_000, seed=23)
    exact = repro.ExactEngine()
    exact.register_table(plant)

    # DBEst: one model per (ambient variable, output) pair.
    dbest = repro.DBEst(config=repro.DBEstConfig(random_seed=2))
    dbest.register_table(plant)
    for x, y in CCPP_COLUMN_PAIRS:
        dbest.build_model("ccpp", x=x, y=y, sample_size=10_000)

    # The VerdictDB-like baseline keeps a uniform sample in memory.
    verdict = repro.UniformAQPEngine(sample_size=10_000, random_seed=2)
    verdict.register_table(plant)
    verdict.prepare_table("ccpp")

    print("state held at query time:")
    print(f"  DBEst models : {dbest.state_size_bytes() / 1e6:8.2f} MB")
    print(f"  sample-based : {verdict.state_size_bytes() / 1e6:8.2f} MB")

    questions = [
        ("Cold mornings: average output below 8 degrees",
         "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 1.81 AND 8;"),
        ("How many humid hours (RH 85-100)?",
         "SELECT COUNT(EP) FROM ccpp WHERE RH BETWEEN 85 AND 100;"),
        ("Total energy in a high-pressure band",
         "SELECT SUM(EP) FROM ccpp WHERE AP BETWEEN 1015 AND 1025;"),
        ("Output variability on hot days",
         "SELECT STDDEV(EP) FROM ccpp WHERE T BETWEEN 28 AND 37;"),
    ]
    print(f"\n{'question':<44} {'truth':>12} {'DBEst':>12} {'sample':>12}")
    for label, sql in questions:
        truth = exact.execute(sql).scalar()
        model_answer = dbest.execute(sql).scalar()
        sample_answer = verdict.execute(sql).scalar()
        print(f"{label:<44} {truth:>12.1f} {model_answer:>12.1f} "
              f"{sample_answer:>12.1f}")

    # The sample-based engine can attach CLT confidence intervals —
    # something model-based DBEst does not offer (paper's stated
    # limitation).
    sql = "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 15;"
    verdict.execute(sql)
    low, high = verdict.last_intervals["AVG(EP)"]
    truth = exact.execute(sql).scalar()
    print(f"\n95% CI from the sample engine: [{low:.2f}, {high:.2f}] "
          f"(truth {truth:.2f})")

    # What-if analytics with the underlying regression model (paper §1:
    # estimating the dependent variable under hypothesised conditions).
    from repro.core import ModelKey

    model = dbest.catalog.get(ModelKey.make("ccpp", "T", "EP"))
    import numpy as np

    hypothetical_temps = np.asarray([0.0, 15.0, 30.0])
    predictions = model.predict_y(hypothetical_temps)
    print("\nwhat-if: predicted output at hypothesised temperatures")
    for temp, output in zip(hypothetical_temps, predictions):
        print(f"  T = {temp:5.1f} C  ->  EP = {output:6.1f} MW")


if __name__ == "__main__":
    main()
