"""Serving quickstart: build models, pack a lazy store, serve traffic.

The offline side trains models and packs them into an on-disk
:class:`repro.ModelStore` (per-model records, loaded on first touch,
evicted LRU under a byte budget).  The online side serves concurrent
SQL through a :class:`repro.QueryServer`, which parses each query shape
once, coalesces queued lookalike queries into shared engine passes, and
memoises answers.

A fault-drill section re-serves the same traffic through a deliberately
broken store — injected latency spikes, transient read errors, and one
corrupted record — to show the fault-tolerance machinery: store reads
retry with backoff, the corrupt record is quarantined, the per-model
circuit breaker trips, and affected queries degrade to a sampling/exact
AQP answer (tagged ``degraded``) instead of failing.

The final section appends rows *while serving*: the table delta flows
through ``engine.append_rows`` — per-group reservoirs decide which rows
enter the standing sample, only the touched groups re-fit, and the
refreshed model is republished to the store as a new record generation
(``write_refresh``).  The query server invalidates exactly the
refreshed keys' cached answers, in-flight readers keep the old
generation until they finish, and ``store.prune()`` reclaims the
superseded record files.

Run with:  python examples/serving_quickstart.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import repro


def main() -> None:
    # 1. Offline: train one group-by model set over synthetic sales data.
    sales = repro.generate_store_sales(150_000, seed=7)
    builder = repro.DBEst(config=repro.DBEstConfig(random_seed=1))
    builder.register_table(sales)
    builder.build_model(
        "store_sales",
        x="ss_list_price",
        y="ss_wholesale_cost",
        sample_size=10_000,
        group_by="ss_store_sk",
        streaming=True,  # keep reservoir state: section 6 appends rows
    )
    builder.build_model(
        "store_sales",
        x="ss_list_price",
        y="ss_wholesale_cost",
        sample_size=10_000,
    )

    # 2. Pack the catalog as a store: per-model records + manifest.
    store_dir = Path(tempfile.mkdtemp()) / "sales.store"
    repro.ModelStore.write(builder.catalog, store_dir)

    # 3. Online: a fresh engine serves from the store under a byte
    #    budget — models load lazily and evict LRU, so a warehouse of
    #    thousands of models runs in bounded memory.
    store = repro.ModelStore(store_dir, cache_bytes=64 << 20)
    engine = repro.DBEst()
    engine.catalog = store

    # 4. Dashboard-style traffic: many near-identical queries.  Submit
    #    everything up front; lookalikes coalesce into one engine pass.
    templates = [
        ("SELECT AVG(ss_wholesale_cost) FROM store_sales "
         "WHERE ss_list_price BETWEEN {lo} AND {hi} GROUP BY ss_store_sk;"),
        ("SELECT COUNT(ss_list_price) FROM store_sales "
         "WHERE ss_list_price BETWEEN {lo} AND {hi} GROUP BY ss_store_sk;"),
        ("SELECT SUM(ss_wholesale_cost) FROM store_sales "
         "WHERE ss_list_price BETWEEN {lo} AND {hi};"),
    ]
    workload = [
        template.format(lo=lo, hi=lo + 25)
        for template in templates
        for lo in (10, 35, 60)
        for _ in range(10)  # each user asks the same question
    ]

    start = time.perf_counter()
    with repro.QueryServer(engine, n_workers=4) as server:
        futures = [server.submit(sql) for sql in workload]
        results = [future.result() for future in futures]
        stats = server.stats()
    elapsed = time.perf_counter() - start

    sample = results[0]
    label, groups = next(iter(sample.values.items()))
    print(f"first answer ({label}): {len(groups)} groups, "
          f"e.g. {dict(list(sorted(groups.items()))[:3])}")
    print(f"\nserved {stats['queries']} queries in {elapsed * 1e3:.0f} ms "
          f"({stats['queries'] / elapsed:.0f} q/s)")
    print(f"  engine batches:    {stats['batches']} "
          f"({stats['coalesced']} queries coalesced into shared passes)")
    print(f"  engine calls:      {stats['engine_calls']}")
    print(f"  answer-cache hits: {stats['answer_cache']['hits']}")
    print(f"  plan-cache hits:   {stats['plan_cache']['hits']} "
          f"over {stats['plan_cache']['plans']} distinct shapes")
    store_stats = stats["store"]
    print(f"  store:             {store_stats['resident']}/"
          f"{store_stats['models']} models resident "
          f"({store_stats['resident_bytes'] / 1e6:.2f} MB of "
          f"{store_stats['budget_bytes'] / 1e6:.0f} MB budget), "
          f"{store_stats['loads']} lazy loads")

    # 5. Fault tolerance: same traffic, hostile store.  The injector is
    #    seeded, so this schedule of faults replays identically: 20% of
    #    record loads stall, 10% fail transiently (absorbed by retry +
    #    backoff), and one returns corrupted bytes — that record is
    #    quarantined, its circuit breaker opens, and queries that needed
    #    it come back as degraded AQP answers instead of errors.
    faults = repro.FaultInjector(seed=7)
    faults.inject(repro.STORE_LOAD, probability=0.20, latency_s=0.002)
    faults.inject(repro.STORE_LOAD, probability=0.10, error=OSError)
    faults.inject(repro.STORE_LOAD, corrupt=True, times=1)
    # Degraded answering scans/samples the base table, so the serving
    # engine needs it registered (the happy path above did not).
    engine.register_table(sales)
    engine.catalog = repro.ModelStore(
        store_dir, cache_bytes=1, faults=faults, retries=2,
        retry_backoff_ms=1,
    )
    with repro.QueryServer(
        engine, n_workers=4, coalesce=False, answer_cache_size=1,
        deadline_ms=5_000, max_queue=256, shed_policy="drop-oldest",
        degrade=True,
    ) as server:
        futures = [server.submit(sql) for sql in workload]
        outcomes = [future.result(timeout=30) for future in futures]
        stats = server.stats()

    degraded = [result for result in outcomes if result.degraded]
    print(f"\nfault drill: {len(outcomes)} queries answered under "
          f"{faults.fired()} injected faults — none hung, none lost")
    print(f"  store retries:     {stats['retried']}")
    print(f"  quarantined:       {stats['store']['quarantined']} record(s)")
    print(f"  breaker opens:     {stats['breaker']['opens']}")
    print(f"  degraded answers:  {len(degraded)}")
    if degraded:
        print(f"  e.g. {degraded[0].degraded_reason}")

    # 6. Streaming ingest: append rows while serving.  The group-by
    #    model was trained with streaming=True, so the delta flows
    #    through its per-group reservoirs and only the touched groups
    #    re-fit; the refreshed model is republished to the store as a
    #    new record generation and the server drops exactly the
    #    refreshed keys' cached answers — no restart, no full retrain.
    #    (The drill above quarantined a record, so repack a clean store.)
    store_dir = store_dir.with_name("sales-live.store")
    repro.ModelStore.write(builder.catalog, store_dir)
    store = repro.ModelStore(store_dir)
    engine.catalog = store
    probe = ("SELECT COUNT(ss_list_price) FROM store_sales "
             "WHERE ss_list_price BETWEEN 10 AND 35 GROUP BY ss_store_sk;")
    delta = repro.generate_store_sales(7_500, seed=8)
    with repro.QueryServer(engine, n_workers=4) as server:
        stale = server.submit(probe).result(timeout=30)
        version = store.version
        report = engine.append_rows("store_sales", delta)
        fresh = server.submit(probe).result(timeout=30)
    refreshed = next(iter(report["refreshed"].items()))
    print(f"\nstreaming ingest: appended {report['rows']} rows while "
          f"serving")
    print(f"  refreshed:         {len(refreshed[1])} group(s) of "
          f"{refreshed[0].table}/{refreshed[0].x_columns[0]} "
          f"(store v{version} -> v{store.version})")
    print(f"  left stale:        {len(report['skipped'])} non-streaming "
          f"model(s) (retrain via build_model to pick up the delta)")
    moved = sum(
        1 for group, before in stale.values["COUNT(ss_list_price)"].items()
        if abs(fresh.values["COUNT(ss_list_price)"][group] - before) > 1e-9
    )
    print(f"  answers moved:     {moved} of "
          f"{len(stale.values['COUNT(ss_list_price)'])} groups "
          f"(cache swept for exactly the refreshed key)")
    print(f"  pruned:            {len(store.prune())} superseded record "
          f"generation(s)")

    # 7. Observing the server: flip on the process-global metrics
    #    registry and the per-query trace ring, re-serve the dashboard
    #    traffic, and read back where the time went.  Both switches are
    #    off by default and cost a no-op call per touch when off (the
    #    bench-smoke OBS leg holds the enabled overhead under 5%).
    registry = repro.enable_metrics()
    traces = repro.enable_tracing(maxlen=256)
    with repro.QueryServer(engine, n_workers=4) as server:
        futures = [server.submit(sql) for sql in workload]
        for future in futures:
            future.result(timeout=30)
        snapshot = registry.snapshot()  # server collector is alive here
    served = snapshot["histograms"]["repro_serve_query_seconds"]
    print(f"\nobserving the server: {int(snapshot['gauges']['repro_serve_queries'])} "
          f"queries instrumented")
    print(f"  latency:           p50={served['p50'] * 1e3:.2f} ms "
          f"p99={served['p99'] * 1e3:.2f} ms")
    print(f"  answer-cache hits: "
          f"{int(snapshot['gauges']['repro_answer_cache_hits'])}")
    print(f"  degraded:          "
          f"{int(snapshot['gauges']['repro_serve_degraded'])}")
    slowest = traces.slowest(1)[0]
    print("  slowest query, hop by hop:")
    for line in slowest.render().splitlines():
        print(f"    {line}")
    # The same registry renders as Prometheus text exposition — this is
    # what `python -m repro stats` prints and what a scraper would pull:
    exposition = repro.render_prometheus(registry)
    print(f"  exposition:        {len(exposition.splitlines())} lines, e.g. "
          f"{next(l for l in exposition.splitlines() if '_bucket' in l)!r}")
    repro.disable_metrics()
    repro.disable_tracing()


if __name__ == "__main__":
    main()
