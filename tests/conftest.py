"""Shared fixtures.

Tests favour small tables and the cheap piecewise-linear regressor so the
suite stays fast; dedicated tests exercise the boosted/ensemble models
explicitly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBEstConfig, Table
from repro.engines import ExactEngine


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_table() -> Table:
    """A deterministic 8-row table used by storage tests."""
    return Table(
        {
            "x": np.asarray([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]),
            "y": np.asarray([10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0]),
            "g": np.asarray([1, 1, 2, 2, 3, 3, 3, 3], dtype=np.int64),
        },
        name="small",
    )


@pytest.fixture
def linear_table(rng) -> Table:
    """5k rows with y = 3x + 7 + noise — a known regression target."""
    x = rng.uniform(0.0, 100.0, size=5000)
    y = 3.0 * x + 7.0 + rng.normal(0.0, 2.0, size=5000)
    g = rng.integers(0, 5, size=5000).astype(np.int64)
    return Table({"x": x, "y": y, "g": g}, name="linear")


@pytest.fixture
def fast_config() -> DBEstConfig:
    """Cheap-but-accurate engine config for end-to-end tests."""
    return DBEstConfig(
        regressor="plr",
        integration_points=129,
        min_group_rows=20,
        random_seed=99,
    )


@pytest.fixture
def truth_engine(linear_table) -> ExactEngine:
    engine = ExactEngine()
    engine.register_table(linear_table)
    return engine
