"""Unit tests for config validation, parallel helpers, join sampling,
aggregate dispatch, and the result container."""

import numpy as np
import pytest

from repro.core import DBEstConfig, QueryResult, answer_aggregate
from repro.core.joins import precompute_join_sample, sampled_join_sample
from repro.core.model import ColumnSetModel
from repro.core.parallel import map_parallel
from repro.errors import InvalidParameterError, UnsupportedQueryError
from repro.sql.ast import AggregateCall
from repro.storage import Table


class TestConfig:
    def test_defaults_valid(self):
        config = DBEstConfig()
        assert config.regressor == "ensemble"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"default_sample_size": 0},
            {"regressor": "nope"},
            {"integration_points": 4},
            {"integration_points": 1},
            {"integration_method": "magic"},
            {"parallel_mode": "fibers"},
            {"n_workers": 0},
            {"min_group_rows": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            DBEstConfig(**kwargs)


class TestParallel:
    def test_sequential_equals_parallel(self):
        items = list(range(20))
        fn = lambda i: i * i  # noqa: E731
        assert map_parallel(fn, items, workers=1) == map_parallel(
            fn, items, workers=4, mode="thread"
        )

    def test_order_preserved(self):
        result = map_parallel(lambda i: i, list(range(100)), workers=8)
        assert result == list(range(100))

    def test_invalid_workers(self):
        with pytest.raises(InvalidParameterError):
            map_parallel(lambda i: i, [1], workers=0)

    def test_invalid_mode(self):
        with pytest.raises(InvalidParameterError):
            map_parallel(lambda i: i, [1, 2], workers=2, mode="fibers")

    def test_single_item_runs_inline(self):
        assert map_parallel(lambda i: i + 1, [41], workers=8) == [42]


class TestJoinSampling:
    @pytest.fixture
    def tables(self, rng):
        fact = Table(
            {"k": rng.integers(0, 50, size=30_000).astype(np.int64),
             "v": rng.normal(size=30_000)},
            name="fact",
        )
        dim = Table(
            {"k": np.arange(50, dtype=np.int64),
             "w": rng.normal(size=50)},
            name="dim",
        )
        return fact, dim

    def test_precompute_exact_cardinality(self, tables, rng):
        fact, dim = tables
        sample, population = precompute_join_sample(
            fact, dim, "k", "k", 1000, rng=rng
        )
        assert population == 30_000  # every fact row matches exactly one dim row
        assert sample.n_rows == 1000
        assert "w" in sample.column_names

    def test_sampled_join_estimates_cardinality(self, tables, rng):
        fact, dim = tables
        _sample, estimate = sampled_join_sample(
            fact, dim, "k", "k", 1000, key_fraction=0.5, rng=rng
        )
        assert estimate == pytest.approx(30_000, rel=0.35)

    def test_sampled_join_invalid_fraction(self, tables, rng):
        fact, dim = tables
        with pytest.raises(InvalidParameterError):
            sampled_join_sample(fact, dim, "k", "k", 100, key_fraction=0.0)


class TestAggregateDispatch:
    @pytest.fixture
    def model(self, rng):
        x = rng.uniform(0, 10, size=4000)
        y = 4.0 * x + rng.normal(0, 0.1, size=4000)
        return ColumnSetModel.train(
            x, y, table_name="t", x_columns=("x",), y_column="y",
            population_size=4000, config=DBEstConfig(regressor="plr"),
        )

    def test_count_dispatch(self, model):
        value = answer_aggregate(model, AggregateCall("COUNT", "y"), {"x": (2, 8)})
        assert value == pytest.approx(2400, rel=0.1)

    def test_avg_on_x_is_density_based(self, model):
        value = answer_aggregate(model, AggregateCall("AVG", "x"), {"x": (2.0, 8.0)})
        assert value == pytest.approx(5.0, rel=0.05)

    def test_avg_on_y_is_regression_based(self, model):
        value = answer_aggregate(model, AggregateCall("AVG", "y"), {"x": (2.0, 8.0)})
        assert value == pytest.approx(20.0, rel=0.05)

    def test_variance_dispatch_both_ways(self, model):
        var_x = answer_aggregate(
            model, AggregateCall("VARIANCE", "x"), {"x": (2.0, 8.0)}
        )
        var_y = answer_aggregate(
            model, AggregateCall("VARIANCE", "y"), {"x": (2.0, 8.0)}
        )
        # y = 4x, so Var(y) = 16 Var(x).
        assert var_y == pytest.approx(16.0 * var_x, rel=0.2)

    def test_unknown_column_rejected(self, model):
        with pytest.raises(UnsupportedQueryError):
            answer_aggregate(model, AggregateCall("SUM", "zzz"), {"x": (2, 8)})

    def test_percentile_must_target_x(self, model):
        with pytest.raises(UnsupportedQueryError):
            answer_aggregate(
                model, AggregateCall("PERCENTILE", "y", 0.5), {"x": (2, 8)}
            )


class TestQueryResult:
    def test_scalar_accessors(self):
        result = QueryResult(values={"AVG(y)": 4.2})
        assert result.scalar() == 4.2
        assert result.scalar("AVG(y)") == 4.2

    def test_scalar_requires_single_unnamed(self):
        result = QueryResult(values={"A": 1.0, "B": 2.0})
        with pytest.raises(KeyError):
            result.scalar()
        assert result.scalar("B") == 2.0

    def test_groups_accessor(self):
        result = QueryResult(values={"SUM(y)": {1: 10.0, 2: 20.0}})
        assert result.groups()[2] == 20.0
        with pytest.raises(KeyError):
            result.scalar()

    def test_groups_rejects_scalar(self):
        result = QueryResult(values={"AVG(y)": 1.0})
        with pytest.raises(KeyError):
            result.groups()
