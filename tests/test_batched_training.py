"""Parity suite: batched group-by *training* vs the per-group loop oracle.

The scalar per-group training loop in ``GroupByModelSet.train`` is the
reference implementation; the batched trainer
(:mod:`repro.core.batched_train`) must produce the same models — KDE
centres/weights/bandwidths, regressor coefficients and knots, residual
variance state — to 1e-12, and the resulting model sets must answer
every aggregate identically, across modelled groups, raw groups and
point-mass columns.  The shared :class:`GroupPartition`, the segmented
quantile kernel and the weighted chunking helper are unit-tested here
too.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import DBEstConfig, GroupByModelSet
from repro.core.batched_train import (
    GroupPartition,
    segmented_quantiles,
    train_batched_models,
)
from repro.core.model import ColumnSetModel
from repro.core.parallel import chunk_bounds_weighted
from repro.errors import InvalidParameterError
from repro.sql.ast import AggregateCall

RTOL = 1e-12
ATOL = 1e-12


def close(got, expected, context: str = "") -> None:
    """1e-12 agreement (the issue's parameter-parity bound)."""
    np.testing.assert_allclose(
        np.asarray(got), np.asarray(expected),
        rtol=RTOL, atol=ATOL, err_msg=context,
    )


def make_data(n_groups: int = 8, rows: int = 150, seed: int = 3):
    """Mixed workload: modelled, point-mass-x and sample-starved groups."""
    rng = np.random.default_rng(seed)
    n = n_groups * rows
    groups = np.repeat(np.arange(n_groups), rows)
    x = rng.uniform(0.0, 100.0, size=n)
    if n_groups > 3:
        x[groups == 3] = 42.0  # constant column -> point-mass density
    y = (groups + 1.0) * 0.1 * x + rng.normal(0.0, 1.0, size=n)
    # Starve the last two groups in the sample so they become raw groups.
    keep = np.ones(n, dtype=bool)
    for value in (n_groups - 2, n_groups - 1):
        idx = np.flatnonzero(groups == value)
        keep[idx[12:]] = False
    return x, y, groups, keep


def train_pair(
    regressor: str = "plr", seed: int = 3, y: bool = True, **config_kwargs
) -> tuple[GroupByModelSet, GroupByModelSet]:
    """The same sample trained through the batched and the loop path."""
    x, ys, groups, keep = make_data(seed=seed)
    config = DBEstConfig(
        regressor=regressor, min_group_rows=30, random_seed=seed,
        integration_points=65, **config_kwargs,
    )
    kwargs = dict(
        sample_x=x[keep],
        sample_y=ys[keep] if y else None,
        sample_groups=groups[keep],
        full_groups=groups, full_x=x, full_y=ys if y else None,
        table_name="t", x_columns=("x",),
        y_column="y" if y else None,
        group_column="g", config=config,
    )
    return (
        GroupByModelSet.train(batched=True, **kwargs),
        GroupByModelSet.train(batched=False, **kwargs),
    )


def assert_density_parity(batched, scalar, context: str) -> None:
    close(batched._centres, scalar._centres, f"{context}: centres")
    close(batched._weights, scalar._weights, f"{context}: weights")
    close(batched._h, scalar._h, f"{context}: bandwidth")
    close(batched._support, scalar._support, f"{context}: support")
    assert batched._reflect == scalar._reflect, context
    assert (batched._point_mass is None) == (scalar._point_mass is None), context
    if scalar._point_mass is not None:
        close(batched._point_mass, scalar._point_mass, f"{context}: point mass")
    assert batched.n_train == scalar.n_train, context


def assert_regressor_parity(batched, scalar, context: str) -> None:
    if scalar is None:
        assert batched is None, context
        return
    assert type(batched) is type(scalar), context
    coef = getattr(scalar, "_coef", None)
    if coef is not None:
        close(batched._coef, coef, f"{context}: coefficients")
    knots = getattr(scalar, "_knots", None)
    if knots is not None:
        close(batched._knots, knots, f"{context}: knots")
    # Nonlinear regressors (trees, boosters, ensembles) are fitted by the
    # very same calls in both paths; their predictions must agree exactly.
    grid = np.linspace(0.0, 100.0, 257)
    close(batched.predict(grid), scalar.predict(grid),
          f"{context}: predictions")


def assert_model_parity(batched: ColumnSetModel, scalar: ColumnSetModel,
                        context: str) -> None:
    assert_density_parity(batched.density, scalar.density, context)
    assert_regressor_parity(batched.regressor, scalar.regressor, context)
    close(batched.x_domain, scalar.x_domain, f"{context}: domain")
    assert batched.n_sample == scalar.n_sample, context
    assert batched.population_size == scalar.population_size, context
    if scalar._residual_edges is not None:
        close(batched._residual_edges, scalar._residual_edges,
              f"{context}: residual edges")
        close(batched._residual_var, scalar._residual_var,
              f"{context}: residual variance")
    else:
        assert batched._residual_edges is None, context
    close(batched._residual_var_global, scalar._residual_var_global,
          f"{context}: global residual variance")


def assert_set_parity(batched: GroupByModelSet, scalar: GroupByModelSet) -> None:
    assert set(batched.models) == set(scalar.models)
    assert set(batched.raw_groups) == set(scalar.raw_groups)
    for value, expected in scalar.models.items():
        assert_model_parity(batched.models[value], expected, f"group {value}")
    for value, expected in scalar.raw_groups.items():
        got = batched.raw_groups[value]
        np.testing.assert_array_equal(got.x, expected.x)
        if expected.y is None:
            assert got.y is None
        else:
            np.testing.assert_array_equal(got.y, expected.y)
        assert got.population_scale == expected.population_scale


RANGES = (
    {"x": (20.0, 60.0)},          # interior range
    {"x": (41.0, 43.0)},          # narrow, containing the point mass
    {"x": (-50.0, -10.0)},        # disjoint from the domain
    {},                           # no predicate
)


def assert_answer_parity(batched: GroupByModelSet, scalar: GroupByModelSet,
                         y: bool = True) -> None:
    """Both trainings answer every aggregate identically (1e-9)."""
    aggregates = [AggregateCall("AVG", "x"), AggregateCall("PERCENTILE", "x", 0.5)]
    if y:
        aggregates += [
            AggregateCall(func, "y")
            for func in ("COUNT", "SUM", "AVG", "VARIANCE", "STDDEV")
        ]
    for aggregate in aggregates:
        for ranges in RANGES:
            if aggregate.func == "PERCENTILE" and ranges.get("x") == (-50.0, -10.0):
                continue  # disjoint ranges raise on percentiles (both paths)
            got = batched.answer(aggregate, ranges)
            expected = scalar.answer(aggregate, ranges)
            assert set(got) == set(expected)
            for value, answer in expected.items():
                if math.isnan(answer):
                    assert math.isnan(got[value]), (aggregate, ranges, value)
                else:
                    bound = 1e-9 * max(1.0, abs(answer))
                    assert abs(got[value] - answer) <= bound, (
                        f"{aggregate} {ranges} group {value}: "
                        f"{got[value]} vs {answer}"
                    )


# -- model / answer parity across trainer configurations ---------------------


class TestStackedRegressorParity:
    @pytest.mark.parametrize("regressor", ["plr", "linear"])
    def test_models_and_answers(self, regressor):
        batched, scalar = train_pair(regressor=regressor)
        assert_set_parity(batched, scalar)
        assert_answer_parity(batched, scalar)


class TestNonlinearRegressorParity:
    @pytest.mark.parametrize("regressor", ["tree", "gboost", "xgboost", "ensemble"])
    def test_models_and_answers(self, regressor):
        batched, scalar = train_pair(regressor=regressor)
        assert_set_parity(batched, scalar)
        assert_answer_parity(batched, scalar)

    def test_parallel_chunked_fits(self):
        batched, scalar = train_pair(
            regressor="gboost", n_workers=2, parallel_mode="thread"
        )
        assert_set_parity(batched, scalar)


class TestBandwidthParity:
    @pytest.mark.parametrize("bandwidth", ["scott", "silverman", 0.75])
    def test_kde_state(self, bandwidth):
        batched, scalar = train_pair(kde_bandwidth=bandwidth)
        assert_set_parity(batched, scalar)


class TestBinnedKdeParity:
    def test_large_groups_use_identical_histograms(self):
        # 3 groups above the 5000-row binning threshold: the 2-D bincount
        # must replicate np.histogram's bin-index arithmetic exactly.
        rng = np.random.default_rng(11)
        rows = 5200
        groups = np.repeat(np.arange(3), rows)
        x = rng.normal(50.0, 12.0, size=groups.shape[0])
        y = 2.0 * x + rng.normal(0.0, 1.0, size=groups.shape[0])
        config = DBEstConfig(
            regressor="linear", min_group_rows=30, random_seed=11,
            integration_points=65,
        )
        kwargs = dict(
            sample_x=x, sample_y=y, sample_groups=groups,
            full_groups=groups, full_x=x, full_y=y,
            table_name="t", x_columns=("x",), y_column="y",
            group_column="g", config=config,
        )
        batched = GroupByModelSet.train(batched=True, **kwargs)
        scalar = GroupByModelSet.train(batched=False, **kwargs)
        for value, expected in scalar.models.items():
            got = batched.models[value].density
            np.testing.assert_array_equal(got._centres, expected.density._centres)
            np.testing.assert_array_equal(got._weights, expected.density._weights)
        assert_set_parity(batched, scalar)


class TestDensityOnlyParity:
    def test_no_y_column(self):
        batched, scalar = train_pair(y=False)
        assert_set_parity(batched, scalar)
        assert_answer_parity(batched, scalar, y=False)
        assert all(m.regressor is None for m in batched.models.values())


class TestAllRawSet:
    def test_no_modelled_groups(self):
        x, y, groups, keep = make_data()
        config = DBEstConfig(min_group_rows=10**6, random_seed=3)
        model_set = GroupByModelSet.train(
            sample_x=x[keep], sample_y=y[keep], sample_groups=groups[keep],
            full_groups=groups, full_x=x, full_y=y,
            table_name="t", x_columns=("x",), y_column="y", group_column="g",
            config=config,
        )
        assert model_set.models == {}
        assert len(model_set.raw_groups) == 8


# -- routing: default, opt-outs, multivariate sets ---------------------------


class TestTrainerRouting:
    def test_batched_is_the_default(self, monkeypatch):
        calls = []
        original = train_batched_models

        def spy(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(
            "repro.core.groupby.train_batched_models", spy
        )
        train_pair()  # batched=True leg goes through the spy
        assert calls

    @pytest.mark.parametrize("opt_out", ["argument", "config"])
    def test_opt_outs_skip_the_batched_trainer(self, monkeypatch, opt_out):
        def forbidden(*args, **kwargs):
            raise AssertionError("batched trainer called despite opt-out")

        monkeypatch.setattr(
            "repro.core.groupby.train_batched_models", forbidden
        )
        x, y, groups, keep = make_data()
        config = DBEstConfig(
            min_group_rows=30, random_seed=3,
            **({"batched_train": False} if opt_out == "config" else {}),
        )
        model_set = GroupByModelSet.train(
            sample_x=x[keep], sample_y=y[keep], sample_groups=groups[keep],
            full_groups=groups, full_x=x, full_y=y,
            table_name="t", x_columns=("x",), y_column="y", group_column="g",
            config=config,
            **({"batched": False} if opt_out == "argument" else {}),
        )
        assert len(model_set.models) == 6

    def test_multivariate_trains_batched(self):
        # Multivariate sets no longer fall out of the batched trainer:
        # train_batched_models returns real product-kernel models (the
        # deep parity suite lives in tests/test_batched_multivariate.py).
        rng = np.random.default_rng(5)
        n = 200
        x = rng.uniform(0.0, 10.0, size=(n, 2))
        groups = np.repeat(np.arange(2), n // 2)
        part = GroupPartition.from_groups(groups)
        models = train_batched_models(
            sample_x=x,
            sample_y=None,
            sample_part=part,
            modelled_mask=np.ones(2, dtype=bool),
            table_name="t",
            x_columns=("a", "b"),
            y_column=None,
            population={0: 100, 1: 100},
            config=DBEstConfig(),
        )
        assert set(models) == {0, 1}
        assert all(model.n_dims == 2 for model in models.values())

    def test_multivariate_set_trains_through_default_path(self, monkeypatch):
        calls = []
        original = train_batched_models

        def spy(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr("repro.core.groupby.train_batched_models", spy)
        rng = np.random.default_rng(5)
        n = 400
        x = rng.uniform(0.0, 10.0, size=(n, 2))
        groups = np.repeat(np.arange(2), n // 2)
        y = x[:, 0] + x[:, 1] + rng.normal(0.0, 0.1, size=n)
        config = DBEstConfig(
            regressor="linear", min_group_rows=30, random_seed=5
        )
        model_set = GroupByModelSet.train(
            sample_x=x, sample_y=y, sample_groups=groups,
            full_groups=groups, full_x=x, full_y=y,
            table_name="t", x_columns=("a", "b"), y_column="y",
            group_column="g", config=config,
        )
        assert len(model_set.models) == 2
        assert calls  # the batched trainer handled the multivariate set


# -- shared partition / kernel helpers ---------------------------------------


class TestGroupPartition:
    def test_matches_boolean_masks(self):
        rng = np.random.default_rng(9)
        groups = rng.integers(0, 12, size=500)
        part = GroupPartition.from_groups(groups)
        assert part.values.tolist() == np.unique(groups).tolist()
        for g, value in enumerate(part.values.tolist()):
            expected = np.flatnonzero(groups == value)
            np.testing.assert_array_equal(part.rows(g), expected)
        assert part.counts.sum() == groups.shape[0]

    def test_superset_values_get_empty_slices(self):
        groups = np.asarray([1, 1, 3, 3, 3])
        part = GroupPartition.from_groups(
            groups, values=np.asarray([0, 1, 2, 3])
        )
        assert part.rows(0).size == 0
        assert part.rows(2).size == 0
        assert part.counts.tolist() == [0, 2, 0, 3]

    def test_stable_order_within_groups(self):
        groups = np.asarray([2, 1, 2, 1, 2])
        part = GroupPartition.from_groups(groups)
        np.testing.assert_array_equal(part.rows(0), [1, 3])
        np.testing.assert_array_equal(part.rows(1), [0, 2, 4])


class TestSegmentedQuantiles:
    def test_bitwise_match_with_np_quantile(self):
        rng = np.random.default_rng(13)
        counts = np.asarray([1, 2, 7, 40, 301])
        starts = np.concatenate(([0], np.cumsum(counts[:-1])))
        flat = np.concatenate(
            [np.sort(rng.normal(size=c)) for c in counts.tolist()]
        )
        qs = np.asarray([0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0])
        got = segmented_quantiles(flat, starts, counts, qs)
        for g, (start, count) in enumerate(zip(starts, counts)):
            expected = np.quantile(flat[start:start + count], qs)
            np.testing.assert_array_equal(got[g], expected)

    def test_tied_values(self):
        flat = np.asarray([1.0, 1.0, 1.0, 2.0, 2.0])
        got = segmented_quantiles(
            flat, np.asarray([0]), np.asarray([5]), np.asarray([0.25, 0.5])
        )
        np.testing.assert_array_equal(got[0], np.quantile(flat, [0.25, 0.5]))


class TestChunkBoundsWeighted:
    def test_partitions_all_items(self):
        weights = [5.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        bounds = chunk_bounds_weighted(weights, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == len(weights)
        for (_, a_end), (b_start, _) in zip(bounds, bounds[1:]):
            assert a_end == b_start
        assert all(end > start for start, end in bounds)
        assert len(bounds) <= 3

    def test_one_giant_item_does_not_starve_chunks(self):
        bounds = chunk_bounds_weighted([100.0, 1.0, 1.0, 1.0], 3)
        assert len(bounds) == 3
        assert bounds[0] == (0, 1)

    def test_giant_last_item_still_parallelises(self):
        # Regression: a greedy fair-share pass never closed a chunk when
        # the dominant weight sorted last, collapsing to one chunk.
        bounds = chunk_bounds_weighted([1.0] * 30 + [10000.0], 4)
        assert len(bounds) == 4
        assert bounds[-1] == (30, 31)

    def test_minimises_heaviest_chunk(self):
        bounds = chunk_bounds_weighted([4.0, 3.0, 2.0, 6.0, 5.0], 3)
        heaviest = max(
            sum([4.0, 3.0, 2.0, 6.0, 5.0][a:b]) for a, b in bounds
        )
        assert heaviest <= 8.0  # optimal contiguous 3-way split

    def test_degenerate_inputs(self):
        assert chunk_bounds_weighted([], 4) == []
        assert chunk_bounds_weighted([0.0, 0.0], 2) == [(0, 1), (1, 2)]
        assert chunk_bounds_weighted([1.0], 5) == [(0, 1)]
        with pytest.raises(InvalidParameterError):
            chunk_bounds_weighted([1.0], 0)
