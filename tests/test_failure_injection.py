"""Failure-injection tests: corrupt state, degenerate data, edge inputs."""

import numpy as np
import pytest

from repro import DBEst, DBEstConfig, Table
from repro.core import ColumnSetModel, ModelBundle, ModelCatalog, ModelKey
from repro.errors import (
    BundleError,
    CatalogError,
    ModelNotFoundError,
    ModelTrainingError,
    SQLSyntaxError,
)


class TestCorruptState:
    def test_truncated_catalog_file(self, tmp_path, linear_table, fast_config):
        engine = DBEst(config=fast_config)
        engine.register_table(linear_table)
        engine.build_model("linear", x="x", y="y", sample_size=2000)
        path = tmp_path / "catalog.pkl"
        engine.catalog.save(path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CatalogError):
            ModelCatalog.load(path)

    def test_garbage_catalog_file(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        path.write_bytes(b"this is not a pickle")
        with pytest.raises(CatalogError):
            ModelCatalog.load(path)

    def test_catalog_with_wrong_payload_type(self, tmp_path):
        import pickle

        path = tmp_path / "wrong.pkl"
        path.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(CatalogError):
            ModelCatalog.load(path)

    def test_truncated_bundle(self, tmp_path, linear_table, fast_config):
        engine = DBEst(config=fast_config)
        engine.register_table(linear_table)
        key = engine.build_model(
            "linear", x="x", y="y", sample_size=3000, group_by="g"
        )
        bundle = engine.bundle_model(key, tmp_path / "b.pkl")
        bundle.unload()
        bundle.path.write_bytes(
            bundle.path.read_bytes()[: bundle.path.stat().st_size // 3]
        )
        with pytest.raises(BundleError):
            bundle.load()


class TestDegenerateData:
    def test_constant_x_column_point_mass(self, rng):
        x = np.full(500, 42.0)
        y = rng.normal(10.0, 1.0, size=500)
        model = ColumnSetModel.train(
            x, y, table_name="t", x_columns=("x",), y_column="y",
            population_size=5000,
            config=DBEstConfig(regressor="linear", random_seed=1),
        )
        # Any range containing the point holds all mass (BETWEEN inclusive).
        assert model.count({"x": (42.0, 50.0)}) == pytest.approx(5000)
        assert model.count({"x": (0.0, 42.0)}) == pytest.approx(5000)
        assert model.count({"x": (43.0, 50.0)}) == pytest.approx(0.0)
        assert model.avg({"x": (40.0, 45.0)}) == pytest.approx(10.0, rel=0.1)

    def test_constant_y_column(self, rng):
        x = rng.uniform(0, 10, size=500)
        model = ColumnSetModel.train(
            x, np.full(500, 7.0), table_name="t", x_columns=("x",),
            y_column="y", population_size=500,
            config=DBEstConfig(regressor="tree", random_seed=1),
        )
        assert model.avg({"x": (2.0, 8.0)}) == pytest.approx(7.0, abs=0.01)
        assert model.variance_y({"x": (2.0, 8.0)}) == pytest.approx(0.0, abs=0.01)

    def test_nan_in_training_data_rejected(self):
        x = np.asarray([1.0, np.nan, 3.0])
        with pytest.raises(ModelTrainingError):
            ColumnSetModel.train(
                x, None, table_name="t", x_columns=("x",), y_column=None,
                population_size=3,
            )

    def test_single_row_sample(self):
        model = ColumnSetModel.train(
            np.asarray([5.0]), np.asarray([10.0]),
            table_name="t", x_columns=("x",), y_column="y",
            population_size=1000,
            config=DBEstConfig(regressor="linear", random_seed=1),
        )
        assert model.count({"x": (0.0, 10.0)}) == pytest.approx(1000)

    def test_two_distinct_values(self, rng):
        x = np.asarray([1.0, 2.0] * 50)
        y = x * 10.0
        model = ColumnSetModel.train(
            x, y, table_name="t", x_columns=("x",), y_column="y",
            population_size=100,
            config=DBEstConfig(regressor="linear", random_seed=1),
        )
        total = model.count({"x": (0.0, 3.0)})
        assert total == pytest.approx(100, rel=0.05)


class TestEdgeInputs:
    def test_sample_size_larger_than_table(self, linear_table, fast_config):
        engine = DBEst(config=fast_config)
        engine.register_table(linear_table)
        key = engine.build_model(
            "linear", x="x", y="y", sample_size=10 * linear_table.n_rows
        )
        assert engine.build_stats[key]["sample_size"] == linear_table.n_rows

    def test_zero_width_range(self, linear_table, fast_config, truth_engine):
        engine = DBEst(config=fast_config)
        engine.register_table(linear_table)
        engine.build_model("linear", x="x", y="y", sample_size=2000)
        result = engine.execute(
            "SELECT COUNT(y) FROM linear WHERE x BETWEEN 50 AND 50;"
        )
        # A zero-width range over a continuous column holds ~no mass.
        assert result.scalar() == pytest.approx(0.0, abs=50.0)

    def test_reversed_range_is_syntax_error(self, fast_config):
        engine = DBEst(config=fast_config)
        with pytest.raises(SQLSyntaxError):
            engine.execute("SELECT COUNT(y) FROM t WHERE x BETWEEN 9 AND 1;")

    def test_query_after_model_removed(self, linear_table, fast_config):
        engine = DBEst(config=fast_config)
        engine.register_table(linear_table)
        key = engine.build_model("linear", x="x", y="y", sample_size=2000)
        engine.catalog.remove(key)
        with pytest.raises(ModelNotFoundError):
            engine.execute("SELECT AVG(y) FROM linear WHERE x BETWEEN 1 AND 2;")

    def test_rebuild_replaces_model(self, linear_table, fast_config):
        engine = DBEst(config=fast_config)
        engine.register_table(linear_table)
        first = engine.build_model("linear", x="x", y="y", sample_size=1000)
        second = engine.build_model("linear", x="x", y="y", sample_size=2000)
        assert first == second
        assert engine.build_stats[second]["sample_size"] == 2000

    def test_range_entirely_below_domain(self, linear_table, fast_config):
        engine = DBEst(config=fast_config)
        engine.register_table(linear_table)
        engine.build_model("linear", x="x", y="y", sample_size=2000)
        result = engine.execute(
            "SELECT COUNT(y), SUM(y) FROM linear WHERE x BETWEEN -500 AND -400;"
        )
        assert result.values["COUNT(y)"] == pytest.approx(0.0, abs=1.0)
        assert result.values["SUM(y)"] == 0.0

    def test_integer_predicate_column(self, rng, fast_config):
        # Date-key style integer predicates must work end to end.
        table = Table(
            {
                "day": rng.integers(0, 365, size=20_000).astype(np.int64),
                "amount": rng.normal(100.0, 10.0, size=20_000),
            },
            name="t",
        )
        engine = DBEst(config=fast_config)
        engine.register_table(table)
        engine.build_model("t", x="day", y="amount", sample_size=5000)
        truth = float(
            table["amount"][(table["day"] >= 100) & (table["day"] <= 200)].sum()
        )
        estimate = engine.execute(
            "SELECT SUM(amount) FROM t WHERE day BETWEEN 100 AND 200;"
        ).scalar()
        assert estimate == pytest.approx(truth, rel=0.1)

    def test_negative_domain(self, rng, fast_config):
        table = Table(
            {
                "x": rng.uniform(-100.0, -50.0, size=10_000),
                "y": rng.normal(-5.0, 1.0, size=10_000),
            },
            name="neg",
        )
        engine = DBEst(config=fast_config)
        engine.register_table(table)
        engine.build_model("neg", x="x", y="y", sample_size=3000)
        result = engine.execute(
            "SELECT AVG(y) FROM neg WHERE x BETWEEN -90 AND -60;"
        )
        assert result.scalar() == pytest.approx(-5.0, rel=0.05)
