"""Unit tests for the experiment harness."""

import math

import numpy as np
import pytest

from repro import DBEst
from repro.harness import (
    compare_engines,
    format_table,
    print_figure,
    run_workload,
    summarize_by_aggregate,
)
from repro.harness.report import histogram_rows
from repro.harness.runner import per_group_errors, record_error
from repro.harness.timing import stopwatch, total_workload_time
from repro.workloads import generate_range_queries


@pytest.fixture
def dbest(linear_table, fast_config):
    engine = DBEst(config=fast_config)
    engine.register_table(linear_table)
    engine.build_model("linear", x="x", y="y", sample_size=3000)
    return engine


@pytest.fixture
def workload(linear_table):
    return generate_range_queries(
        linear_table, [("x", "y")], n_per_aggregate=2,
        aggregates=("COUNT", "SUM", "AVG"), range_fraction=0.2,
    )


class TestRecordError:
    def test_scalar(self):
        assert record_error(100.0, 110.0) == pytest.approx(0.1)

    def test_nan_truth(self):
        assert math.isnan(record_error(float("nan"), 1.0))

    def test_grouped(self):
        truth = {1: 10.0, 2: 20.0}
        estimate = {1: 11.0, 2: 22.0}
        assert record_error(truth, estimate) == pytest.approx(0.1)

    def test_missing_group_counts_full_error(self):
        truth = {1: 10.0, 2: 20.0}
        estimate = {1: 10.0}
        assert record_error(truth, estimate) == pytest.approx(0.5)

    def test_spurious_groups_ignored(self):
        truth = {1: 10.0}
        estimate = {1: 10.0, 9: 99.0}
        assert record_error(truth, estimate) == 0.0


class TestRunner:
    def test_run_workload_collects_records(self, dbest, truth_engine, workload):
        run = run_workload(dbest, workload, truth_engine)
        assert len(run.records) == len(workload)
        assert run.mean_relative_error() < 0.2
        assert run.mean_latency() > 0
        assert run.total_latency() >= run.mean_latency()

    def test_per_aggregate_breakdown(self, dbest, truth_engine, workload):
        run = run_workload(dbest, workload, truth_engine)
        for aggregate in ("COUNT", "SUM", "AVG"):
            assert not math.isnan(run.mean_relative_error(aggregate))

    def test_compare_engines(self, dbest, truth_engine, workload):
        runs = compare_engines(
            {"DBEst": dbest, "Exact": truth_engine}, workload, truth_engine
        )
        assert set(runs) == {"DBEst", "Exact"}
        # The exact engine scored against itself is error-free.
        assert runs["Exact"].mean_relative_error() == pytest.approx(0.0, abs=1e-12)

    def test_summary_rows(self, dbest, truth_engine, workload):
        runs = compare_engines({"DBEst": dbest}, workload, truth_engine)
        rows = summarize_by_aggregate(runs)
        assert rows[0]["engine"] == "DBEst"
        assert "OVERALL" in rows[0]

    def test_per_group_errors(self, linear_table, fast_config, truth_engine):
        engine = DBEst(config=fast_config)
        engine.register_table(linear_table)
        engine.build_model("linear", x="x", y="y", sample_size=4000, group_by="g")
        errors = per_group_errors(
            engine,
            "SELECT g, AVG(y) FROM linear WHERE x BETWEEN 10 AND 90 GROUP BY g;",
            truth_engine,
        )
        assert set(errors) == set(np.unique(linear_table["g"]).tolist())
        assert all(e < 0.5 for e in errors.values())


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1.0, "b": "x"}, {"a": 2.5, "b": "longer"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, divider, two rows
        assert lines[0].startswith("a")

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_handles_nan_and_extremes(self):
        text = format_table([{"v": float("nan")}, {"v": 1e-9}, {"v": 5e7}])
        assert "nan" in text
        assert "e-" in text or "e+" in text

    def test_print_figure_smoke(self, capsys):
        print_figure("Fig X", "Demo", [{"a": 1}], notes="scaled down")
        out = capsys.readouterr().out
        assert "Fig X" in out and "scaled down" in out

    def test_histogram_rows(self):
        errors = {i: i / 100.0 for i in range(50)}
        rows = histogram_rows(errors, n_bins=5)
        assert sum(r["groups"] for r in rows) == 50

    def test_histogram_empty(self):
        assert histogram_rows({}) == []


class TestTiming:
    def test_stopwatch(self):
        with stopwatch() as timer:
            sum(range(10_000))
        assert timer.seconds > 0

    def test_total_workload_time_parallel_not_slower_x2(self, dbest, workload):
        sequential = total_workload_time(dbest, workload, n_processes=1)
        parallel = total_workload_time(dbest, workload, n_processes=4)
        # Parallel drain must not be drastically slower than sequential.
        assert parallel < 3.0 * sequential + 0.5
