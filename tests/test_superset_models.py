"""Tests for superset-model resolution: a multivariate model answering
lower-dimensional queries by integrating unconstrained dimensions out."""

import numpy as np
import pytest

from repro import DBEst, DBEstConfig, Table
from repro.core import ColumnSetModel, ModelCatalog, ModelKey
from repro.engines import ExactEngine
from repro.errors import ModelNotFoundError


@pytest.fixture
def table_2d(rng):
    a = rng.uniform(0.0, 1.0, size=30_000)
    b = rng.uniform(0.0, 1.0, size=30_000)
    y = 5.0 * a + 2.0 * b + rng.normal(0, 0.05, size=30_000)
    return Table({"a": a, "b": b, "y": y}, name="t2")


class TestCatalogResolution:
    def test_superset_found(self, rng):
        model = ColumnSetModel.train(
            rng.uniform(size=(500, 2)), rng.uniform(size=500),
            table_name="t", x_columns=("a", "b"), y_column="y",
            population_size=500, config=DBEstConfig(regressor="xgboost"),
        )
        catalog = ModelCatalog()
        catalog.register(ModelKey.make("t", ("a", "b"), "y"), model)
        assert catalog.find("t", ("a",), "y") is model
        assert catalog.find("t", ("b",), "y") is model
        assert catalog.find("t", ("a",), None) is model  # COUNT wildcard

    def test_superset_requires_same_y(self, rng):
        model = ColumnSetModel.train(
            rng.uniform(size=(500, 2)), rng.uniform(size=500),
            table_name="t", x_columns=("a", "b"), y_column="y",
            population_size=500, config=DBEstConfig(regressor="xgboost"),
        )
        catalog = ModelCatalog()
        catalog.register(ModelKey.make("t", ("a", "b"), "y"), model)
        with pytest.raises(ModelNotFoundError):
            catalog.find("t", ("a",), "z")

    def test_exact_match_preferred_over_superset(self, rng):
        wide = ColumnSetModel.train(
            rng.uniform(size=(500, 2)), rng.uniform(size=500),
            table_name="t", x_columns=("a", "b"), y_column="y",
            population_size=500, config=DBEstConfig(regressor="xgboost"),
        )
        narrow = ColumnSetModel.train(
            rng.uniform(size=500), rng.uniform(size=500),
            table_name="t", x_columns=("a",), y_column="y",
            population_size=500, config=DBEstConfig(regressor="plr"),
        )
        catalog = ModelCatalog()
        catalog.register(ModelKey.make("t", ("a", "b"), "y"), wide)
        catalog.register(ModelKey.make("t", ("a",), "y"), narrow)
        assert catalog.find("t", ("a",), "y") is narrow

    def test_tightest_superset_preferred(self, rng):
        def train(columns):
            d = len(columns)
            return ColumnSetModel.train(
                rng.uniform(size=(400, d)), rng.uniform(size=400),
                table_name="t", x_columns=columns, y_column="y",
                population_size=400, config=DBEstConfig(regressor="xgboost"),
            )

        catalog = ModelCatalog()
        two = train(("a", "b"))
        catalog.register(ModelKey.make("t", ("a", "b"), "y"), two)
        # A disjoint 2-D model must not be picked for a query on c alone.
        other = train(("c", "d"))
        catalog.register(ModelKey.make("t", ("c", "d"), "y"), other)
        assert catalog.find("t", ("a",), "y") is two
        assert catalog.find("t", ("c",), "y") is other


class TestEndToEnd:
    def test_univariate_query_on_multivariate_model(self, table_2d):
        truth = ExactEngine()
        truth.register_table(table_2d)
        engine = DBEst(config=DBEstConfig(regressor="xgboost", random_seed=3))
        engine.register_table(table_2d)
        # Only the 2-D model exists.
        engine.build_model("t2", x=("a", "b"), y="y", sample_size=10_000)

        sql = "SELECT AVG(y) FROM t2 WHERE a BETWEEN 0.2 AND 0.8;"
        expected = truth.execute(sql).scalar()
        result = engine.execute(sql)
        assert result.source == "model"
        assert result.scalar() == pytest.approx(expected, rel=0.05)

    def test_count_marginalises_correctly(self, table_2d):
        truth = ExactEngine()
        truth.register_table(table_2d)
        engine = DBEst(config=DBEstConfig(regressor="xgboost", random_seed=3))
        engine.register_table(table_2d)
        engine.build_model("t2", x=("a", "b"), y="y", sample_size=10_000)
        sql = "SELECT COUNT(y) FROM t2 WHERE b BETWEEN 0.0 AND 0.5;"
        expected = truth.execute(sql).scalar()
        assert engine.execute(sql).scalar() == pytest.approx(expected, rel=0.1)
