"""Observability substrate: registry, histograms, traces, exposition.

Covers the PR-10 acceptance criteria directly: counters and histograms
stay exact under concurrent writers (a merged snapshot equals the
sequential total), span buffers never outgrow their ring bounds, the
Prometheus text exposition parses line by line against the 0.0.4
grammar, and one served query's top-level trace spans sum to its
observed wall time.
"""

from __future__ import annotations

import json
import math
import re
import threading

import numpy as np
import pytest

from repro.core import DBEst, DBEstConfig
from repro.obs import (
    LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    render_prometheus,
)
from repro.obs.registry import NULL_REGISTRY
from repro.obs.trace import (
    MAX_SPANS,
    Trace,
    TraceBuffer,
    activate,
    deactivate,
    disable_tracing,
    enable_tracing,
    span,
    trace_buffer,
)
from repro.serve import QueryServer
from repro.storage.table import Table


@pytest.fixture(autouse=True)
def _metrics_off_after():
    """Every test leaves the process-global registry/tracer disabled."""
    yield
    disable_metrics()
    disable_tracing()


# -- instruments under concurrency -------------------------------------------


class TestConcurrentInstruments:
    def test_counter_concurrent_increments_all_land(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total")
        n_threads, per_thread = 8, 5000

        def hammer():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("t_total").inc(-1.0)

    def test_histogram_concurrent_equals_sequential(self):
        """Concurrent observes produce the snapshot sequential ones do."""
        rng = np.random.default_rng(7)
        values = rng.uniform(0.0, 2.0, size=8 * 2000)
        sequential = Histogram()
        for v in values:
            sequential.observe(float(v))

        concurrent = Histogram()
        chunks = np.array_split(values, 8)

        def hammer(chunk):
            for v in chunk:
                concurrent.observe(float(v))

        threads = [
            threading.Thread(target=hammer, args=(chunk,))
            for chunk in chunks
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        got, want = concurrent.snapshot(), sequential.snapshot()
        assert got["counts"] == want["counts"]
        assert got["count"] == want["count"]
        assert got["sum"] == pytest.approx(want["sum"])

    def test_histogram_merge_equals_single_writer(self):
        """Per-thread histograms merged == one histogram fed everything."""
        rng = np.random.default_rng(11)
        values = rng.uniform(0.0, 1.0, size=4 * 1000)
        whole = Histogram()
        for v in values:
            whole.observe(float(v))
        shards = [Histogram() for _ in range(4)]
        for shard, chunk in zip(shards, np.array_split(values, 4)):
            for v in chunk:
                shard.observe(float(v))
        merged = shards[0].snapshot()
        for shard in shards[1:]:
            merged = Histogram.merge(merged, shard.snapshot())
        want = whole.snapshot()
        assert merged["counts"] == want["counts"]
        assert merged["count"] == want["count"]
        assert merged["sum"] == pytest.approx(want["sum"])
        assert merged["p50"] == pytest.approx(want["p50"])

    def test_histogram_merge_rejects_mismatched_buckets(self):
        left = Histogram(buckets=(1.0, 2.0)).snapshot()
        right = Histogram(buckets=(1.0, 3.0)).snapshot()
        with pytest.raises(ValueError):
            Histogram.merge(left, right)

    def test_histogram_quantiles_interpolate(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            hist.observe(v)
        snap = hist.snapshot()
        assert 0.0 < snap["p50"] <= 2.0
        assert snap["p99"] <= 4.0
        # The +Inf bucket reports the last finite boundary.
        tail = Histogram(buckets=(1.0,))
        tail.observe(50.0)
        assert tail.quantile(0.99) == 1.0

    def test_labels_address_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("t_total", {"site": "a"}).inc()
        registry.counter("t_total", {"site": "b"}).inc(2)
        assert registry.counter("t_total", {"site": "a"}).value == 1
        assert registry.counter("t_total", {"site": "b"}).value == 2
        # Label order must not mint a new instrument.
        registry.counter("m", {"x": 1, "y": 2}).inc()
        assert registry.counter("m", {"y": 2, "x": 1}).value == 1


# -- the process-global switch ------------------------------------------------


class TestGlobalRegistry:
    def test_disabled_by_default_and_noop(self):
        registry = get_registry()
        assert registry is NULL_REGISTRY
        assert not registry.enabled
        registry.counter("x_total").inc()
        registry.gauge("x").set(5.0)
        registry.histogram("x_seconds").observe(0.1)
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_enable_disable_roundtrip(self):
        live = enable_metrics()
        assert get_registry() is live
        assert live.enabled
        live.counter("x_total").inc()
        assert live.snapshot()["counters"]["x_total"] == 1
        disable_metrics()
        assert get_registry() is NULL_REGISTRY

    def test_collector_registered_while_disabled_survives_enable(self):
        """A stats() source built before enable_metrics still reports."""
        calls = []
        get_registry().collect(lambda reg: calls.append(reg))
        live = enable_metrics()
        live.snapshot()
        assert calls and calls[-1] is live


# -- traces -------------------------------------------------------------------


class TestTraces:
    def test_trace_span_bound_counts_dropped(self):
        trace = Trace("q", max_spans=4)
        for i in range(10):
            trace.add_span(f"s{i}", float(i), float(i) + 0.5)
        assert len(trace.spans) == 4
        assert trace.dropped == 6
        trace.finish()
        assert trace.as_dict()["dropped"] == 6

    def test_buffer_is_a_bounded_ring(self):
        buffer = TraceBuffer(maxlen=8)
        for i in range(100):
            trace = Trace(f"q{i}")
            trace.finish()
            buffer.add(trace)
        assert len(buffer) == 8
        names = [t.name for t in buffer.traces()]
        assert names == [f"q{i}" for i in range(92, 100)]
        snap = buffer.snapshot()
        assert snap["completed"] == 100
        assert snap["buffered"] == 8

    def test_span_noop_without_active_trace(self):
        with span("orphan"):
            pass  # must not raise, must not record anywhere

    def test_spans_nest_and_measure(self):
        trace = Trace("q")
        activate(trace)
        try:
            with span("outer"):
                with span("inner"):
                    pass
        finally:
            deactivate()
        trace.finish()
        by_name = {s.name: s for s in trace.spans}
        assert by_name["inner"].depth == by_name["outer"].depth + 1
        assert by_name["outer"].wall_s >= by_name["inner"].wall_s >= 0.0
        assert "outer" in trace.render()

    def test_enable_tracing_installs_buffer(self):
        assert trace_buffer() is None
        buffer = enable_tracing(maxlen=16)
        assert trace_buffer() is buffer
        disable_tracing()
        assert trace_buffer() is None


# -- Prometheus text exposition ----------------------------------------------

_TYPE_RE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
                      r"(counter|gauge|histogram)$")
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\[\\\"n])*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\[\\\"n])*\")*\})? "
    r"(?:[+-]?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|Inf)|NaN)$"
)


def _assert_valid_exposition(text: str) -> None:
    """Line-by-line grammar check of the 0.0.4 text format."""
    assert text.endswith("\n")
    for line in text.splitlines():
        assert _TYPE_RE.match(line) or _SAMPLE_RE.match(line), (
            f"invalid exposition line: {line!r}"
        )


class TestExposition:
    def test_render_parses_and_is_consistent(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc(3)
        registry.counter("repro_x_total", {"site": 'we"ird\\'}).inc()
        registry.gauge("repro_g").set(2.5)
        hist = registry.histogram("repro_h_seconds")
        for v in (0.0002, 0.003, 0.04, 20.0):
            hist.observe(v)
        text = render_prometheus(registry)
        _assert_valid_exposition(text)
        lines = text.splitlines()
        # Cumulative buckets end at +Inf == _count.
        bucket_values = [
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("repro_h_seconds_bucket")
        ]
        assert bucket_values == sorted(bucket_values)
        assert bucket_values[-1] == 4
        assert 'le="+Inf"' in text
        assert "repro_h_seconds_count 4" in lines
        assert len(bucket_values) == len(LATENCY_BUCKETS) + 1
        # Escaped label survives.
        assert 'site="we\\"ird\\\\"' in text

    def test_snapshot_matches_rendered_values(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(7)
        registry.gauge("b").set(-1.5)
        snap = registry.snapshot()
        assert snap["counters"]["a_total"] == 7
        assert snap["gauges"]["b"] == -1.5
        json.dumps(snap["counters"])  # counters/gauges are JSON-able


# -- end-to-end: a served query explains its own latency ----------------------


@pytest.fixture(scope="module")
def obs_engine():
    rng = np.random.default_rng(5)
    n_groups, rows = 6, 200
    n = n_groups * rows
    g = np.repeat(np.arange(n_groups), rows).astype(np.float64)
    x = rng.uniform(0.0, 100.0, size=n)
    y = (1.0 + 0.1 * g) * x + rng.normal(0.0, 1.0, size=n)
    engine = DBEst(config=DBEstConfig(
        regressor="plr", integration_points=65, min_group_rows=30,
        random_seed=5,
    ))
    engine.register_table(Table({"x": x, "y": y, "g": g}, name="obs"))
    engine.build_model("obs", x="x", y="y", sample_size=n, group_by="g")
    return engine


class TestServingObservability:
    def test_trace_spans_sum_to_observed_wall(self, obs_engine):
        """Top-level spans of every served trace account for its wall
        time within 10% (the PR acceptance criterion)."""
        buffer = enable_tracing()
        workload = [
            f"SELECT AVG(y) FROM obs WHERE x BETWEEN {lo} AND {lo + 30} "
            "GROUP BY g;"
            for lo in (10, 20, 30, 40)
        ]
        with QueryServer(obs_engine, n_workers=2) as server:
            server.run(workload * 2)
        traces = buffer.traces()
        assert len(traces) == len(workload) * 2
        for trace in traces:
            assert trace.wall_s is not None and trace.wall_s > 0.0
            assert trace.outcome in ("model", "cache", "degraded")
            top = [s for s in trace.spans if s.depth == 1]
            covered = sum(s.wall_s for s in top)
            assert covered == pytest.approx(trace.wall_s, rel=0.10)
            assert len(trace.spans) <= MAX_SPANS

    def test_served_metrics_populate_registry(self, obs_engine):
        registry = enable_metrics()
        enable_tracing()  # per-query latency is recorded at trace finish
        workload = [
            "SELECT SUM(y) FROM obs WHERE x BETWEEN 15 AND 65 GROUP BY g;",
            "SELECT AVG(y) FROM obs WHERE x BETWEEN 15 AND 65 GROUP BY g;",
        ]
        with QueryServer(obs_engine, n_workers=2) as server:
            server.run(workload * 3)
            text = render_prometheus(registry)
            snap = registry.snapshot()
        _assert_valid_exposition(text)
        assert snap["histograms"]["repro_serve_query_seconds"]["count"] == 6
        assert snap["counters"]["repro_serve_batch_requests_total"] == 6
        # Kernel hooks fired underneath the serving layer.
        assert snap["histograms"]["repro_kernel_answer_seconds"]["count"] > 0
        # The server's pull collector published its stats() surface.
        assert snap["gauges"]["repro_serve_queries"] == 6
        assert "repro_plan_cache_hits" in snap["gauges"]
        assert "repro_answer_cache_entries" in snap["gauges"]
        p99 = snap["histograms"]["repro_serve_query_seconds"]["p99"]
        assert math.isfinite(p99) and p99 > 0.0

    def test_stats_shapes_are_normalized(self, obs_engine):
        with QueryServer(obs_engine, n_workers=1) as server:
            server.run([
                "SELECT AVG(y) FROM obs WHERE x BETWEEN 5 AND 95 GROUP BY g;"
            ])
            stats = server.stats()
        for cache in (stats["plan_cache"], stats["answer_cache"]):
            for key in ("entries", "max_entries", "hits", "misses",
                        "evictions"):
                assert key in cache, f"missing normalized key {key}"
        # Backward-compatible aliases stay.
        assert stats["plan_cache"]["plans"] == stats["plan_cache"]["entries"]
        # Mutating the returned dicts must not leak into the server.
        stats["plan_cache"]["hits"] = -1
        assert server.stats()["plan_cache"]["hits"] != -1

    def test_overhead_disabled_instrumentation_is_cheap(self, obs_engine):
        """With metrics off the instrumented path is a no-op registry:
        no instruments are minted anywhere in a served pass."""
        assert get_registry() is NULL_REGISTRY
        with QueryServer(obs_engine, n_workers=1) as server:
            server.run([
                "SELECT SUM(y) FROM obs WHERE x BETWEEN 25 AND 75 GROUP BY g;"
            ])
        live = enable_metrics()
        assert live.snapshot()["histograms"] == {}
