"""Unit tests for the workload generators."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.workloads import (
    BEIJING_COLUMN_PAIRS,
    CCPP_COLUMN_PAIRS,
    TPCDS_COLUMN_PAIRS,
    generate_beijing,
    generate_ccpp,
    generate_range_queries,
    generate_store,
    generate_store_sales,
    generate_zipf_join_tables,
    random_range,
    zipf_probabilities,
)
from repro.sql import parse_query
from repro.workloads.queries import generate_join_queries
from repro.workloads.zipf import skewed_key_range, uniform_key_range


class TestStoreSales:
    def test_shape_and_columns(self):
        table = generate_store_sales(10_000)
        assert table.n_rows == 10_000
        for x, y in TPCDS_COLUMN_PAIRS:
            assert x in table and y in table

    def test_57_stores_default(self):
        table = generate_store_sales(50_000)
        assert np.unique(table["ss_store_sk"]).shape[0] == 57

    def test_store_popularity_skewed(self):
        table = generate_store_sales(50_000)
        _values, counts = np.unique(table["ss_store_sk"], return_counts=True)
        assert counts.max() > 3 * counts.min()

    def test_pricing_relations_hold(self):
        table = generate_store_sales(20_000)
        assert (table["ss_wholesale_cost"] <= table["ss_list_price"]).all()
        assert (table["ss_sales_price"] <= table["ss_list_price"]).all()
        np.testing.assert_allclose(
            table["ss_net_paid"],
            table["ss_quantity"] * table["ss_sales_price"],
        )

    def test_wholesale_correlated_with_list_price(self):
        table = generate_store_sales(20_000)
        corr = np.corrcoef(table["ss_list_price"], table["ss_wholesale_cost"])[0, 1]
        assert corr > 0.8

    def test_deterministic_with_seed(self):
        assert generate_store_sales(1000, seed=5) == generate_store_sales(
            1000, seed=5
        )

    def test_invalid_sizes(self):
        with pytest.raises(InvalidParameterError):
            generate_store_sales(0)
        with pytest.raises(InvalidParameterError):
            generate_store_sales(10, n_stores=0)


class TestStore:
    def test_employee_range_matches_tpcds(self):
        store = generate_store(57)
        employees = store["s_number_of_employees"]
        assert employees.min() >= 200
        assert employees.max() <= 300

    def test_join_key_unique(self):
        store = generate_store(57)
        assert np.unique(store["s_store_sk"]).shape[0] == 57


class TestCCPP:
    def test_columns_and_ranges(self):
        table = generate_ccpp(20_000)
        assert set(table.column_names) == {"T", "V", "AP", "RH", "EP"}
        assert table["T"].min() >= 1.81 and table["T"].max() <= 37.11
        assert table["EP"].min() >= 420.26 and table["EP"].max() <= 495.76

    def test_ep_decreases_with_temperature(self):
        table = generate_ccpp(20_000)
        corr = np.corrcoef(table["T"], table["EP"])[0, 1]
        assert corr < -0.8  # the UCI dataset shows a strong negative relation

    def test_column_pairs_exist(self):
        table = generate_ccpp(1000)
        for x, y in CCPP_COLUMN_PAIRS:
            assert x in table and y in table


class TestBeijing:
    def test_columns_and_ranges(self):
        table = generate_beijing(20_000)
        assert set(table.column_names) == {"DEWP", "TEMP", "PRES", "IWS", "PM25"}
        assert table["PM25"].min() >= 0.0
        assert table["PM25"].max() <= 994.0

    def test_dew_point_below_temperature(self):
        table = generate_beijing(10_000)
        assert (table["DEWP"] <= table["TEMP"] + 1e-9).mean() > 0.99

    def test_wind_disperses_pollution(self):
        table = generate_beijing(30_000)
        calm = table["PM25"][table["IWS"] < 10.0]
        windy = table["PM25"][table["IWS"] > 100.0]
        assert calm.mean() > 1.5 * windy.mean()

    def test_column_pairs_exist(self):
        table = generate_beijing(1000)
        for x, y in BEIJING_COLUMN_PAIRS:
            assert x in table and y in table


class TestZipf:
    def test_probabilities_normalised_and_decreasing(self):
        p = zipf_probabilities(100, s=2.0)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(np.diff(p) < 0)

    def test_zipf_shape(self):
        p = zipf_probabilities(10, s=2.0)
        assert p[0] / p[1] == pytest.approx(4.0, rel=1e-6)  # (2/1)^2

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            zipf_probabilities(0)
        with pytest.raises(InvalidParameterError):
            zipf_probabilities(10, s=0.5)

    def test_join_tables_structure(self):
        a, b = generate_zipf_join_tables(
            n_dim_rows=1000, n_fact_rows=50_000, seed=3
        )
        assert set(a.column_names) == {"y", "x"}
        assert set(b.column_names) == {"y", "z"}
        lo, hi = skewed_key_range()
        ulo, uhi = uniform_key_range()
        keys = b["y"]
        assert keys.min() >= lo
        assert keys.max() <= uhi

    def test_skewed_region_is_skewed(self):
        _a, b = generate_zipf_join_tables(n_fact_rows=100_000, seed=3)
        lo, hi = skewed_key_range()
        skewed_keys = b["y"][(b["y"] >= lo) & (b["y"] <= hi)]
        _values, counts = np.unique(skewed_keys, return_counts=True)
        assert counts[0] > 10 * counts[5:].max()  # rank-1 key dominates

    def test_uniform_region_is_uniform(self):
        _a, b = generate_zipf_join_tables(n_fact_rows=100_000, seed=3)
        ulo, uhi = uniform_key_range()
        uniform_keys = b["y"][(b["y"] >= ulo) & (b["y"] <= uhi)]
        _values, counts = np.unique(uniform_keys, return_counts=True)
        assert counts.max() < 1.5 * counts.min()


class TestQueryGeneration:
    def test_random_range_width(self, rng):
        lb, ub = random_range((0.0, 100.0), 0.1, rng)
        assert ub - lb == pytest.approx(10.0)
        assert 0.0 <= lb and ub <= 100.0

    def test_random_range_invalid(self, rng):
        with pytest.raises(InvalidParameterError):
            random_range((5.0, 5.0), 0.1, rng)
        with pytest.raises(InvalidParameterError):
            random_range((0.0, 1.0), 0.0, rng)

    def test_generated_queries_parse(self, linear_table):
        workload = generate_range_queries(
            linear_table, [("x", "y")], n_per_aggregate=3,
            aggregates=("COUNT", "SUM", "AVG", "VARIANCE", "STDDEV", "PERCENTILE"),
        )
        assert len(workload) == 18
        for sql in workload:
            query = parse_query(sql)
            assert query.table == "linear"

    def test_percentile_targets_x(self, linear_table):
        workload = generate_range_queries(
            linear_table, [("x", "y")], n_per_aggregate=1,
            aggregates=("PERCENTILE",),
        )
        query = parse_query(workload.sql[0])
        assert query.aggregates[0].column == "x"

    def test_fraction_cycling(self, linear_table):
        workload = generate_range_queries(
            linear_table, [("x", "y")], n_per_aggregate=4,
            aggregates=("AVG",), range_fraction=[0.01, 0.1],
        )
        assert workload.fractions == [0.01, 0.1, 0.01, 0.1]

    def test_group_by_rendering(self, linear_table):
        workload = generate_range_queries(
            linear_table, [("x", "y")], n_per_aggregate=1,
            aggregates=("SUM",), group_by="g",
        )
        query = parse_query(workload.sql[0])
        assert query.group_by == "g"

    def test_join_queries_parse(self):
        workload = generate_join_queries(
            "store_sales", "store", "ss_store_sk", "s_store_sk",
            "s_number_of_employees", (200.0, 300.0),
            ["ss_net_profit"], n_per_aggregate=2,
        )
        assert len(workload) == 6
        query = parse_query(workload.sql[0])
        assert query.joins[0].table == "store"
