"""Streaming ingest: online reservoirs, incremental partitions, refresh.

Covers the end-to-end append path — :class:`StreamingReservoir` decision
parity with the one-shot Algorithm-L pass, :meth:`GroupPartition.merge`
bit-parity with a from-scratch partition, ``GroupByModelSet.refresh``
against a full retrain on the same final sample, evaluator splicing,
store record generations (``write_refresh`` / ``prune`` /
``changed_keys_since``), engine ``append_rows``, serving through a
republish without stale cache hits, and the new CLI subcommands.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest

from repro.core.batched import BatchedGroupEvaluator
from repro.core.batched_train import GroupPartition
from repro.core.config import DBEstConfig
from repro.core.engine import DBEst
from repro.core.groupby import GroupByModelSet
from repro.errors import InvalidParameterError, ModelTrainingError
from repro.sampling import StreamingReservoir, reservoir_sample_stream
from repro.sql.ast import AggregateCall
from repro.storage.table import Table


class _ScriptedRNG:
    """Duck-typed generator replaying a scripted ``random()`` sequence.

    Falls back to a real generator once the script is exhausted;
    ``integers`` always delegates (slot choice does not matter for the
    guard tests).
    """

    def __init__(self, script):
        self._script = list(script)
        self._real = np.random.default_rng(99)

    def random(self):
        if self._script:
            return self._script.pop(0)
        return self._real.random()

    def integers(self, low, high):
        return self._real.integers(low, high)


class TestReservoirGuards:
    def test_zero_uniform_draw_is_redrawn(self):
        # rng.random() may return exactly 0.0; math.log(0.0) raised
        # before the _log_uniform guard.  The scripted zero lands on the
        # very first draw (Algorithm L's w initialisation).
        rng = _ScriptedRNG([0.0, 0.0, 0.5])
        sample = reservoir_sample_stream(range(100), 2, rng=rng)
        assert len(sample) == 2

    def test_w_rounding_to_one_is_clamped(self):
        # With u one ulp below 1.0 and k >= 4, exp(log(u)/k) rounds to
        # exactly 1.0; unclamped, math.log1p(-1.0) raises ValueError in
        # the skip draw.
        near_one = math.nextafter(1.0, 0.0)
        rng = _ScriptedRNG([near_one] * 8)
        sample = reservoir_sample_stream(range(50), 4, rng=rng)
        assert len(sample) == 4
        assert set(sample) <= set(range(50))

    def test_seeded_pass_is_deterministic(self):
        a = reservoir_sample_stream(range(1000), 16,
                                    rng=np.random.default_rng(42))
        b = reservoir_sample_stream(range(1000), 16,
                                    rng=np.random.default_rng(42))
        assert a == b
        assert len(a) == 16
        assert set(a) <= set(range(1000))

    def test_short_stream_returns_everything(self):
        assert reservoir_sample_stream(range(3), 8) == [0, 1, 2]


def _apply_decisions(sample, batch, decisions):
    """Apply StreamingReservoir edit decisions to a caller-owned list."""
    size_before = len(sample)
    pending = []
    for pos, slot in decisions:
        if slot == -1:
            pending.append(batch[pos])
        elif slot < size_before:
            sample[slot] = batch[pos]
        else:
            pending[slot - size_before] = batch[pos]
    sample.extend(pending)


class TestStreamingReservoir:
    def test_batch_splits_replay_the_one_shot_pass(self):
        # Absorbing a stream in arbitrary batch splits must make exactly
        # the decisions of one sequential Algorithm-L pass with the same
        # generator.
        stream = list(range(1000))
        k = 16
        expected = reservoir_sample_stream(
            stream, k, rng=np.random.default_rng(42)
        )
        for splits in ([1000], [1, 999], [16, 4, 480, 500],
                       [3] * 300 + [100]):
            res = StreamingReservoir(k, seed=42)
            sample: list = []
            start = 0
            for width in splits:
                batch = stream[start:start + width]
                _apply_decisions(sample, batch, res.absorb("g", len(batch)))
                start += width
            assert start == len(stream)
            assert sample == expected, f"split {splits[:4]}... diverged"
            assert res.seen("g") == len(stream)
            assert res.size("g") == k

    def test_seeded_group_bookkeeping(self):
        res = StreamingReservoir(8, seed=1)
        res.seed_group("a", size=8, seen=100)
        sample = list(range(8))
        _apply_decisions(sample, list(range(100, 150)), res.absorb("a", 50))
        assert len(sample) == 8  # full stratum: replacements only
        assert res.seen("a") == 150
        # A growing stratum accepts its first capacity-size rows outright.
        res.seed_group("b", size=4, seen=4, capacity=8)
        sample_b = [0, 1, 2, 3]
        _apply_decisions(sample_b, [10, 11, 12], res.absorb("b", 3))
        assert sample_b == [0, 1, 2, 3, 10, 11, 12]

    def test_seed_group_validation(self):
        res = StreamingReservoir(8)
        with pytest.raises(InvalidParameterError):
            res.seed_group("a", size=8, seen=4)  # seen < size
        with pytest.raises(InvalidParameterError):
            res.seed_group("a", size=8, seen=10, capacity=4)  # cap < size
        res.seed_group("a", size=8, seen=10)
        with pytest.raises(InvalidParameterError):
            res.seed_group("a", size=8, seen=10)  # duplicate

    def test_pickle_roundtrip_continues_identically(self):
        res = StreamingReservoir(8, seed=5)
        res.absorb("g", 200)
        clone = pickle.loads(pickle.dumps(res))
        assert clone.absorb("g", 100) == res.absorb("g", 100)


class TestGroupPartitionMerge:
    def test_from_groups_accepts_unsorted_superset_values(self):
        groups = np.asarray([3, 1, 3, 2, 1])
        clean = GroupPartition.from_groups(
            groups, values=np.asarray([1, 2, 3, 4])
        )
        messy = GroupPartition.from_groups(
            groups, values=np.asarray([4, 2, 1, 3, 2])
        )
        assert np.array_equal(messy.values, clean.values)
        assert np.array_equal(messy.offsets, clean.offsets)
        assert np.array_equal(messy.order, clean.order)

    @staticmethod
    def _assert_merge_matches_rebuild(old_groups, new_groups, values=None):
        part = GroupPartition.from_groups(old_groups, values=values)
        merged, dirty = part.merge(new_groups)
        # A superset `values` persists through merge, so hand the
        # rebuild oracle the same superset (unioned with the delta).
        rebuilt = GroupPartition.from_groups(
            np.concatenate([old_groups, new_groups]),
            values=None if values is None
            else np.union1d(values, new_groups),
        )
        assert np.array_equal(merged.values, rebuilt.values)
        assert np.array_equal(merged.offsets, rebuilt.offsets)
        assert np.array_equal(merged.order, rebuilt.order)
        expect_dirty = np.searchsorted(merged.values, np.unique(new_groups))
        assert np.array_equal(np.sort(dirty), expect_dirty)

    def test_merge_bit_parity_with_rebuild(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            old = rng.integers(0, 20, size=rng.integers(1, 200))
            new = rng.integers(0, 30, size=rng.integers(1, 50))
            self._assert_merge_matches_rebuild(old, new)

    def test_merge_empty_delta_is_identity(self):
        part = GroupPartition.from_groups(np.asarray([2, 1, 2, 0]))
        merged, dirty = part.merge(np.asarray([], dtype=np.int64))
        assert dirty.size == 0
        assert np.array_equal(merged.order, part.order)
        assert np.array_equal(merged.offsets, part.offsets)

    def test_merge_all_new_groups(self):
        self._assert_merge_matches_rebuild(
            np.asarray([0, 0, 1]), np.asarray([5, 4, 5, 4, 4])
        )

    def test_merge_interleaved_duplicates_and_superset(self):
        self._assert_merge_matches_rebuild(
            np.asarray([2, 2, 0, 2, 0]),
            np.asarray([1, 2, 1, 0, 3, 2]),
            values=np.asarray([0, 1, 2, 3, 4]),
        )

    def test_repeated_merges_stay_bit_identical(self):
        rng = np.random.default_rng(11)
        groups = rng.integers(0, 8, size=40)
        part = GroupPartition.from_groups(groups)
        flat = groups
        for _ in range(5):
            delta = rng.integers(0, 12, size=rng.integers(1, 25))
            part, _ = part.merge(delta)
            flat = np.concatenate([flat, delta])
            rebuilt = GroupPartition.from_groups(flat)
            assert np.array_equal(part.order, rebuilt.order)
            assert np.array_equal(part.offsets, rebuilt.offsets)
            assert np.array_equal(part.values, rebuilt.values)


def _ingest_fixture(seed=11, groups=12, rows=300):
    rng = np.random.default_rng(seed)
    n = groups * rows
    g = rng.integers(0, groups, size=n).astype(np.float64)
    x = rng.uniform(0.0, 100.0, size=n)
    y = (1.0 + g * 0.05) * x + rng.normal(0.0, 1.0, size=n)
    config = DBEstConfig(
        regressor="plr", min_group_rows=30, integration_points=65,
        random_seed=seed,
    )
    return rng, g, x, y, config


def _train_kwargs(g, x, y, config):
    return dict(
        full_groups=g, full_x=x, full_y=y,
        table_name="stream", x_columns=("x",), y_column="y",
        group_column="g", config=config,
    )


def _delta(rng, groups, m, lo=0):
    dg = rng.integers(lo, groups, size=m).astype(np.float64)
    dx = rng.uniform(0.0, 100.0, size=m)
    dy = (1.0 + dg * 0.05) * dx + rng.normal(0.0, 1.0, size=m)
    return dg, dx, dy


def _answers(model_set, batched=True):
    ranges = {"x": (20.0, 60.0)}
    out = {}
    for func in ("COUNT", "SUM", "AVG"):
        out[func] = model_set.answer(
            AggregateCall(func, "y"), ranges, batched=batched
        )
    return out


def _assert_answers_close(got, expected, tol=1e-9):
    assert got.keys() == expected.keys()
    for func in expected:
        assert got[func].keys() == expected[func].keys()
        for value, want in expected[func].items():
            have = got[func][value]
            if math.isnan(want) or math.isnan(have):
                assert math.isnan(want) == math.isnan(have)
                continue
            assert abs(have - want) <= tol * max(1.0, abs(want)), (
                func, value, have, want
            )


class TestRefreshParity:
    @pytest.mark.parametrize("batched", [True, False])
    def test_refresh_matches_full_retrain(self, batched):
        # The acceptance oracle: after any sequence of refreshes, the
        # set must answer exactly like a from-scratch train on the same
        # final sample arrays and full data.
        rng, g, x, y, config = _ingest_fixture()
        model_set = GroupByModelSet.train(
            sample_x=x, sample_y=y, sample_groups=g,
            batched=batched, streaming=True, **_train_kwargs(g, x, y, config),
        )
        for round_no in range(3):
            # Round 2 introduces brand-new groups 12..14.
            hi = 12 if round_no < 2 else 15
            dg, dx, dy = _delta(rng, hi, 150)
            dirty = model_set.refresh(dx, dy, dg, batched=batched)
            assert dirty == sorted(np.unique(dg).tolist())
            g = np.concatenate([g, dg])
            x = np.concatenate([x, dx])
            y = np.concatenate([y, dy])
        stream = model_set._stream
        oracle = GroupByModelSet.train(
            sample_x=stream.sample_x.squeeze(axis=1),
            sample_y=stream.sample_y,
            sample_groups=stream.sample_groups,
            batched=batched, **_train_kwargs(g, x, y, config),
        )
        assert set(model_set.models) == set(oracle.models)
        assert set(model_set.raw_groups) == set(oracle.raw_groups)
        _assert_answers_close(
            _answers(model_set, batched=batched),
            _answers(oracle, batched=batched),
        )

    def test_raw_group_promotion(self):
        # A group kept raw (undersampled) must promote to a fitted model
        # once appended rows push its sample over min_group_rows.
        rng, g, x, y, config = _ingest_fixture()
        tiny = np.full(5, 50.0)
        g = np.concatenate([g, tiny])
        x = np.concatenate([x, rng.uniform(0.0, 100.0, size=5)])
        y = np.concatenate([y, x[-5:] * 2.0])
        model_set = GroupByModelSet.train(
            sample_x=x, sample_y=y, sample_groups=g,
            streaming=True, **_train_kwargs(g, x, y, config),
        )
        assert 50.0 in model_set.raw_groups
        dg = np.full(100, 50.0)
        dx = rng.uniform(0.0, 100.0, size=100)
        dy = dx * 2.0 + rng.normal(0.0, 0.5, size=100)
        model_set.refresh(dx, dy, dg)
        assert 50.0 not in model_set.raw_groups
        assert 50.0 in model_set.models

    def test_refresh_guards(self):
        rng, g, x, y, config = _ingest_fixture(groups=4, rows=100)
        plain = GroupByModelSet.train(
            sample_x=x, sample_y=y, sample_groups=g,
            **_train_kwargs(g, x, y, config),
        )
        assert not plain.is_streaming
        with pytest.raises(ModelTrainingError):
            plain.refresh(x[:3], y[:3], g[:3])
        streaming = GroupByModelSet.train(
            sample_x=x, sample_y=y, sample_groups=g,
            streaming=True, **_train_kwargs(g, x, y, config),
        )
        assert streaming.is_streaming
        assert streaming.refresh(x[:0], y[:0], g[:0]) == []
        with pytest.raises(ModelTrainingError):
            streaming.refresh(x[:3], None, g[:3])  # y went missing
        with pytest.raises(ModelTrainingError):
            streaming.refresh(x[:3], y[:3], g[:2])  # row-count mismatch

    def test_refresh_survives_pickle(self):
        rng, g, x, y, config = _ingest_fixture(groups=6, rows=150)
        model_set = GroupByModelSet.train(
            sample_x=x, sample_y=y, sample_groups=g,
            streaming=True, **_train_kwargs(g, x, y, config),
        )
        clone = pickle.loads(pickle.dumps(model_set))
        dg, dx, dy = _delta(rng, 6, 60)
        assert clone.refresh(dx, dy, dg) == model_set.refresh(dx, dy, dg)
        _assert_answers_close(_answers(clone), _answers(model_set), tol=0.0)

    def test_spliced_evaluator_matches_fresh_build(self):
        # Clean groups keep their CSR segments; the spliced stacked
        # state must still be bit-identical to a from-scratch stack.
        rng, g, x, y, config = _ingest_fixture()
        model_set = GroupByModelSet.train(
            sample_x=x, sample_y=y, sample_groups=g,
            streaming=True, **_train_kwargs(g, x, y, config),
        )
        assert model_set.batched_evaluator() is not None  # stack eagerly
        dg, dx, dy = _delta(rng, 12, 120)
        model_set.refresh(dx, dy, dg)
        spliced = model_set.batched_evaluator()
        fresh = BatchedGroupEvaluator.build(model_set)

        def arrays_equal(a, b):
            equal_nan = np.issubdtype(np.asarray(b).dtype, np.floating)
            return np.array_equal(a, b, equal_nan=equal_nan)

        for name in ("_m", "_r"):
            got, want = getattr(spliced, name), getattr(fresh, name)
            if got is None or want is None:
                assert got is want
                continue
            assert set(got) == set(want), name
            for field in want:
                a, b = got[field], want[field]
                if isinstance(b, np.ndarray):
                    assert arrays_equal(a, b), (name, field)
                elif isinstance(b, dict):
                    assert set(a) == set(b)
                    for sub in b:
                        assert arrays_equal(a[sub], b[sub]), (
                            name, field, sub
                        )
                else:
                    assert a == b, (name, field)


def _store_fixture(tmp_path, streaming=True, store_format=None):
    rng, g, x, y, config = _ingest_fixture(groups=8, rows=200)
    engine = DBEst(config=config)
    engine.register_table(Table({"x": x, "y": y, "g": g}, name="stream"))
    key = engine.build_model(
        "stream", x="x", y="y", group_by="g", streaming=streaming
    )
    from repro.serve import ModelStore

    store = ModelStore.write(
        engine.catalog, tmp_path / "models.store", store_format=store_format
    )
    return rng, engine, store, key


class TestStoreGenerations:
    def test_write_refresh_publishes_a_new_generation(self, tmp_path):
        rng, engine, store, key = _store_fixture(tmp_path)
        old_names = {p.name for p in (store.path / "records").iterdir()}
        assert store.version == 0
        model = store.get(key)
        dg, dx, dy = _delta(rng, 8, 80)
        model.refresh(dx[:, None], dy, dg)
        record = store.write_refresh(key, model)
        assert store.version == 1
        assert store.changed_keys_since(0) == {key}
        assert store.changed_keys_since(1) == set()
        names = {p.name for p in (store.path / "records").iterdir()}
        assert record.filename in names
        assert old_names <= names  # superseded generation left on disk
        inventory = store.generations()
        assert [row["filename"] for row in inventory["live"]] \
            == [record.filename]
        assert {row["filename"] for row in inventory["dead"]} == old_names
        # A fresh handle reads the new generation.
        from repro.serve import ModelStore

        reread = ModelStore(store.path).get(key)
        _assert_answers_close(_answers(reread), _answers(model), tol=0.0)

    def test_prune_reclaims_dead_generations(self, tmp_path):
        rng, engine, store, key = _store_fixture(tmp_path)
        model = store.get(key)
        for _ in range(2):
            dg, dx, dy = _delta(rng, 8, 40)
            model.refresh(dx[:, None], dy, dg)
            store.write_refresh(key, model)
        records = store.path / "records"
        assert len(list(records.iterdir())) == 3
        removed = store.prune()
        assert len(removed) == 2
        live = [p.name for p in records.iterdir()]
        assert live == [store.generations()["live"][0]["filename"]]
        # Idempotent.
        assert store.prune() == []

    def test_refresh_roundtrips_through_mmap_records(self, tmp_path):
        # write_refresh of a streaming set into an mmap-format store
        # must keep answering identically (whether it repacks mapped or
        # falls back to pickle is a layout detail).
        rng, engine, store, key = _store_fixture(
            tmp_path, store_format="mmap"
        )
        model = store.get(key)
        hydrate = getattr(model, "_hydrated", None)
        if hydrate is not None:
            model = hydrate()
        dg, dx, dy = _delta(rng, 8, 80)
        model.refresh(dx[:, None], dy, dg)
        store.write_refresh(key, model)
        from repro.serve import ModelStore

        reread = ModelStore(store.path).get(key)
        hydrate = getattr(reread, "_hydrated", None)
        if hydrate is not None:
            reread = hydrate()
        _assert_answers_close(_answers(reread), _answers(model), tol=0.0)


class TestEngineAppendRows:
    def test_append_rows_refreshes_streaming_models(self):
        rng, g, x, y, config = _ingest_fixture(groups=8, rows=200)
        engine = DBEst(config=config)
        engine.register_table(Table({"x": x, "y": y, "g": g}, name="stream"))
        gb_key = engine.build_model(
            "stream", x="x", y="y", group_by="g", streaming=True
        )
        scalar_key = engine.build_model("stream", x="x", y="y")
        n_before = engine.tables["stream"].n_rows
        dg, dx, dy = _delta(rng, 3, 120)  # touch only groups 0..2
        report = engine.append_rows(
            "stream", Table({"x": dx, "y": dy, "g": dg}, name="stream")
        )
        assert report["rows"] == 120
        assert report["skipped"] == [scalar_key]
        assert set(report["refreshed"]) == {gb_key}
        assert report["refreshed"][gb_key] == sorted(np.unique(dg).tolist())
        assert engine.tables["stream"].n_rows == n_before + 120
        # The refreshed model answers like a from-scratch retrain on the
        # same final sample.
        model = engine.catalog.get(gb_key)
        stream = model._stream
        oracle = GroupByModelSet.train(
            sample_x=stream.sample_x.squeeze(axis=1),
            sample_y=stream.sample_y,
            sample_groups=stream.sample_groups,
            **_train_kwargs(
                np.concatenate([g, dg]), np.concatenate([x, dx]),
                np.concatenate([y, dy]), config,
            ),
        )
        _assert_answers_close(_answers(model), _answers(oracle))

    def test_streaming_requires_group_by(self):
        _, g, x, y, config = _ingest_fixture(groups=4, rows=100)
        engine = DBEst(config=config)
        engine.register_table(Table({"x": x, "y": y, "g": g}, name="stream"))
        with pytest.raises(InvalidParameterError):
            engine.build_model("stream", x="x", y="y", streaming=True)


class TestServingThroughRepublish:
    def test_no_stale_answers_and_no_hung_futures(self, tmp_path):
        # The chaos bar: queries racing a store republish must all
        # resolve, and post-republish answers must reflect the refreshed
        # model, never a stale cache entry.
        from repro.serve import ModelStore, QueryServer

        rng, engine, store, key = _store_fixture(tmp_path)
        engine.catalog = store
        sql = ("SELECT COUNT(x) FROM stream "
               "WHERE x BETWEEN 20 AND 60 GROUP BY g;")
        with QueryServer(engine, n_workers=2) as server:
            before = server.run([sql] * 4)  # populate the answer cache
            model = store.get(key)
            dg, dx, dy = _delta(rng, 3, 400)
            model.refresh(dx[:, None], dy, dg)
            futures = [server.submit(sql) for _ in range(3)]
            store.write_refresh(key, model)
            in_flight = [f.result(timeout=30.0) for f in futures]
            after = [f.result(timeout=30.0)
                     for f in [server.submit(sql) for _ in range(4)]]
        assert all(r is not None for r in in_flight)  # zero hung futures
        expected = model.answer(
            AggregateCall("COUNT", "x"), {"x": (20.0, 60.0)}
        )
        for result in after:
            got = result.values["COUNT(x)"]
            for value, want in expected.items():
                assert abs(got[value] - want) <= 1e-9 * max(1.0, abs(want))
        # The refresh visibly moved the touched groups — so matching the
        # refreshed model above proves no stale cache hit survived.
        stale = before[0].values["COUNT(x)"]
        assert any(
            abs(stale[v] - expected[v]) > 1e-6 for v in np.unique(dg)
        )


class TestStreamingCLI:
    def test_refresh_store_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        from repro.storage.csvio import write_csv

        rng, g, x, y, _ = _ingest_fixture(groups=8, rows=200)
        write_csv(Table({"x": x, "y": y, "g": g}, name="base"),
                  tmp_path / "base.csv")
        dg, dx, dy = _delta(rng, 3, 100)
        write_csv(Table({"x": dx, "y": dy, "g": dg}, name="base"),
                  tmp_path / "delta.csv")
        catalog = tmp_path / "models.pkl"
        store = tmp_path / "models.store"
        assert main([
            "build", "--csv", str(tmp_path / "base.csv"), "--table", "base",
            "--x", "x", "--y", "y", "--group-by", "g", "--regressor", "plr",
            "--seed", "3", "--streaming", "--catalog", str(catalog),
        ]) == 0
        assert main([
            "pack-store", "--catalog", str(catalog), "--store", str(store),
        ]) == 0
        capsys.readouterr()
        assert main([
            "refresh-store", "--store", str(store),
            "--csv", str(tmp_path / "delta.csv"), "--table", "base",
        ]) == 0
        out = capsys.readouterr().out
        assert "refreshed base/x->y by g: 3 dirty group(s)" in out
        assert "1 model(s) refreshed" in out
        assert main([
            "store-info", "--store", str(store), "--generations",
        ]) == 0
        out = capsys.readouterr().out
        assert "generations: 1 live, 1 dead" in out
        assert "(reclaimable)" in out
        assert main([
            "refresh-store", "--store", str(store),
            "--csv", str(tmp_path / "delta.csv"), "--table", "base",
            "--prune",
        ]) == 0
        out = capsys.readouterr().out
        assert "pruned 2 superseded record file(s)" in out
        assert len(list((store / "records").iterdir())) == 1

    def test_refresh_store_skips_non_streaming_models(self, tmp_path,
                                                      capsys):
        from repro.cli import main
        from repro.storage.csvio import write_csv

        rng, g, x, y, _ = _ingest_fixture(groups=4, rows=100)
        write_csv(Table({"x": x, "y": y, "g": g}, name="base"),
                  tmp_path / "base.csv")
        catalog = tmp_path / "models.pkl"
        store = tmp_path / "models.store"
        assert main([
            "build", "--csv", str(tmp_path / "base.csv"), "--table", "base",
            "--x", "x", "--y", "y", "--group-by", "g", "--regressor", "plr",
            "--catalog", str(catalog),
        ]) == 0
        assert main([
            "pack-store", "--catalog", str(catalog), "--store", str(store),
        ]) == 0
        capsys.readouterr()
        assert main([
            "refresh-store", "--store", str(store),
            "--csv", str(tmp_path / "base.csv"), "--table", "base",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 model(s) refreshed, 1 left stale" in out
