"""Unit tests for quadrature and root finding."""

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError, QueryExecutionError
from repro.integrate import (
    adaptive_quad,
    bisect,
    integrate_product,
    simpson_integrate,
    simpson_weights,
)


class TestSimpsonWeights:
    def test_pattern(self):
        np.testing.assert_array_equal(
            simpson_weights(5), [1.0, 4.0, 2.0, 4.0, 1.0]
        )

    def test_sum(self):
        # Composite Simpson weights sum to 3 * (n-1) / ... sanity: integrating
        # f=1 over [0, n-1] with h=1 gives n-1.
        n = 9
        assert simpson_weights(n).sum() / 3.0 == pytest.approx(n - 1)

    def test_even_points_rejected(self):
        with pytest.raises(InvalidParameterError):
            simpson_weights(4)

    def test_too_few_points_rejected(self):
        with pytest.raises(InvalidParameterError):
            simpson_weights(1)


class TestSimpsonIntegrate:
    def test_polynomial_exact(self):
        # Simpson is exact for cubics.
        result = simpson_integrate(lambda x: x**3, 0.0, 2.0, n_points=3)
        assert result == pytest.approx(4.0)

    def test_sine(self):
        result = simpson_integrate(np.sin, 0.0, math.pi, n_points=257)
        assert result == pytest.approx(2.0, abs=1e-8)

    def test_zero_width(self):
        assert simpson_integrate(np.sin, 1.0, 1.0) == 0.0

    def test_reversed_bounds_rejected(self):
        with pytest.raises(InvalidParameterError):
            simpson_integrate(np.sin, 2.0, 1.0)

    def test_nonfinite_bounds_rejected(self):
        with pytest.raises(InvalidParameterError):
            simpson_integrate(np.sin, 0.0, math.inf)


class TestAdaptiveQuad:
    def test_gaussian(self):
        norm = 1.0 / math.sqrt(2 * math.pi)
        result = adaptive_quad(
            lambda x: norm * math.exp(-0.5 * x * x), -8.0, 8.0
        )
        assert result == pytest.approx(1.0, abs=1e-8)

    def test_agrees_with_simpson(self):
        f_vec = lambda x: np.exp(-x) * np.sin(3 * x)  # noqa: E731
        f_scalar = lambda x: math.exp(-x) * math.sin(3 * x)  # noqa: E731
        a = simpson_integrate(f_vec, 0.0, 4.0, n_points=513)
        b = adaptive_quad(f_scalar, 0.0, 4.0)
        assert a == pytest.approx(b, abs=1e-6)

    def test_zero_width(self):
        assert adaptive_quad(math.sin, 1.0, 1.0) == 0.0


class TestIntegrateProduct:
    def test_weighted_integral(self):
        # ∫ x * 1 dx over [0,1] = 0.5
        result = integrate_product(
            lambda x: np.ones_like(x), lambda x: x, 0.0, 1.0
        )
        assert result == pytest.approx(0.5)

    def test_none_weight_is_plain_integral(self):
        result = integrate_product(lambda x: 2 * x, None, 0.0, 1.0)
        assert result == pytest.approx(1.0)


class TestBisect:
    def test_sqrt_two(self):
        root = bisect(lambda x: x * x - 2.0, 0.0, 2.0, tol=1e-10)
        assert root == pytest.approx(math.sqrt(2.0), abs=1e-8)

    def test_root_at_endpoint(self):
        assert bisect(lambda x: x, 0.0, 1.0) == 0.0
        assert bisect(lambda x: x - 1.0, 0.0, 1.0) == 1.0

    def test_decreasing_function(self):
        root = bisect(lambda x: 1.0 - x, 0.0, 5.0, tol=1e-10)
        assert root == pytest.approx(1.0, abs=1e-8)

    def test_no_bracket_raises(self):
        with pytest.raises(QueryExecutionError):
            bisect(lambda x: x * x + 1.0, -1.0, 1.0)

    def test_reversed_interval_rejected(self):
        with pytest.raises(InvalidParameterError):
            bisect(lambda x: x, 1.0, 0.0)

    def test_monotone_cdf_style(self):
        # The percentile use-case: find t with F(t) = p.
        cdf = lambda t: 1.0 - math.exp(-t)  # noqa: E731
        p = 0.75
        root = bisect(lambda t: cdf(t) - p, 0.0, 50.0, tol=1e-12)
        assert root == pytest.approx(-math.log(1 - p), abs=1e-9)
