"""Unit tests for the tree learners: CART, GBM, XGBoost-style."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError, ModelTrainingError
from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    XGBRegressor,
)
from repro.ml._histogram import BinnedFeatures, bin_codes, compute_bin_edges


class TestBinnedFeatures:
    def test_codes_within_range(self, rng):
        x = rng.normal(size=(1000, 2))
        binned = BinnedFeatures(x, max_bins=16)
        for j in range(2):
            assert binned.codes[:, j].max() <= binned.n_bins(j) - 1
            assert binned.codes[:, j].min() >= 0

    def test_constant_feature_has_no_edges(self):
        binned = BinnedFeatures(np.full((100, 1), 3.0))
        assert binned.n_bins(0) == 1

    def test_threshold_semantics(self, rng):
        """code <= s  <=>  value <= threshold(s)."""
        x = rng.uniform(0, 1, size=1000)
        edges = compute_bin_edges(x, 16)
        codes = bin_codes(x, edges)
        for s in range(len(edges)):
            np.testing.assert_array_equal(codes <= s, x <= edges[s])

    def test_1d_input_promoted(self, rng):
        binned = BinnedFeatures(rng.normal(size=100))
        assert binned.n_features == 1

    def test_nonfinite_rejected(self):
        with pytest.raises(ModelTrainingError):
            BinnedFeatures(np.asarray([1.0, np.inf]))

    def test_empty_rejected(self):
        with pytest.raises(ModelTrainingError):
            BinnedFeatures(np.empty((0, 1)))


class TestDecisionTree:
    def test_unfitted_raises(self):
        with pytest.raises(ModelTrainingError):
            DecisionTreeRegressor().predict(np.zeros(3))

    def test_fits_step_function_exactly(self, rng):
        x = rng.uniform(0, 1, size=2000)
        y = np.where(x < 0.5, 1.0, 5.0)
        tree = DecisionTreeRegressor(max_depth=2, min_samples_leaf=5).fit(x, y)
        pred = tree.predict(np.asarray([0.2, 0.8]))
        assert pred[0] == pytest.approx(1.0, abs=0.05)
        assert pred[1] == pytest.approx(5.0, abs=0.05)

    def test_depth_zero_predicts_mean(self, rng):
        x = rng.uniform(size=500)
        y = rng.normal(3.0, 1.0, size=500)
        tree = DecisionTreeRegressor(max_depth=0).fit(x, y)
        np.testing.assert_allclose(tree.predict(x), y.mean())
        assert tree.n_leaves == 1

    def test_min_samples_leaf_respected(self, rng):
        x = rng.uniform(size=100)
        y = x.copy()
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=40).fit(x, y)
        # With 100 rows and min leaf 40, at most one split is possible.
        assert tree.n_leaves <= 2

    def test_constant_target_single_leaf(self, rng):
        x = rng.uniform(size=200)
        tree = DecisionTreeRegressor().fit(x, np.full(200, 2.0))
        assert tree.n_leaves == 1
        assert tree.predict(np.asarray([0.5]))[0] == pytest.approx(2.0)

    def test_2d_features(self, rng):
        X = rng.uniform(size=(3000, 2))
        y = np.where(X[:, 1] < 0.5, -1.0, 1.0)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        pred = tree.predict(np.asarray([[0.5, 0.1], [0.5, 0.9]]))
        assert pred[0] < 0 < pred[1]

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ModelTrainingError):
            DecisionTreeRegressor().fit(rng.uniform(size=10), np.zeros(5))

    def test_reduces_training_error_with_depth(self, rng):
        x = rng.uniform(0, 10, size=5000)
        y = np.sin(x)
        shallow = DecisionTreeRegressor(max_depth=2).fit(x, y)
        deep = DecisionTreeRegressor(max_depth=8).fit(x, y)
        err_shallow = np.mean((shallow.predict(x) - y) ** 2)
        err_deep = np.mean((deep.predict(x) - y) ** 2)
        assert err_deep < err_shallow / 4


class TestGradientBoosting:
    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            GradientBoostingRegressor(n_estimators=0)
        with pytest.raises(InvalidParameterError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(InvalidParameterError):
            GradientBoostingRegressor(subsample=1.5)

    def test_unfitted_raises(self):
        with pytest.raises(ModelTrainingError):
            GradientBoostingRegressor().predict(np.zeros(3))

    def test_fits_sine(self, rng):
        x = rng.uniform(0, 2 * np.pi, size=5000)
        y = np.sin(x) + rng.normal(0, 0.05, size=5000)
        model = GradientBoostingRegressor(
            n_estimators=80, learning_rate=0.2, max_depth=3
        ).fit(x, y)
        grid = np.linspace(0.5, 5.5, 50)
        np.testing.assert_allclose(model.predict(grid), np.sin(grid), atol=0.12)

    def test_more_stages_reduce_error(self, rng):
        x = rng.uniform(0, 10, size=3000)
        y = x**2
        few = GradientBoostingRegressor(n_estimators=5).fit(x, y)
        many = GradientBoostingRegressor(n_estimators=80).fit(x, y)
        assert np.mean((many.predict(x) - y) ** 2) < np.mean(
            (few.predict(x) - y) ** 2
        )

    def test_subsample_reproducible_with_seed(self, rng):
        x = rng.uniform(size=2000)
        y = np.sin(6 * x)
        a = GradientBoostingRegressor(
            n_estimators=20, subsample=0.5, random_state=7
        ).fit(x, y)
        b = GradientBoostingRegressor(
            n_estimators=20, subsample=0.5, random_state=7
        ).fit(x, y)
        np.testing.assert_array_equal(a.predict(x), b.predict(x))

    def test_staged_predict_progresses(self, rng):
        x = rng.uniform(size=2000)
        y = 4 * x
        model = GradientBoostingRegressor(n_estimators=30).fit(x, y)
        stages = list(model.staged_predict(x, every=10))
        errors = [np.mean((s - y) ** 2) for s in stages]
        assert errors == sorted(errors, reverse=True)

    def test_n_stages(self, rng):
        model = GradientBoostingRegressor(n_estimators=12).fit(
            rng.uniform(size=500), rng.normal(size=500)
        )
        assert model.n_stages == 12


class TestXGB:
    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            XGBRegressor(n_estimators=-1)
        with pytest.raises(InvalidParameterError):
            XGBRegressor(reg_lambda=-1.0)
        with pytest.raises(InvalidParameterError):
            XGBRegressor(gamma=-0.5)

    def test_unfitted_raises(self):
        with pytest.raises(ModelTrainingError):
            XGBRegressor().predict(np.zeros(3))

    def test_fits_sine(self, rng):
        x = rng.uniform(0, 2 * np.pi, size=5000)
        y = np.sin(x) + rng.normal(0, 0.05, size=5000)
        model = XGBRegressor(
            n_estimators=80, learning_rate=0.2, max_depth=3
        ).fit(x, y)
        grid = np.linspace(0.5, 5.5, 50)
        np.testing.assert_allclose(model.predict(grid), np.sin(grid), atol=0.12)

    def test_heavy_regularisation_flattens(self, rng):
        x = rng.uniform(size=2000)
        y = 10 * x
        light = XGBRegressor(n_estimators=20, reg_lambda=0.1).fit(x, y)
        heavy = XGBRegressor(n_estimators=20, reg_lambda=1e6).fit(x, y)
        # Extreme L2 shrinks leaf weights towards 0 -> predictions near base.
        spread_light = np.ptp(light.predict(x))
        spread_heavy = np.ptp(heavy.predict(x))
        assert spread_heavy < 0.05 * spread_light

    def test_gamma_prunes_splits(self, rng):
        x = rng.uniform(size=2000)
        y = x + rng.normal(0, 0.01, size=2000)
        free = XGBRegressor(n_estimators=1, gamma=0.0, max_depth=6).fit(x, y)
        pruned = XGBRegressor(n_estimators=1, gamma=1e9, max_depth=6).fit(x, y)
        n_free = len(free._trees[0].feature)
        n_pruned = len(pruned._trees[0].feature)
        assert n_pruned < n_free

    def test_2d_features(self, rng):
        X = rng.uniform(size=(4000, 2))
        y = X[:, 0] + 2 * X[:, 1]
        model = XGBRegressor(n_estimators=60, max_depth=4).fit(X, y)
        pred = model.predict(np.asarray([[0.1, 0.1], [0.9, 0.9]]))
        assert pred[0] < pred[1]

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ModelTrainingError):
            XGBRegressor().fit(rng.uniform(size=10), np.zeros(7))
