"""Unit tests for the baseline engines: exact, uniform (VerdictDB-like),
stratified (BlinkDB-like), and the error bounds."""

import numpy as np
import pytest

from repro.engines import (
    ExactEngine,
    StratifiedAQPEngine,
    UniformAQPEngine,
    clt_half_width,
    hoeffding_count_relative_error,
)
from repro.errors import (
    InvalidParameterError,
    QueryExecutionError,
    UnknownTableError,
)
from repro.storage import Table


class TestExactEngine:
    def test_scalar_aggregates_match_numpy(self, linear_table):
        engine = ExactEngine()
        engine.register_table(linear_table)
        x, y = linear_table["x"], linear_table["y"]
        mask = (x >= 20.0) & (x <= 60.0)
        result = engine.execute(
            "SELECT COUNT(y), SUM(y), AVG(y), VARIANCE(y), STDDEV(y) "
            "FROM linear WHERE x BETWEEN 20 AND 60;"
        )
        assert result.values["COUNT(y)"] == mask.sum()
        assert result.values["SUM(y)"] == pytest.approx(y[mask].sum())
        assert result.values["AVG(y)"] == pytest.approx(y[mask].mean())
        assert result.values["VARIANCE(y)"] == pytest.approx(y[mask].var())
        assert result.values["STDDEV(y)"] == pytest.approx(y[mask].std())

    def test_percentile(self, linear_table):
        engine = ExactEngine()
        engine.register_table(linear_table)
        result = engine.execute("SELECT PERCENTILE(x, 0.25) FROM linear;")
        assert result.scalar() == pytest.approx(
            np.quantile(linear_table["x"], 0.25)
        )

    def test_group_by(self, linear_table):
        engine = ExactEngine()
        engine.register_table(linear_table)
        result = engine.execute(
            "SELECT g, AVG(y) FROM linear WHERE x BETWEEN 0 AND 100 GROUP BY g;"
        )
        groups = result.groups()
        assert set(groups) == set(np.unique(linear_table["g"]).tolist())

    def test_empty_selection(self, linear_table):
        engine = ExactEngine()
        engine.register_table(linear_table)
        result = engine.execute(
            "SELECT COUNT(y), SUM(y), AVG(y) FROM linear WHERE x BETWEEN 900 AND 901;"
        )
        assert result.values["COUNT(y)"] == 0.0
        assert result.values["SUM(y)"] == 0.0
        assert np.isnan(result.values["AVG(y)"])

    def test_unknown_table(self):
        engine = ExactEngine()
        with pytest.raises(UnknownTableError):
            engine.execute("SELECT AVG(y) FROM ghost WHERE x BETWEEN 0 AND 1;")

    def test_join_query(self, rng):
        fact = Table(
            {"k": rng.integers(0, 5, size=1000).astype(np.int64),
             "v": np.ones(1000)},
            name="fact",
        )
        dim = Table(
            {"k": np.arange(5, dtype=np.int64),
             "w": np.asarray([0.0, 10.0, 20.0, 30.0, 40.0])},
            name="dim",
        )
        engine = ExactEngine()
        engine.register_table(fact)
        engine.register_table(dim)
        result = engine.execute(
            "SELECT COUNT(v) FROM fact JOIN dim ON k = k WHERE w BETWEEN 15 AND 45;"
        )
        expected = int(np.isin(fact["k"], [2, 3, 4]).sum())
        assert result.scalar() == expected

    def test_sample_mode_scales_count_and_sum(self, linear_table, rng):
        from repro.sampling import uniform_sample_table

        sample = uniform_sample_table(linear_table, 1000, rng=rng)
        engine = ExactEngine()
        engine.register_sample(sample, population_size=linear_table.n_rows)
        sql = "SELECT COUNT(y) FROM linear_sample WHERE x BETWEEN 20 AND 60;"
        estimate = engine.execute(sql).scalar()
        truth = float(
            ((linear_table["x"] >= 20) & (linear_table["x"] <= 60)).sum()
        )
        assert estimate == pytest.approx(truth, rel=0.15)

    def test_sample_smaller_than_population_enforced(self, linear_table):
        engine = ExactEngine()
        with pytest.raises(InvalidParameterError):
            engine.register_sample(linear_table, population_size=10)


class TestUniformAQP:
    @pytest.fixture
    def prepared(self, linear_table):
        engine = UniformAQPEngine(sample_size=2000, random_seed=5)
        engine.register_table(linear_table)
        engine.prepare_table("linear")
        return engine

    def test_avg_unscaled(self, prepared, truth_engine):
        sql = "SELECT AVG(y) FROM linear WHERE x BETWEEN 20 AND 60;"
        truth = truth_engine.execute(sql).scalar()
        assert prepared.execute(sql).scalar() == pytest.approx(truth, rel=0.05)

    def test_count_scaled(self, prepared, truth_engine):
        sql = "SELECT COUNT(y) FROM linear WHERE x BETWEEN 20 AND 60;"
        truth = truth_engine.execute(sql).scalar()
        assert prepared.execute(sql).scalar() == pytest.approx(truth, rel=0.15)

    def test_sum_scaled(self, prepared, truth_engine):
        sql = "SELECT SUM(y) FROM linear WHERE x BETWEEN 20 AND 60;"
        truth = truth_engine.execute(sql).scalar()
        assert prepared.execute(sql).scalar() == pytest.approx(truth, rel=0.15)

    def test_unprepared_table_rejected(self, linear_table):
        engine = UniformAQPEngine(random_seed=5)
        engine.register_table(linear_table)
        with pytest.raises(QueryExecutionError):
            engine.execute("SELECT AVG(y) FROM linear WHERE x BETWEEN 0 AND 1;")

    def test_confidence_interval_covers_truth(self, prepared, truth_engine):
        sql = "SELECT AVG(y) FROM linear WHERE x BETWEEN 10 AND 90;"
        truth = truth_engine.execute(sql).scalar()
        prepared.execute(sql)
        low, high = prepared.last_intervals["AVG(y)"]
        assert low < truth < high

    def test_state_size_reported(self, prepared):
        assert prepared.state_size_bytes() > 0

    def test_group_by(self, prepared, truth_engine):
        sql = "SELECT g, COUNT(y) FROM linear WHERE x BETWEEN 0 AND 100 GROUP BY g;"
        truth = truth_engine.execute(sql).groups()
        estimate = prepared.execute(sql).groups()
        total_truth = sum(truth.values())
        total_estimate = sum(estimate.values())
        assert total_estimate == pytest.approx(total_truth, rel=0.1)

    def test_join_with_universe_sample(self, rng):
        fact = Table(
            {"k": rng.integers(0, 100, size=50_000).astype(np.int64),
             "v": rng.normal(10.0, 1.0, size=50_000)},
            name="fact",
        )
        dim = Table(
            {"k": np.arange(100, dtype=np.int64),
             "w": np.linspace(0, 99, 100)},
            name="dim",
        )
        truth = ExactEngine()
        truth.register_table(fact)
        truth.register_table(dim)
        engine = UniformAQPEngine(random_seed=5)
        engine.register_table(fact)
        engine.register_table(dim)
        engine.prepare_join("fact", "k", key_fraction=0.3)
        sql = (
            "SELECT COUNT(v) FROM fact JOIN dim ON k = k "
            "WHERE w BETWEEN 0 AND 99;"
        )
        expected = truth.execute(sql).scalar()
        assert engine.execute(sql).scalar() == pytest.approx(expected, rel=0.25)

    def test_invalid_sample_size(self):
        with pytest.raises(InvalidParameterError):
            UniformAQPEngine(sample_size=0)


class TestStratifiedAQP:
    @pytest.fixture
    def skewed_table(self, rng):
        """One huge group, one tiny group."""
        groups = np.concatenate([np.zeros(49_000), np.ones(1000)]).astype(np.int64)
        x = rng.uniform(0, 100, size=50_000)
        y = np.where(groups == 0, 10.0, 1000.0) + rng.normal(0, 1, size=50_000)
        return Table({"x": x, "y": y, "g": groups}, name="skewed")

    def test_rare_group_survives(self, skewed_table):
        engine = StratifiedAQPEngine(cap_per_stratum=500, random_seed=5)
        engine.register_table(skewed_table)
        engine.prepare_table("skewed", stratify_on="g")
        result = engine.execute(
            "SELECT g, AVG(y) FROM skewed WHERE x BETWEEN 0 AND 100 GROUP BY g;"
        )
        groups = result.groups()
        assert set(groups) == {0, 1}
        assert groups[1] == pytest.approx(1000.0, rel=0.05)

    def test_count_reweighted(self, skewed_table):
        engine = StratifiedAQPEngine(cap_per_stratum=500, random_seed=5)
        engine.register_table(skewed_table)
        engine.prepare_table("skewed", stratify_on="g")
        result = engine.execute(
            "SELECT COUNT(y) FROM skewed WHERE x BETWEEN 0 AND 100;"
        )
        assert result.scalar() == pytest.approx(50_000, rel=0.02)

    def test_sum_reweighted(self, skewed_table):
        engine = StratifiedAQPEngine(cap_per_stratum=500, random_seed=5)
        engine.register_table(skewed_table)
        engine.prepare_table("skewed", stratify_on="g")
        truth = float(skewed_table["y"].sum())
        result = engine.execute(
            "SELECT SUM(y) FROM skewed WHERE x BETWEEN 0 AND 100;"
        )
        assert result.scalar() == pytest.approx(truth, rel=0.05)

    def test_sample_size_translated_to_cap(self, skewed_table):
        engine = StratifiedAQPEngine(random_seed=5)
        engine.register_table(skewed_table)
        engine.prepare_table("skewed", stratify_on="g", sample_size=1000)
        assert engine.state_size_bytes() > 0
        assert engine._samples["skewed"].n_rows <= 1001

    def test_joins_rejected(self, skewed_table):
        engine = StratifiedAQPEngine(random_seed=5)
        engine.register_table(skewed_table)
        engine.prepare_table("skewed", stratify_on="g")
        with pytest.raises(QueryExecutionError):
            engine.execute(
                "SELECT AVG(y) FROM skewed JOIN other ON g = g2 "
                "WHERE x BETWEEN 0 AND 1;"
            )

    def test_unprepared_rejected(self, skewed_table):
        engine = StratifiedAQPEngine(random_seed=5)
        engine.register_table(skewed_table)
        with pytest.raises(QueryExecutionError):
            engine.execute("SELECT AVG(y) FROM skewed WHERE x BETWEEN 0 AND 1;")

    def test_invalid_cap(self):
        with pytest.raises(InvalidParameterError):
            StratifiedAQPEngine(cap_per_stratum=0)


class TestBounds:
    def test_hoeffding_formula(self):
        assert hoeffding_count_relative_error(0.1, 10_000) == pytest.approx(
            1.22 / (0.1 * 100.0)
        )

    def test_hoeffding_decreases_with_n(self):
        assert hoeffding_count_relative_error(0.1, 40_000) < (
            hoeffding_count_relative_error(0.1, 10_000)
        )

    def test_hoeffding_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            hoeffding_count_relative_error(0.0, 100)
        with pytest.raises(InvalidParameterError):
            hoeffding_count_relative_error(0.5, 0)

    def test_clt_half_width(self):
        assert clt_half_width(2.0, 400, 0.95) == pytest.approx(
            1.96 * 2.0 / 20.0, rel=1e-3
        )

    def test_clt_coverage_empirically(self, rng):
        # ~95% of CLT intervals should contain the true mean.
        true_mean, covered = 5.0, 0
        trials = 300
        for _ in range(trials):
            sample = rng.normal(true_mean, 2.0, size=200)
            half = clt_half_width(float(sample.std()), 200, 0.95)
            if abs(sample.mean() - true_mean) <= half:
                covered += 1
        assert 0.90 <= covered / trials <= 0.99

    def test_clt_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            clt_half_width(1.0, 0)
        with pytest.raises(InvalidParameterError):
            clt_half_width(-1.0, 10)
        with pytest.raises(InvalidParameterError):
            clt_half_width(1.0, 10, confidence=0.5)
