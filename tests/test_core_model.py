"""Unit tests for ColumnSetModel: the density+regression model unit."""

import numpy as np
import pytest

from repro.core import ColumnSetModel, DBEstConfig
from repro.errors import (
    InvalidParameterError,
    ModelTrainingError,
    UnsupportedQueryError,
)


@pytest.fixture
def linear_model(rng):
    """Model over x ~ U(0,100), y = 3x + 7 + noise, N = 1e6 'population'."""
    x = rng.uniform(0.0, 100.0, size=8000)
    y = 3.0 * x + 7.0 + rng.normal(0.0, 2.0, size=8000)
    return ColumnSetModel.train(
        x,
        y,
        table_name="t",
        x_columns=("x",),
        y_column="y",
        population_size=1_000_000,
        config=DBEstConfig(regressor="plr", random_seed=3),
    )


class TestTraining:
    def test_empty_sample_rejected(self):
        with pytest.raises(ModelTrainingError):
            ColumnSetModel.train(
                np.asarray([]), None, table_name="t", x_columns=("x",),
                y_column=None, population_size=10,
            )

    def test_column_count_mismatch(self, rng):
        with pytest.raises(ModelTrainingError):
            ColumnSetModel.train(
                rng.uniform(size=(100, 2)), None, table_name="t",
                x_columns=("x",), y_column=None, population_size=10,
            )

    def test_xy_length_mismatch(self, rng):
        with pytest.raises(ModelTrainingError):
            ColumnSetModel.train(
                rng.uniform(size=100), rng.uniform(size=50), table_name="t",
                x_columns=("x",), y_column="y", population_size=10,
            )

    def test_density_only_model(self, rng):
        model = ColumnSetModel.train(
            rng.uniform(size=1000), None, table_name="t", x_columns=("x",),
            y_column=None, population_size=1000,
        )
        assert model.regressor is None
        assert model.count({"x": (0.2, 0.8)}) > 0

    def test_regression_aggregate_requires_y(self, rng):
        model = ColumnSetModel.train(
            rng.uniform(size=1000), None, table_name="t", x_columns=("x",),
            y_column=None, population_size=1000,
        )
        with pytest.raises(UnsupportedQueryError):
            model.avg({"x": (0.2, 0.8)})

    @pytest.mark.parametrize(
        "regressor", ["gboost", "xgboost", "plr", "linear", "tree", "ensemble"]
    )
    def test_all_regressor_backends_train(self, rng, regressor):
        x = rng.uniform(0, 10, size=1500)
        y = 2.0 * x + rng.normal(0, 0.1, size=1500)
        model = ColumnSetModel.train(
            x, y, table_name="t", x_columns=("x",), y_column="y",
            population_size=1500,
            config=DBEstConfig(regressor=regressor, random_seed=3),
        )
        assert model.avg({"x": (2.0, 8.0)}) == pytest.approx(10.0, rel=0.15)


class TestAggregates:
    def test_count_accuracy(self, linear_model):
        # Uniform density: 20% of the domain holds ~20% of a 1M population.
        estimate = linear_model.count({"x": (20.0, 40.0)})
        assert estimate == pytest.approx(200_000, rel=0.05)

    def test_avg_accuracy(self, linear_model):
        # E[y | 20 <= x <= 40] = 3*30 + 7 = 97 for uniform x.
        assert linear_model.avg({"x": (20.0, 40.0)}) == pytest.approx(97.0, rel=0.02)

    def test_sum_equals_count_times_avg(self, linear_model):
        ranges = {"x": (10.0, 60.0)}
        total = linear_model.sum_(ranges)
        assert total == pytest.approx(
            linear_model.count(ranges) * linear_model.avg(ranges)
        )

    def test_variance_y_accuracy(self, linear_model):
        # Var(3x + 7 + eps) on x ~ U(20, 40): 9 * (20^2/12) + 4 = 304.
        estimate = linear_model.variance_y({"x": (20.0, 40.0)})
        assert estimate == pytest.approx(304.0, rel=0.15)

    def test_stddev_is_sqrt_of_variance(self, linear_model):
        ranges = {"x": (20.0, 40.0)}
        assert linear_model.stddev_y(ranges) == pytest.approx(
            np.sqrt(linear_model.variance_y(ranges))
        )

    def test_variance_x_accuracy(self, linear_model):
        # Var(x) for x ~ U(20, 40) is 400/12.
        estimate = linear_model.variance_x({"x": (20.0, 40.0)})
        assert estimate == pytest.approx(400.0 / 12.0, rel=0.15)

    def test_percentile_median(self, linear_model):
        # Median of U(0, 100) is 50.
        assert linear_model.percentile(0.5) == pytest.approx(50.0, abs=2.0)

    def test_percentile_monotone_in_p(self, linear_model):
        values = [linear_model.percentile(p) for p in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert values == sorted(values)

    def test_percentile_conditional_on_range(self, linear_model):
        # Median within [20, 40] for uniform x is 30.
        estimate = linear_model.percentile(0.5, {"x": (20.0, 40.0)})
        assert estimate == pytest.approx(30.0, abs=1.5)

    def test_percentile_invalid_p(self, linear_model):
        with pytest.raises(InvalidParameterError):
            linear_model.percentile(1.5)

    def test_empty_range_semantics(self, linear_model):
        ranges = {"x": (500.0, 600.0)}  # far outside the domain
        assert linear_model.count(ranges) == pytest.approx(0.0, abs=1.0)
        assert linear_model.sum_(ranges) == 0.0
        assert np.isnan(linear_model.avg(ranges))
        assert np.isnan(linear_model.variance_y(ranges))

    def test_full_domain_count_is_population(self, linear_model):
        estimate = linear_model.count({"x": (-1000.0, 1000.0)})
        assert estimate == pytest.approx(1_000_000, rel=0.01)

    def test_reversed_range_rejected(self, linear_model):
        with pytest.raises(InvalidParameterError):
            linear_model.count({"x": (40.0, 20.0)})

    def test_predict_y(self, linear_model):
        predictions = linear_model.predict_y(np.asarray([10.0, 50.0]))
        np.testing.assert_allclose(
            predictions, [37.0, 157.0], atol=3.0
        )


class TestMultivariate:
    @pytest.fixture
    def model_2d(self, rng):
        x = rng.uniform(0.0, 1.0, size=(12_000, 2))
        y = 5.0 * x[:, 0] + 2.0 * x[:, 1] + rng.normal(0, 0.05, size=12_000)
        return ColumnSetModel.train(
            x, y, table_name="t", x_columns=("a", "b"), y_column="y",
            population_size=100_000,
            config=DBEstConfig(regressor="xgboost", random_seed=3),
        )

    def test_count_over_box(self, model_2d):
        estimate = model_2d.count({"a": (0.0, 0.5), "b": (0.0, 0.5)})
        assert estimate == pytest.approx(25_000, rel=0.1)

    def test_avg_over_box(self, model_2d):
        # E[5a + 2b] over a,b ~ U(0.2, 0.8)^2 is 5*0.5 + 2*0.5 = 3.5.
        estimate = model_2d.avg({"a": (0.2, 0.8), "b": (0.2, 0.8)})
        assert estimate == pytest.approx(3.5, rel=0.1)

    def test_unconstrained_dim_defaults_to_domain(self, model_2d):
        # Only constraining a: b integrates over its whole domain.
        constrained = model_2d.count({"a": (0.0, 0.5)})
        assert constrained == pytest.approx(50_000, rel=0.1)

    def test_percentile_rejected_for_2d(self, model_2d):
        with pytest.raises(UnsupportedQueryError):
            model_2d.percentile(0.5)

    def test_variance_x_rejected_for_2d(self, model_2d):
        with pytest.raises(UnsupportedQueryError):
            model_2d.variance_x({"a": (0.0, 1.0)})


class TestIntegrationMethods:
    def test_quad_matches_simpson(self, rng):
        x = rng.uniform(0, 10, size=3000)
        y = x**1.5
        common = dict(
            table_name="t", x_columns=("x",), y_column="y", population_size=3000
        )
        simpson = ColumnSetModel.train(
            x, y, config=DBEstConfig(regressor="plr", integration_method="simpson"),
            **common,
        )
        quad = ColumnSetModel.train(
            x, y, config=DBEstConfig(regressor="plr", integration_method="quad"),
            **common,
        )
        ranges = {"x": (2.0, 8.0)}
        assert simpson.avg(ranges) == pytest.approx(quad.avg(ranges), rel=0.02)
        assert simpson.count(ranges) == pytest.approx(quad.count(ranges), rel=0.02)


class TestIntrospection:
    def test_size_bytes_positive_and_small(self, linear_model):
        size = linear_model.size_bytes()
        assert 0 < size < 5_000_000  # models are compact

    def test_repr(self, linear_model):
        text = repr(linear_model)
        assert "t" in text and "x" in text

    def test_picklable(self, linear_model):
        import pickle

        restored = pickle.loads(pickle.dumps(linear_model))
        assert restored.avg({"x": (20.0, 40.0)}) == pytest.approx(
            linear_model.avg({"x": (20.0, 40.0)})
        )
