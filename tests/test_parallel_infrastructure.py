"""Unit tests for the parallel infrastructure added for §4.7:
chunking, persistent pools, BLAS capping, and process-mode throughput."""

import numpy as np
import pytest

from repro import DBEst, DBEstConfig
from repro.core.parallel import chunk_items, get_pool, limit_blas_threads
from repro.errors import InvalidParameterError
from repro.harness.timing import total_workload_time


class TestChunking:
    def test_even_split(self):
        chunks = chunk_items(list(range(10)), 5)
        assert [len(c) for c in chunks] == [2, 2, 2, 2, 2]

    def test_remainder_spread(self):
        chunks = chunk_items(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]

    def test_more_chunks_than_items(self):
        chunks = chunk_items([1, 2], 10)
        assert chunks == [[1], [2]]

    def test_preserves_order(self):
        chunks = chunk_items(list(range(17)), 4)
        assert [x for chunk in chunks for x in chunk] == list(range(17))

    def test_single_chunk(self):
        assert chunk_items([1, 2, 3], 1) == [[1, 2, 3]]

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            chunk_items([1], 0)


class TestPools:
    def test_pool_reused(self):
        a = get_pool("thread", 2)
        b = get_pool("thread", 2)
        assert a is b

    def test_distinct_keys_distinct_pools(self):
        assert get_pool("thread", 2) is not get_pool("thread", 3)

    def test_invalid_mode(self):
        with pytest.raises(InvalidParameterError):
            get_pool("fibers", 2)

    def test_too_small(self):
        with pytest.raises(InvalidParameterError):
            get_pool("thread", 1)


class TestBlasCap:
    def test_idempotent_and_boolean(self):
        first = limit_blas_threads(1)
        second = limit_blas_threads(1)
        assert isinstance(first, bool)
        # Once limited, stays reported as limited.
        if first:
            assert second is True


class TestProcessParallelGroupBy:
    @pytest.fixture
    def engine(self, linear_table):
        config = DBEstConfig(
            regressor="plr", min_group_rows=20, random_seed=5,
            parallel_mode="process",
        )
        engine = DBEst(config=config)
        engine.register_table(linear_table)
        engine.build_model("linear", x="x", y="y", sample_size=4000, group_by="g")
        return engine

    def test_process_mode_matches_sequential(self, engine):
        sql = "SELECT g, SUM(y) FROM linear WHERE x BETWEEN 20 AND 80 GROUP BY g;"
        engine.config.n_workers = 1
        sequential = engine.execute(sql).groups()
        engine.config.n_workers = 3
        parallel = engine.execute(sql).groups()
        assert set(sequential) == set(parallel)
        for key in sequential:
            assert parallel[key] == pytest.approx(sequential[key])

    def test_thread_mode_matches_sequential(self, engine):
        sql = "SELECT g, AVG(y) FROM linear WHERE x BETWEEN 20 AND 80 GROUP BY g;"
        engine.config.n_workers = 1
        sequential = engine.execute(sql).groups()
        engine.config.parallel_mode = "thread"
        engine.config.n_workers = 3
        parallel = engine.execute(sql).groups()
        for key in sequential:
            assert parallel[key] == pytest.approx(sequential[key])


class TestThroughputTiming:
    @pytest.fixture
    def engine(self, linear_table, fast_config):
        engine = DBEst(config=fast_config)
        engine.register_table(linear_table)
        engine.build_model("linear", x="x", y="y", sample_size=2000)
        return engine

    @pytest.fixture
    def queries(self):
        return [
            f"SELECT AVG(y) FROM linear WHERE x BETWEEN {a} AND {a + 10};"
            for a in range(0, 80, 10)
        ]

    def test_sequential_positive(self, engine, queries):
        assert total_workload_time(engine, queries, n_processes=1) > 0

    def test_thread_mode(self, engine, queries):
        assert total_workload_time(
            engine, queries, n_processes=2, mode="thread"
        ) > 0

    def test_process_mode_runs(self, engine, queries):
        elapsed = total_workload_time(
            engine, queries, n_processes=2, mode="process"
        )
        assert elapsed > 0


class TestRawGroupScaling:
    def test_population_scale_applies_to_count_and_sum(self):
        from repro.core.groupby import RawGroup
        from repro.sql.ast import AggregateCall

        raw = RawGroup(
            np.asarray([1.0, 2.0, 3.0]),
            np.asarray([10.0, 20.0, 30.0]),
            population_scale=4.0,
        )
        ranges = {"x": (0.0, 10.0)}
        assert raw.answer(AggregateCall("COUNT", "y"), ranges, ("x",)) == 12.0
        assert raw.answer(AggregateCall("SUM", "y"), ranges, ("x",)) == 240.0
        # Ratio statistics are scale-free.
        assert raw.answer(AggregateCall("AVG", "y"), ranges, ("x",)) == 20.0

    def test_join_groupby_counts_scale_to_population(self, rng):
        from repro import Table

        fact = Table(
            {
                "k": rng.integers(1, 6, size=30_000).astype(np.int64),
                "m": rng.normal(10.0, 1.0, size=30_000),
            },
            name="fact",
        )
        dim = Table(
            {
                "k": np.arange(1, 6, dtype=np.int64),
                "attr": np.linspace(0.0, 100.0, 5),
            },
            name="dim",
        )
        engine = DBEst(
            config=DBEstConfig(regressor="plr", min_group_rows=30, random_seed=5)
        )
        engine.register_table(fact)
        engine.register_table(dim)
        engine.build_join_model(
            "fact", "dim", "k", "k", x="attr", y="m",
            sample_size=3000, group_by="k",
        )
        sql = (
            "SELECT k, COUNT(m) FROM fact JOIN dim ON k = k "
            "WHERE attr BETWEEN 0 AND 100 GROUP BY k;"
        )
        groups = engine.execute(sql).groups()
        assert sum(groups.values()) == pytest.approx(30_000, rel=0.1)
