"""Bit-parity and lifecycle tests for the mapped (zero-copy) store format.

The acceptance criterion, asserted directly: a store written with
``store_format="mmap"`` must answer every aggregate *bit-identically*
to the same catalog served from pickle records — group-by and scalar,
univariate and multivariate, through eviction cycles — while loading
group-by sets as :class:`MappedGroupByModelSet` views over the record
file and pickling worker segments as path references instead of CSR
arrays.  Corruption/quarantine and transient-retry semantics from the
fault-injection seam must carry over unchanged, and rewrites must
never unlink a record file a live evaluator still has mapped.
"""

from __future__ import annotations

import gc
import pickle
import struct
from pathlib import Path

import numpy as np
import pytest

from repro.core import DBEst, DBEstConfig, ModelKey
from repro.errors import CatalogError, CorruptRecordError
from repro.serve import (
    STORE_LOAD,
    FaultInjector,
    MappedGroupByModelSet,
    ModelStore,
)
from repro.serve import store as store_mod
from repro.sql.ast import AggregateCall
from repro.storage.table import Table

GROUP_KEY = ModelKey.make("traffic", ("x",), "y", "g")
SCALAR_KEY = ModelKey.make("traffic", ("x",), "y")
MULTI_KEY = ModelKey.make("traffic", ("x", "z"), "y")

AGGREGATES = [
    AggregateCall("COUNT", "x"),
    AggregateCall("SUM", "y"),
    AggregateCall("AVG", "y"),
    AggregateCall("VARIANCE", "y"),
    AggregateCall("PERCENTILE", "x", 0.5),
]
RANGES = [
    {"x": (20.0, 60.0)},
    {"x": (10.0, 80.0)},
    {"x": (55.0, 55.0)},
]


@pytest.fixture(scope="module")
def engine():
    """Scalar, group-by (with a raw group), and multivariate models —
    every record shape the mapped format must either map or fall back
    on."""
    rng = np.random.default_rng(47)
    n_groups, rows = 10, 240
    n = n_groups * rows
    g = np.repeat(np.arange(n_groups), rows).astype(np.float64)
    keep = (g != 0) | (np.arange(n) % rows < 10)  # group 0 stays raw
    g = g[keep]
    x = rng.uniform(0.0, 100.0, size=g.size)
    z = rng.uniform(-5.0, 5.0, size=g.size)
    y = (1.0 + 0.1 * g) * x + 0.5 * z + rng.normal(0.0, 1.0, size=g.size)
    table = Table({"x": x, "z": z, "y": y, "g": g}, name="traffic")
    config = DBEstConfig(
        regressor="plr", integration_points=65, min_group_rows=30,
        random_seed=47,
    )
    engine = DBEst(config=config)
    engine.register_table(table)
    engine.build_model("traffic", x="x", y="y", sample_size=g.size,
                       group_by="g")
    engine.build_model("traffic", x="x", y="y", sample_size=g.size)
    multi = DBEst(config=DBEstConfig(
        regressor="linear", integration_points=65, min_group_rows=30,
        random_seed=47,
    ))
    multi.register_table(table)
    multi.catalog = engine.catalog
    multi.build_model("traffic", x=("x", "z"), y="y", sample_size=g.size)
    return engine


@pytest.fixture(scope="module")
def stores(engine, tmp_path_factory):
    root = tmp_path_factory.mktemp("stores")
    pickle_store = ModelStore.write(
        engine.catalog, root / "pickle", store_format="pickle"
    )
    mmap_store = ModelStore.write(
        engine.catalog, root / "mmap", store_format="mmap"
    )
    return pickle_store, mmap_store


def _answer(model, aggregate, ranges):
    from repro.core import answer_aggregate

    if hasattr(model, "answer"):
        return model.answer(aggregate, ranges)
    return answer_aggregate(model, aggregate, ranges)


def _assert_identical(expected, got):
    """Bit-exact for floats; group-by dicts compare per group value."""
    if isinstance(expected, dict):
        assert set(expected) == set(got)
        for value in expected:
            _assert_identical(expected[value], got[value])
    elif isinstance(expected, float) and np.isnan(expected):
        assert np.isnan(got)
    else:
        assert expected == got


class TestBitParity:
    def test_groupby_loads_mapped_pickle_loads_heap(self, stores):
        pickle_store, mmap_store = stores
        assert not isinstance(
            pickle_store.get(GROUP_KEY), MappedGroupByModelSet
        )
        assert isinstance(mmap_store.get(GROUP_KEY), MappedGroupByModelSet)
        # Scalar column sets have no batched evaluator: pickle fallback
        # records inside the mmap store.
        layout = mmap_store.record_layout(SCALAR_KEY)
        assert layout["format"] == "pickle"

    @pytest.mark.parametrize("key", [GROUP_KEY, SCALAR_KEY, MULTI_KEY])
    def test_all_aggregates_bit_identical(self, stores, key):
        pickle_store, mmap_store = stores
        oracle, mapped = pickle_store.get(key), mmap_store.get(key)
        for aggregate in AGGREGATES:
            if key is MULTI_KEY and aggregate.func == "PERCENTILE":
                continue  # needs a single predicate column
            for ranges in RANGES:
                if key is MULTI_KEY:
                    ranges = dict(ranges, z=(-2.0, 2.0))
                _assert_identical(
                    _answer(oracle, aggregate, ranges),
                    _answer(mapped, aggregate, ranges),
                )

    def test_non_batched_paths_hydrate_and_match(self, stores):
        pickle_store, mmap_store = stores
        oracle, mapped = pickle_store.get(GROUP_KEY), mmap_store.get(GROUP_KEY)
        aggregate, ranges = AGGREGATES[2], RANGES[0]
        # Per-group answers go through the hydrated fallback pickle.
        for value in (0.0, 3.0):  # raw group and modelled group
            assert mapped.answer_group(
                value, aggregate, ranges
            ) == oracle.answer_group(value, aggregate, ranges)
        _assert_identical(
            oracle.answer(aggregate, ranges, batched=False),
            mapped.answer(aggregate, ranges, batched=False),
        )
        # Identity delegates match too.
        assert mapped.group_values == oracle.group_values
        assert mapped.n_groups == oracle.n_groups
        assert list(mapped.x_columns) == list(oracle.x_columns)

    def test_eviction_cycle_reloads_bit_identically(self, engine, tmp_path):
        # A 1-byte budget evicts each model as soon as the next loads.
        store = ModelStore.write(
            engine.catalog, tmp_path / "s", cache_bytes=1, store_format="mmap"
        )
        aggregate, ranges = AGGREGATES[1], RANGES[0]
        expected = {
            key: _answer(engine.catalog.get(key), aggregate, ranges)
            for key in store.keys()
        }
        for _ in range(3):
            for key in store.keys():
                _assert_identical(
                    expected[key], _answer(store.get(key), aggregate, ranges)
                )
        assert store.stats()["evictions"] > 0

    def test_worker_segments_pickle_as_references(self, stores):
        _, mmap_store = stores
        evaluator = mmap_store.get(GROUP_KEY).batched_evaluator()
        for segment in evaluator.split(4):
            payload = pickle.dumps(segment)
            assert len(payload) < 4096  # path reference, not CSR arrays
            clone = pickle.loads(payload)
            for aggregate in AGGREGATES:
                _assert_identical(
                    segment.answer(aggregate, RANGES[0]),
                    clone.answer(aggregate, RANGES[0]),
                )

    def test_mapped_model_pickles_as_record_path(self, stores):
        _, mmap_store = stores
        model = mmap_store.get(GROUP_KEY)
        clone = pickle.loads(pickle.dumps(model))
        assert isinstance(clone, MappedGroupByModelSet)
        _assert_identical(
            model.answer(AGGREGATES[2], RANGES[0]),
            clone.answer(AGGREGATES[2], RANGES[0]),
        )


class TestForestRecords:
    """Booster model sets round-trip as mapped flat-forest segments.

    The level-synchronous trainer emits stacked node arrays; the mapped
    store must persist them as ``m/reg_forest/...`` segments and answer
    bit-identically to the pickle oracle after the round trip.
    """

    @pytest.fixture(scope="class")
    def forest_stores(self, tmp_path_factory):
        rng = np.random.default_rng(11)
        n_groups, rows = 6, 80
        g = np.repeat(np.arange(n_groups), rows).astype(np.float64)
        x = rng.uniform(0.0, 100.0, size=g.size)
        y = (1.0 + 0.1 * g) * x + rng.normal(0.0, 1.0, size=g.size)
        table = Table({"x": x, "y": y, "g": g}, name="traffic")
        engine = DBEst(config=DBEstConfig(
            regressor="gboost", integration_points=65, min_group_rows=30,
            random_seed=11,
        ))
        engine.register_table(table)
        engine.build_model("traffic", x="x", y="y", sample_size=g.size,
                           group_by="g")
        root = tmp_path_factory.mktemp("forest")
        return (
            ModelStore.write(engine.catalog, root / "pickle",
                             store_format="pickle"),
            ModelStore.write(engine.catalog, root / "mmap",
                             store_format="mmap"),
        )

    def test_loads_mapped_with_forest_segments(self, forest_stores):
        _, mmap_store = forest_stores
        assert isinstance(mmap_store.get(GROUP_KEY), MappedGroupByModelSet)
        layout = mmap_store.record_layout(GROUP_KEY)
        assert layout["format"] == "mmap"
        names = [seg["name"] for seg in layout["segments"]]
        forest_names = [n for n in names if n.startswith("m/reg_forest/")]
        assert forest_names  # stacked node arrays persisted as segments
        for part in ("feature", "threshold", "value", "left", "right",
                     "toffsets", "gtoffsets", "base"):
            assert any(name.endswith("/" + part) or name.endswith(part)
                       for name in forest_names), part

    def test_answers_bit_identical_after_round_trip(self, forest_stores):
        pickle_store, mmap_store = forest_stores
        oracle = pickle_store.get(GROUP_KEY)
        mapped = mmap_store.get(GROUP_KEY)
        for aggregate in AGGREGATES:
            for ranges in RANGES:
                _assert_identical(
                    _answer(oracle, aggregate, ranges),
                    _answer(mapped, aggregate, ranges),
                )

    def test_mapped_forest_pickles_as_reference(self, forest_stores):
        _, mmap_store = forest_stores
        model = mmap_store.get(GROUP_KEY)
        clone = pickle.loads(pickle.dumps(model))
        assert isinstance(clone, MappedGroupByModelSet)
        _assert_identical(
            model.answer(AGGREGATES[2], RANGES[0]),
            clone.answer(AGGREGATES[2], RANGES[0]),
        )


class TestStatsAndLayout:
    def test_heap_and_mapped_bytes_are_distinguished(self, engine, tmp_path):
        store = ModelStore.write(
            engine.catalog, tmp_path / "s", store_format="mmap"
        )
        store.get(GROUP_KEY)
        stats = store.stats()
        record = store.record_layout(GROUP_KEY)
        assert stats["heap_bytes"] == stats["resident_bytes"]
        assert stats["mapped_resident"] == 1
        assert stats["mapped_bytes"] == record["mapped_bytes"] > 0
        # The LRU charges the metadata blob only — no double-counting
        # of file-backed pages.
        assert record["heap_bytes"] < record["mapped_bytes"]
        assert stats["heap_bytes"] < stats["mapped_bytes"]

    def test_record_layout_lists_aligned_segments(self, stores):
        _, mmap_store = stores
        layout = mmap_store.record_layout(GROUP_KEY)
        assert layout["format"] == "mmap"
        names = [seg["name"] for seg in layout["segments"]]
        assert "__fallback__" in names
        assert any(name.startswith("m/") for name in names)
        offsets = [seg["offset"] for seg in layout["segments"]]
        assert offsets == sorted(offsets)
        assert all(offset % 64 == 0 for offset in offsets)
        total = sum(seg["nbytes"] for seg in layout["segments"])
        assert total <= layout["mapped_bytes"] <= layout["record_bytes"]

    def test_summary_reports_format(self, stores):
        _, mmap_store = stores
        formats = {
            (row["type"], row["format"]) for row in mmap_store.summary()
        }
        assert ("GroupByModelSet", "mmap") in formats
        assert ("ColumnSetModel", "pickle") in formats


class TestFaultSemantics:
    def test_transient_errors_retry_then_map(self, engine, tmp_path):
        faults = FaultInjector(seed=3)
        faults.inject(STORE_LOAD, error=OSError("blip"), times=2)
        ModelStore.write(engine.catalog, tmp_path / "s", store_format="mmap")
        store = ModelStore(
            tmp_path / "s", faults=faults, retries=2, retry_backoff_ms=1
        )
        assert isinstance(store.get(GROUP_KEY), MappedGroupByModelSet)
        assert store.stats()["retries"] == 2
        assert store.stats()["quarantined"] == 0

    def test_injected_corruption_quarantines(self, engine, tmp_path):
        faults = FaultInjector(seed=3)
        faults.inject(STORE_LOAD, corrupt=True, times=1)
        ModelStore.write(engine.catalog, tmp_path / "s", store_format="mmap")
        store = ModelStore(tmp_path / "s", faults=faults)
        with pytest.raises(CorruptRecordError, match="quarantined"):
            store.get(GROUP_KEY)
        assert store.quarantined_keys() == [GROUP_KEY]
        assert list(store.quarantine_dir.glob("*.model"))

    def test_on_disk_meta_corruption_fails_crc(self, engine, tmp_path):
        store = ModelStore.write(
            engine.catalog, tmp_path / "s", store_format="mmap"
        )
        record = store._records[GROUP_KEY]
        record_path = store.path / "records" / record.filename
        data = bytearray(record_path.read_bytes())
        data[store_mod._HEADER_LEN + 8 + 5] ^= 0xFF  # inside the meta blob
        record_path.write_bytes(bytes(data))
        with pytest.raises(CorruptRecordError):
            store.get(GROUP_KEY)
        assert store.quarantined_keys() == [GROUP_KEY]

    def test_unknown_record_version_names_versions(self, engine, tmp_path):
        store = ModelStore.write(
            engine.catalog, tmp_path / "s", store_format="mmap"
        )
        record = store._records[GROUP_KEY]
        record_path = store.path / "records" / record.filename
        data = bytearray(record_path.read_bytes())
        struct.pack_into("<H", data, 8, 99)  # version field after magic
        record_path.write_bytes(bytes(data))
        with pytest.raises(CorruptRecordError, match="99"):
            store.get(GROUP_KEY)


class TestGenerationLifetime:
    def test_rewrite_keeps_files_mapped_by_live_evaluators(
        self, engine, tmp_path
    ):
        path = tmp_path / "s"
        store = ModelStore.write(engine.catalog, path, store_format="mmap")
        model = store.get(GROUP_KEY)
        first = store._records[GROUP_KEY].filename
        mapped_path = path / "records" / first
        before = _answer(model, AGGREGATES[2], RANGES[0])
        # Rewrite: new generation, but the mapped file must survive —
        # this process still answers (and pickles worker references)
        # through it.
        store = ModelStore.write(engine.catalog, path, store_format="mmap")
        second = store._records[GROUP_KEY].filename
        assert second != first
        assert mapped_path.exists()
        _assert_identical(before, _answer(model, AGGREGATES[2], RANGES[0]))
        # Once every consumer is gone the next write prunes the file.
        del model
        gc.collect()
        ModelStore.write(engine.catalog, path, store_format="mmap")
        assert not mapped_path.exists()

    def test_repacking_a_mapped_store_hydrates_first(self, engine, tmp_path):
        first = ModelStore.write(
            engine.catalog, tmp_path / "a", store_format="mmap"
        )
        loaded = {key: first.get(key) for key in first.keys()}
        # Writing mapped models to a *new* store must not pickle the
        # path-reference wrappers (which would dangle once ``a`` is
        # rewritten); it hydrates and repacks fresh records.
        second = ModelStore.write(loaded, tmp_path / "b", store_format="mmap")
        model = second.get(GROUP_KEY)
        assert isinstance(model, MappedGroupByModelSet)
        record_path = Path(model._record_path)
        assert record_path.parent == tmp_path / "b" / "records"
        _assert_identical(
            _answer(first.get(GROUP_KEY), AGGREGATES[1], RANGES[0]),
            _answer(model, AGGREGATES[1], RANGES[0]),
        )


class TestConfigAndEngine:
    def test_store_format_validated(self, engine, tmp_path):
        with pytest.raises(CatalogError, match="store_format"):
            ModelStore.write(
                engine.catalog, tmp_path / "s", store_format="arrow"
            )
        with pytest.raises(Exception, match="store_format"):
            DBEstConfig(store_format="arrow")

    def test_config_default_routes_write(self, engine, tmp_path):
        config = DBEstConfig(store_format="mmap")
        store = ModelStore.write(engine.catalog, tmp_path / "s", config=config)
        assert isinstance(store.get(GROUP_KEY), MappedGroupByModelSet)

    def test_engine_pack_store_and_serve(self, engine, tmp_path):
        store = engine.pack_store(tmp_path / "s", store_format="mmap")
        serving = DBEst(config=engine.config)
        serving.catalog = store
        sql = ("SELECT AVG(y) FROM traffic WHERE x BETWEEN 20 AND 60 "
               "GROUP BY g;")
        engine.register_table  # fixture engine owns the table
        expected = engine.execute(sql)
        got = serving.execute(sql)
        assert expected.values == got.values
