"""Unit tests for the columnar Table."""

import numpy as np
import pytest

from repro.errors import (
    InvalidParameterError,
    SchemaMismatchError,
    UnknownColumnError,
)
from repro.storage import Table


class TestConstruction:
    def test_basic_columns(self, small_table):
        assert small_table.n_rows == 8
        assert small_table.column_names == ["x", "y", "g"]

    def test_len(self, small_table):
        assert len(small_table) == 8

    def test_empty_table(self):
        table = Table({"x": np.asarray([])}, name="empty")
        assert table.n_rows == 0

    def test_no_columns(self):
        table = Table({}, name="none")
        assert table.n_rows == 0
        assert table.column_names == []

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaMismatchError):
            Table({"a": np.arange(3), "b": np.arange(4)})

    def test_2d_column_rejected(self):
        with pytest.raises(SchemaMismatchError):
            Table({"a": np.zeros((3, 2))})

    def test_lists_are_converted(self):
        table = Table({"a": [1, 2, 3]})
        assert table["a"].dtype.kind in ("i", "u")

    def test_schema_inferred(self, small_table):
        kinds = {c.name: c.kind for c in small_table.schema.columns}
        assert kinds == {"x": "f", "y": "f", "g": "i"}


class TestAccess:
    def test_getitem(self, small_table):
        np.testing.assert_array_equal(
            small_table["x"], np.asarray([1.0, 2, 3, 4, 5, 6, 7, 8])
        )

    def test_unknown_column_raises(self, small_table):
        with pytest.raises(UnknownColumnError):
            small_table["nope"]

    def test_contains(self, small_table):
        assert "x" in small_table
        assert "nope" not in small_table

    def test_iter_yields_column_names(self, small_table):
        assert list(small_table) == ["x", "y", "g"]

    def test_repr_mentions_name_and_rows(self, small_table):
        text = repr(small_table)
        assert "small" in text
        assert "8" in text


class TestDerivation:
    def test_select_projects(self, small_table):
        projected = small_table.select(["y"])
        assert projected.column_names == ["y"]
        assert projected.n_rows == 8

    def test_select_missing_column(self, small_table):
        with pytest.raises(UnknownColumnError):
            small_table.select(["nope"])

    def test_filter_mask(self, small_table):
        filtered = small_table.filter(small_table["x"] > 5.0)
        assert filtered.n_rows == 3
        np.testing.assert_array_equal(filtered["x"], [6.0, 7.0, 8.0])

    def test_filter_wrong_length_mask(self, small_table):
        with pytest.raises(InvalidParameterError):
            small_table.filter(np.asarray([True, False]))

    def test_filter_non_bool_mask(self, small_table):
        with pytest.raises(InvalidParameterError):
            small_table.filter(np.arange(8))

    def test_take_preserves_order_and_repeats(self, small_table):
        taken = small_table.take(np.asarray([3, 0, 0]))
        np.testing.assert_array_equal(taken["x"], [4.0, 1.0, 1.0])

    def test_head(self, small_table):
        assert small_table.head(3).n_rows == 3
        assert small_table.head(100).n_rows == 8

    def test_with_column_adds(self, small_table):
        augmented = small_table.with_column("z", np.arange(8))
        assert "z" in augmented
        assert "z" not in small_table  # original untouched

    def test_with_column_replaces(self, small_table):
        replaced = small_table.with_column("x", np.zeros(8))
        assert replaced["x"].sum() == 0.0

    def test_rename(self, small_table):
        renamed = small_table.rename({"x": "xx"})
        assert "xx" in renamed
        assert "x" not in renamed

    def test_concat(self, small_table):
        doubled = small_table.concat(small_table)
        assert doubled.n_rows == 16

    def test_concat_mismatched_columns(self, small_table):
        other = small_table.select(["x"])
        with pytest.raises(SchemaMismatchError):
            small_table.concat(other)


class TestSummaries:
    def test_column_range(self, small_table):
        assert small_table.column_range("x") == (1.0, 8.0)

    def test_column_range_empty(self):
        table = Table({"x": np.asarray([])})
        with pytest.raises(InvalidParameterError):
            table.column_range("x")

    def test_distinct(self, small_table):
        np.testing.assert_array_equal(small_table.distinct("g"), [1, 2, 3])

    def test_to_rows(self, small_table):
        rows = small_table.to_rows()
        assert rows[0] == (1.0, 10.0, 1)
        assert len(rows) == 8

    def test_nbytes_positive(self, small_table):
        assert small_table.nbytes() > 0

    def test_equality(self, small_table):
        same = Table(
            {c: small_table[c].copy() for c in small_table.column_names},
            name="other-name",
        )
        assert small_table == same

    def test_inequality_different_values(self, small_table):
        other = small_table.with_column("x", np.zeros(8))
        assert small_table != other
