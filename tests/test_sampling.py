"""Unit tests for the sampling substrate."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.sampling import (
    bernoulli_sample_indices,
    hash_sample_mask,
    hash_sample_table,
    reservoir_sample_indices,
    reservoir_sample_stream,
    reservoir_sample_table,
    stratified_sample_indices,
    stratified_sample_table,
    uniform_sample_indices,
    uniform_sample_table,
)
from repro.storage import Table


class TestReservoirStream:
    def test_exact_size(self, rng):
        sample = reservoir_sample_stream(range(1000), 50, rng=rng)
        assert len(sample) == 50

    def test_short_stream_returns_all(self, rng):
        sample = reservoir_sample_stream(range(10), 50, rng=rng)
        assert sorted(sample) == list(range(10))

    def test_items_come_from_stream(self, rng):
        sample = reservoir_sample_stream(range(1000), 64, rng=rng)
        assert all(0 <= item < 1000 for item in sample)
        assert len(set(sample)) == 64  # no duplicates from a duplicate-free stream

    def test_uniformity(self):
        # Each of 100 items should appear in a 10-sample about 10% of runs.
        counts = np.zeros(100)
        for seed in range(400):
            rng = np.random.default_rng(seed)
            for item in reservoir_sample_stream(range(100), 10, rng=rng):
                counts[item] += 1
        frequencies = counts / 400.0
        assert abs(frequencies.mean() - 0.10) < 0.005
        assert frequencies.min() > 0.04
        assert frequencies.max() < 0.18

    def test_invalid_k(self, rng):
        with pytest.raises(InvalidParameterError):
            reservoir_sample_stream(range(10), 0, rng=rng)


class TestReservoirIndices:
    def test_size_and_sorted(self, rng):
        indices = reservoir_sample_indices(1000, 100, rng=rng)
        assert indices.shape == (100,)
        assert np.all(np.diff(indices) > 0)

    def test_k_ge_n_returns_all(self, rng):
        indices = reservoir_sample_indices(10, 100, rng=rng)
        np.testing.assert_array_equal(indices, np.arange(10))

    def test_table_sampling(self, linear_table, rng):
        sample = reservoir_sample_table(linear_table, 500, rng=rng)
        assert sample.n_rows == 500
        assert sample.column_names == linear_table.column_names

    def test_sample_mean_close_to_population(self, linear_table, rng):
        sample = reservoir_sample_table(linear_table, 2000, rng=rng)
        assert abs(sample["y"].mean() - linear_table["y"].mean()) < 5.0

    def test_negative_population(self, rng):
        with pytest.raises(InvalidParameterError):
            reservoir_sample_indices(-1, 10, rng=rng)


class TestUniform:
    def test_without_replacement(self, rng):
        indices = uniform_sample_indices(100, 50, rng=rng)
        assert len(set(indices.tolist())) == 50

    def test_table_name_suffix(self, linear_table, rng):
        assert uniform_sample_table(linear_table, 10, rng=rng).name.endswith(
            "_sample"
        )

    def test_bernoulli_fraction(self, rng):
        indices = bernoulli_sample_indices(100_000, 0.1, rng=rng)
        assert 0.08 < indices.shape[0] / 100_000 < 0.12

    def test_bernoulli_invalid_fraction(self, rng):
        with pytest.raises(InvalidParameterError):
            bernoulli_sample_indices(100, 0.0, rng=rng)
        with pytest.raises(InvalidParameterError):
            bernoulli_sample_indices(100, 1.5, rng=rng)


class TestStratified:
    def test_cap_respected(self, rng):
        strata = np.repeat([1, 2, 3], [100, 50, 5])
        indices = stratified_sample_indices(strata, 10, rng=rng)
        values, counts = np.unique(strata[indices], return_counts=True)
        assert counts[values == 1][0] == 10
        assert counts[values == 2][0] == 10
        assert counts[values == 3][0] == 5  # small stratum kept whole

    def test_every_stratum_represented(self, rng):
        strata = np.repeat(np.arange(20), 100)
        indices = stratified_sample_indices(strata, 3, rng=rng)
        assert np.unique(strata[indices]).shape[0] == 20

    def test_rare_group_guaranteed_vs_uniform(self, rng):
        # The motivating property: a 0.1% group survives stratification.
        strata = np.concatenate([np.zeros(99_900), np.ones(100)])
        indices = stratified_sample_indices(strata, 50, rng=rng)
        assert (strata[indices] == 1).sum() == 50

    def test_table_api(self, linear_table, rng):
        sample = stratified_sample_table(linear_table, "g", 100, rng=rng)
        values, counts = np.unique(sample["g"], return_counts=True)
        assert (counts <= 100).all()

    def test_invalid_cap(self, rng):
        with pytest.raises(InvalidParameterError):
            stratified_sample_indices(np.zeros(10), 0, rng=rng)

    def test_empty_strata(self, rng):
        indices = stratified_sample_indices(np.asarray([]), 5, rng=rng)
        assert indices.shape == (0,)


class TestHashed:
    def test_deterministic(self):
        keys = np.arange(1000)
        mask_a = hash_sample_mask(keys, 0.3)
        mask_b = hash_sample_mask(keys, 0.3)
        np.testing.assert_array_equal(mask_a, mask_b)

    def test_same_key_same_decision(self):
        keys = np.asarray([7, 7, 7, 13, 13])
        mask = hash_sample_mask(keys, 0.5)
        assert mask[0] == mask[1] == mask[2]
        assert mask[3] == mask[4]

    def test_fraction_roughly_honoured(self):
        keys = np.arange(100_000)
        mask = hash_sample_mask(keys, 0.2)
        assert 0.18 < mask.mean() < 0.22

    def test_join_preserving(self):
        # Both sides sampled with the same (fraction, seed) keep matching keys.
        left_keys = np.arange(0, 1000)
        right_keys = np.arange(500, 1500)
        left_mask = hash_sample_mask(left_keys, 0.3, seed=5)
        right_mask = hash_sample_mask(right_keys, 0.3, seed=5)
        shared = np.arange(500, 1000)
        left_kept = set(left_keys[left_mask].tolist()) & set(shared.tolist())
        right_kept = set(right_keys[right_mask].tolist()) & set(shared.tolist())
        assert left_kept == right_kept

    def test_different_seed_different_sample(self):
        keys = np.arange(10_000)
        mask_a = hash_sample_mask(keys, 0.3, seed=1)
        mask_b = hash_sample_mask(keys, 0.3, seed=2)
        assert not np.array_equal(mask_a, mask_b)

    def test_float_and_string_keys(self):
        floats = np.asarray([1.5, 2.5, 1.5])
        mask = hash_sample_mask(floats, 0.5)
        assert mask[0] == mask[2]
        strings = np.asarray(["a", "b", "a"])
        mask = hash_sample_mask(strings, 0.5)
        assert mask[0] == mask[2]

    def test_table_api(self, linear_table):
        sample = hash_sample_table(linear_table, "g", 0.5)
        kept = set(np.unique(sample["g"]).tolist())
        dropped = set(np.unique(linear_table["g"]).tolist()) - kept
        # Every key is fully kept or fully dropped.
        for value in dropped:
            assert (sample["g"] == value).sum() == 0

    def test_invalid_fraction(self):
        with pytest.raises(InvalidParameterError):
            hash_sample_mask(np.arange(10), 0.0)
