"""Unit tests for model selection utilities and metrics."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.ml import (
    GridSearchCV,
    LinearRegressor,
    PiecewiseLinearRegressor,
    k_fold_indices,
    mean_absolute_error,
    mean_relative_error,
    mean_squared_error,
    r2_score,
    relative_error,
    root_mean_squared_error,
    train_test_split,
)


class TestKFold:
    def test_partitions_cover_everything(self, rng):
        folds = k_fold_indices(100, 5, rng=rng)
        assert len(folds) == 5
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(100))

    def test_train_test_disjoint(self, rng):
        for train, test in k_fold_indices(50, 4, rng=rng):
            assert not set(train.tolist()) & set(test.tolist())
            assert len(train) + len(test) == 50

    def test_invalid_k(self, rng):
        with pytest.raises(InvalidParameterError):
            k_fold_indices(10, 1, rng=rng)
        with pytest.raises(InvalidParameterError):
            k_fold_indices(3, 5, rng=rng)


class TestTrainTestSplit:
    def test_sizes(self, rng):
        X = np.arange(100.0)
        X_tr, X_te, y_tr, y_te = train_test_split(X, X, 0.25, rng=rng)
        assert len(X_te) == 25
        assert len(X_tr) == 75

    def test_pairs_stay_aligned(self, rng):
        X = np.arange(100.0)
        y = X * 2
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, 0.3, rng=rng)
        np.testing.assert_array_equal(y_tr, X_tr * 2)
        np.testing.assert_array_equal(y_te, X_te * 2)

    def test_invalid_fraction(self, rng):
        with pytest.raises(InvalidParameterError):
            train_test_split(np.zeros(10), np.zeros(10), 0.0, rng=rng)


class TestGridSearch:
    def test_finds_better_knot_count(self, rng):
        x = rng.uniform(0, 2 * np.pi, size=2000)
        y = np.sin(x) + rng.normal(0, 0.05, size=2000)
        search = GridSearchCV(
            PiecewiseLinearRegressor,
            {"n_knots": [1, 12]},
            cv=3,
            random_state=3,
        ).fit(x, y)
        assert search.best_params_ == {"n_knots": 12}
        assert len(search.results_) == 2

    def test_best_estimator_refit_on_all_data(self, rng):
        x = rng.uniform(size=500)
        y = 3 * x
        search = GridSearchCV(
            PiecewiseLinearRegressor, {"n_knots": [2, 4]}, cv=3, random_state=3
        ).fit(x, y)
        assert search.best_estimator_.is_fitted
        np.testing.assert_allclose(search.predict(x), y, atol=0.05)

    def test_multi_parameter_grid_size(self, rng):
        x = rng.uniform(size=300)
        y = x
        search = GridSearchCV(
            PiecewiseLinearRegressor,
            {"n_knots": [1, 2, 3]},
            cv=2,
            random_state=3,
        ).fit(x, y)
        assert len(search.results_) == 3

    def test_empty_grid_rejected(self):
        with pytest.raises(InvalidParameterError):
            GridSearchCV(LinearRegressor, {})

    def test_predict_before_fit_rejected(self):
        search = GridSearchCV(PiecewiseLinearRegressor, {"n_knots": [1]})
        with pytest.raises(InvalidParameterError):
            search.predict(np.zeros(3))


class TestMetrics:
    def test_relative_error_basic(self):
        assert relative_error(100.0, 110.0) == pytest.approx(0.1)
        assert relative_error(100.0, 90.0) == pytest.approx(0.1)

    def test_relative_error_zero_truth(self):
        assert relative_error(0.0, 5.0) == 5.0
        assert relative_error(0.0, 0.0) == 0.0

    def test_relative_error_negative_truth(self):
        assert relative_error(-50.0, -55.0) == pytest.approx(0.1)

    def test_mean_relative_error(self):
        assert mean_relative_error([10.0, 20.0], [11.0, 22.0]) == pytest.approx(0.1)

    def test_mse_rmse(self):
        assert mean_squared_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(12.5)
        assert root_mean_squared_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_mae(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 0.0]) == pytest.approx(1.5)

    def test_r2_perfect_and_mean(self, rng):
        y = rng.normal(size=100)
        assert r2_score(y, y) == pytest.approx(1.0)
        assert r2_score(y, np.full(100, y.mean())) == pytest.approx(0.0, abs=1e-12)

    def test_r2_constant_truth(self):
        assert r2_score([2.0, 2.0, 2.0], [1.0, 2.0, 3.0]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            mean_squared_error([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            mean_squared_error([], [])
