"""Unit tests for the kernel density estimators."""

import numpy as np
import pytest
from scipy import stats

from repro.errors import InvalidParameterError, ModelTrainingError
from repro.ml import KernelDensityEstimator, MultivariateKDE, scott_bandwidth
from repro.ml.kde import silverman_bandwidth


@pytest.fixture
def normal_sample(rng):
    return rng.normal(10.0, 2.0, size=20_000)


class TestBandwidthRules:
    def test_scott_positive(self, normal_sample):
        assert scott_bandwidth(normal_sample) > 0

    def test_scott_scales_with_std(self, rng):
        narrow = rng.normal(0, 1, 1000)
        wide = narrow * 10.0
        assert scott_bandwidth(wide) == pytest.approx(
            10.0 * scott_bandwidth(narrow)
        )

    def test_silverman_positive(self, normal_sample):
        assert silverman_bandwidth(normal_sample) > 0

    def test_constant_data_does_not_crash(self):
        constant = np.full(100, 5.0)
        assert scott_bandwidth(constant) > 0
        assert silverman_bandwidth(constant) > 0


class TestKDEFitting:
    def test_unfitted_raises(self):
        kde = KernelDensityEstimator()
        with pytest.raises(ModelTrainingError):
            kde.pdf(0.0)

    def test_empty_sample_rejected(self):
        with pytest.raises(ModelTrainingError):
            KernelDensityEstimator().fit(np.asarray([]))

    def test_nan_rejected(self):
        with pytest.raises(ModelTrainingError):
            KernelDensityEstimator().fit(np.asarray([1.0, np.nan]))

    def test_unknown_bandwidth_rule(self):
        with pytest.raises(InvalidParameterError):
            KernelDensityEstimator(bandwidth="magic")

    def test_negative_bandwidth(self):
        with pytest.raises(InvalidParameterError):
            KernelDensityEstimator(bandwidth=-1.0)

    def test_explicit_float_bandwidth(self, normal_sample):
        kde = KernelDensityEstimator(bandwidth=0.5).fit(normal_sample)
        assert kde.h == 0.5

    def test_binned_path_engages(self, normal_sample):
        kde = KernelDensityEstimator(binned=True, bin_threshold=1000).fit(
            normal_sample
        )
        assert kde._centres.shape[0] <= kde.n_bins

    def test_exact_path_keeps_all_points(self, rng):
        x = rng.normal(size=500)
        kde = KernelDensityEstimator(bin_threshold=5000).fit(x)
        assert kde._centres.shape[0] == 500


class TestKDEAccuracy:
    def test_integrates_to_one(self, normal_sample):
        kde = KernelDensityEstimator().fit(normal_sample)
        lo, hi = kde.support
        assert kde.integrate(lo, hi) == pytest.approx(1.0, abs=1e-3)

    def test_pdf_close_to_true_normal(self, normal_sample):
        kde = KernelDensityEstimator().fit(normal_sample)
        xs = np.linspace(5.0, 15.0, 21)
        true_pdf = stats.norm(10.0, 2.0).pdf(xs)
        np.testing.assert_allclose(kde.pdf(xs), true_pdf, rtol=0.15)

    def test_cdf_close_to_true_normal(self, normal_sample):
        kde = KernelDensityEstimator().fit(normal_sample)
        xs = np.asarray([8.0, 10.0, 12.0])
        true_cdf = stats.norm(10.0, 2.0).cdf(xs)
        np.testing.assert_allclose(kde.cdf(xs), true_cdf, atol=0.02)

    def test_cdf_monotone(self, normal_sample):
        kde = KernelDensityEstimator().fit(normal_sample)
        xs = np.linspace(0.0, 20.0, 100)
        assert np.all(np.diff(kde.cdf(xs)) >= 0)

    def test_integrate_matches_cdf_difference(self, normal_sample):
        kde = KernelDensityEstimator().fit(normal_sample)
        direct = kde.integrate(8.0, 12.0)
        via_cdf = float(kde.cdf(np.asarray([12.0]))[0] - kde.cdf(np.asarray([8.0]))[0])
        assert direct == pytest.approx(via_cdf)

    def test_integrate_reversed_bounds(self, normal_sample):
        kde = KernelDensityEstimator().fit(normal_sample)
        with pytest.raises(InvalidParameterError):
            kde.integrate(12.0, 8.0)

    def test_binned_matches_exact(self, rng):
        x = rng.normal(0.0, 1.0, size=20_000)
        binned = KernelDensityEstimator(binned=True, bin_threshold=100).fit(x)
        exact = KernelDensityEstimator(binned=False).fit(x)
        xs = np.linspace(-3, 3, 31)
        np.testing.assert_allclose(binned.pdf(xs), exact.pdf(xs), rtol=0.02)

    def test_bimodal_distribution(self, rng):
        x = np.concatenate([rng.normal(-5, 1, 5000), rng.normal(5, 1, 5000)])
        kde = KernelDensityEstimator().fit(x)
        # Density at the trough should be far below the modes.
        trough = kde.pdf(np.asarray([0.0]))[0]
        mode = kde.pdf(np.asarray([5.0]))[0]
        assert trough < 0.1 * mode

    def test_sampling_from_fit(self, normal_sample, rng):
        kde = KernelDensityEstimator().fit(normal_sample)
        draws = kde.sample(5000, rng=rng)
        assert abs(draws.mean() - 10.0) < 0.2
        assert abs(draws.std() - 2.0) < 0.2


class TestMultivariateKDE:
    def test_fit_requires_2d(self, rng):
        with pytest.raises(ModelTrainingError):
            MultivariateKDE().fit(rng.normal(size=100))

    def test_box_integral_total_mass(self, rng):
        x = rng.normal(0.0, 1.0, size=(10_000, 2))
        kde = MultivariateKDE().fit(x)
        total = kde.integrate_box(np.asarray([-8.0, -8.0]), np.asarray([8.0, 8.0]))
        assert total == pytest.approx(1.0, abs=1e-2)

    def test_box_integral_independent_factorises(self, rng):
        x = rng.normal(0.0, 1.0, size=(20_000, 2))
        kde = MultivariateKDE().fit(x)
        joint = kde.integrate_box(np.asarray([-1.0, -1.0]), np.asarray([1.0, 1.0]))
        # For independent standard normals the box mass factorises.
        p = stats.norm.cdf(1.0) - stats.norm.cdf(-1.0)
        assert joint == pytest.approx(p * p, abs=0.03)

    def test_pdf_positive(self, rng):
        x = rng.normal(size=(2000, 2))
        kde = MultivariateKDE().fit(x)
        assert np.all(kde.pdf(np.zeros((5, 2))) > 0)

    def test_bad_box_shape_rejected(self, rng):
        kde = MultivariateKDE().fit(rng.normal(size=(500, 2)))
        with pytest.raises(InvalidParameterError):
            kde.integrate_box(np.zeros(3), np.ones(3))

    def test_reversed_box_rejected(self, rng):
        kde = MultivariateKDE().fit(rng.normal(size=(500, 2)))
        with pytest.raises(InvalidParameterError):
            kde.integrate_box(np.ones(2), np.zeros(2))

    def test_binned_matches_exact_2d(self, rng):
        x = rng.normal(0.0, 1.0, size=(8000, 2))
        binned = MultivariateKDE(binned=True, bin_threshold=100).fit(x)
        exact = MultivariateKDE(binned=False).fit(x)
        box_lo, box_hi = np.asarray([-1.0, 0.0]), np.asarray([1.0, 2.0])
        assert binned.integrate_box(box_lo, box_hi) == pytest.approx(
            exact.integrate_box(box_lo, box_hi), abs=0.02
        )
