"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import ColumnSetModel, DBEstConfig
from repro.integrate import bisect, simpson_integrate
from repro.ml import KernelDensityEstimator, relative_error
from repro.ml.tree import DecisionTreeRegressor
from repro.sampling import (
    hash_sample_mask,
    reservoir_sample_indices,
    stratified_sample_indices,
)
from repro.sql import parse_query
from repro.storage import Table

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSamplingProperties:
    @_settings
    @given(n=st.integers(1, 5000), k=st.integers(1, 500))
    def test_reservoir_size_and_uniqueness(self, n, k):
        indices = reservoir_sample_indices(n, k, rng=np.random.default_rng(0))
        assert indices.shape[0] == min(n, k)
        assert np.unique(indices).shape[0] == indices.shape[0]
        assert indices.min() >= 0 and indices.max() < n

    @_settings
    @given(
        strata=arrays(np.int64, st.integers(1, 300), elements=st.integers(0, 10)),
        cap=st.integers(1, 50),
    )
    def test_stratified_cap_invariant(self, strata, cap):
        indices = stratified_sample_indices(strata, cap, rng=np.random.default_rng(0))
        _values, counts = np.unique(strata[indices], return_counts=True)
        assert (counts <= cap).all()
        # Every non-empty stratum is represented.
        assert set(np.unique(strata[indices]).tolist()) == set(
            np.unique(strata).tolist()
        )

    @_settings
    @given(
        keys=arrays(np.int64, st.integers(1, 500), elements=st.integers(0, 50)),
        fraction=st.floats(0.05, 1.0),
        seed=st.integers(0, 100),
    )
    def test_hash_sampling_key_consistency(self, keys, fraction, seed):
        mask = hash_sample_mask(keys, fraction, seed=seed)
        for value in np.unique(keys):
            decisions = mask[keys == value]
            assert decisions.all() or not decisions.any()


class TestKDEProperties:
    @_settings
    @given(
        data=arrays(
            np.float64,
            st.integers(10, 400),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    def test_cdf_monotone_and_normalised(self, data):
        assume(np.ptp(data) > 1e-6)
        kde = KernelDensityEstimator().fit(data)
        lo, hi = kde.support
        grid = np.linspace(lo, hi, 50)
        cdf = kde.cdf(grid)
        assert np.all(np.diff(cdf) >= -1e-9)
        assert kde.integrate(lo, hi) == pytest.approx(1.0, abs=2e-2)

    @_settings
    @given(
        data=arrays(
            np.float64,
            st.integers(20, 300),
            elements=st.floats(-50, 50, allow_nan=False),
        ),
        split=st.floats(0.1, 0.9),
    )
    def test_integral_additivity(self, data, split):
        assume(np.ptp(data) > 1e-6)
        kde = KernelDensityEstimator().fit(data)
        lo, hi = kde.support
        mid = lo + split * (hi - lo)
        total = kde.integrate(lo, hi)
        parts = kde.integrate(lo, mid) + kde.integrate(mid, hi)
        assert parts == pytest.approx(total, abs=1e-9)

    @_settings
    @given(
        data=arrays(
            np.float64,
            st.integers(20, 300),
            elements=st.floats(-50, 50, allow_nan=False),
        )
    )
    def test_pdf_nonnegative(self, data):
        assume(np.ptp(data) > 1e-6)
        kde = KernelDensityEstimator().fit(data)
        lo, hi = kde.support
        assert np.all(kde.pdf(np.linspace(lo, hi, 64)) >= 0)


class TestTreeProperties:
    @_settings
    @given(
        x=arrays(
            np.float64, st.integers(20, 500),
            elements=st.floats(0, 100, allow_nan=False),
        ),
        depth=st.integers(0, 6),
    )
    def test_predictions_within_target_range(self, x, depth):
        y = np.sin(x / 10.0) * 50.0
        tree = DecisionTreeRegressor(max_depth=depth, min_samples_leaf=2).fit(x, y)
        pred = tree.predict(x)
        # A regression tree predicts leaf means, so it can never leave
        # the convex hull of the training targets.
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9


class TestIntegrationProperties:
    @_settings
    @given(
        a=st.floats(-10, 10, allow_nan=False),
        width=st.floats(0.1, 20, allow_nan=False),
        c0=finite_floats,
        c1=st.floats(-100, 100, allow_nan=False),
    )
    def test_simpson_exact_for_linear(self, a, width, c0, c1):
        b = a + width
        result = simpson_integrate(lambda x: c0 + c1 * x, a, b, n_points=5)
        expected = c0 * (b - a) + c1 * (b * b - a * a) / 2.0
        assert result == pytest.approx(expected, rel=1e-9, abs=1e-6)

    @_settings
    @given(root=st.floats(-100, 100, allow_nan=False))
    def test_bisect_finds_linear_root(self, root):
        found = bisect(lambda x: x - root, root - 50.0, root + 50.0, tol=1e-10)
        assert found == pytest.approx(root, abs=1e-7)


class TestModelInvariants:
    @_settings
    @given(
        lo=st.floats(0, 40, allow_nan=False),
        width=st.floats(5, 50, allow_nan=False),
    )
    def test_sum_equals_count_times_avg(self, lo, width):
        rng = np.random.default_rng(7)
        x = rng.uniform(0, 100, size=2000)
        y = 2.0 * x + rng.normal(0, 1, size=2000)
        model = ColumnSetModel.train(
            x, y, table_name="t", x_columns=("x",), y_column="y",
            population_size=10_000,
            config=DBEstConfig(regressor="linear", random_seed=1),
        )
        ranges = {"x": (lo, lo + width)}
        count = model.count(ranges)
        average = model.avg(ranges)
        total = model.sum_(ranges)
        if count > 0 and not np.isnan(average):
            assert total == pytest.approx(count * average, rel=1e-9)

    @_settings
    @given(
        p1=st.floats(0.05, 0.45, allow_nan=False),
        p2=st.floats(0.55, 0.95, allow_nan=False),
    )
    def test_percentile_monotonicity(self, p1, p2):
        rng = np.random.default_rng(7)
        x = rng.normal(50, 10, size=3000)
        model = ColumnSetModel.train(
            x, None, table_name="t", x_columns=("x",), y_column=None,
            population_size=3000, config=DBEstConfig(random_seed=1),
        )
        assert model.percentile(p1) <= model.percentile(p2)

    @_settings
    @given(
        lo=st.floats(0, 50, allow_nan=False),
        width=st.floats(1, 50, allow_nan=False),
    )
    def test_count_nonnegative_and_bounded(self, lo, width):
        rng = np.random.default_rng(7)
        x = rng.uniform(0, 100, size=2000)
        model = ColumnSetModel.train(
            x, None, table_name="t", x_columns=("x",), y_column=None,
            population_size=5000, config=DBEstConfig(random_seed=1),
        )
        count = model.count({"x": (lo, lo + width)})
        assert 0.0 <= count <= 5000 * 1.01


class TestMetricProperties:
    @_settings
    @given(truth=finite_floats, estimate=finite_floats)
    def test_relative_error_nonnegative(self, truth, estimate):
        assert relative_error(truth, estimate) >= 0.0

    @_settings
    @given(truth=finite_floats)
    def test_relative_error_zero_iff_exact(self, truth):
        assert relative_error(truth, truth) == 0.0


class TestSQLProperties:
    @_settings
    @given(
        lo=st.floats(-1e3, 1e3, allow_nan=False),
        width=st.floats(0.0, 1e3, allow_nan=False),
        func=st.sampled_from(["COUNT", "SUM", "AVG", "VARIANCE", "STDDEV"]),
    )
    def test_roundtrip_random_queries(self, lo, width, func):
        hi = lo + width
        sql = f"SELECT {func}(y) FROM t WHERE x BETWEEN {lo!r} AND {hi!r};"
        query = parse_query(sql)
        again = parse_query(query.to_sql())
        assert query.aggregates == again.aggregates
        assert query.ranges == again.ranges


class TestTableProperties:
    @_settings
    @given(
        data=arrays(
            np.float64, st.integers(1, 200),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    def test_filter_then_concat_partition(self, data):
        table = Table({"x": data}, name="t")
        threshold = float(np.median(data))
        low = table.filter(table["x"] <= threshold)
        high = table.filter(table["x"] > threshold)
        assert low.n_rows + high.n_rows == table.n_rows
        recombined = np.sort(np.concatenate([low["x"], high["x"]]))
        np.testing.assert_array_equal(recombined, np.sort(data))
