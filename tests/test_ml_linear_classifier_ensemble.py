"""Unit tests for linear models, the classifier, and the ensemble."""

import numpy as np
import pytest

from repro.errors import ModelTrainingError
from repro.ml import (
    DecisionTreeClassifier,
    EnsembleRegressor,
    GradientBoostingRegressor,
    LinearRegressor,
    PiecewiseLinearRegressor,
)


class TestLinearRegressor:
    def test_recovers_coefficients(self, rng):
        x = rng.uniform(0, 10, size=2000)
        y = 3.0 * x + 7.0
        model = LinearRegressor().fit(x, y)
        assert model.intercept == pytest.approx(7.0, abs=1e-6)
        assert model.slope[0] == pytest.approx(3.0, abs=1e-6)

    def test_multivariate(self, rng):
        X = rng.uniform(size=(2000, 2))
        y = 1.0 + 2.0 * X[:, 0] - 3.0 * X[:, 1]
        model = LinearRegressor().fit(X, y)
        np.testing.assert_allclose(model.slope, [2.0, -3.0], atol=1e-6)

    def test_unfitted_raises(self):
        with pytest.raises(ModelTrainingError):
            LinearRegressor().predict(np.zeros(3))

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ModelTrainingError):
            LinearRegressor().fit(rng.uniform(size=10), np.zeros(4))


class TestPiecewiseLinear:
    def test_fits_kinked_function(self, rng):
        x = rng.uniform(0, 10, size=5000)
        y = np.where(x < 5, x, 5.0 + 3.0 * (x - 5.0))  # slope change at 5
        model = PiecewiseLinearRegressor(n_knots=8).fit(x, y)
        grid = np.asarray([1.0, 4.0, 6.0, 9.0])
        expected = np.where(grid < 5, grid, 5.0 + 3.0 * (grid - 5.0))
        np.testing.assert_allclose(model.predict(grid), expected, atol=0.2)

    def test_beats_plain_linear_on_nonlinear_target(self, rng):
        x = rng.uniform(0, 2 * np.pi, size=3000)
        y = np.sin(x)
        plr = PiecewiseLinearRegressor(n_knots=10).fit(x, y)
        ols = LinearRegressor().fit(x, y)
        assert np.mean((plr.predict(x) - y) ** 2) < np.mean(
            (ols.predict(x) - y) ** 2
        )

    def test_rejects_multivariate(self, rng):
        with pytest.raises(ModelTrainingError):
            PiecewiseLinearRegressor().fit(rng.uniform(size=(100, 2)), np.zeros(100))

    def test_accepts_column_vector(self, rng):
        x = rng.uniform(size=(200, 1))
        model = PiecewiseLinearRegressor(n_knots=3).fit(x, x[:, 0])
        assert model.is_fitted

    def test_continuity(self, rng):
        x = rng.uniform(0, 10, size=3000)
        y = np.abs(x - 5.0)
        model = PiecewiseLinearRegressor(n_knots=6).fit(x, y)
        grid = np.linspace(0.5, 9.5, 500)
        pred = model.predict(grid)
        # A linear spline has bounded increments on a fine grid.
        assert np.max(np.abs(np.diff(pred))) < 0.2


class TestClassifier:
    def test_learns_threshold_rule(self, rng):
        X = rng.uniform(size=(2000, 1))
        y = np.where(X[:, 0] < 0.5, "low", "high")
        clf = DecisionTreeClassifier(max_depth=3).fit(X, y)
        pred = clf.predict(np.asarray([[0.1], [0.9]]))
        assert pred[0] == "low"
        assert pred[1] == "high"

    def test_learns_2d_quadrant_rule(self, rng):
        X = rng.uniform(-1, 1, size=(4000, 2))
        y = (X[:, 0] > 0).astype(int) * 2 + (X[:, 1] > 0).astype(int)
        clf = DecisionTreeClassifier(max_depth=4).fit(X, y)
        accuracy = float(np.mean(clf.predict(X) == y))
        assert accuracy > 0.95

    def test_pure_node_stops_early(self):
        X = np.asarray([[0.0], [1.0], [2.0]])
        y = np.asarray([1, 1, 1])
        clf = DecisionTreeClassifier().fit(X, y)
        assert clf.predict(np.asarray([[5.0]]))[0] == 1

    def test_integer_and_string_labels(self, rng):
        X = rng.uniform(size=(200, 1))
        clf = DecisionTreeClassifier().fit(X, np.repeat(["a", "b"], 100))
        assert set(clf.classes_) == {"a", "b"}

    def test_unfitted_raises(self):
        with pytest.raises(ModelTrainingError):
            DecisionTreeClassifier().predict(np.zeros((2, 1)))

    def test_empty_rejected(self):
        with pytest.raises(ModelTrainingError):
            DecisionTreeClassifier().fit(np.empty((0, 1)), np.asarray([]))


class TestEnsemble:
    def test_fits_and_routes(self, rng):
        x = rng.uniform(0, 10, size=4000)
        y = np.sin(x) * x
        ensemble = EnsembleRegressor(n_eval_queries=30, random_state=5).fit(x, y)
        assert set(ensemble.constituent_names) == {"gboost", "xgboost", "plr"}
        name = ensemble.select(2.0, 4.0)
        assert name in ensemble.constituent_names

    def test_prediction_quality(self, rng):
        x = rng.uniform(0, 10, size=4000)
        y = 2.0 * x + 1.0 + rng.normal(0, 0.1, size=4000)
        ensemble = EnsembleRegressor(n_eval_queries=20, random_state=5).fit(x, y)
        grid = np.linspace(1, 9, 40)
        np.testing.assert_allclose(
            ensemble.predict(grid, lb=1.0, ub=9.0), 2.0 * grid + 1.0, atol=0.5
        )

    def test_select_without_range_uses_default(self, rng):
        x = rng.uniform(size=2000)
        y = x**2
        ensemble = EnsembleRegressor(n_eval_queries=20, random_state=5).fit(x, y)
        assert ensemble.select() == ensemble._default_name

    def test_custom_constituents(self, rng):
        from functools import partial

        x = rng.uniform(size=1000)
        y = 3 * x
        ensemble = EnsembleRegressor(
            constituents={
                "gbm_small": partial(GradientBoostingRegressor, n_estimators=10)
            },
            n_eval_queries=10,
            random_state=5,
        ).fit(x, y)
        assert ensemble.constituent_names == ["gbm_small"]
        assert ensemble.select(0.1, 0.9) == "gbm_small"

    def test_empty_constituents_rejected(self):
        with pytest.raises(ModelTrainingError):
            EnsembleRegressor(constituents={})

    def test_unfitted_raises(self):
        with pytest.raises(ModelTrainingError):
            EnsembleRegressor().select(0.0, 1.0)

    def test_multivariate_falls_back_to_best_single(self, rng):
        X = rng.uniform(size=(3000, 2))
        y = X[:, 0] + X[:, 1]
        ensemble = EnsembleRegressor(random_state=5).fit(X, y)
        # PLR rejects multivariate input; tree models handle it.
        assert "plr" not in ensemble.constituent_names
        pred = ensemble.predict(np.asarray([[0.5, 0.5]]))
        assert pred[0] == pytest.approx(1.0, abs=0.2)

    def test_picklable_after_fit(self, rng):
        import pickle

        x = rng.uniform(size=1000)
        ensemble = EnsembleRegressor(n_eval_queries=10, random_state=5).fit(
            x, 2 * x
        )
        restored = pickle.loads(pickle.dumps(ensemble))
        np.testing.assert_array_equal(
            restored.predict(x[:10]), ensemble.predict(x[:10])
        )
