"""End-to-end tests of the DBEst engine façade."""

import numpy as np
import pytest

from repro import DBEst, DBEstConfig, Table
from repro.core.joins import join_table_name
from repro.engines import ExactEngine
from repro.errors import (
    InvalidParameterError,
    ModelNotFoundError,
    UnknownTableError,
)


@pytest.fixture
def engine(linear_table, fast_config):
    engine = DBEst(config=fast_config)
    engine.register_table(linear_table)
    engine.build_model("linear", x="x", y="y", sample_size=3000)
    return engine


class TestRegistration:
    def test_unnamed_table_rejected(self, fast_config):
        engine = DBEst(config=fast_config)
        with pytest.raises(InvalidParameterError):
            engine.register_table(Table({"x": np.arange(3)}))

    def test_unknown_table_in_build(self, fast_config):
        engine = DBEst(config=fast_config)
        with pytest.raises(UnknownTableError):
            engine.build_model("ghost", x="x", y="y")


class TestScalarQueries:
    def test_avg_close_to_truth(self, engine, truth_engine):
        sql = "SELECT AVG(y) FROM linear WHERE x BETWEEN 20 AND 60;"
        truth = truth_engine.execute(sql).scalar()
        estimate = engine.execute(sql).scalar()
        assert estimate == pytest.approx(truth, rel=0.05)

    def test_count_close_to_truth(self, engine, truth_engine):
        sql = "SELECT COUNT(y) FROM linear WHERE x BETWEEN 20 AND 60;"
        truth = truth_engine.execute(sql).scalar()
        estimate = engine.execute(sql).scalar()
        assert estimate == pytest.approx(truth, rel=0.1)

    def test_sum_close_to_truth(self, engine, truth_engine):
        sql = "SELECT SUM(y) FROM linear WHERE x BETWEEN 20 AND 60;"
        truth = truth_engine.execute(sql).scalar()
        estimate = engine.execute(sql).scalar()
        assert estimate == pytest.approx(truth, rel=0.1)

    def test_count_star_uses_any_model(self, engine, truth_engine):
        sql = "SELECT COUNT(*) FROM linear WHERE x BETWEEN 20 AND 60;"
        truth = truth_engine.execute(sql).scalar()
        assert engine.execute(sql).scalar() == pytest.approx(truth, rel=0.1)

    def test_multiple_aggregates_in_one_query(self, engine):
        result = engine.execute(
            "SELECT COUNT(y), SUM(y), AVG(y) FROM linear WHERE x BETWEEN 10 AND 90;"
        )
        assert set(result.values) == {"COUNT(y)", "SUM(y)", "AVG(y)"}
        assert result.values["SUM(y)"] == pytest.approx(
            result.values["COUNT(y)"] * result.values["AVG(y)"], rel=1e-6
        )

    def test_result_metadata(self, engine):
        result = engine.execute(
            "SELECT AVG(y) FROM linear WHERE x BETWEEN 10 AND 20;"
        )
        assert result.source == "model"
        assert result.elapsed_seconds > 0
        assert "AVG" in result.sql

    def test_missing_model_raises_without_fallback(self, engine):
        with pytest.raises(ModelNotFoundError):
            engine.execute("SELECT AVG(g) FROM linear WHERE x BETWEEN 0 AND 1;")

    def test_fallback_engine_used(self, linear_table, fast_config, truth_engine):
        engine = DBEst(config=fast_config, fallback=truth_engine)
        engine.register_table(linear_table)
        result = engine.execute(
            "SELECT AVG(y) FROM linear WHERE x BETWEEN 10 AND 20;"
        )
        assert result.source == "fallback"

    def test_percentile(self, engine, truth_engine):
        sql = "SELECT PERCENTILE(x, 0.5) FROM linear WHERE x BETWEEN 0 AND 100;"
        truth = truth_engine.execute(sql).scalar()
        assert engine.execute(sql).scalar() == pytest.approx(truth, abs=3.0)


class TestGroupByQueries:
    @pytest.fixture
    def group_engine(self, linear_table, fast_config):
        engine = DBEst(config=fast_config)
        engine.register_table(linear_table)
        engine.build_model(
            "linear", x="x", y="y", sample_size=4000, group_by="g"
        )
        return engine

    def test_group_by_avg(self, group_engine, truth_engine):
        sql = "SELECT g, AVG(y) FROM linear WHERE x BETWEEN 20 AND 80 GROUP BY g;"
        truth = truth_engine.execute(sql).groups()
        estimate = group_engine.execute(sql).groups()
        assert set(estimate) == set(truth)
        for value, true_avg in truth.items():
            assert estimate[value] == pytest.approx(true_avg, rel=0.15)

    def test_group_by_count_total(self, group_engine, truth_engine):
        sql = "SELECT g, COUNT(y) FROM linear WHERE x BETWEEN 0 AND 100 GROUP BY g;"
        truth = truth_engine.execute(sql).groups()
        estimate = group_engine.execute(sql).groups()
        assert sum(estimate.values()) == pytest.approx(
            sum(truth.values()), rel=0.05
        )

    def test_equality_predicate_selects_one_group(self, group_engine, truth_engine):
        sql = "SELECT AVG(y) FROM linear WHERE x BETWEEN 20 AND 80 AND g = 2;"
        truth = truth_engine.execute(sql).scalar()
        estimate = group_engine.execute(sql).scalar()
        assert estimate == pytest.approx(truth, rel=0.15)

    def test_scalar_accessor_rejects_grouped(self, group_engine):
        result = group_engine.execute(
            "SELECT g, AVG(y) FROM linear WHERE x BETWEEN 20 AND 80 GROUP BY g;"
        )
        with pytest.raises(KeyError):
            result.scalar()
        assert isinstance(result.groups(), dict)


class TestJoinQueries:
    @pytest.fixture
    def join_tables(self, rng):
        fact = Table(
            {
                "k": rng.integers(1, 21, size=20_000).astype(np.int64),
                "m": rng.normal(100.0, 10.0, size=20_000),
            },
            name="fact",
        )
        dim = Table(
            {
                "k": np.arange(1, 21, dtype=np.int64),
                "attr": np.linspace(0.0, 100.0, 20),
            },
            name="dim",
        )
        return fact, dim

    def test_precompute_join_model(self, join_tables, fast_config):
        fact, dim = join_tables
        engine = DBEst(config=fast_config)
        engine.register_table(fact)
        engine.register_table(dim)
        engine.build_join_model(
            "fact", "dim", "k", "k", x="attr", y="m", sample_size=5000
        )
        truth = ExactEngine()
        truth.register_table(fact)
        truth.register_table(dim)
        sql = (
            "SELECT AVG(m) FROM fact JOIN dim ON k = k "
            "WHERE attr BETWEEN 20 AND 80;"
        )
        expected = truth.execute(sql).scalar()
        assert engine.execute(sql).scalar() == pytest.approx(expected, rel=0.05)

    def test_sampled_join_strategy(self, join_tables, fast_config):
        fact, dim = join_tables
        engine = DBEst(config=fast_config)
        engine.register_table(fact)
        engine.register_table(dim)
        engine.build_join_model(
            "fact", "dim", "k", "k", x="attr", y="m",
            sample_size=5000, strategy="sampled", key_fraction=0.5,
        )
        truth = ExactEngine()
        truth.register_table(fact)
        truth.register_table(dim)
        sql = (
            "SELECT COUNT(m) FROM fact JOIN dim ON k = k "
            "WHERE attr BETWEEN 0 AND 100;"
        )
        expected = truth.execute(sql).scalar()
        # Universe sampling with 50% of keys: count estimate is unbiased
        # but noisier; allow a generous tolerance.
        assert engine.execute(sql).scalar() == pytest.approx(expected, rel=0.5)

    def test_unknown_strategy_rejected(self, join_tables, fast_config):
        fact, dim = join_tables
        engine = DBEst(config=fast_config)
        engine.register_table(fact)
        engine.register_table(dim)
        with pytest.raises(InvalidParameterError):
            engine.build_join_model(
                "fact", "dim", "k", "k", x="attr", y="m", strategy="magic"
            )

    def test_join_table_name(self):
        assert join_table_name("a", "b") == "a_join_b"


class TestStateManagement:
    def test_build_stats_recorded(self, engine):
        stats = next(iter(engine.build_stats.values()))
        assert stats["sample_size"] == 3000
        assert stats["model_bytes"] > 0
        assert stats["sampling_seconds"] >= 0
        assert stats["training_seconds"] > 0

    def test_state_size(self, engine):
        assert engine.state_size_bytes() > 0

    def test_describe(self, engine):
        rows = engine.describe()
        assert rows[0]["table"] == "linear"
        assert "model_bytes" in rows[0]

    def test_bundling_group_models(self, linear_table, fast_config, tmp_path):
        engine = DBEst(config=fast_config)
        engine.register_table(linear_table)
        key = engine.build_model(
            "linear", x="x", y="y", sample_size=4000, group_by="g"
        )
        bundle = engine.bundle_model(key, tmp_path / "bundle.pkl")
        assert not bundle.loaded
        # Queries transparently load the bundle.
        result = engine.execute(
            "SELECT g, AVG(y) FROM linear WHERE x BETWEEN 20 AND 80 GROUP BY g;"
        )
        assert bundle.loaded
        assert len(result.groups()) == 5

    def test_bundle_scalar_model_rejected(self, engine, tmp_path):
        key = next(iter(engine.catalog.keys()))
        with pytest.raises(InvalidParameterError):
            engine.bundle_model(key, tmp_path / "x.pkl")
