"""Tests for model-powered analytics (paper §1 (i)-(v)) and the
workload-driven model advisor (paper §3)."""

import numpy as np
import pytest

from repro import DBEst, DBEstConfig, Table
from repro.core import (
    ColumnSetModel,
    WorkloadAdvisor,
    describe_subspace,
    estimate_y,
    impute_missing,
    rank_relationships,
    relationship_strength,
    sketch_density,
    what_if_aggregate,
)
from repro.core.advisor import template_of
from repro.errors import InvalidParameterError, UnsupportedQueryError
from repro.sql import parse_query


@pytest.fixture
def strong_model(rng):
    """y = 3x + small noise: near-deterministic relationship."""
    x = rng.uniform(0.0, 100.0, size=6000)
    y = 3.0 * x + rng.normal(0.0, 0.5, size=6000)
    return ColumnSetModel.train(
        x, y, table_name="t", x_columns=("x",), y_column="y",
        population_size=100_000,
        config=DBEstConfig(regressor="plr", random_seed=7),
    )


@pytest.fixture
def weak_model(rng):
    """y independent of x: no relationship."""
    x = rng.uniform(0.0, 100.0, size=6000)
    y = rng.normal(50.0, 10.0, size=6000)
    return ColumnSetModel.train(
        x, y, table_name="t", x_columns=("x",), y_column="y",
        population_size=100_000,
        config=DBEstConfig(regressor="plr", random_seed=7),
    )


class TestImputation:
    def test_fills_nans(self, rng, strong_model):
        x = np.asarray([10.0, 50.0, 90.0])
        y = np.asarray([30.0, np.nan, np.nan])
        table = Table({"x": x, "y": y}, name="t")
        filled = impute_missing(table, strong_model)
        assert not np.isnan(filled["y"]).any()
        assert filled["y"][0] == 30.0  # observed value untouched
        assert filled["y"][1] == pytest.approx(150.0, rel=0.05)
        assert filled["y"][2] == pytest.approx(270.0, rel=0.05)

    def test_explicit_mask(self, strong_model):
        table = Table({"x": np.asarray([20.0]), "y": np.asarray([1.0])}, name="t")
        filled = impute_missing(table, strong_model, missing=np.asarray([True]))
        assert filled["y"][0] == pytest.approx(60.0, rel=0.1)

    def test_no_missing_returns_same_table(self, strong_model):
        table = Table({"x": np.asarray([20.0]), "y": np.asarray([1.0])}, name="t")
        assert impute_missing(table, strong_model) is table

    def test_wrong_mask_shape(self, strong_model):
        table = Table({"x": np.asarray([20.0]), "y": np.asarray([1.0])}, name="t")
        with pytest.raises(InvalidParameterError):
            impute_missing(table, strong_model, missing=np.asarray([True, False]))

    def test_density_only_model_rejected(self, rng):
        model = ColumnSetModel.train(
            rng.uniform(size=100), None, table_name="t", x_columns=("x",),
            y_column=None, population_size=100,
        )
        table = Table({"x": np.asarray([0.5])}, name="t")
        with pytest.raises(UnsupportedQueryError):
            impute_missing(table, model)


class TestWhatIf:
    def test_estimate_y(self, strong_model):
        np.testing.assert_allclose(
            estimate_y(strong_model, [10.0, 20.0]), [30.0, 60.0], rtol=0.05
        )

    def test_what_if_aggregate(self, strong_model):
        value = what_if_aggregate(strong_model, "avg", 40.0, 60.0)
        assert value == pytest.approx(150.0, rel=0.05)

    def test_what_if_count(self, strong_model):
        value = what_if_aggregate(strong_model, "COUNT", 0.0, 50.0)
        assert value == pytest.approx(50_000, rel=0.1)


class TestRelationships:
    def test_strong_vs_weak(self, strong_model, weak_model):
        strong = relationship_strength(strong_model)
        weak = relationship_strength(weak_model)
        assert strong > 0.9
        assert weak < 0.2

    def test_ranking(self, strong_model, weak_model):
        ranked = rank_relationships({"strong": strong_model, "weak": weak_model})
        assert [name for name, _ in ranked] == ["strong", "weak"]

    def test_density_only_rejected(self, rng):
        model = ColumnSetModel.train(
            rng.uniform(size=100), None, table_name="t", x_columns=("x",),
            y_column=None, population_size=100,
        )
        with pytest.raises(UnsupportedQueryError):
            relationship_strength(model)


class TestDescribe:
    def test_statistics_consistent(self, strong_model):
        stats = describe_subspace(strong_model, 20.0, 40.0)
        assert stats["count"] == pytest.approx(20_000, rel=0.1)
        assert stats["mean"] == pytest.approx(90.0, rel=0.05)
        assert stats["sum"] == pytest.approx(stats["count"] * stats["mean"])
        assert stats["stddev"] == pytest.approx(np.sqrt(stats["variance"]))
        assert 0.0 <= stats["fraction_of_table"] <= 1.0

    def test_sketch_density_shape(self, strong_model):
        sketch = sketch_density(strong_model, n_bins=10, width=20)
        lines = sketch.splitlines()
        assert len(lines) == 10
        assert all("|" in line for line in lines)
        # Uniform density: every bar should be non-empty.
        assert all(line.strip().endswith("#") for line in lines)


class TestAdvisorTemplates:
    def test_simple_query(self):
        q = parse_query("SELECT AVG(y) FROM t WHERE x BETWEEN 1 AND 2;")
        t = template_of(q)
        assert t.table == "t"
        assert t.x_columns == ("x",)
        assert t.y_column == "y"
        assert t.group_by is None

    def test_group_by_query(self):
        q = parse_query(
            "SELECT g, SUM(y) FROM t WHERE x BETWEEN 1 AND 2 GROUP BY g;"
        )
        t = template_of(q)
        assert t.group_by == "g"

    def test_equality_maps_to_group(self):
        q = parse_query("SELECT AVG(y) FROM t WHERE x BETWEEN 1 AND 2 AND g = 4;")
        assert template_of(q).group_by == "g"

    def test_join_query(self):
        q = parse_query(
            "SELECT AVG(m) FROM f JOIN d ON k1 = k2 WHERE a BETWEEN 1 AND 2;"
        )
        t = template_of(q)
        assert t.join == ("d", "k1", "k2")

    def test_percentile_without_where(self):
        q = parse_query("SELECT PERCENTILE(x, 0.5) FROM t;")
        t = template_of(q)
        assert t.x_columns == ("x",)
        assert t.y_column is None

    def test_count_only_query_has_no_y(self):
        q = parse_query("SELECT COUNT(y) FROM t WHERE x BETWEEN 1 AND 2;")
        assert template_of(q).y_column == "y"

    def test_describe(self):
        q = parse_query("SELECT AVG(y) FROM t WHERE x BETWEEN 1 AND 2;")
        text = template_of(q).describe()
        assert "table=t" in text and "y=y" in text


class TestAdvisor:
    def test_frequency_ranking(self):
        advisor = WorkloadAdvisor()
        for _ in range(5):
            advisor.observe("SELECT AVG(y) FROM t WHERE x BETWEEN 1 AND 2;")
        advisor.observe("SELECT SUM(z) FROM t WHERE x BETWEEN 1 AND 2;")
        recs = advisor.recommend()
        assert recs[0].template.y_column == "y"
        assert recs[0].frequency == 5
        assert recs[0].coverage == pytest.approx(5 / 6)

    def test_malformed_queries_counted_not_fatal(self):
        advisor = WorkloadAdvisor()
        advisor.observe("THIS IS NOT SQL")
        advisor.observe("SELECT AVG(y) FROM t WHERE x BETWEEN 1 AND 2;")
        assert advisor.n_unsupported == 1
        assert len(advisor.recommend()) == 1

    def test_min_frequency_filter(self):
        advisor = WorkloadAdvisor()
        advisor.observe("SELECT AVG(y) FROM t WHERE x BETWEEN 1 AND 2;")
        advisor.observe("SELECT AVG(y) FROM t WHERE x BETWEEN 1 AND 2;")
        advisor.observe("SELECT AVG(z) FROM t WHERE x BETWEEN 1 AND 2;")
        assert len(advisor.recommend(min_frequency=2)) == 1

    def test_max_models_cap(self):
        advisor = WorkloadAdvisor()
        for column in "abcde":
            advisor.observe(
                f"SELECT AVG({column}) FROM t WHERE x BETWEEN 1 AND 2;"
            )
        assert len(advisor.recommend(max_models=2)) == 2

    def test_build_recommended_end_to_end(self, linear_table, fast_config):
        engine = DBEst(config=fast_config)
        engine.register_table(linear_table)
        advisor = WorkloadAdvisor()
        workload = [
            "SELECT AVG(y) FROM linear WHERE x BETWEEN 10 AND 20;",
            "SELECT SUM(y) FROM linear WHERE x BETWEEN 30 AND 50;",
            "SELECT AVG(y) FROM linear WHERE x BETWEEN 0 AND 90;",
        ]
        advisor.observe_all(workload)
        built = advisor.build_recommended(engine, sample_size=2000)
        assert len(built) == 1  # one template covers all three queries
        for sql in workload:
            result = engine.execute(sql)
            assert result.source == "model"

    def test_build_skips_unregistered_tables(self, fast_config):
        engine = DBEst(config=fast_config)
        advisor = WorkloadAdvisor()
        advisor.observe("SELECT AVG(y) FROM ghost WHERE x BETWEEN 1 AND 2;")
        assert advisor.build_recommended(engine) == []
