"""Tests for the histogram density estimator and the online AQP engine."""

import numpy as np
import pytest
from scipy import stats

from repro.engines import ExactEngine, OnlineAQPEngine
from repro.errors import InvalidParameterError, ModelTrainingError
from repro.ml import HistogramDensity, KernelDensityEstimator


class TestHistogramDensity:
    def test_unfitted_raises(self):
        with pytest.raises(ModelTrainingError):
            HistogramDensity().pdf(0.0)

    def test_empty_rejected(self):
        with pytest.raises(ModelTrainingError):
            HistogramDensity().fit(np.asarray([]))

    def test_invalid_bins(self):
        with pytest.raises(InvalidParameterError):
            HistogramDensity(n_bins=0)

    def test_integrates_to_one(self, rng):
        density = HistogramDensity(n_bins=32).fit(rng.normal(size=10_000))
        lo, hi = density.support
        assert density.integrate(lo, hi) == pytest.approx(1.0, abs=1e-9)

    def test_pdf_matches_normal(self, rng):
        density = HistogramDensity(n_bins=64).fit(
            rng.normal(10.0, 2.0, size=50_000)
        )
        xs = np.linspace(6.0, 14.0, 9)
        # Tail bins average over a steep pdf, so tolerance is looser than
        # the KDE's (the discreteness the paper objects to).
        np.testing.assert_allclose(
            density.pdf(xs), stats.norm(10.0, 2.0).pdf(xs), rtol=0.25
        )

    def test_pdf_zero_outside_support(self, rng):
        density = HistogramDensity().fit(rng.uniform(0.0, 1.0, size=1000))
        assert density.pdf(np.asarray([-1.0, 2.0])).sum() == 0.0

    def test_cdf_monotone(self, rng):
        density = HistogramDensity().fit(rng.normal(size=5000))
        xs = np.linspace(*density.support, 100)
        assert np.all(np.diff(density.cdf(xs)) >= 0)

    def test_discreteness_vs_kde(self, rng):
        """The paper's objection: the histogram is blocky at bin scale."""
        x = rng.normal(size=20_000)
        histogram = HistogramDensity(n_bins=16).fit(x)
        kde = KernelDensityEstimator().fit(x)
        grid = np.linspace(-2, 2, 400)
        # Piecewise-constant pdf has exactly <= n_bins distinct values.
        assert np.unique(np.round(histogram.pdf(grid), 12)).size <= 16
        assert np.unique(np.round(kde.pdf(grid), 12)).size > 100

    def test_degenerate_constant_data(self):
        density = HistogramDensity().fit(np.full(100, 5.0))
        assert density.integrate(4.0, 6.0) == pytest.approx(1.0, abs=1e-6)

    def test_sampling(self, rng):
        density = HistogramDensity(n_bins=32).fit(
            rng.normal(50.0, 5.0, size=20_000)
        )
        draws = density.sample(10_000, rng=rng)
        assert abs(draws.mean() - 50.0) < 0.5
        lo, hi = density.support
        assert draws.min() >= lo and draws.max() <= hi


class TestOnlineAQP:
    @pytest.fixture
    def engine(self, linear_table):
        engine = OnlineAQPEngine(sample_size=2000, random_seed=7)
        engine.register_table(linear_table)
        return engine

    def test_no_prebuilt_state(self, engine):
        assert engine.state_size_bytes() == 0

    def test_scalar_accuracy(self, engine, truth_engine):
        sql = "SELECT AVG(y) FROM linear WHERE x BETWEEN 20 AND 60;"
        truth = truth_engine.execute(sql).scalar()
        assert engine.execute(sql).scalar() == pytest.approx(truth, rel=0.1)

    def test_count_scaled_to_population(self, engine, truth_engine):
        sql = "SELECT COUNT(y) FROM linear WHERE x BETWEEN 20 AND 60;"
        truth = truth_engine.execute(sql).scalar()
        assert engine.execute(sql).scalar() == pytest.approx(truth, rel=0.2)

    def test_fresh_sample_each_query(self, engine):
        sql = "SELECT AVG(y) FROM linear WHERE x BETWEEN 20 AND 60;"
        answers = {round(engine.execute(sql).scalar(), 9) for _ in range(5)}
        assert len(answers) > 1  # online sampling re-draws every time

    def test_join_query(self, rng):
        from repro.storage import Table

        fact = Table(
            {"k": rng.integers(0, 10, size=20_000).astype(np.int64),
             "v": rng.normal(5.0, 1.0, size=20_000)},
            name="fact",
        )
        dim = Table(
            {"k": np.arange(10, dtype=np.int64),
             "w": np.linspace(0, 90, 10)},
            name="dim",
        )
        online = OnlineAQPEngine(sample_size=4000, random_seed=7)
        online.register_table(fact)
        online.register_table(dim)
        exact = ExactEngine()
        exact.register_table(fact)
        exact.register_table(dim)
        sql = "SELECT AVG(v) FROM fact JOIN dim ON k = k WHERE w BETWEEN 20 AND 70;"
        truth = exact.execute(sql).scalar()
        assert online.execute(sql).scalar() == pytest.approx(truth, rel=0.1)

    def test_as_dbest_fallback(self, linear_table, fast_config):
        """The paper's architecture: model-less queries fall through to an
        online-sampling AQP engine."""
        from repro import DBEst

        online = OnlineAQPEngine(sample_size=2000, random_seed=7)
        online.register_table(linear_table)
        engine = DBEst(config=fast_config, fallback=online)
        engine.register_table(linear_table)
        result = engine.execute(
            "SELECT AVG(y) FROM linear WHERE x BETWEEN 10 AND 30;"
        )
        assert result.source == "fallback"

    def test_invalid_sample_size(self):
        with pytest.raises(InvalidParameterError):
            OnlineAQPEngine(sample_size=0)
