"""Parity suite: batched *multivariate* GROUP BY vs the scalar oracles.

Multivariate predicate sets (product-kernel KDEs) train through
:mod:`repro.core.batched_train` and answer through
:mod:`repro.core.batched` since the multivariate batching PR; the
per-group scalar loop remains the reference.  Batched-trained models
must match loop-trained models to 1e-12 in every parameter (centres and
weights bit for bit on the binned path) and both engines must answer
COUNT/SUM/AVG/VARIANCE/STDDEV identically to 1e-9 across binned and
unbinned fits, degenerate (constant) columns, raw groups and empty-box
edge cases.  The PR's satellite fixes — pdf chunk budgeting,
KDE config plumbing, ensemble multivariate invariants — are regression
tested here too.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest

from repro.core import DBEstConfig, GroupByModelSet
from repro.core.batched_train import train_batched_models
from repro.core.model import ColumnSetModel
from repro.errors import (
    InvalidParameterError,
    ModelTrainingError,
    UnsupportedQueryError,
)
from repro.ml.ensemble import EnsembleRegressor
from repro.ml.kde import MultivariateKDE, _SQRT_2PI
from repro.sql.ast import AggregateCall

RTOL = 1e-12
ATOL = 1e-12


def close(got, expected, context: str = "") -> None:
    """1e-12 agreement (the issue's parameter-parity bound)."""
    np.testing.assert_allclose(
        np.asarray(got), np.asarray(expected),
        rtol=RTOL, atol=ATOL, err_msg=context,
    )


def make_data(n_groups: int = 6, rows: int = 150, seed: int = 3):
    """Mixed workload: modelled, constant-column and sample-starved groups."""
    rng = np.random.default_rng(seed)
    n = n_groups * rows
    groups = np.repeat(np.arange(n_groups), rows)
    x = np.column_stack([
        rng.uniform(0.0, 100.0, size=n),
        rng.uniform(-5.0, 5.0, size=n),
    ])
    if n_groups > 2:
        x[groups == 2, 1] = 1.5  # constant second column in one group
    y = (groups + 1.0) * 0.1 * x[:, 0] + 2.0 * x[:, 1] \
        + rng.normal(0.0, 1.0, size=n)
    # Starve the last group in the sample so it becomes a raw group.
    keep = np.ones(n, dtype=bool)
    idx = np.flatnonzero(groups == n_groups - 1)
    keep[idx[12:]] = False
    return x, y, groups, keep


def train_pair(
    regressor: str = "linear", seed: int = 3, y: bool = True, **config_kwargs
) -> tuple[GroupByModelSet, GroupByModelSet]:
    """The same multivariate sample through the batched and the loop path."""
    x, ys, groups, keep = make_data(seed=seed)
    config = DBEstConfig(
        regressor=regressor, min_group_rows=30, random_seed=seed,
        integration_points=65, **config_kwargs,
    )
    kwargs = dict(
        sample_x=x[keep],
        sample_y=ys[keep] if y else None,
        sample_groups=groups[keep],
        full_groups=groups, full_x=x, full_y=ys if y else None,
        table_name="t", x_columns=("a", "b"),
        y_column="y" if y else None,
        group_column="g", config=config,
    )
    return (
        GroupByModelSet.train(batched=True, **kwargs),
        GroupByModelSet.train(batched=False, **kwargs),
    )


def assert_density_parity(batched, scalar, context: str) -> None:
    assert isinstance(batched, MultivariateKDE), context
    close(batched._centres, scalar._centres, f"{context}: centres")
    close(batched._weights, scalar._weights, f"{context}: weights")
    close(batched._h, scalar._h, f"{context}: bandwidths")
    close(batched._domain_low, scalar._domain_low, f"{context}: domain low")
    close(batched._domain_high, scalar._domain_high, f"{context}: domain high")
    close(batched._norm, scalar._norm, f"{context}: norm")
    assert batched.n_train == scalar.n_train, context
    assert batched.n_dims == scalar.n_dims, context


def assert_set_parity(batched: GroupByModelSet, scalar: GroupByModelSet) -> None:
    assert set(batched.models) == set(scalar.models)
    assert set(batched.raw_groups) == set(scalar.raw_groups)
    for value, expected in scalar.models.items():
        got = batched.models[value]
        context = f"group {value}"
        assert_density_parity(got.density, expected.density, context)
        close(got.x_domain, expected.x_domain, f"{context}: domain")
        assert got.n_sample == expected.n_sample, context
        assert got.population_size == expected.population_size, context
        if expected.regressor is None:
            assert got.regressor is None, context
        else:
            assert type(got.regressor) is type(expected.regressor), context
            coef = getattr(expected.regressor, "_coef", None)
            if coef is not None:
                close(got.regressor._coef, coef, f"{context}: coefficients")
            grid = np.column_stack([
                np.linspace(0.0, 100.0, 65), np.linspace(-5.0, 5.0, 65)
            ])
            close(got.regressor.predict(grid), expected.regressor.predict(grid),
                  f"{context}: predictions")
        # Multivariate models keep only the global residual scalar.
        assert got._residual_edges is None and expected._residual_edges is None
        close(got._residual_var_global, expected._residual_var_global,
              f"{context}: global residual variance")
    for value, expected in scalar.raw_groups.items():
        got = batched.raw_groups[value]
        np.testing.assert_array_equal(got.x, expected.x)


RANGES = (
    {"a": (20.0, 60.0), "b": (-3.0, 3.0)},   # interior box
    {"a": (20.0, 60.0)},                     # partial predicate (one column)
    {"b": (1.0, 2.0)},                       # narrow, contains the constant
    {"a": (-50.0, -10.0)},                   # disjoint from the domain
    {},                                      # no predicate
)


def assert_answer_parity(batched: GroupByModelSet, scalar: GroupByModelSet,
                         y: bool = True) -> None:
    """Both engines answer every aggregate identically (1e-9)."""
    aggregates = [AggregateCall("COUNT", None)]
    if y:
        aggregates += [
            AggregateCall(func, "y")
            for func in ("SUM", "AVG", "VARIANCE", "STDDEV")
        ]
    for aggregate in aggregates:
        for ranges in RANGES:
            got = batched.answer(aggregate, ranges, batched=True)
            expected = scalar.answer(aggregate, ranges, batched=False)
            assert set(got) == set(expected)
            for value, answer in expected.items():
                if math.isnan(answer):
                    assert math.isnan(got[value]), (aggregate, ranges, value)
                else:
                    bound = 1e-9 * max(1.0, abs(answer))
                    assert abs(got[value] - answer) <= bound, (
                        f"{aggregate} {ranges} group {value}: "
                        f"{got[value]} vs {answer}"
                    )


# -- model / answer parity across trainer configurations ---------------------


class TestMultivariateParity:
    @pytest.mark.parametrize("regressor", ["linear", "ensemble", "gboost"])
    def test_models_and_answers(self, regressor):
        batched, scalar = train_pair(regressor=regressor)
        assert_set_parity(batched, scalar)
        assert_answer_parity(batched, scalar)

    @pytest.mark.parametrize("bandwidth", ["scott", "silverman"])
    def test_bandwidth_rules(self, bandwidth):
        batched, scalar = train_pair(kde_bandwidth=bandwidth)
        assert_set_parity(batched, scalar)

    def test_constant_column_bandwidth_fallback_is_summation_robust(self):
        # Constant 1.234: its sequential sum rounds (unlike 1.5 or 42.0),
        # so a sigma == 0.0 test diverges between np.std and segmented
        # reductions.  Both paths must detect degeneracy from min == max
        # and take the max(|x[0]|, 1) * 1e-3 spread fallback.
        rng = np.random.default_rng(31)
        rows = 64
        groups = np.repeat(np.arange(2), rows)
        x = np.column_stack([
            rng.uniform(0.0, 100.0, size=groups.shape[0]),
            np.full(groups.shape[0], 1.234),
        ])
        for bandwidth in ("scott", "silverman"):
            config = DBEstConfig(
                min_group_rows=30, random_seed=31, kde_bandwidth=bandwidth
            )
            kwargs = dict(
                sample_x=x, sample_y=None, sample_groups=groups,
                full_groups=groups, full_x=x, full_y=None,
                table_name="t", x_columns=("a", "b"), y_column=None,
                group_column="g", config=config,
            )
            batched = GroupByModelSet.train(batched=True, **kwargs)
            scalar = GroupByModelSet.train(batched=False, **kwargs)
            for value in scalar.models:
                got = batched.models[value].density._h
                expected = scalar.models[value].density._h
                close(got, expected, f"{bandwidth} group {value}: bandwidths")
                # The fallback spread, not the 1e-12 floor.
                factor = 0.9 if bandwidth == "silverman" else 1.0
                assert got[1] == pytest.approx(
                    factor * 1.234e-3 * rows ** (-1.0 / 5.0), rel=1e-12
                )

    def test_density_only(self):
        batched, scalar = train_pair(y=False)
        assert_set_parity(batched, scalar)
        assert_answer_parity(batched, scalar, y=False)
        assert all(m.regressor is None for m in batched.models.values())


class TestBinnedMultivariateParity:
    def test_histogramdd_replicated_bit_for_bit(self):
        # Groups above the binning threshold: the flattened-multi-index
        # bincount must replicate each group's own np.histogramdd.
        rng = np.random.default_rng(11)
        rows = 1300
        groups = np.repeat(np.arange(3), rows)
        x = np.column_stack([
            rng.normal(50.0, 12.0, size=groups.shape[0]),
            rng.uniform(0.0, 10.0, size=groups.shape[0]),
        ])
        y = 2.0 * x[:, 0] + x[:, 1] + rng.normal(0.0, 1.0, size=groups.shape[0])
        config = DBEstConfig(
            regressor="linear", min_group_rows=30, random_seed=11,
            integration_points=65, kde_bins_per_dim=16, kde_bin_threshold=1000,
        )
        kwargs = dict(
            sample_x=x, sample_y=y, sample_groups=groups,
            full_groups=groups, full_x=x, full_y=y,
            table_name="t", x_columns=("a", "b"), y_column="y",
            group_column="g", config=config,
        )
        batched = GroupByModelSet.train(batched=True, **kwargs)
        scalar = GroupByModelSet.train(batched=False, **kwargs)
        for value, expected in scalar.models.items():
            got = batched.models[value].density
            assert got._centres.shape[0] <= 16 * 16
            np.testing.assert_array_equal(got._centres, expected.density._centres)
            np.testing.assert_array_equal(got._weights, expected.density._weights)
        assert_set_parity(batched, scalar)
        assert_answer_parity(batched, scalar)


class TestMemoryBounds:
    def test_binned_groups_chunk_under_a_tiny_cell_budget(self, monkeypatch):
        # The dense (groups, bins**d) cell array must never exceed the
        # element budget: with the budget shrunk below one group's cell
        # count the bincount runs one group at a time, bit-identically.
        import repro.core.batched_train as bt

        monkeypatch.setattr(bt, "_BLOCK_ELEMENTS", 300)
        rng = np.random.default_rng(23)
        rows = 1200
        groups = np.repeat(np.arange(3), rows)
        x = rng.normal(0.0, 1.0, size=(groups.shape[0], 2))
        config = DBEstConfig(
            min_group_rows=30, random_seed=23, kde_bins_per_dim=16,
            kde_bin_threshold=1000,
        )
        kwargs = dict(
            sample_x=x, sample_y=None, sample_groups=groups,
            full_groups=groups, full_x=x, full_y=None,
            table_name="t", x_columns=("a", "b"), y_column=None,
            group_column="g", config=config,
        )
        batched = GroupByModelSet.train(batched=True, **kwargs)
        scalar = GroupByModelSet.train(batched=False, **kwargs)
        for value, expected in scalar.models.items():
            got = batched.models[value].density
            np.testing.assert_array_equal(got._centres, expected.density._centres)
            np.testing.assert_array_equal(got._weights, expected.density._weights)

    def test_nd_grid_cache_evicts_by_element_budget(self, monkeypatch):
        from repro.core.batched import BatchedGroupEvaluator

        batched, _scalar = train_pair()
        evaluator = batched.batched_evaluator()
        one_entry = None
        aggregate = AggregateCall("AVG", "y")
        # Size one entry, then cap the budget at ~two entries and sweep
        # many distinct ranges: the cache must stay within the budget and
        # keep answering correctly after evictions.
        evaluator.answer(aggregate, {"a": (10.0, 90.0)})
        one_entry = next(iter(evaluator._grid_cache.values()))["elements"]
        monkeypatch.setattr(
            BatchedGroupEvaluator, "_ND_GRID_CACHE_ELEMENTS", 2 * one_entry
        )
        for low in np.linspace(5.0, 40.0, 6):
            evaluator.answer(aggregate, {"a": (float(low), float(low) + 30.0)})
        total = sum(
            entry.get("elements", 0)
            for entry in evaluator._grid_cache.values()
        )
        assert total <= 2 * one_entry
        ranges = {"a": (5.0, 35.0)}
        got = batched.answer(aggregate, ranges, batched=True)
        expected = batched.answer(aggregate, ranges, batched=False)
        for value, answer in expected.items():
            if math.isnan(answer):
                assert math.isnan(got[value])
            else:
                assert abs(got[value] - answer) <= 1e-9 * max(1.0, abs(answer))

    def test_oversized_moment_queries_stream_in_blocks(self, monkeypatch):
        # When a single query's grids would blow the element budget, the
        # groups must stream through budget-sized blocks — nothing gets
        # memoised and the answers still match the scalar oracle.
        from repro.core.batched import BatchedGroupEvaluator

        batched, scalar = train_pair()
        evaluator = batched.batched_evaluator()
        monkeypatch.setattr(
            BatchedGroupEvaluator, "_ND_GRID_CACHE_ELEMENTS", 1
        )
        ranges = {"a": (20.0, 60.0), "b": (-3.0, 3.0)}
        for func in ("SUM", "AVG", "VARIANCE"):
            aggregate = AggregateCall(func, "y")
            got = evaluator.answer(aggregate, ranges)
            expected = scalar.answer(aggregate, ranges, batched=False)
            for value, answer in expected.items():
                if math.isnan(answer):
                    assert math.isnan(got[value])
                else:
                    assert abs(got[value] - answer) <= 1e-9 * max(
                        1.0, abs(answer)
                    )
        assert evaluator._grid_cache == {}


class TestUnsupportedAggregates:
    def test_both_paths_refuse_x_moments_and_percentile(self):
        batched, _scalar = train_pair()
        for aggregate in (
            AggregateCall("AVG", "a"),
            AggregateCall("VARIANCE", "a"),
            AggregateCall("STDDEV", "a"),
            AggregateCall("PERCENTILE", "a", 0.5),
        ):
            with pytest.raises(UnsupportedQueryError):
                batched.answer(aggregate, {}, batched=True)
            with pytest.raises(UnsupportedQueryError):
                batched.answer(aggregate, {}, batched=False)

    def test_reversed_range_raises(self):
        batched, _scalar = train_pair()
        with pytest.raises(InvalidParameterError):
            batched.answer(
                AggregateCall("COUNT", None), {"a": (60.0, 20.0)}, batched=True
            )


# -- routing: defaults, opt-outs, evaluator stacking -------------------------


class TestRouting:
    def test_batched_paths_are_the_default(self, monkeypatch):
        calls = []
        original = train_batched_models

        def spy(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr("repro.core.groupby.train_batched_models", spy)
        batched, _scalar = train_pair()
        assert calls  # multivariate training went through the batched trainer
        assert batched.batched_evaluator() is not None

    def test_opt_outs_reach_the_scalar_loop(self, monkeypatch):
        def forbidden(*args, **kwargs):
            raise AssertionError("batched trainer called despite opt-out")

        monkeypatch.setattr("repro.core.groupby.train_batched_models", forbidden)
        x, y, groups, keep = make_data()
        config = DBEstConfig(
            regressor="linear", min_group_rows=30, random_seed=3,
            batched_train=False, batched_groupby=False,
        )
        model_set = GroupByModelSet.train(
            sample_x=x[keep], sample_y=y[keep], sample_groups=groups[keep],
            full_groups=groups, full_x=x, full_y=y,
            table_name="t", x_columns=("a", "b"), y_column="y",
            group_column="g", config=config,
        )
        assert len(model_set.models) == 5
        # batched_groupby=False: answer() never builds the evaluator.
        model_set.answer(AggregateCall("COUNT", None), {"a": (20.0, 60.0)})
        assert model_set._batched_built is False

    def test_split_segments_cover_all_groups_and_pickle(self):
        batched, _scalar = train_pair()
        evaluator = batched.batched_evaluator()
        aggregate = AggregateCall("SUM", "y")
        ranges = {"a": (20.0, 60.0), "b": (-3.0, 3.0)}
        expected = evaluator.answer(aggregate, ranges)
        merged: dict = {}
        for segment in evaluator.split(3):
            clone = pickle.loads(pickle.dumps(segment))
            merged.update(clone.answer(aggregate, ranges))
        assert set(merged) == set(expected)
        for value, answer in expected.items():
            if math.isnan(answer):
                assert math.isnan(merged[value])
            else:
                assert abs(merged[value] - answer) <= 1e-12 * max(1.0, abs(answer))


# -- satellite regressions ----------------------------------------------------


class TestPdfChunkBudget:
    def test_chunked_pdf_matches_dense_reference(self):
        # The centre chunks must respect the element budget *per
        # dimension*; correctness of the chunked accumulation is checked
        # against a dense single-pass reference.
        rng = np.random.default_rng(7)
        d = 3
        train = rng.normal(size=(800, d))
        kde = MultivariateKDE(binned=False).fit(train)
        # 900 query points x 800 centres x 3 dims: with the fixed budget
        # (2e6 // (900 * 3) = 740) the centre loop takes multiple chunks.
        points = rng.normal(size=(900, d))
        got = kde.pdf(points)
        z = (points[:, None, :] - kde._centres[None, :, :]) / kde._h
        dense = np.exp(-0.5 * np.sum(z * z, axis=2)) @ kde._weights
        dense /= float(np.prod(kde._h)) * _SQRT_2PI ** d * kde._norm
        np.testing.assert_allclose(got, dense, rtol=1e-12)

    def test_budget_divides_by_dimensionality(self):
        # White-box: the (m, chunk, d) temporary of one chunk never
        # exceeds the 2M-element budget, whatever d is.
        for d, n_points in ((2, 1000), (8, 1000), (16, 4000)):
            chunk = max(1, int(2_000_000 // (max(n_points, 1) * max(d, 1))))
            assert n_points * chunk * d <= 2_000_000 or chunk == 1


class TestConfigPlumbing:
    def test_multivariate_kde_settings_forwarded(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(400, 2))
        config = DBEstConfig(
            kde_bins_per_dim=8, kde_bin_threshold=100, random_seed=9
        )
        model = ColumnSetModel.train(
            x, None, table_name="t", x_columns=("a", "b"), y_column=None,
            population_size=400, config=config,
        )
        assert model.density.bins_per_dim == 8
        assert model.density.bin_threshold == 100
        # 400 rows > threshold 100: binned compression actually engaged.
        assert model.density._centres.shape[0] <= 8 * 8

    def test_univariate_bin_threshold_forwarded(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=300)
        config = DBEstConfig(
            kde_bins=32, kde_bin_threshold=100, random_seed=9
        )
        model = ColumnSetModel.train(
            x, None, table_name="t", x_columns=("x",), y_column=None,
            population_size=300, config=config,
        )
        assert model.density.bin_threshold == 100
        assert model.density._centres.shape[0] <= 32

    def test_non_string_bandwidth_raises_for_multivariate(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(100, 2))
        config = DBEstConfig(kde_bandwidth=0.75)
        with pytest.raises(InvalidParameterError):
            ColumnSetModel.train(
                x, None, table_name="t", x_columns=("a", "b"), y_column=None,
                population_size=100, config=config,
            )
        groups = np.repeat(np.arange(2), 50)
        with pytest.raises(InvalidParameterError):
            GroupByModelSet.train(
                sample_x=x, sample_y=None, sample_groups=groups,
                full_groups=groups, full_x=x, full_y=None,
                table_name="t", x_columns=("a", "b"), y_column=None,
                group_column="g",
                config=DBEstConfig(kde_bandwidth=0.75, min_group_rows=10),
            )

    def test_all_raw_set_ignores_float_bandwidth_like_the_scalar_loop(self):
        # No group is modelled, so no density is ever built: the batched
        # trainer must not reject the (1-D-valid) float bandwidth the
        # scalar loop never consumes either.
        rng = np.random.default_rng(29)
        x = rng.normal(size=(40, 2))
        groups = np.repeat(np.arange(2), 20)
        config = DBEstConfig(kde_bandwidth=0.5, min_group_rows=10**6)
        for batched in (True, False):
            model_set = GroupByModelSet.train(
                sample_x=x, sample_y=None, sample_groups=groups,
                full_groups=groups, full_x=x, full_y=None,
                table_name="t", x_columns=("a", "b"), y_column=None,
                group_column="g", config=config, batched=batched,
            )
            assert model_set.models == {}
            assert len(model_set.raw_groups) == 2

    def test_config_validates_new_knobs(self):
        with pytest.raises(InvalidParameterError):
            DBEstConfig(kde_bins_per_dim=1)
        with pytest.raises(InvalidParameterError):
            DBEstConfig(kde_bin_threshold=0)


class TestFromFitState:
    def test_round_trips_a_direct_fit(self):
        rng = np.random.default_rng(13)
        x = rng.normal(size=(500, 2))
        fitted = MultivariateKDE(bin_threshold=100).fit(x)
        mix = fitted.export_mixture()
        rebuilt = MultivariateKDE.from_fit_state(
            centres=mix.centres, weights=mix.weights, h=mix.h,
            domain_low=mix.domain_low, domain_high=mix.domain_high,
            n_train=mix.n_train, bin_threshold=100,
        )
        assert rebuilt._norm == fitted._norm
        lows = np.asarray([-1.0, -1.0])
        highs = np.asarray([1.0, 1.0])
        assert rebuilt.integrate_box(lows, highs) == fitted.integrate_box(
            lows, highs
        )
        points = rng.normal(size=(50, 2))
        np.testing.assert_array_equal(rebuilt.pdf(points), fitted.pdf(points))


class TestEnsembleMultivariateInvariants:
    def test_domain_and_default_name_recorded(self):
        rng = np.random.default_rng(17)
        x = rng.uniform(0.0, 10.0, size=(200, 2))
        y = x[:, 0] + 2.0 * x[:, 1]
        reg = EnsembleRegressor(random_state=17).fit(x, y)
        assert reg._default_name in reg.models_
        # The 1-D path records the observed feature domain; the
        # multivariate path must too (per-dimension bounds).
        assert reg._domain is not None
        for j, (lo, hi) in enumerate(reg._domain):
            assert lo == float(x[:, j].min())
            assert hi == float(x[:, j].max())

    def test_row_mismatch_raises_like_the_1d_path(self):
        rng = np.random.default_rng(17)
        x = rng.uniform(0.0, 10.0, size=(200, 2))
        with pytest.raises(ModelTrainingError):
            EnsembleRegressor(random_state=17).fit(x, np.ones(150))
