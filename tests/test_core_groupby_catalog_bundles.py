"""Unit tests for group-by model sets, the catalog, and model bundles."""

import numpy as np
import pytest

from repro.core import (
    DBEstConfig,
    GroupByModelSet,
    ModelBundle,
    ModelCatalog,
    ModelKey,
)
from repro.core.groupby import RawGroup
from repro.errors import (
    BundleError,
    CatalogError,
    ModelNotFoundError,
    ModelTrainingError,
)
from repro.sql.ast import AggregateCall


@pytest.fixture
def grouped_data(rng):
    """3 groups with distinct linear relations; group 3 is tiny."""
    n = 9000
    groups = np.concatenate(
        [np.full(4000, 1), np.full(4960, 2), np.full(40, 3)]
    ).astype(np.int64)
    x = rng.uniform(0, 10, size=n)
    slope = np.where(groups == 1, 1.0, np.where(groups == 2, 2.0, 5.0))
    y = slope * x + rng.normal(0, 0.1, size=n)
    return x, y, groups


@pytest.fixture
def model_set(grouped_data, rng):
    x, y, groups = grouped_data
    sample_idx = rng.choice(x.shape[0], size=3000, replace=False)
    return GroupByModelSet.train(
        sample_x=x[sample_idx],
        sample_y=y[sample_idx],
        sample_groups=groups[sample_idx],
        full_groups=groups,
        full_x=x,
        full_y=y,
        table_name="t",
        x_columns=("x",),
        y_column="y",
        group_column="g",
        config=DBEstConfig(regressor="plr", min_group_rows=100, random_seed=3),
    )


class TestRawGroup:
    def test_exact_answers(self):
        raw = RawGroup(np.asarray([1.0, 2.0, 3.0, 4.0]), np.asarray([10.0, 20.0, 30.0, 40.0]))
        ranges = {"x": (1.5, 3.5)}
        assert raw.answer(AggregateCall("COUNT", "y"), ranges, ("x",)) == 2.0
        assert raw.answer(AggregateCall("SUM", "y"), ranges, ("x",)) == 50.0
        assert raw.answer(AggregateCall("AVG", "y"), ranges, ("x",)) == 25.0

    def test_empty_selection(self):
        raw = RawGroup(np.asarray([1.0]), np.asarray([10.0]))
        ranges = {"x": (5.0, 6.0)}
        assert raw.answer(AggregateCall("COUNT", "y"), ranges, ("x",)) == 0.0
        assert raw.answer(AggregateCall("SUM", "y"), ranges, ("x",)) == 0.0
        assert np.isnan(raw.answer(AggregateCall("AVG", "y"), ranges, ("x",)))

    def test_percentile(self):
        raw = RawGroup(np.arange(101, dtype=float), np.arange(101, dtype=float))
        value = raw.answer(
            AggregateCall("PERCENTILE", "x", 0.5), {}, ("x",)
        )
        assert value == 50.0


class TestGroupByTraining:
    def test_groups_partitioned_by_size(self, model_set):
        # Groups 1 and 2 are big enough for models; group 3 is raw.
        assert set(model_set.models) == {1, 2}
        assert set(model_set.raw_groups) == {3}
        assert model_set.n_groups == 3

    def test_population_counts_exact(self, model_set):
        assert model_set.models[1].population_size == 4000
        assert model_set.models[2].population_size == 4960

    def test_max_groups_enforced(self, grouped_data, rng):
        x, y, groups = grouped_data
        with pytest.raises(ModelTrainingError):
            GroupByModelSet.train(
                sample_x=x, sample_y=y, sample_groups=groups,
                full_groups=groups, full_x=x, full_y=y,
                table_name="t", x_columns=("x",), y_column="y",
                group_column="g",
                config=DBEstConfig(max_groups=2, regressor="plr"),
            )


class TestGroupByAnswers:
    def test_per_group_avg(self, model_set):
        ranges = {"x": (2.0, 8.0)}
        answers = model_set.answer(AggregateCall("AVG", "y"), ranges)
        # E[s*x | 2<=x<=8] = 5s for uniform x and slope s.
        assert answers[1] == pytest.approx(5.0, rel=0.1)
        assert answers[2] == pytest.approx(10.0, rel=0.1)
        assert answers[3] == pytest.approx(25.0, rel=0.2)  # raw group, exact-ish

    def test_per_group_count_sums_to_total(self, model_set, grouped_data):
        x, _y, _groups = grouped_data
        ranges = {"x": (0.0, 10.0)}
        answers = model_set.answer(AggregateCall("COUNT", "y"), ranges)
        assert sum(answers.values()) == pytest.approx(x.shape[0], rel=0.05)

    def test_single_group_lookup(self, model_set):
        value = model_set.answer_group(2, AggregateCall("AVG", "y"), {"x": (2.0, 8.0)})
        assert value == pytest.approx(10.0, rel=0.1)

    def test_unknown_group_raises(self, model_set):
        with pytest.raises(KeyError):
            model_set.answer_group(99, AggregateCall("AVG", "y"), {})

    def test_parallel_matches_sequential(self, model_set):
        ranges = {"x": (1.0, 9.0)}
        sequential = model_set.answer(AggregateCall("SUM", "y"), ranges, n_workers=1)
        parallel = model_set.answer(AggregateCall("SUM", "y"), ranges, n_workers=4)
        assert sequential == parallel


class TestCatalog:
    def test_register_and_get(self, model_set):
        catalog = ModelCatalog()
        key = ModelKey.make("t", ("x",), "y", "g")
        catalog.register(key, model_set)
        assert catalog.get(key) is model_set
        assert key in catalog
        assert len(catalog) == 1

    def test_duplicate_registration_rejected(self, model_set):
        catalog = ModelCatalog()
        key = ModelKey.make("t", "x", "y")
        catalog.register(key, model_set)
        with pytest.raises(CatalogError):
            catalog.register(key, model_set)
        catalog.register(key, model_set, replace=True)  # explicit replace ok

    def test_missing_model(self):
        catalog = ModelCatalog()
        with pytest.raises(ModelNotFoundError):
            catalog.get(ModelKey.make("t", "x", "y"))

    def test_key_order_insensitive(self):
        assert ModelKey.make("t", ("b", "a"), "y") == ModelKey.make(
            "t", ("a", "b"), "y"
        )

    def test_find_exact(self, model_set):
        catalog = ModelCatalog()
        catalog.register(ModelKey.make("t", "x", "y", "g"), model_set)
        assert catalog.find("t", ("x",), "y", "g") is model_set

    def test_find_count_star_wildcard(self, model_set):
        catalog = ModelCatalog()
        catalog.register(ModelKey.make("t", "x", "y", "g"), model_set)
        # y=None (COUNT) matches any model over the same x / group columns.
        assert catalog.find("t", ("x",), None, "g") is model_set
        with pytest.raises(ModelNotFoundError):
            catalog.find("t", ("x",), None, None)

    def test_remove(self, model_set):
        catalog = ModelCatalog()
        key = ModelKey.make("t", "x", "y")
        catalog.register(key, model_set)
        catalog.remove(key)
        assert key not in catalog
        with pytest.raises(CatalogError):
            catalog.remove(key)

    def test_find_superset_prefers_tightest(self):
        catalog = ModelCatalog()
        wider = object()
        wide = object()
        # Registered widest-first: size, not registration order, decides.
        catalog.register(ModelKey.make("t", ("x", "z", "w"), "y"), wider)
        catalog.register(ModelKey.make("t", ("x", "z"), "y"), wide)
        assert catalog.find("t", ("x",), "y") is wide
        assert catalog.find("t", ("z",), "y") is wide
        assert catalog.find("t", ("w",), "y") is wider
        assert catalog.resolve("t", ("x",), "y") == ModelKey.make(
            "t", ("x", "z"), "y"
        )

    def test_find_superset_ambiguity_breaks_to_registration_order(self):
        catalog = ModelCatalog()
        first = object()
        second = object()
        catalog.register(ModelKey.make("t", ("a", "x"), "y"), first)
        catalog.register(ModelKey.make("b", ("b", "x"), "y"), second)
        catalog.register(ModelKey.make("t", ("b", "x"), "y"), second)
        # Two equally tight candidates: the earliest registered wins,
        # deterministically.
        assert catalog.find("t", ("x",), "y") is first

    def test_find_superset_filters_y_and_group(self, model_set):
        catalog = ModelCatalog()
        catalog.register(ModelKey.make("t", ("x", "z"), "other"), object())
        with pytest.raises(ModelNotFoundError):
            catalog.find("t", ("x",), "y")
        catalog.register(ModelKey.make("t", ("x", "z"), "y", "g"), model_set)
        assert catalog.find("t", ("x",), "y", "g") is model_set
        with pytest.raises(ModelNotFoundError):
            catalog.find("t", ("x",), "y")  # scalar lookup ignores grouped

    def test_save_load_roundtrip(self, model_set, tmp_path):
        catalog = ModelCatalog()
        key = ModelKey.make("t", "x", "y", "g")
        catalog.register(key, model_set)
        path = tmp_path / "catalog.pkl"
        written = catalog.save(path)
        assert written == path.stat().st_size
        restored = ModelCatalog.load(path)
        answers = restored.get(key).answer(
            AggregateCall("AVG", "y"), {"x": (2.0, 8.0)}
        )
        assert answers[1] == pytest.approx(5.0, rel=0.1)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(CatalogError):
            ModelCatalog.load(tmp_path / "nope.pkl")

    def test_load_rejects_headerless_blob(self, tmp_path):
        import pickle

        # A pre-versioning catalog: a bare pickled dict used to load
        # silently; now the missing magic is called out.
        path = tmp_path / "legacy.pkl"
        path.write_bytes(pickle.dumps({}))
        with pytest.raises(CatalogError, match="magic header"):
            ModelCatalog.load(path)

    def test_load_names_found_and_expected_version(self, model_set, tmp_path):
        from repro.core.catalog import (
            CATALOG_FORMAT_VERSION,
            CATALOG_MAGIC,
            pack_header,
        )

        catalog = ModelCatalog()
        catalog.register(ModelKey.make("t", "x", "y", "g"), model_set)
        path = tmp_path / "cat.pkl"
        catalog.save(path)
        header = pack_header(CATALOG_MAGIC, CATALOG_FORMAT_VERSION)
        body = path.read_bytes()[len(header):]
        path.write_bytes(pack_header(CATALOG_MAGIC, 7) + body)
        with pytest.raises(
            CatalogError,
            match=rf"version 7.*version {CATALOG_FORMAT_VERSION}",
        ):
            ModelCatalog.load(path)

    def test_summary(self, model_set):
        catalog = ModelCatalog()
        catalog.register(ModelKey.make("t", "x", "y", "g"), model_set)
        rows = catalog.summary()
        assert rows[0]["table"] == "t"
        assert rows[0]["type"] == "GroupByModelSet"


class TestBundles:
    def test_write_and_lazy_load(self, model_set, tmp_path):
        path = tmp_path / "bundle.pkl"
        bundle = ModelBundle.write(model_set, path)
        assert not bundle.loaded
        assert bundle.size_bytes() > 0
        answers = bundle.answer(AggregateCall("AVG", "y"), {"x": (2.0, 8.0)})
        assert bundle.loaded
        assert bundle.last_load_seconds is not None
        assert answers[1] == pytest.approx(5.0, rel=0.1)

    def test_unload_then_reuse(self, model_set, tmp_path):
        bundle = ModelBundle.write(model_set, tmp_path / "b.pkl")
        bundle.load()
        bundle.unload()
        assert not bundle.loaded
        assert bundle.n_groups == 3  # transparently reloads

    def test_missing_file(self, tmp_path):
        bundle = ModelBundle(tmp_path / "missing.pkl")
        with pytest.raises(BundleError):
            bundle.load()

    def test_wrong_payload_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pkl"
        path.write_bytes(pickle.dumps({"not": "a model set"}))
        with pytest.raises(BundleError):
            ModelBundle(path).load()

    def test_delegated_metadata(self, model_set, tmp_path):
        bundle = ModelBundle.write(model_set, tmp_path / "b.pkl")
        assert bundle.group_column == "g"
        assert bundle.x_columns == ("x",)
        assert bundle.y_column == "y"
        assert sorted(bundle.group_values) == [1, 2, 3]
