"""Parity suite: level-synchronous forest training vs per-group fits.

The chunked per-group fit path (``_fit_generic_regressors``) is the
reference oracle; the batched forest kernel
(:mod:`repro.core.batched_forest`) must produce **bit-identical** node
arrays — feature / threshold / left / right / value, same dtypes, same
DFS order — for every tree, every boosting round, every constituent,
across 1-D and multivariate fits, every depth, and the degenerate
groups (constant features, single rows, sub-split-size groups) that
stress the stop rules.  Routing is pinned too: the default train path
must never fall back to the per-group loop for forest regressors, and
``batched_forest=False`` must restore the chunked oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DBEstConfig, GroupByModelSet
from repro.core.batched_forest import (
    _compute_bins,
    _fit_cart_forest,
    _fit_gboost_forest,
    _fit_xgb_forest,
    _slice_nodes,
    fit_forest_regressors,
)
from repro.ml._histogram import BinnedFeatures
from repro.ml.ensemble import EnsembleRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.tree import DecisionTreeRegressor
from repro.ml.xgb import XGBRegressor

NODE_KEYS = ("feature", "threshold", "left", "right", "value")

# Group sizes chosen to stress every stop rule: plenty of rows, barely
# above min_samples_split, a single row, three rows, and one constant-x
# group (no splittable bins at all).
GROUP_SIZES = (150, 80, 45, 60, 1, 3, 200, 30)
CONSTANT_GROUP = 3


def make_flat(d: int = 1, seed: int = 3):
    """Flat group-major (x2d, y, offsets) covering the degenerate groups."""
    rng = np.random.default_rng(seed)
    counts = np.asarray(GROUP_SIZES, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    n = int(offsets[-1])
    x2d = rng.uniform(0.0, 100.0, size=(n, d))
    lo, hi = int(offsets[CONSTANT_GROUP]), int(offsets[CONSTANT_GROUP + 1])
    x2d[lo:hi, 0] = 42.0  # constant feature -> unsplittable on dim 0
    groups = np.repeat(np.arange(counts.shape[0]), counts)
    y = (groups + 1.0) * 0.1 * x2d[:, 0] + rng.normal(0.0, 1.0, size=n)
    if d > 1:
        y = y + 0.5 * x2d[:, 1]
    return x2d, y, offsets


def scalar_fit(factory, x2d: np.ndarray, y: np.ndarray, offsets, g: int):
    """The oracle: one per-group fit exactly as the chunked path makes it."""
    seg = slice(int(offsets[g]), int(offsets[g + 1]))
    model = factory()
    gx = x2d[seg]
    model.fit(gx[:, 0] if gx.shape[1] == 1 else gx, y[seg])
    return model


def assert_tree_nodes_equal(got: DecisionTreeRegressor,
                            expected: DecisionTreeRegressor,
                            context: str) -> None:
    """Bit-exact node arrays, including dtypes and DFS order."""
    for key in NODE_KEYS:
        got_arr, exp_arr = got._nodes[key], expected._nodes[key]
        assert got_arr.dtype == exp_arr.dtype, f"{context}: {key} dtype"
        np.testing.assert_array_equal(got_arr, exp_arr,
                                      err_msg=f"{context}: {key}")


def assert_xgb_tree_equal(got, expected, context: str) -> None:
    for attr in ("_feature_arr", "_threshold_arr", "_left_arr",
                 "_right_arr", "_value_arr"):
        got_arr, exp_arr = getattr(got, attr), getattr(expected, attr)
        assert got_arr.dtype == exp_arr.dtype, f"{context}: {attr} dtype"
        np.testing.assert_array_equal(got_arr, exp_arr,
                                      err_msg=f"{context}: {attr}")


def assert_regressor_equal(got, expected, context: str) -> None:
    assert type(got) is type(expected), context
    if isinstance(expected, DecisionTreeRegressor):
        assert_tree_nodes_equal(got, expected, context)
    elif isinstance(expected, GradientBoostingRegressor):
        assert got._base == expected._base, f"{context}: base"
        assert len(got._trees) == len(expected._trees), context
        for r, (g_tree, e_tree) in enumerate(zip(got._trees, expected._trees)):
            assert_tree_nodes_equal(g_tree, e_tree, f"{context} round {r}")
    elif isinstance(expected, XGBRegressor):
        assert got._base == expected._base, f"{context}: base"
        assert len(got._trees) == len(expected._trees), context
        for r, (g_tree, e_tree) in enumerate(zip(got._trees, expected._trees)):
            assert_xgb_tree_equal(g_tree, e_tree, f"{context} round {r}")
    elif isinstance(expected, EnsembleRegressor):
        assert list(got.models_) == list(expected.models_), context
        for name in expected.models_:
            assert_regressor_equal(got.models_[name], expected.models_[name],
                                   f"{context} constituent {name}")
        assert got._default_name == expected._default_name, context
        assert (got.selector_ is None) == (expected.selector_ is None), context
        assert got._domain == expected._domain, context
    else:  # PLR constituents inside ensembles
        np.testing.assert_array_equal(got._knots, expected._knots, context)
        np.testing.assert_array_equal(got._coef, expected._coef, context)


# -- kernel-level parity: every family, every depth, 1-D and d=2 -------------


class TestBinningParity:
    @pytest.mark.parametrize("d", [1, 2])
    def test_codes_and_edges_match_binned_features(self, d):
        x2d, _, offsets = make_flat(d=d)
        bins = _compute_bins(x2d, offsets, max_bins=256)
        for g in range(offsets.shape[0] - 1):
            seg = slice(int(offsets[g]), int(offsets[g + 1]))
            oracle = BinnedFeatures(
                x2d[seg, 0] if d == 1 else x2d[seg], max_bins=256
            )
            for j in range(d):
                scalar_edges = oracle.edges[j]
                assert bins.n_bins[g, j] == scalar_edges.shape[0] + 1
                np.testing.assert_array_equal(
                    bins.edges[g, j, : scalar_edges.shape[0]], scalar_edges,
                    err_msg=f"group {g} dim {j}: edges",
                )
                assert np.all(
                    np.isinf(bins.edges[g, j, scalar_edges.shape[0]:])
                )
                np.testing.assert_array_equal(
                    bins.codes[seg, j], oracle.codes[:, j],
                    err_msg=f"group {g} dim {j}: codes",
                )


class TestKernelDepths:
    @pytest.mark.parametrize("depth", [1, 2, 4, 6])
    @pytest.mark.parametrize("d", [1, 2])
    def test_cart_forest_matches_scalar_trees(self, depth, d):
        x2d, y, offsets = make_flat(d=d)
        proto = DecisionTreeRegressor(max_depth=depth)
        bins = _compute_bins(x2d, offsets, proto.max_bins)
        rec, pred = _fit_cart_forest(
            bins, y, offsets, max_depth=depth,
            min_samples_leaf=proto.min_samples_leaf,
            min_samples_split=proto.min_samples_split,
        )
        for g in range(offsets.shape[0] - 1):
            oracle = scalar_fit(
                lambda: DecisionTreeRegressor(max_depth=depth),
                x2d, y, offsets, g,
            )
            got = DecisionTreeRegressor.from_fit_state(
                _slice_nodes(rec, g), d, max_depth=depth
            )
            assert_tree_nodes_equal(got, oracle, f"depth {depth} group {g}")
            # Growth-time leaf assignment == post-fit threshold traversal.
            seg = slice(int(offsets[g]), int(offsets[g + 1]))
            gx = x2d[seg, 0] if d == 1 else x2d[seg]
            np.testing.assert_array_equal(pred[seg], oracle.predict(gx),
                                          err_msg=f"group {g}: leaf pred")

    @pytest.mark.parametrize("depth", [2, 4])
    def test_xgb_forest_matches_scalar_rounds(self, depth):
        x2d, y, offsets = make_flat(d=1)
        proto = XGBRegressor(n_estimators=5, max_depth=depth)
        bins = _compute_bins(x2d, offsets, proto.max_bins)
        base, rounds, pred = _fit_xgb_forest(
            bins, y, offsets, n_estimators=5,
            learning_rate=proto.learning_rate, max_depth=depth,
            min_child_weight=proto.min_child_weight,
            reg_lambda=proto.reg_lambda, gamma=proto.gamma,
        )
        for g in range(offsets.shape[0] - 1):
            oracle = scalar_fit(
                lambda: XGBRegressor(n_estimators=5, max_depth=depth),
                x2d, y, offsets, g,
            )
            got = XGBRegressor.from_fit_state(
                float(base[g]), [_slice_nodes(rec, g) for rec in rounds],
                learning_rate=proto.learning_rate, max_depth=depth,
                reg_lambda=proto.reg_lambda, gamma=proto.gamma,
                min_child_weight=proto.min_child_weight,
            )
            assert_regressor_equal(got, oracle, f"depth {depth} group {g}")
            seg = slice(int(offsets[g]), int(offsets[g + 1]))
            np.testing.assert_array_equal(
                pred[seg], oracle.predict(x2d[seg, 0]),
                err_msg=f"group {g}: in-sample booster prediction",
            )

    def test_gboost_forest_matches_scalar_rounds(self):
        x2d, y, offsets = make_flat(d=1)
        proto = GradientBoostingRegressor(n_estimators=5)
        bins = _compute_bins(x2d, offsets, proto.max_bins)
        stage_split = DecisionTreeRegressor(
            max_depth=proto.max_depth,
            min_samples_leaf=proto.min_samples_leaf,
            max_bins=proto.max_bins,
        ).min_samples_split
        base, rounds, pred = _fit_gboost_forest(
            bins, y, offsets, n_estimators=5,
            learning_rate=proto.learning_rate, max_depth=proto.max_depth,
            min_samples_leaf=proto.min_samples_leaf,
            min_samples_split=stage_split,
        )
        for g in range(offsets.shape[0] - 1):
            oracle = scalar_fit(
                lambda: GradientBoostingRegressor(n_estimators=5),
                x2d, y, offsets, g,
            )
            trees = [
                DecisionTreeRegressor.from_fit_state(
                    _slice_nodes(rec, g), 1, max_depth=proto.max_depth,
                    min_samples_leaf=proto.min_samples_leaf,
                )
                for rec in rounds
            ]
            got = GradientBoostingRegressor.from_fit_state(
                float(base[g]), trees, learning_rate=proto.learning_rate,
                max_depth=proto.max_depth,
                min_samples_leaf=proto.min_samples_leaf,
            )
            assert_regressor_equal(got, oracle, f"group {g}")
            seg = slice(int(offsets[g]), int(offsets[g + 1]))
            np.testing.assert_array_equal(
                pred[seg], oracle.predict(x2d[seg, 0]),
                err_msg=f"group {g}: in-sample booster prediction",
            )


class TestFitForestRegressors:
    """The config-driven entry point vs scalar ``_make_regressor`` fits."""

    @pytest.mark.parametrize("regressor",
                             ["tree", "gboost", "xgboost", "ensemble"])
    @pytest.mark.parametrize("d", [1, 2])
    def test_bitwise_node_parity(self, regressor, d):
        from repro.core.model import _make_regressor

        x2d, y, offsets = make_flat(d=d)
        config = DBEstConfig(regressor=regressor, random_seed=3)
        result = fit_forest_regressors(x2d, y, offsets, config)
        assert result is not None
        regressors, pred = result
        assert len(regressors) == offsets.shape[0] - 1
        if regressor == "ensemble":
            assert pred is None
        else:
            assert pred is not None and pred.shape == y.shape
        for g in range(offsets.shape[0] - 1):
            oracle = scalar_fit(
                lambda: _make_regressor(config), x2d, y, offsets, g
            )
            assert_regressor_equal(regressors[g], oracle,
                                   f"{regressor} d={d} group {g}")

    def test_ensemble_selector_routes_identically(self):
        from repro.core.model import _make_regressor

        x2d, y, offsets = make_flat(d=1)
        config = DBEstConfig(regressor="ensemble", random_seed=3)
        regressors, _ = fit_forest_regressors(x2d, y, offsets, config)
        grid = np.linspace(0.0, 100.0, 129)
        for g in (0, 6):  # large groups, where the selector actually trains
            oracle = scalar_fit(
                lambda: _make_regressor(config), x2d, y, offsets, g
            )
            for lb, ub in ((0.0, 10.0), (20.0, 80.0), (5.0, 95.0),
                           (None, None)):
                assert regressors[g].select(lb, ub) == oracle.select(lb, ub)
                np.testing.assert_array_equal(
                    regressors[g].predict(grid, lb, ub),
                    oracle.predict(grid, lb, ub),
                )

    def test_non_forest_regressors_return_none(self):
        x2d, y, offsets = make_flat(d=1)
        for regressor in ("plr", "linear"):
            config = DBEstConfig(regressor=regressor, random_seed=3)
            assert fit_forest_regressors(x2d, y, offsets, config) is None

    def test_single_group_and_all_constant(self):
        # Every group constant in x: no edges anywhere, width-0 edge
        # tensor, pure-leaf forest.
        y = np.asarray([1.0, 2.0, 3.0, 4.0])
        x2d = np.full((4, 1), 7.0)
        offsets = np.asarray([0, 4])
        config = DBEstConfig(regressor="tree", random_seed=0)
        regressors, pred = fit_forest_regressors(x2d, y, offsets, config)
        oracle = DecisionTreeRegressor().fit(x2d[:, 0], y)
        assert_tree_nodes_equal(regressors[0], oracle, "all-constant")
        np.testing.assert_array_equal(pred, oracle.predict(x2d[:, 0]))


# -- train-path routing: forest kernel by default, chunked loop on opt-out ---


def _train_set(monkeypatch=None, **overrides):
    rng = np.random.default_rng(5)
    counts = np.asarray(GROUP_SIZES)
    groups = np.repeat(np.arange(counts.shape[0]), counts)
    x = rng.uniform(0.0, 100.0, size=groups.shape[0])
    y = (groups + 1.0) * 0.1 * x + rng.normal(0.0, 1.0, size=groups.shape[0])
    config = DBEstConfig(
        min_group_rows=30, random_seed=5, integration_points=65, **overrides
    )
    return GroupByModelSet.train(
        sample_x=x, sample_y=y, sample_groups=groups,
        full_groups=groups, full_x=x, full_y=y,
        table_name="t", x_columns=("x",), y_column="y", group_column="g",
        config=config,
    )


class TestTrainPathRouting:
    @pytest.mark.parametrize("regressor", ["tree", "gboost", "xgboost",
                                           "ensemble"])
    def test_default_path_never_fits_per_group(self, monkeypatch, regressor):
        # Regression guard: if the per-group chunked loop reappears on the
        # default path for forest regressors, this fails loudly.
        def forbidden(payload):
            raise AssertionError(
                "per-group regressor loop used on the default batched path"
            )

        monkeypatch.setattr(
            "repro.core.batched_train._fit_regressor_chunk", forbidden
        )
        model_set = _train_set(regressor=regressor)
        assert len(model_set.models) == 6  # groups >= min_group_rows
        assert all(m.regressor.is_fitted for m in model_set.models.values())

    def test_opt_out_restores_the_chunked_oracle(self, monkeypatch):
        from repro.core import batched_train

        calls = []
        original = batched_train._fit_regressor_chunk

        def spy(payload):
            calls.append(1)
            return original(payload)

        monkeypatch.setattr(
            "repro.core.batched_train._fit_regressor_chunk", spy
        )
        model_set = _train_set(regressor="tree", batched_forest=False)
        assert calls  # the chunked per-group path did the fitting
        assert len(model_set.models) == 6

    def test_opt_out_models_match_the_forest_kernel(self):
        forest = _train_set(regressor="gboost")
        chunked = _train_set(regressor="gboost", batched_forest=False)
        assert set(forest.models) == set(chunked.models)
        for value, expected in chunked.models.items():
            assert_regressor_equal(forest.models[value].regressor,
                                   expected.regressor, f"group {value}")
            # Residual state squares predictions; the batched pass sums
            # with reduceat, so parity here is 1e-9 (the answer bound),
            # not bitwise.
            np.testing.assert_allclose(
                forest.models[value]._residual_var_global,
                expected._residual_var_global, rtol=1e-9,
            )
            if expected._residual_edges is not None:
                np.testing.assert_allclose(
                    forest.models[value]._residual_var,
                    expected._residual_var, rtol=1e-9,
                )
