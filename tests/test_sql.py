"""Unit tests for the SQL front end: lexer, parser, validator."""

import pytest

from repro.errors import (
    SQLSyntaxError,
    UnknownColumnError,
    UnknownTableError,
    UnsupportedQueryError,
)
from repro.sql import parse_query, validate_query
from repro.sql.ast import AggregateCall, Query
from repro.sql.lexer import tokenize


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.kind for t in tokens] == ["KEYWORD"] * 3
        assert [t.value for t in tokens] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_preserve_case(self):
        tokens = tokenize("ss_list_price MixedCase")
        assert [t.value for t in tokens] == ["ss_list_price", "MixedCase"]

    def test_numbers(self):
        tokens = tokenize("1 2.5 -3 1e4 2.5e-3 .5")
        assert all(t.kind == "NUMBER" for t in tokens)
        assert float(tokens[3].value) == 1e4

    def test_strings(self):
        tokens = tokenize("'hello' \"world\"")
        assert [t.value for t in tokens] == ["hello", "world"]

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_symbols(self):
        tokens = tokenize("(),=;*.")
        assert all(t.kind == "SYMBOL" for t in tokens)

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @")

    def test_positions_recorded(self):
        tokens = tokenize("SELECT x")
        assert tokens[0].position == 0
        assert tokens[1].position == 7


class TestParserBasics:
    def test_simple_aggregate(self):
        q = parse_query(
            "SELECT AVG(y) FROM t WHERE x BETWEEN 1 AND 2;"
        )
        assert q.table == "t"
        assert q.aggregates == [AggregateCall("AVG", "y")]
        assert q.ranges[0].column == "x"
        assert (q.ranges[0].low, q.ranges[0].high) == (1.0, 2.0)

    def test_count_star(self):
        q = parse_query("SELECT COUNT(*) FROM t WHERE x BETWEEN 0 AND 1;")
        assert q.aggregates[0].column is None

    def test_percentile(self):
        q = parse_query("SELECT PERCENTILE(x, 0.9) FROM t;")
        assert q.aggregates[0].parameter == 0.9

    def test_percentile_missing_p(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT PERCENTILE(x) FROM t;")

    def test_multiple_aggregates(self):
        q = parse_query(
            "SELECT COUNT(z), SUM(z), AVG(z) FROM t WHERE y BETWEEN 0 AND 9;"
        )
        assert [a.func for a in q.aggregates] == ["COUNT", "SUM", "AVG"]

    def test_group_by(self):
        q = parse_query(
            "SELECT g, SUM(y) FROM t WHERE x BETWEEN 1 AND 2 GROUP BY g;"
        )
        assert q.group_by == "g"
        assert q.select_columns == ["g"]

    def test_multivariate_ranges(self):
        q = parse_query(
            "SELECT AVG(y) FROM t WHERE x1 BETWEEN 0 AND 1 AND x2 BETWEEN 2 AND 3;"
        )
        assert len(q.ranges) == 2
        assert {r.column for r in q.ranges} == {"x1", "x2"}

    def test_equality_predicate(self):
        q = parse_query("SELECT AVG(y) FROM t WHERE x BETWEEN 0 AND 1 AND g = 3;")
        assert q.equalities[0].column == "g"
        assert q.equalities[0].value == 3

    def test_string_equality(self):
        q = parse_query("SELECT COUNT(y) FROM t WHERE city = 'Beijing';")
        assert q.equalities[0].value == "Beijing"

    def test_join(self):
        q = parse_query(
            "SELECT AVG(p) FROM sales JOIN store ON ss_sk = s_sk "
            "WHERE e BETWEEN 10 AND 20;"
        )
        assert q.joins[0].table == "store"
        assert q.joins[0].left_key == "ss_sk"
        assert q.joins[0].right_key == "s_sk"

    def test_qualified_names_collapsed(self):
        q = parse_query(
            "SELECT AVG(t.y) FROM t WHERE t.x BETWEEN 1 AND 2;"
        )
        assert q.aggregates[0].column == "y"
        assert q.ranges[0].column == "x"

    def test_no_trailing_semicolon_ok(self):
        q = parse_query("SELECT SUM(y) FROM t WHERE x BETWEEN 1 AND 2")
        assert q.table == "t"

    def test_negative_bounds(self):
        q = parse_query("SELECT AVG(y) FROM t WHERE x BETWEEN -5 AND -1;")
        assert (q.ranges[0].low, q.ranges[0].high) == (-5.0, -1.0)


class TestParserErrors:
    def test_empty_query(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("")

    def test_missing_from(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT AVG(y) WHERE x BETWEEN 1 AND 2;")

    def test_reversed_between(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT AVG(y) FROM t WHERE x BETWEEN 5 AND 1;")

    def test_no_aggregate(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT x FROM t;")

    def test_trailing_garbage(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT AVG(y) FROM t; extra")

    def test_avg_star_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT AVG(*) FROM t;")

    def test_extra_argument_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT SUM(x, 2) FROM t;")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT AVG(y) FROM t WHERE x BETWEEN 1.0 AND 2.0;",
            "SELECT g, SUM(y) FROM t WHERE x BETWEEN 0.0 AND 9.0 GROUP BY g;",
            "SELECT COUNT(*) FROM t WHERE x BETWEEN -1.0 AND 1.0;",
            "SELECT PERCENTILE(x, 0.5) FROM t;",
        ],
    )
    def test_parse_render_parse(self, sql):
        first = parse_query(sql)
        second = parse_query(first.to_sql())
        assert first.aggregates == second.aggregates
        assert first.ranges == second.ranges
        assert first.group_by == second.group_by
        assert first.table == second.table


class TestValidator:
    def test_valid_query_passes(self):
        validate_query(parse_query("SELECT AVG(y) FROM t WHERE x BETWEEN 1 AND 2;"))

    def test_percentile_p_out_of_range(self):
        q = parse_query("SELECT PERCENTILE(x, 0.5) FROM t;")
        bad = Query(
            aggregates=[AggregateCall("PERCENTILE", "x", 1.5)],
            table="t",
        )
        with pytest.raises(UnsupportedQueryError):
            validate_query(bad)
        validate_query(q)  # the good one passes

    def test_percentile_with_group_by_rejected(self):
        q = parse_query(
            "SELECT g, PERCENTILE(x, 0.5) FROM t WHERE x BETWEEN 0 AND 1 GROUP BY g;"
        )
        with pytest.raises(UnsupportedQueryError):
            validate_query(q)

    def test_bare_column_without_group_by(self):
        q = Query(
            aggregates=[AggregateCall("AVG", "y")],
            table="t",
            select_columns=["x"],
        )
        with pytest.raises(UnsupportedQueryError):
            validate_query(q)

    def test_selected_column_must_match_group_by(self):
        q = parse_query(
            "SELECT z, SUM(y) FROM t WHERE x BETWEEN 0 AND 1 GROUP BY g;"
        )
        with pytest.raises(UnsupportedQueryError):
            validate_query(q)

    def test_group_by_column_cannot_be_range_column(self):
        q = parse_query(
            "SELECT g, SUM(y) FROM t WHERE g BETWEEN 0 AND 1 GROUP BY g;"
        )
        with pytest.raises(UnsupportedQueryError):
            validate_query(q)

    def test_table_resolution(self, small_table):
        q = parse_query("SELECT AVG(y) FROM small WHERE x BETWEEN 1 AND 2;")
        validate_query(q, tables={"small": small_table})
        with pytest.raises(UnknownTableError):
            validate_query(q, tables={})

    def test_column_resolution(self, small_table):
        q = parse_query("SELECT AVG(nope) FROM small WHERE x BETWEEN 1 AND 2;")
        with pytest.raises(UnknownColumnError):
            validate_query(q, tables={"small": small_table})

    def test_join_tables_resolved(self, small_table):
        q = parse_query(
            "SELECT AVG(y) FROM small JOIN other ON g = g2 "
            "WHERE x BETWEEN 1 AND 2;"
        )
        with pytest.raises(UnknownTableError):
            validate_query(q, tables={"small": small_table})
