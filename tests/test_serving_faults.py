"""Fault-tolerance tests for the serving layer.

Every scenario here runs against the deterministic, seeded
:class:`~repro.serve.FaultInjector` — the schedule of latency spikes,
transient errors, corrupted bytes, and worker deaths replays exactly,
so the assertions are on specific behaviours, not on luck:

* deadlines expire at dequeue and degrade pre-emptively when the EWMA
  predicts a miss;
* both admission shed policies (reject / drop-oldest) and the bounded
  queue;
* store loads retry transient ``OSError`` with backoff and succeed;
* corrupt records quarantine to the sidecar dir and fail fast after;
* the per-model circuit breaker trips after K consecutive failures,
  half-opens after the reset window, and closes on a good probe;
* degraded answers (exact or sampling AQP routes) stay within the
  advisor's quoted bound of ground truth;
* single-flight deduplication, per-key answer-cache invalidation,
  worker-death respawn, and ``close(drain=...)`` semantics.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import DBEst, DBEstConfig, ModelCatalog, ModelKey
from repro.core.advisor import route_degraded
from repro.engines import ExactEngine
from repro.errors import (
    CatalogError,
    CircuitOpenError,
    CorruptRecordError,
    DeadlineExceededError,
    InvalidParameterError,
    QueryExecutionError,
    ServerOverloadedError,
)
from repro.serve import (
    NO_FAULTS,
    SERVER_DEQUEUE,
    SERVER_WORKER,
    STORE_LOAD,
    FaultInjector,
    ModelStore,
    QueryServer,
)
from repro.sql.ast import merged_ranges
from repro.sql.parser import parse_query
from repro.storage.table import Table


@pytest.fixture(scope="module")
def base():
    """One trained (table, models, config) triple shared read-only.

    Each test builds its own engine/catalog around these model objects,
    so catalog versions and server state never leak across tests.
    """
    rng = np.random.default_rng(7)
    n_groups, rows = 6, 80
    n = n_groups * rows
    g = np.repeat(np.arange(n_groups), rows).astype(np.float64)
    x = rng.uniform(0.0, 100.0, size=n)
    y = (1.0 + 0.1 * g) * x + rng.normal(0.0, 1.0, size=n)
    table = Table({"x": x, "y": y, "g": g}, name="traffic")
    config = DBEstConfig(
        regressor="plr", integration_points=65, min_group_rows=30,
        random_seed=7,
    )
    engine = DBEst(config=config)
    engine.register_table(table)
    engine.build_model("traffic", x="x", y="y", sample_size=n, group_by="g")
    engine.build_model("traffic", x="x", y="y", sample_size=n)
    models = [(key, engine.catalog.get(key)) for key in engine.catalog.keys()]
    return table, models, config


def _memory_engine(base):
    """A fresh engine + private in-memory catalog over the base models."""
    table, models, config = base
    engine = DBEst(config=config)
    engine.register_table(table)
    for key, model in models:
        engine.catalog.register(key, model)
    return engine


def _store_engine(base, path, faults=NO_FAULTS, **store_kwargs):
    """A fresh engine whose catalog is an on-disk store (with faults)."""
    table, models, config = base
    engine = DBEst(config=config)
    engine.register_table(table)
    ModelStore.write(dict(models), path)
    engine.catalog = ModelStore(path, faults=faults, **store_kwargs)
    return engine


def _truth(table, sql):
    exact = ExactEngine()
    exact.register_table(table)
    return exact.execute(sql)


def _scalar_sql(lo, hi):
    return f"SELECT AVG(y) FROM traffic WHERE x BETWEEN {lo} AND {hi};"


def _group_sql(lo, hi):
    return (
        f"SELECT AVG(y) FROM traffic WHERE x BETWEEN {lo} AND {hi} "
        "GROUP BY g;"
    )


class TestFaultInjector:
    def test_seeded_schedule_is_reproducible(self):
        def schedule(seed):
            faults = FaultInjector(seed=seed)
            faults.inject("seam", probability=0.3, latency_s=0.001)
            return [faults.plan("seam").sleep_s > 0 for _ in range(100)]

        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)

    def test_times_bounds_rule_fires(self):
        faults = FaultInjector(seed=0)
        faults.inject("seam", error=OSError, times=2)
        fired = [faults.plan("seam").error is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert faults.fired("seam") == 2

    def test_effects_merge_and_first_error_wins(self):
        faults = FaultInjector(seed=0)
        first, second = OSError("first"), OSError("second")
        faults.inject("seam", latency_s=0.001, error=first)
        faults.inject("seam", latency_s=0.002, error=second, corrupt=True)
        plan = faults.plan("seam")
        assert plan.sleep_s == pytest.approx(0.003)
        assert plan.error is first
        assert plan.corrupt
        with pytest.raises(OSError, match="first"):
            plan.raise_if_error()

    def test_rule_validation(self):
        faults = FaultInjector(seed=0)
        with pytest.raises(InvalidParameterError):
            faults.inject("seam", probability=1.5, latency_s=0.001)
        with pytest.raises(InvalidParameterError):
            faults.inject("seam", latency_s=-1.0)
        with pytest.raises(InvalidParameterError):
            faults.inject("seam", latency_s=0.001, times=0)
        with pytest.raises(InvalidParameterError):
            faults.inject("seam")  # no effect at all

    def test_no_faults_is_inert_and_sealed(self):
        plan = NO_FAULTS.plan("anything")
        assert plan.sleep_s == 0.0 and plan.error is None
        assert not plan.corrupt and not plan.kill_worker
        with pytest.raises(InvalidParameterError):
            NO_FAULTS.inject("seam", latency_s=0.001)

    def test_corrupt_bytes_flips_one_mid_payload_byte(self):
        data = b"DBESTREC" + bytes(range(64))
        bad = FaultInjector.corrupt_bytes(data)
        assert len(bad) == len(data)
        assert bad.startswith(b"DBESTREC")  # header survives
        assert sum(a != b for a, b in zip(bad, data)) == 1


class TestStoreRetryAndQuarantine:
    def test_transient_oserror_retries_then_succeeds(self, base, tmp_path):
        faults = FaultInjector(seed=1)
        faults.inject(STORE_LOAD, error=OSError("blip"), times=2)
        engine = _store_engine(
            base, tmp_path / "s", faults=faults, retries=2, retry_backoff_ms=1,
        )
        result = engine.execute(_scalar_sql(20, 60))
        assert np.isfinite(result.scalar())
        stats = engine.catalog.stats()
        assert stats["retries"] == 2
        assert stats["quarantined"] == 0

    def test_retry_exhaustion_raises_without_quarantine(self, base, tmp_path):
        faults = FaultInjector(seed=1)
        faults.inject(STORE_LOAD, error=OSError("disk gone"), times=10)
        engine = _store_engine(
            base, tmp_path / "s", faults=faults, retries=1, retry_backoff_ms=1,
        )
        with pytest.raises(CatalogError, match="after 2 attempt"):
            engine.execute(_scalar_sql(20, 60))
        # Transient exhaustion is not corruption: nothing is quarantined
        # and the record answers once the fault clears.
        assert engine.catalog.quarantined_keys() == []
        faults.reset()
        assert np.isfinite(engine.execute(_scalar_sql(20, 60)).scalar())

    def test_corrupt_record_quarantines_and_fails_fast(self, base, tmp_path):
        faults = FaultInjector(seed=1)
        faults.inject(STORE_LOAD, corrupt=True, times=1)
        engine = _store_engine(base, tmp_path / "s", faults=faults)
        store = engine.catalog
        with pytest.raises(CorruptRecordError, match="quarantined"):
            engine.execute(_scalar_sql(20, 60))
        assert len(store.quarantined_keys()) == 1
        sidecars = list(store.quarantine_dir.glob("*.model"))
        assert len(sidecars) == 1  # poisoned record moved aside
        # The fault rule is exhausted, but the key stays quarantined:
        # later touches fail fast without re-reading the bytes.
        loads_before = store.stats()["loads"]
        with pytest.raises(CorruptRecordError):
            engine.execute(_scalar_sql(20, 60))
        assert store.stats()["loads"] == loads_before
        assert store.stats()["quarantined"] == 1

    def test_crc_catches_on_disk_bit_rot(self, base, tmp_path):
        engine = _store_engine(base, tmp_path / "s")
        store = engine.catalog
        record_file = next((store.path / "records").glob("*.model"))
        blob = bytearray(record_file.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # flip one payload byte on disk
        record_file.write_bytes(bytes(blob))
        with pytest.raises(CorruptRecordError):
            for key in store.keys():
                store.get(key)


class TestDeadlines:
    def test_deadline_expires_at_dequeue(self, base):
        faults = FaultInjector(seed=2)
        faults.inject(SERVER_DEQUEUE, latency_s=0.1, times=1)
        engine = _memory_engine(base)
        with QueryServer(engine, n_workers=1, faults=faults) as server:
            future = server.submit(_scalar_sql(20, 60), deadline_ms=20)
            with pytest.raises(DeadlineExceededError, match="expired"):
                future.result(timeout=30)
            assert server.stats()["deadline_missed"] == 1
            # The worker survives and keeps serving.
            assert server.execute(_scalar_sql(20, 60)).values

    def test_deadline_zero_disables(self, base):
        engine = _memory_engine(base)
        with QueryServer(engine, n_workers=1, deadline_ms=10_000) as server:
            result = server.execute(_scalar_sql(20, 60), deadline_ms=0)
        assert not result.degraded

    def test_deadline_near_degrades_preemptively(self, base):
        table = base[0]
        engine = _memory_engine(base)
        with QueryServer(engine, n_workers=1) as server:
            warm = server.execute(_scalar_sql(20, 60))  # records the EWMA
            assert not warm.degraded
            key = next(iter(server._latency))
            server._latency[key] = 30.0  # model path "takes" 30 s now
            result = server.execute(_scalar_sql(25, 65), deadline_ms=500)
        assert result.degraded
        assert "deadline near" in result.degraded_reason
        assert server.stats()["degraded"] == 1
        # Small table -> exact degraded route: matches ground truth.
        expected = _truth(table, _scalar_sql(25, 65))
        assert result.scalar() == pytest.approx(expected.scalar(), rel=1e-9)


class TestAdmissionControl:
    def _congested_server(self, base, shed_policy):
        faults = FaultInjector(seed=3)
        # The first dequeued batch stalls long enough for the queue to
        # fill behind it.
        faults.inject(SERVER_DEQUEUE, latency_s=0.4, times=1)
        engine = _memory_engine(base)
        return QueryServer(
            engine, n_workers=1, coalesce=False, max_queue=1,
            shed_policy=shed_policy, faults=faults,
        )

    def test_reject_policy_refuses_new_queries(self, base):
        with self._congested_server(base, "reject") as server:
            first = server.submit(_scalar_sql(20, 60))
            time.sleep(0.05)  # let the worker pick it up and stall
            second = server.submit(_scalar_sql(21, 61))
            with pytest.raises(ServerOverloadedError, match="reject"):
                server.submit(_scalar_sql(22, 62))
            assert first.result(timeout=30).values
            assert second.result(timeout=30).values
            assert server.stats()["shed"] == 1

    def test_drop_oldest_policy_evicts_queued_query(self, base):
        with self._congested_server(base, "drop-oldest") as server:
            first = server.submit(_scalar_sql(20, 60))
            time.sleep(0.05)
            second = server.submit(_scalar_sql(21, 61))
            third = server.submit(_scalar_sql(22, 62))  # evicts `second`
            assert first.result(timeout=30).values
            assert third.result(timeout=30).values
            with pytest.raises(ServerOverloadedError, match="drop-oldest"):
                second.result(timeout=30)
            assert server.stats()["shed"] == 1

    def test_shed_policy_validated(self, base):
        engine = _memory_engine(base)
        with pytest.raises(InvalidParameterError, match="shed_policy"):
            QueryServer(engine, shed_policy="fifo")


class TestCircuitBreaker:
    def test_breaker_trips_after_consecutive_failures(self, base, tmp_path):
        table = base[0]
        faults = FaultInjector(seed=4)
        faults.inject(STORE_LOAD, error=OSError("dead disk"))
        engine = _store_engine(base, tmp_path / "s", faults=faults, retries=0)
        with QueryServer(
            engine, n_workers=1, breaker_threshold=3,
            breaker_reset_ms=10_000, degrade=True,
        ) as server:
            results = [
                server.execute(_scalar_sql(20 + i, 60 + i)) for i in range(4)
            ]
        assert all(result.degraded for result in results)
        assert "model path failed" in results[0].degraded_reason
        # The fourth query found the breaker open and never touched the
        # store: the fault counter stops at the three that tripped it.
        assert "circuit breaker open" in results[3].degraded_reason
        assert faults.fired(STORE_LOAD) == 3
        stats = server.stats()
        assert stats["breaker"]["opens"] == 1
        assert stats["breaker"]["open"] == 1
        assert stats["degraded"] == 4
        # Degraded answers ride the exact route on this small table.
        for i, result in enumerate(results):
            expected = _truth(table, _scalar_sql(20 + i, 60 + i))
            assert result.scalar() == pytest.approx(
                expected.scalar(), rel=1e-9
            )

    def test_breaker_half_open_probe_recovers(self, base, tmp_path):
        faults = FaultInjector(seed=4)
        faults.inject(STORE_LOAD, error=OSError("blip"), times=3)
        engine = _store_engine(base, tmp_path / "s", faults=faults, retries=0)
        with QueryServer(
            engine, n_workers=1, breaker_threshold=3, breaker_reset_ms=50,
            degrade=True,
        ) as server:
            for i in range(3):  # trip it
                assert server.execute(_scalar_sql(20 + i, 60 + i)).degraded
            assert server.stats()["breaker"]["open"] == 1
            time.sleep(0.08)  # past the reset window -> half-open
            probe = server.execute(_scalar_sql(30, 70))
            assert not probe.degraded  # the probe load succeeded
            assert probe.source == "model"
            stats = server.stats()
        assert stats["breaker"]["open"] == 0  # closed again
        assert stats["breaker"]["opens"] == 1

    def test_degrade_disabled_surfaces_circuit_open(self, base, tmp_path):
        faults = FaultInjector(seed=4)
        faults.inject(STORE_LOAD, error=OSError("dead disk"))
        engine = _store_engine(base, tmp_path / "s", faults=faults, retries=0)
        with QueryServer(
            engine, n_workers=1, breaker_threshold=2,
            breaker_reset_ms=10_000, degrade=False,
        ) as server:
            for i in range(2):  # failures surface as the original error
                with pytest.raises(CatalogError):
                    server.execute(_scalar_sql(20 + i, 60 + i))
            with pytest.raises(CircuitOpenError, match="breaker open"):
                server.execute(_scalar_sql(25, 65))


class TestDegradedRouting:
    def test_route_degraded_picks_engines_and_bounds(self):
        scalar = parse_query(
            "SELECT AVG(y) FROM t WHERE x BETWEEN 0 AND 1;"
        )
        grouped = parse_query(
            "SELECT AVG(y) FROM t WHERE x BETWEEN 0 AND 1 GROUP BY g;"
        )
        equality = parse_query(
            "SELECT AVG(y) FROM t WHERE x BETWEEN 0 AND 1 AND g = 2;"
        )
        small = route_degraded(scalar, n_rows=100, exact_row_limit=1000)
        assert small.engine == "exact" and small.error_bound == 0.0
        uniform = route_degraded(
            scalar, n_rows=1_000_000, sample_size=10_000,
        )
        assert uniform.engine == "uniform_aqp"
        assert uniform.error_bound == pytest.approx(3.0 / np.sqrt(10_000))
        stratified = route_degraded(grouped, n_rows=1_000_000)
        assert stratified.engine == "stratified_aqp"
        assert stratified.stratify_on == "g"
        by_equality = route_degraded(equality, n_rows=1_000_000)
        assert by_equality.engine == "stratified_aqp"
        assert by_equality.stratify_on == "g"

    def test_sampling_routes_stay_within_advisor_bound(self):
        rng = np.random.default_rng(3)
        n = 4000
        g = np.repeat(np.arange(8), n // 8).astype(np.float64)
        x = rng.uniform(0.0, 100.0, size=n)
        y = 2.0 * x + rng.normal(0.0, 1.0, size=n)
        table = Table({"x": x, "y": y, "g": g}, name="big")
        engine = DBEst(config=DBEstConfig(
            random_seed=3, degrade_exact_rows=100, degrade_sample_size=1500,
        ))
        engine.register_table(table)

        scalar_sql = "SELECT AVG(y) FROM big WHERE x BETWEEN 10 AND 90;"
        query = parse_query(scalar_sql)
        value, route = engine.answer_degraded(
            "big", query.aggregates[0], merged_ranges(query.ranges), query
        )
        assert route.engine == "uniform_aqp"
        truth = _truth(table, scalar_sql).scalar()
        assert abs(value - truth) / abs(truth) <= route.error_bound

        group_sql = (
            "SELECT AVG(y) FROM big WHERE x BETWEEN 10 AND 90 GROUP BY g;"
        )
        query = parse_query(group_sql)
        groups, route = engine.answer_degraded(
            "big", query.aggregates[0], merged_ranges(query.ranges), query
        )
        assert route.engine == "stratified_aqp"
        truth_groups = _truth(table, group_sql).groups()
        for value in truth_groups:
            # Per-group samples are ~1/8th of the budget; allow the
            # correspondingly looser CLT bound.
            assert groups[value] == pytest.approx(
                truth_groups[value], rel=0.35
            )


class TestSingleFlight:
    def test_inflight_twin_waits_instead_of_recomputing(self, base, tmp_path):
        faults = FaultInjector(seed=5)
        faults.inject(STORE_LOAD, latency_s=0.25, times=1)
        engine = _store_engine(base, tmp_path / "s", faults=faults)
        # coalesce=False: the twins become separate batches on separate
        # workers, so deduplication must happen at the in-flight map.
        with QueryServer(engine, n_workers=2, coalesce=False) as server:
            futures = [server.submit(_scalar_sql(20, 60)) for _ in range(2)]
            results = [future.result(timeout=30) for future in futures]
        assert results[0].values == results[1].values
        stats = server.stats()
        assert stats["engine_calls"] == 1  # one computation served both
        assert stats["single_flight"] == 1


class TestPerKeyInvalidation:
    def test_rebuild_evicts_only_the_changed_models_entries(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(0.0, 10.0, size=2400)
        g = np.repeat(np.arange(6), 400).astype(np.float64)
        y = 3.0 * x + 0.2 * g + rng.normal(0.0, 0.5, size=2400)
        engine = DBEst(config=DBEstConfig(
            regressor="plr", integration_points=65, min_group_rows=30,
            random_seed=5,
        ))
        engine.register_table(Table({"x": x, "y": y, "g": g}, name="live"))
        engine.build_model("live", x="x", y="y", sample_size=600)
        engine.build_model("live", x="x", y="y", sample_size=600,
                           group_by="g")
        scalar_sql = "SELECT AVG(y) FROM live WHERE x BETWEEN 2 AND 8;"
        group_sql = (
            "SELECT AVG(y) FROM live WHERE x BETWEEN 2 AND 8 GROUP BY g;"
        )
        with QueryServer(engine, n_workers=1) as server:
            server.execute(scalar_sql)
            server.execute(group_sql)
            assert server.execute(scalar_sql).source == "cache"
            assert server.execute(group_sql).source == "cache"
            # Rebuild only the scalar model (larger sample -> different
            # model object under the same key).
            engine.build_model("live", x="x", y="y", sample_size=2000)
            # The group-by entry survives the sweep: its model did not
            # change.  A whole-cache clear would force a recompute here.
            assert server.execute(group_sql).source == "cache"
            assert server.execute(scalar_sql).source == "model"
            expected = engine.execute(scalar_sql)
            assert server.execute(scalar_sql).values == expected.values
            assert server.stats()["invalidated"] == 1

    def test_changed_keys_since_reports_and_truncates(self):
        catalog = ModelCatalog()
        keys = [
            ModelKey.make("t", (f"c{i}",), None)
            for i in range(ModelCatalog.MAX_CHANGELOG + 10)
        ]
        for key in keys:
            catalog.register(key, object())
        assert catalog.changed_keys_since(catalog.version) == set()
        assert catalog.changed_keys_since(catalog.version - 1) == {keys[-1]}
        # A reader below the log horizon cannot be given a precise
        # answer: None means "treat everything as suspect".
        assert catalog.changed_keys_since(0) is None

    def test_store_backed_catalog_never_invalidates(self, base, tmp_path):
        engine = _store_engine(base, tmp_path / "s")
        with QueryServer(engine, n_workers=1) as server:
            server.execute(_scalar_sql(20, 60))
            assert server.execute(_scalar_sql(20, 60)).source == "cache"
            assert server.stats()["invalidated"] == 0


class TestWorkerLifecycle:
    def test_worker_death_respawns_and_nothing_hangs(self, base):
        faults = FaultInjector(seed=6)
        faults.inject(SERVER_WORKER, kill_worker=True, times=1)
        engine = _memory_engine(base)
        with QueryServer(engine, n_workers=1, faults=faults) as server:
            futures = [
                server.submit(_scalar_sql(20 + i, 60 + i)) for i in range(4)
            ]
            for future in futures:
                assert future.result(timeout=30).values
            assert server.stats()["worker_deaths"] == 1

    def test_close_drain_true_serves_queued_work(self, base):
        engine = _memory_engine(base)
        server = QueryServer(engine, n_workers=1)
        futures = [
            server.submit(_scalar_sql(20 + i, 60 + i)) for i in range(4)
        ]
        server.close()  # drain=True is the default
        for future in futures:
            assert future.result(timeout=1).values

    def test_close_drain_false_fails_queued_work_fast(self, base):
        faults = FaultInjector(seed=6)
        faults.inject(SERVER_DEQUEUE, latency_s=0.4, times=1)
        engine = _memory_engine(base)
        server = QueryServer(engine, n_workers=1, coalesce=False, faults=faults)
        first = server.submit(_scalar_sql(20, 60))
        time.sleep(0.05)  # the lone worker is now stalled inside batch 1
        queued = [server.submit(_scalar_sql(21 + i, 61 + i)) for i in range(2)]
        server.close(drain=False)
        assert first.result(timeout=30).values  # in-flight batch finishes
        for future in queued:
            with pytest.raises(QueryExecutionError, match="drain=False"):
                future.result(timeout=1)
        with pytest.raises(QueryExecutionError, match="closed"):
            server.submit(_scalar_sql(50, 90))


class TestAvailabilityUnderChaos:
    def test_mixed_faults_fixed_seed_full_availability(self, base, tmp_path):
        """The acceptance scenario in miniature: latency + corruption +
        one worker kill; every future resolves, exact answers match the
        fault-free oracle, degraded answers match ground truth."""
        table = base[0]
        oracle_engine = _memory_engine(base)
        workload = []
        for i in range(20):
            lo, hi = 10 + (i % 5) * 3, 55 + (i % 7) * 4
            workload.append(_scalar_sql(lo, hi))
            workload.append(_group_sql(lo, hi))
        oracle = [oracle_engine.execute(sql) for sql in workload]

        faults = FaultInjector(seed=11)
        faults.inject(STORE_LOAD, probability=0.10, latency_s=0.001)
        faults.inject(STORE_LOAD, probability=0.01, corrupt=True)
        faults.inject(STORE_LOAD, corrupt=True, times=1)  # guaranteed one
        faults.inject(SERVER_WORKER, kill_worker=True, times=1)
        engine = _store_engine(
            base, tmp_path / "s", faults=faults, cache_bytes=1,
        )
        with QueryServer(
            engine, n_workers=2, coalesce=False, answer_cache_size=1,
            degrade=True, faults=faults,
        ) as server:
            futures = [server.submit(sql) for sql in workload]
            served = [future.result(timeout=60) for future in futures]

        degraded = 0
        for sql, want, got in zip(workload, oracle, served):
            if got.degraded:
                degraded += 1
                want = _truth(table, sql)  # judged against ground truth
            for label, expected in want.values.items():
                value = got.values[label]
                if isinstance(expected, dict):
                    assert value == pytest.approx(
                        expected, rel=1e-9, nan_ok=True
                    )
                else:
                    assert value == pytest.approx(
                        expected, rel=1e-9, nan_ok=True
                    )
        # The guaranteed corruption forces at least one degraded answer.
        assert degraded >= 1
        assert server.stats()["worker_deaths"] == 1
