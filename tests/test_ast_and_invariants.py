"""AST rendering, range merging, and additional model invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import KernelDensityEstimator
from repro.sql import parse_query
from repro.sql.ast import (
    AggregateCall,
    EqualityPredicate,
    JoinClause,
    Query,
    RangePredicate,
    merged_ranges,
)

_settings = settings(max_examples=25, deadline=None)


class TestAstRendering:
    def test_aggregate_str(self):
        assert str(AggregateCall("SUM", "y")) == "SUM(y)"
        assert str(AggregateCall("COUNT", None)) == "COUNT(*)"
        assert str(AggregateCall("PERCENTILE", "x", 0.5)) == "PERCENTILE(x, 0.5)"

    def test_equality_str_quotes_strings(self):
        assert str(EqualityPredicate("city", "Beijing")) == "city = 'Beijing'"
        assert str(EqualityPredicate("g", 3)) == "g = 3"

    def test_join_str(self):
        assert str(JoinClause("store", "a", "b")) == "JOIN store ON a = b"

    def test_range_str_one_sided(self):
        assert str(RangePredicate("x", float("-inf"), 5.0)) == "x <= 5.0"
        assert str(RangePredicate("x", 5.0, float("inf"))) == "x >= 5.0"

    def test_full_query_roundtrip_with_join_and_equality(self):
        sql = (
            "SELECT g, SUM(m) FROM f JOIN d ON k1 = k2 "
            "WHERE a BETWEEN 1.0 AND 2.0 AND g = 'north' GROUP BY g;"
        )
        query = parse_query(sql)
        again = parse_query(query.to_sql())
        assert again.joins == query.joins
        assert again.equalities == query.equalities
        assert again.group_by == query.group_by

    def test_query_to_sql_mentions_everything(self):
        query = Query(
            aggregates=[AggregateCall("AVG", "y")],
            table="t",
            joins=[JoinClause("d", "k", "k")],
            ranges=[RangePredicate("x", 0.0, 1.0)],
            equalities=[EqualityPredicate("g", 1)],
            group_by="g",
            select_columns=["g"],
        )
        sql = query.to_sql()
        for fragment in ("AVG(y)", "JOIN d", "BETWEEN", "g = 1", "GROUP BY g"):
            assert fragment in sql


class TestMergedRanges:
    def test_empty(self):
        assert merged_ranges([]) == {}

    def test_single(self):
        merged = merged_ranges([RangePredicate("x", 1.0, 5.0)])
        assert merged == {"x": (1.0, 5.0)}

    def test_intersection(self):
        merged = merged_ranges(
            [RangePredicate("x", 1.0, 5.0), RangePredicate("x", 3.0, 9.0)]
        )
        assert merged == {"x": (3.0, 5.0)}

    def test_multiple_columns_kept_apart(self):
        merged = merged_ranges(
            [RangePredicate("a", 0.0, 1.0), RangePredicate("b", 2.0, 3.0)]
        )
        assert set(merged) == {"a", "b"}

    @_settings
    @given(
        bounds=st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(0, 50, allow_nan=False),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_merge_is_intersection(self, bounds):
        predicates = [
            RangePredicate("x", low, low + width) for low, width in bounds
        ]
        (low, high) = merged_ranges(predicates)["x"]
        assert low == max(p.low for p in predicates)
        assert high == min(p.high for p in predicates)

    @_settings
    @given(
        low=st.floats(-1e3, 1e3, allow_nan=False),
        width=st.floats(0, 1e3, allow_nan=False),
    )
    def test_merge_idempotent(self, low, width):
        predicate = RangePredicate("x", low, low + width)
        once = merged_ranges([predicate])
        twice = merged_ranges([predicate, predicate])
        assert once == twice


class TestPointMassKDE:
    @_settings
    @given(
        value=st.floats(-1e6, 1e6, allow_nan=False),
        n=st.integers(1, 200),
    )
    def test_point_mass_integrals(self, value, n):
        kde = KernelDensityEstimator().fit(np.full(n, value))
        assert kde.integrate(value, value) == 1.0
        assert kde.integrate(value - 1.0, value + 1.0) == 1.0
        if abs(value) < 1e5:
            assert kde.integrate(value + 1.0, value + 2.0) == 0.0
            assert kde.integrate(value - 2.0, value - 1.0) == 0.0

    def test_point_mass_cdf_step(self):
        kde = KernelDensityEstimator().fit(np.full(10, 3.0))
        np.testing.assert_array_equal(
            kde.cdf(np.asarray([2.0, 3.0, 4.0])), [0.0, 1.0, 1.0]
        )

    def test_mixture_unaffected(self, rng):
        """Non-degenerate data must not take the point-mass path."""
        kde = KernelDensityEstimator().fit(rng.normal(size=1000))
        value = float(kde.cdf(np.asarray([0.0]))[0])
        assert 0.3 < value < 0.7  # a smooth CDF, not a step


class TestReflectionInvariants:
    @_settings
    @given(
        data=st.lists(
            st.floats(-100, 100, allow_nan=False), min_size=10, max_size=200
        )
    )
    def test_reflected_mass_conserved(self, data):
        x = np.asarray(data)
        if np.ptp(x) <= 1e-9:
            return
        kde = KernelDensityEstimator().fit(x)
        lo, hi = kde.support
        assert lo == pytest.approx(float(x.min()))
        assert hi == pytest.approx(float(x.max()))
        assert kde.integrate(lo, hi) == pytest.approx(1.0, abs=2e-2)

    def test_no_mass_outside_domain(self, rng):
        kde = KernelDensityEstimator().fit(rng.uniform(0.0, 1.0, size=2000))
        assert kde.pdf(np.asarray([-0.5, 1.5])).sum() == 0.0
        assert kde.cdf(np.asarray([-0.5]))[0] == pytest.approx(0.0, abs=1e-9)
        assert kde.cdf(np.asarray([1.5]))[0] == pytest.approx(1.0, abs=1e-2)

    def test_uniform_density_flat_to_the_edges(self, rng):
        """Without reflection, density at the edges halves; with it, the
        estimate stays near the true density 1.0 across [0, 1]."""
        x = rng.uniform(0.0, 1.0, size=20_000)
        reflected = KernelDensityEstimator(boundary="reflect").fit(x)
        unreflected = KernelDensityEstimator(boundary="none").fit(x)
        edge = np.asarray([0.001, 0.999])
        assert np.all(reflected.pdf(edge) > 0.9)
        assert np.all(unreflected.pdf(edge) < 0.7)

    def test_reflected_count_unbiased_at_boundary(self, rng):
        x = rng.uniform(0.0, 100.0, size=20_000)
        kde = KernelDensityEstimator().fit(x)
        # A boundary-touching range: [0, 10] holds ~10% of the mass.
        assert kde.integrate(0.0, 10.0) == pytest.approx(0.10, abs=0.01)

    def test_math_isclose_additivity_near_boundary(self, rng):
        kde = KernelDensityEstimator().fit(rng.uniform(0, 1, size=5000))
        lo, hi = kde.support
        total = kde.integrate(lo, hi)
        parts = kde.integrate(lo, 0.1) + kde.integrate(0.1, hi)
        assert math.isclose(parts, total, abs_tol=1e-9)
