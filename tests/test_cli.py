"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def ccpp_csv(tmp_path):
    path = tmp_path / "ccpp.csv"
    code = main([
        "generate", "--dataset", "ccpp", "--rows", "20000",
        "--seed", "3", "--out", str(path),
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_creates_csv(self, ccpp_csv, capsys):
        assert ccpp_csv.exists()
        header = ccpp_csv.read_text().splitlines()[0]
        assert header == "T,V,AP,RH,EP"

    @pytest.mark.parametrize("dataset", ["tpcds", "beijing"])
    def test_other_datasets(self, tmp_path, dataset):
        path = tmp_path / f"{dataset}.csv"
        assert main([
            "generate", "--dataset", dataset, "--rows", "1000",
            "--out", str(path),
        ]) == 0
        assert path.exists()


class TestBuildAndQuery:
    def test_full_offline_workflow(self, ccpp_csv, tmp_path, capsys):
        catalog = tmp_path / "models.pkl"
        code = main([
            "build", "--csv", str(ccpp_csv), "--x", "T", "--y", "EP",
            "--sample-size", "4000", "--regressor", "plr",
            "--seed", "5", "--catalog", str(catalog),
        ])
        assert code == 0
        assert catalog.exists()
        out = capsys.readouterr().out
        assert "built model ccpp/T->EP" in out

        code = main([
            "query", "--catalog", str(catalog),
            "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 20;",
        ])
        assert code == 0
        out = capsys.readouterr().out
        value = float(out.split("\t")[1])
        assert 420 <= value <= 496  # within the CCPP output range

    def test_incremental_catalog(self, ccpp_csv, tmp_path):
        catalog = tmp_path / "models.pkl"
        for y in ("EP", "V"):
            assert main([
                "build", "--csv", str(ccpp_csv), "--x", "T", "--y", y,
                "--sample-size", "2000", "--regressor", "plr",
                "--catalog", str(catalog),
            ]) == 0
        from repro.core.catalog import ModelCatalog

        restored = ModelCatalog.load(catalog)
        assert len(restored) == 2

    def test_group_by_query_output(self, tmp_path, capsys):
        csv_path = tmp_path / "sales.csv"
        main([
            "generate", "--dataset", "tpcds", "--rows", "30000",
            "--out", str(csv_path),
        ])
        catalog = tmp_path / "models.pkl"
        assert main([
            "build", "--csv", str(csv_path), "--table", "store_sales",
            "--x", "ss_sold_date_sk", "--y", "ss_sales_price",
            "--group-by", "ss_store_sk", "--sample-size", "20000",
            "--regressor", "plr", "--catalog", str(catalog),
        ]) == 0
        capsys.readouterr()
        assert main([
            "query", "--catalog", str(catalog),
            "SELECT ss_store_sk, SUM(ss_sales_price) FROM store_sales "
            "WHERE ss_sold_date_sk BETWEEN 2451000 AND 2451500 "
            "GROUP BY ss_store_sk;",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") > 10  # one line per group

    def test_query_without_model_is_reported(self, ccpp_csv, tmp_path, capsys):
        catalog = tmp_path / "models.pkl"
        main([
            "build", "--csv", str(ccpp_csv), "--x", "T", "--y", "EP",
            "--sample-size", "2000", "--regressor", "plr",
            "--catalog", str(catalog),
        ])
        code = main([
            "query", "--catalog", str(catalog),
            "SELECT AVG(RH) FROM ccpp WHERE AP BETWEEN 1000 AND 1010;",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestAdvise:
    def test_recommends_from_log(self, tmp_path, capsys):
        log = tmp_path / "workload.sql"
        log.write_text(
            "-- analyst workload\n"
            "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 1 AND 5;\n"
            "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 5 AND 9;\n"
            "SELECT SUM(EP) FROM ccpp WHERE RH BETWEEN 40 AND 50;\n"
        )
        assert main(["advise", "--log", str(log)]) == 0
        out = capsys.readouterr().out
        assert "x=T y=EP" in out
        assert "66.7%" in out

    def test_empty_log(self, tmp_path):
        log = tmp_path / "empty.sql"
        log.write_text("-- nothing here\n")
        assert main(["advise", "--log", str(log)]) == 1


class TestBenchSmoke:
    def test_reports_parity_and_timings(self, capsys):
        assert main(["bench-smoke", "--groups", "8", "--rows", "40"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "TRAIN" in out
        assert "SERVE" in out
        assert "ok: batched training and evaluation match the scalar oracles" in out


class TestServe:
    @pytest.fixture
    def catalog(self, ccpp_csv, tmp_path):
        path = tmp_path / "models.pkl"
        assert main([
            "build", "--csv", str(ccpp_csv), "--x", "T", "--y", "EP",
            "--sample-size", "4000", "--regressor", "plr",
            "--seed", "3", "--catalog", str(path),
        ]) == 0
        return path

    def test_pack_store_and_serve(self, catalog, tmp_path, capsys):
        store = tmp_path / "models.store"
        assert main([
            "pack-store", "--catalog", str(catalog), "--store", str(store),
        ]) == 0
        queries = tmp_path / "q.sql"
        queries.write_text(
            "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 20;\n"
            "-- a comment line\n"
            "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 20;\n"
        )
        assert main([
            "serve", "--store", str(store), "--queries", str(queries),
            "--workers", "2",
        ]) == 0
        captured = capsys.readouterr()
        assert captured.out.count("AVG(EP)\t") == 2
        assert "served 2 queries" in captured.err
        assert "store:" in captured.err

    def test_cache_bytes_rejected_with_catalog(self, catalog, tmp_path, capsys):
        queries = tmp_path / "q.sql"
        queries.write_text("SELECT AVG(EP) FROM ccpp WHERE T <= 20;\n")
        assert main([
            "serve", "--catalog", str(catalog), "--queries", str(queries),
            "--cache-bytes", "1000",
        ]) == 2
        assert "--cache-bytes only applies to --store" in capsys.readouterr().err

    def test_serve_continues_past_bad_lines(self, catalog, tmp_path, capsys):
        queries = tmp_path / "q.sql"
        queries.write_text(
            "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 20;\n"
            "SELECT BOGUS FROM nowhere;\n"
            "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 12 AND 22;\n"
        )
        assert main([
            "serve", "--catalog", str(catalog), "--queries", str(queries),
            "--workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("AVG(EP)\t") == 2  # both valid queries answered
        assert "error:" in out               # the bad line is reported


class TestBenchServe:
    def test_parity_and_report(self, capsys):
        assert main([
            "bench-serve", "--groups", "10", "--rows", "40",
            "--queries", "40", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "query server" in out
        assert "ok: coalesced/cached serving matches sequential execute" in out
