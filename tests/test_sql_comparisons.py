"""Tests for one-sided comparison predicates (<, <=, >, >=)."""

import math

import numpy as np
import pytest

from repro import DBEst
from repro.sql import parse_query
from repro.sql.ast import merged_ranges


class TestParsing:
    def test_less_equal(self):
        q = parse_query("SELECT AVG(y) FROM t WHERE x <= 5;")
        assert q.ranges[0].high == 5.0
        assert math.isinf(q.ranges[0].low)

    def test_greater_equal(self):
        q = parse_query("SELECT AVG(y) FROM t WHERE x >= 5;")
        assert q.ranges[0].low == 5.0
        assert math.isinf(q.ranges[0].high)

    def test_strict_operators(self):
        q = parse_query("SELECT AVG(y) FROM t WHERE x > 1 AND x < 9;")
        merged = merged_ranges(q.ranges)
        assert merged["x"] == (1.0, 9.0)

    def test_mixed_with_between(self):
        q = parse_query(
            "SELECT AVG(y) FROM t WHERE x BETWEEN 0 AND 10 AND x >= 5;"
        )
        assert merged_ranges(q.ranges)["x"] == (5.0, 10.0)

    def test_contradiction_yields_empty_interval(self):
        q = parse_query("SELECT AVG(y) FROM t WHERE x >= 9 AND x <= 1;")
        low, high = merged_ranges(q.ranges)["x"]
        assert low > high

    def test_round_trip_one_sided(self):
        q = parse_query("SELECT AVG(y) FROM t WHERE x >= 5;")
        again = parse_query(q.to_sql())
        assert merged_ranges(again.ranges) == merged_ranges(q.ranges)

    def test_comparison_on_two_columns(self):
        q = parse_query("SELECT AVG(y) FROM t WHERE a >= 1 AND b <= 2;")
        merged = merged_ranges(q.ranges)
        assert set(merged) == {"a", "b"}


class TestExecution:
    @pytest.fixture
    def engine(self, linear_table, fast_config):
        engine = DBEst(config=fast_config)
        engine.register_table(linear_table)
        engine.build_model("linear", x="x", y="y", sample_size=3000)
        return engine

    def test_one_sided_count(self, engine, linear_table):
        truth = float((linear_table["x"] >= 50.0).sum())
        estimate = engine.execute(
            "SELECT COUNT(y) FROM linear WHERE x >= 50;"
        ).scalar()
        assert estimate == pytest.approx(truth, rel=0.1)

    def test_two_comparisons_equal_between(self, engine):
        a = engine.execute(
            "SELECT AVG(y) FROM linear WHERE x >= 20 AND x <= 60;"
        ).scalar()
        b = engine.execute(
            "SELECT AVG(y) FROM linear WHERE x BETWEEN 20 AND 60;"
        ).scalar()
        assert a == pytest.approx(b)

    def test_contradiction_selects_nothing(self, engine):
        result = engine.execute(
            "SELECT COUNT(y), SUM(y), AVG(y) FROM linear "
            "WHERE x >= 90 AND x <= 10;"
        )
        assert result.values["COUNT(y)"] == 0.0
        assert result.values["SUM(y)"] == 0.0
        assert np.isnan(result.values["AVG(y)"])

    def test_exact_engine_comparisons(self, truth_engine, linear_table):
        result = truth_engine.execute(
            "SELECT COUNT(y) FROM linear WHERE x > 50 AND x < 60;"
        )
        truth = float(
            ((linear_table["x"] > 50.0) & (linear_table["x"] < 60.0)).sum()
        )
        # Exact engine applies each predicate separately; strict vs
        # inclusive differs by measure-zero boundary rows only.
        assert result.scalar() == pytest.approx(truth, abs=2)
