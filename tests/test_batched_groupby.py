"""Parity suite: batched group-by evaluation vs the scalar oracle.

The scalar per-group loop is the reference implementation; every
supported aggregate must agree with it to 1e-9 (relative for large
magnitudes) across model groups, raw groups, point-mass columns and
empty ranges.  Fallback triggers and the batch export hooks are covered
here too.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest

from repro.core import DBEstConfig, GroupByModelSet
from repro.core.batched import BatchedGroupEvaluator
from repro.core.groupby import RawGroup
from repro.core.model import ColumnSetModel
from repro.errors import (
    InvalidParameterError,
    QueryExecutionError,
    UnsupportedQueryError,
)
from repro.integrate import simpson_grid, simpson_weights
from repro.ml.kde import KernelDensityEstimator
from repro.sql.ast import AggregateCall


def assert_parity(batched: dict, scalar: dict) -> None:
    """Both paths answered every group within 1e-9 (abs-or-relative)."""
    assert set(batched) == set(scalar)
    for key, expected in scalar.items():
        got = batched[key]
        if math.isnan(expected):
            assert math.isnan(got), f"group {key}: {got} vs nan"
        else:
            bound = 1e-9 * max(1.0, abs(expected))
            assert abs(got - expected) <= bound, (
                f"group {key}: batched {got} vs scalar {expected}"
            )


def make_model_set(regressor: str = "plr", seed: int = 3) -> GroupByModelSet:
    """8 mixed groups: modelled, point-mass-x, and raw."""
    rng = np.random.default_rng(seed)
    n_groups, rows = 8, 150
    n = n_groups * rows
    groups = np.repeat(np.arange(n_groups), rows)
    x = rng.uniform(0.0, 100.0, size=n)
    x[groups == 3] = 42.0  # constant column -> point-mass density
    y = (groups + 1.0) * 0.1 * x + rng.normal(0.0, 1.0, size=n)
    # Starve groups 6 and 7 in the sample so they become raw groups.
    keep = np.ones(n, dtype=bool)
    for value in (6, 7):
        idx = np.flatnonzero(groups == value)
        keep[idx[12:]] = False
    config = DBEstConfig(
        regressor=regressor, min_group_rows=30, random_seed=seed,
        integration_points=65,
    )
    return GroupByModelSet.train(
        sample_x=x[keep], sample_y=y[keep], sample_groups=groups[keep],
        full_groups=groups, full_x=x, full_y=y,
        table_name="t", x_columns=("x",), y_column="y", group_column="g",
        config=config,
    )


@pytest.fixture(scope="module")
def model_set() -> GroupByModelSet:
    return make_model_set()


RANGES = (
    {"x": (20.0, 60.0)},          # interior range
    {"x": (41.0, 43.0)},          # narrow, containing the point mass
    {"x": (-50.0, -10.0)},        # disjoint from the domain
    {"x": (0.0, 100.0)},          # full domain
    {},                           # no predicate
    {"other": (1.0, 2.0)},        # predicate on a non-model column
)


class TestModelRawPartition:
    def test_mixed_set(self, model_set):
        assert len(model_set.models) == 6
        assert set(model_set.raw_groups) == {6, 7}
        assert model_set.batched_evaluator() is not None
        assert model_set.batched_evaluator().n_groups == 8


class TestAggregateParity:
    @pytest.mark.parametrize("func", ["COUNT", "SUM", "AVG", "VARIANCE", "STDDEV"])
    @pytest.mark.parametrize("ranges", RANGES, ids=[str(r) for r in RANGES])
    def test_y_aggregates(self, model_set, func, ranges):
        aggregate = AggregateCall(func, "y")
        assert_parity(
            model_set.answer(aggregate, ranges, batched=True),
            model_set.answer(aggregate, ranges, batched=False),
        )

    @pytest.mark.parametrize("func", ["AVG", "VARIANCE", "STDDEV"])
    @pytest.mark.parametrize("ranges", RANGES, ids=[str(r) for r in RANGES])
    def test_x_aggregates(self, model_set, func, ranges):
        aggregate = AggregateCall(func, "x")
        assert_parity(
            model_set.answer(aggregate, ranges, batched=True),
            model_set.answer(aggregate, ranges, batched=False),
        )

    @pytest.mark.parametrize("p", [0.1, 0.5, 0.9])
    @pytest.mark.parametrize(
        "ranges", ({"x": (20.0, 60.0)}, {}), ids=["range", "open"]
    )
    def test_percentile(self, model_set, p, ranges):
        aggregate = AggregateCall("PERCENTILE", "x", p)
        assert_parity(
            model_set.answer(aggregate, ranges, batched=True),
            model_set.answer(aggregate, ranges, batched=False),
        )

    def test_count_star(self, model_set):
        aggregate = AggregateCall("COUNT", None)
        assert_parity(
            model_set.answer(aggregate, {"x": (10.0, 30.0)}, batched=True),
            model_set.answer(aggregate, {"x": (10.0, 30.0)}, batched=False),
        )

    def test_ensemble_regressor_parity(self):
        """Generic regressors loop per group, density work stays batched."""
        model_set = make_model_set(regressor="ensemble", seed=5)
        assert model_set.batched_evaluator() is not None
        for func in ("SUM", "AVG", "VARIANCE"):
            aggregate = AggregateCall(func, "y")
            assert_parity(
                model_set.answer(aggregate, {"x": (15.0, 55.0)}, batched=True),
                model_set.answer(aggregate, {"x": (15.0, 55.0)}, batched=False),
            )

    def test_linear_regressor_parity(self):
        model_set = make_model_set(regressor="linear", seed=9)
        aggregate = AggregateCall("AVG", "y")
        assert_parity(
            model_set.answer(aggregate, {"x": (15.0, 55.0)}, batched=True),
            model_set.answer(aggregate, {"x": (15.0, 55.0)}, batched=False),
        )

    def test_density_only_set_parity(self):
        """y=None sets: COUNT/PERCENTILE work, y-aggregates raise."""
        rng = np.random.default_rng(11)
        groups = np.repeat(np.arange(4), 200)
        x = rng.normal(50.0, 10.0, size=groups.shape[0])
        config = DBEstConfig(regressor="plr", min_group_rows=30, random_seed=11)
        model_set = GroupByModelSet.train(
            sample_x=x, sample_y=None, sample_groups=groups,
            full_groups=groups, full_x=x, full_y=None,
            table_name="t", x_columns=("x",), y_column=None, group_column="g",
            config=config,
        )
        aggregate = AggregateCall("COUNT", None)
        assert_parity(
            model_set.answer(aggregate, {"x": (40.0, 60.0)}, batched=True),
            model_set.answer(aggregate, {"x": (40.0, 60.0)}, batched=False),
        )
        with pytest.raises(UnsupportedQueryError):
            model_set.answer(AggregateCall("AVG", "y"), {}, batched=True)


class TestErrorParity:
    def test_reversed_range_raises(self, model_set):
        for batched in (True, False):
            with pytest.raises(InvalidParameterError):
                model_set.answer(
                    AggregateCall("AVG", "y"), {"x": (60.0, 20.0)},
                    batched=batched,
                )

    def test_unsupported_column_raises(self, model_set):
        for batched in (True, False):
            with pytest.raises(UnsupportedQueryError):
                model_set.answer(
                    AggregateCall("SUM", "x"), {"x": (20.0, 60.0)},
                    batched=batched,
                )

    def test_percentile_outside_domain_raises(self, model_set):
        aggregate = AggregateCall("PERCENTILE", "x", 0.5)
        for batched in (True, False):
            with pytest.raises((InvalidParameterError, QueryExecutionError)):
                model_set.answer(
                    aggregate, {"x": (-50.0, -10.0)}, batched=batched
                )

    def test_bad_percentile_parameter(self, model_set):
        for batched in (True, False):
            with pytest.raises(InvalidParameterError):
                model_set.answer(
                    AggregateCall("PERCENTILE", "x", 1.5), {}, batched=batched
                )


class TestParallelBatched:
    def test_segments_match_sequential_exactly(self, model_set):
        """Sliced CSR segments reproduce the one-pass answers bit-for-bit."""
        for func in ("COUNT", "SUM", "AVG"):
            aggregate = AggregateCall(func, "y")
            sequential = model_set.answer(
                aggregate, {"x": (10.0, 70.0)}, n_workers=1, batched=True
            )
            parallel = model_set.answer(
                aggregate, {"x": (10.0, 70.0)}, n_workers=3, batched=True
            )
            assert sequential == parallel

    def test_split_covers_all_groups(self, model_set):
        evaluator = model_set.batched_evaluator()
        segments = evaluator.split(3)
        covered = set()
        for segment in segments:
            answers = segment.answer(AggregateCall("COUNT", None), {})
            covered.update(answers)
        assert covered == set(model_set.group_values)

    def test_segments_are_picklable(self, model_set):
        for segment in model_set.batched_evaluator().split(3):
            clone = pickle.loads(pickle.dumps(segment))
            assert clone.answer(
                AggregateCall("COUNT", None), {}
            ) == segment.answer(AggregateCall("COUNT", None), {})


class TestFallbacks:
    def test_multivariate_stacks(self):
        # Multivariate predicate sets stack since the multivariate
        # batching PR; the deep parity suite lives in
        # tests/test_batched_multivariate.py.
        rng = np.random.default_rng(2)
        groups = np.repeat(np.arange(3), 300)
        x = rng.uniform(0, 10, size=(groups.shape[0], 2))
        y = x[:, 0] + 2.0 * x[:, 1] + rng.normal(0, 0.1, groups.shape[0])
        config = DBEstConfig(regressor="linear", min_group_rows=30, random_seed=2)
        model_set = GroupByModelSet.train(
            sample_x=x, sample_y=y, sample_groups=groups,
            full_groups=groups, full_x=x, full_y=y,
            table_name="t", x_columns=("a", "b"), y_column="y",
            group_column="g", config=config,
        )
        assert model_set.batched_evaluator() is not None
        got = model_set.answer(
            AggregateCall("AVG", "y"), {"a": (2.0, 8.0)}, batched=True
        )
        expected = model_set.answer(
            AggregateCall("AVG", "y"), {"a": (2.0, 8.0)}, batched=False
        )
        assert set(got) == set(expected)
        for value, answer in expected.items():
            assert abs(got[value] - answer) <= 1e-9 * max(1.0, abs(answer))

    def test_quad_method_falls_back(self):
        rng = np.random.default_rng(4)
        groups = np.repeat(np.arange(2), 200)
        x = rng.uniform(0, 10, size=groups.shape[0])
        config = DBEstConfig(
            regressor="plr", min_group_rows=30, integration_method="quad",
            random_seed=4,
        )
        model_set = GroupByModelSet.train(
            sample_x=x, sample_y=2 * x, sample_groups=groups,
            full_groups=groups, full_x=x, full_y=2 * x,
            table_name="t", x_columns=("x",), y_column="y", group_column="g",
            config=config,
        )
        assert model_set.batched_evaluator() is None

    def test_config_knob_disables_batching(self, model_set):
        original = model_set.config.batched_groupby
        try:
            model_set.config.batched_groupby = False
            answers = model_set.answer(AggregateCall("COUNT", None), {})
        finally:
            model_set.config.batched_groupby = original
        assert len(answers) == model_set.n_groups

    def test_pickle_drops_evaluator_cache(self, model_set):
        model_set.batched_evaluator()
        clone = pickle.loads(pickle.dumps(model_set))
        assert clone._batched_built is False
        assert clone._batched_cache is None
        # ...and rebuilds transparently with identical answers.
        aggregate = AggregateCall("AVG", "y")
        assert_parity(
            clone.answer(aggregate, {"x": (20.0, 60.0)}, batched=True),
            model_set.answer(aggregate, {"x": (20.0, 60.0)}, batched=True),
        )


class TestBatchExportHooks:
    def test_kde_export_mixture(self):
        kde = KernelDensityEstimator().fit(
            np.random.default_rng(0).normal(0.0, 1.0, 500)
        )
        mix = kde.export_mixture()
        assert mix.centres.shape == mix.weights.shape
        assert mix.h == kde.h
        assert mix.support == kde.support
        assert mix.reflect is True
        assert mix.point_mass is None

    def test_kde_integrate_many(self):
        kde = KernelDensityEstimator().fit(
            np.random.default_rng(1).uniform(0.0, 10.0, 800)
        )
        lbs = np.asarray([1.0, 2.0, 8.0])
        ubs = np.asarray([3.0, 2.0, 11.0])
        many = kde.integrate_many(lbs, ubs)
        single = [kde.integrate(lb, ub) for lb, ub in zip(lbs, ubs)]
        np.testing.assert_allclose(many, single, rtol=1e-12, atol=1e-15)
        with pytest.raises(InvalidParameterError):
            kde.integrate_many(np.asarray([2.0]), np.asarray([1.0]))

    def test_kde_integrate_many_point_mass(self):
        kde = KernelDensityEstimator().fit(np.full(100, 5.0))
        out = kde.integrate_many([4.0, 6.0], [4.5, 7.0])
        np.testing.assert_array_equal(out, [0.0, 0.0])
        np.testing.assert_array_equal(kde.integrate_many([4.0], [5.0]), [1.0])

    def test_simpson_weights_cached_and_readonly(self):
        first = simpson_weights(65)
        second = simpson_weights(65)
        assert first is second
        assert not first.flags.writeable
        with pytest.raises(InvalidParameterError):
            simpson_weights(64)

    def test_simpson_grid_cached(self):
        nodes, weights = simpson_grid(0.0, 1.0, 9)
        nodes2, weights2 = simpson_grid(0.0, 1.0, 9)
        assert nodes is nodes2 and weights is weights2
        assert weights.sum() == pytest.approx(1.0)  # ∫ 1 dx over [0, 1]
        # Simpson's rule integrates a parabola exactly:
        assert float(weights @ nodes**2) == pytest.approx(1.0 / 3.0)

    def test_avg_x_public_api(self, model_set):
        model = next(iter(model_set.models.values()))
        ranges = {"x": (20.0, 60.0)}
        value = model.avg_x(ranges)
        assert 20.0 <= value <= 60.0
        # Multivariate models refuse instead of crashing.
        rng = np.random.default_rng(0)
        multivariate = ColumnSetModel.train(
            rng.uniform(0, 1, (200, 2)), None, table_name="t",
            x_columns=("a", "b"), y_column=None, population_size=200,
            config=DBEstConfig(regressor="plr"),
        )
        with pytest.raises(UnsupportedQueryError):
            multivariate.avg_x({"a": (0.0, 0.5)})

    def test_plr_export_matches_predict(self):
        from repro.ml.linear import PiecewiseLinearRegressor

        rng = np.random.default_rng(6)
        x = rng.uniform(0, 10, 300)
        y = np.sin(x) + 0.5 * x
        plr = PiecewiseLinearRegressor(n_knots=6).fit(x, y)
        kind, knots, coef = plr.export_batch_state()
        assert kind == "plr"
        grid = np.linspace(0, 10, 50)
        manual = coef[0] + coef[1] * grid + (
            np.maximum(0.0, grid[:, None] - knots[None, :]) @ coef[2:]
        )
        np.testing.assert_allclose(manual, plr.predict(grid), rtol=1e-12)

    def test_tree_predict_many_matches(self):
        from repro.ml.gbm import GradientBoostingRegressor

        rng = np.random.default_rng(8)
        x = rng.uniform(0, 10, 400)
        y = x**2 + rng.normal(0, 1, 400)
        model = GradientBoostingRegressor(n_estimators=10, random_state=8)
        model.fit(x, y)
        grids = [np.linspace(0, 10, 17), np.linspace(2, 5, 9)]
        many = model.predict_many(grids)
        for grid, batch in zip(grids, many):
            np.testing.assert_array_equal(batch, model.predict(grid))


class TestDeepForestTraversal:
    def test_chain_shaped_tree_beyond_64_levels(self):
        # Exponential y makes variance-reduction splits peel one row per
        # level, producing a chain deeper than any fixed traversal bound;
        # the lock-step pass must still reach every leaf (it is bounded
        # by the largest tree's node count, which no path can exceed).
        from repro.ml.tree import DecisionTreeRegressor

        x = np.arange(300, dtype=np.float64)
        y = np.power(1.5, np.arange(300))
        tree = DecisionTreeRegressor(max_depth=1000, min_samples_leaf=1)
        tree.fit(x, y)
        forest = BatchedGroupEvaluator._stack_forest(
            [tree.export_batch_state()]
        )
        got = BatchedGroupEvaluator._forest_predict(
            forest, np.asarray([0]), x[None, :]
        )
        np.testing.assert_array_equal(got[0], tree.predict(x))


class TestRawOnlySet:
    def test_raw_only_parity(self):
        """Sets made purely of raw groups go through the masked pass."""
        raw_groups = {
            value: RawGroup(
                np.asarray([1.0, 2.0, 3.0]) * (value + 1),
                np.asarray([10.0, 20.0, 30.0]) * (value + 1),
                population_scale=2.0,
            )
            for value in range(3)
        }
        model_set = GroupByModelSet(
            table_name="t", x_columns=("x",), y_column="y", group_column="g",
            models={}, raw_groups=raw_groups,
        )
        for func in ("COUNT", "SUM", "AVG", "VARIANCE", "STDDEV"):
            aggregate = AggregateCall(func, "y")
            for ranges in ({"x": (2.0, 7.0)}, {}, {"x": (100.0, 200.0)}):
                assert_parity(
                    model_set.answer(aggregate, ranges, batched=True),
                    model_set.answer(aggregate, ranges, batched=False),
                )
        aggregate = AggregateCall("PERCENTILE", "x", 0.5)
        assert_parity(
            model_set.answer(aggregate, {}, batched=True),
            model_set.answer(aggregate, {}, batched=False),
        )
