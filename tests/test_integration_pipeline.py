"""Integration tests: the full offline workflow across module boundaries.

These exercise realistic multi-module paths: CSV on disk -> columnar
table -> reservoir sample -> models -> catalog on disk -> fresh engine ->
SQL answers scored against exact ground truth; plus the engine fallback
chain and a multi-engine workload comparison through the harness.
"""

import numpy as np
import pytest

from repro import (
    DBEst,
    DBEstConfig,
    ExactEngine,
    UniformAQPEngine,
    generate_ccpp,
    read_csv,
    write_csv,
)
from repro.core import ModelCatalog
from repro.engines import OnlineAQPEngine
from repro.harness import compare_engines
from repro.workloads import generate_range_queries


class TestCsvToAnswers:
    def test_full_pipeline(self, tmp_path):
        # 1. data lands on disk as CSV (the paper's "just a local FS").
        table = generate_ccpp(50_000, seed=11)
        csv_path = tmp_path / "ccpp.csv"
        write_csv(table, csv_path)

        # 2. a build session loads it, trains models, saves the catalog.
        loaded = read_csv(csv_path, name="ccpp")
        assert loaded.n_rows == 50_000
        build_engine = DBEst(config=DBEstConfig(regressor="plr", random_seed=3))
        build_engine.register_table(loaded)
        build_engine.build_model("ccpp", x="T", y="EP", sample_size=5000)
        catalog_path = tmp_path / "models.pkl"
        build_engine.catalog.save(catalog_path)

        # 3. a fresh query session restores the catalog — no base data.
        query_engine = DBEst()
        query_engine.catalog = ModelCatalog.load(catalog_path)
        truth = ExactEngine()
        truth.register_table(table)
        sql = "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 20;"
        expected = truth.execute(sql).scalar()
        estimate = query_engine.execute(sql).scalar()
        assert estimate == pytest.approx(expected, rel=0.02)

    def test_csv_roundtrip_preserves_answers(self, tmp_path):
        table = generate_ccpp(20_000, seed=11)
        path = tmp_path / "t.csv"
        write_csv(table, path)
        back = read_csv(path, name="ccpp")
        for engine_table in (table, back):
            truth = ExactEngine()
            truth.register_table(engine_table)
            value = truth.execute(
                "SELECT SUM(EP) FROM ccpp WHERE T BETWEEN 5 AND 25;"
            ).scalar()
            assert value == pytest.approx(
                float(
                    table["EP"][(table["T"] >= 5) & (table["T"] <= 25)].sum()
                ),
                rel=1e-9,
            )


class TestFallbackChain:
    def test_three_level_architecture(self, linear_table, fast_config):
        """Paper Fig. 1: DBEst -> online AQP -> exact QP."""
        exact = ExactEngine()
        exact.register_table(linear_table)

        online = OnlineAQPEngine(sample_size=1500, random_seed=3)
        online.register_table(linear_table)

        dbest = DBEst(config=fast_config, fallback=online)
        dbest.register_table(linear_table)
        dbest.build_model("linear", x="x", y="y", sample_size=2000)

        # Modelled template: answered by models.
        modelled = dbest.execute(
            "SELECT AVG(y) FROM linear WHERE x BETWEEN 20 AND 60;"
        )
        assert modelled.source == "model"

        # Unmodelled template: falls through to online sampling.
        fallback = dbest.execute(
            "SELECT AVG(x) FROM linear WHERE y BETWEEN 100 AND 200;"
        )
        assert fallback.source == "fallback"
        truth = exact.execute(
            "SELECT AVG(x) FROM linear WHERE y BETWEEN 100 AND 200;"
        ).scalar()
        assert fallback.scalar() == pytest.approx(truth, rel=0.1)


class TestMultiEngineComparison:
    def test_harness_over_three_engines(self, tmp_path):
        table = generate_ccpp(60_000, seed=13)
        truth = ExactEngine()
        truth.register_table(table)

        dbest = DBEst(config=DBEstConfig(regressor="plr", random_seed=3))
        dbest.register_table(table)
        dbest.build_model("ccpp", x="T", y="EP", sample_size=5000)

        verdict = UniformAQPEngine(sample_size=5000, random_seed=3)
        verdict.register_table(table)
        verdict.prepare_table("ccpp")

        online = OnlineAQPEngine(sample_size=5000, random_seed=3)
        online.register_table(table)

        workload = generate_range_queries(
            table, [("T", "EP")], n_per_aggregate=4,
            aggregates=("COUNT", "SUM", "AVG"), range_fraction=0.05,
            seed=17, anchor="data",
        )
        runs = compare_engines(
            {"DBEst": dbest, "VerdictDB": verdict, "Online": online},
            workload,
            truth,
        )
        for run in runs.values():
            assert run.mean_relative_error() < 0.2
        # DBEst's state is models; the sample engine holds rows; online none.
        assert dbest.state_size_bytes() > 0
        assert verdict.state_size_bytes() > dbest.state_size_bytes() / 10
        assert online.state_size_bytes() == 0


class TestEndToEndDeterminism:
    def test_same_seed_same_answers(self, tmp_path):
        table = generate_ccpp(30_000, seed=5)

        def build_and_query() -> float:
            engine = DBEst(config=DBEstConfig(regressor="plr", random_seed=42))
            engine.register_table(table)
            engine.build_model("ccpp", x="T", y="EP", sample_size=3000)
            return engine.execute(
                "SELECT SUM(EP) FROM ccpp WHERE T BETWEEN 8 AND 18;"
            ).scalar()

        assert build_and_query() == pytest.approx(build_and_query(), rel=1e-12)

    def test_catalog_roundtrip_is_bit_identical(self, tmp_path):
        table = generate_ccpp(30_000, seed=5)
        engine = DBEst(config=DBEstConfig(regressor="plr", random_seed=42))
        engine.register_table(table)
        engine.build_model("ccpp", x="T", y="EP", sample_size=3000)
        sql = "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 8 AND 18;"
        before = engine.execute(sql).scalar()
        path = tmp_path / "cat.pkl"
        engine.catalog.save(path)
        restored = DBEst()
        restored.catalog = ModelCatalog.load(path)
        assert restored.execute(sql).scalar() == before
