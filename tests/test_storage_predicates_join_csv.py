"""Unit tests for predicates, hash join, schema, and CSV I/O."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError, SchemaMismatchError, StorageError
from repro.storage import (
    ColumnSchema,
    Table,
    TableSchema,
    equality_mask,
    evaluate_predicates,
    hash_join,
    range_mask,
    read_csv,
    write_csv,
)


class TestPredicates:
    def test_range_mask_inclusive(self, small_table):
        mask = range_mask(small_table, "x", 2.0, 4.0)
        assert mask.sum() == 3  # BETWEEN is inclusive on both ends

    def test_range_mask_reversed_bounds(self, small_table):
        with pytest.raises(InvalidParameterError):
            range_mask(small_table, "x", 4.0, 2.0)

    def test_equality_mask(self, small_table):
        mask = equality_mask(small_table, "g", 3)
        assert mask.sum() == 4

    def test_conjunction(self, small_table):
        mask = evaluate_predicates(
            small_table,
            ranges=[("x", 2.0, 7.0)],
            equalities=[("g", 3)],
        )
        assert mask.sum() == 3  # rows x in {5,6,7} with g==3

    def test_no_predicates_all_true(self, small_table):
        assert evaluate_predicates(small_table).all()

    def test_empty_result(self, small_table):
        mask = evaluate_predicates(small_table, ranges=[("x", 100.0, 200.0)])
        assert mask.sum() == 0


class TestHashJoin:
    def test_inner_join_matches(self):
        left = Table({"k": np.asarray([1, 2, 3]), "a": np.asarray([10, 20, 30])},
                     name="l")
        right = Table({"k": np.asarray([2, 3, 4]), "b": np.asarray([200, 300, 400])},
                      name="r")
        joined = hash_join(left, right, "k", "k")
        assert joined.n_rows == 2
        assert set(joined["k"].tolist()) == {2, 3}
        assert set(joined.column_names) == {"k", "a", "b"}

    def test_join_multiplicity(self):
        left = Table({"k": np.asarray([1, 1]), "a": np.asarray([1, 2])}, name="l")
        right = Table({"k": np.asarray([1, 1, 1]), "b": np.asarray([7, 8, 9])},
                      name="r")
        joined = hash_join(left, right, "k", "k")
        assert joined.n_rows == 6  # 2 x 3 cross within key group

    def test_join_row_alignment(self):
        left = Table({"k": np.asarray([1, 2]), "a": np.asarray([10, 20])}, name="l")
        right = Table({"k": np.asarray([2, 1]), "b": np.asarray([200, 100])},
                      name="r")
        joined = hash_join(left, right, "k", "k")
        pairs = set(zip(joined["a"].tolist(), joined["b"].tolist()))
        assert pairs == {(10, 100), (20, 200)}

    def test_join_different_key_names(self):
        left = Table({"lk": np.asarray([1, 2]), "a": np.asarray([1, 2])}, name="l")
        right = Table({"rk": np.asarray([1, 2]), "b": np.asarray([3, 4])}, name="r")
        joined = hash_join(left, right, "lk", "rk")
        assert joined.n_rows == 2
        assert "rk" not in joined.column_names

    def test_join_collision_suffix(self):
        left = Table({"k": np.asarray([1]), "v": np.asarray([1.0])}, name="l")
        right = Table({"k": np.asarray([1]), "v": np.asarray([2.0])}, name="r")
        joined = hash_join(left, right, "k", "k", suffix="_right")
        assert "v_right" in joined.column_names

    def test_join_empty_result(self):
        left = Table({"k": np.asarray([1]), "a": np.asarray([1])}, name="l")
        right = Table({"k": np.asarray([2]), "b": np.asarray([2])}, name="r")
        assert hash_join(left, right, "k", "k").n_rows == 0

    def test_join_matches_bruteforce(self, rng):
        left_keys = rng.integers(0, 20, size=200)
        right_keys = rng.integers(0, 20, size=150)
        left = Table({"k": left_keys, "a": np.arange(200)}, name="l")
        right = Table({"k": right_keys, "b": np.arange(150)}, name="r")
        joined = hash_join(left, right, "k", "k")
        expected = sum(
            int((right_keys == key).sum()) for key in left_keys.tolist()
        )
        assert joined.n_rows == expected

    def test_join_default_name(self):
        left = Table({"k": np.asarray([1]), "a": np.asarray([1])}, name="l")
        right = Table({"k": np.asarray([1]), "b": np.asarray([1])}, name="r")
        assert hash_join(left, right, "k", "k").name == "l_join_r"


class TestSchema:
    def test_validate_accepts_matching(self):
        schema = TableSchema("t", [ColumnSchema("a", "f"), ColumnSchema("b", "i")])
        schema.validate({"a": np.zeros(3), "b": np.arange(3)})

    def test_validate_rejects_missing_column(self):
        schema = TableSchema("t", [ColumnSchema("a", "f")])
        with pytest.raises(SchemaMismatchError):
            schema.validate({"b": np.zeros(3)})

    def test_validate_rejects_wrong_kind(self):
        schema = TableSchema("t", [ColumnSchema("a", "i")])
        with pytest.raises(SchemaMismatchError):
            schema.validate({"a": np.zeros(3)})  # float into int column

    def test_float_column_accepts_ints(self):
        assert ColumnSchema("a", "f").matches(np.arange(3))

    def test_column_lookup(self):
        schema = TableSchema("t", [ColumnSchema("a"), ColumnSchema("b")])
        assert schema.column("b").name == "b"
        with pytest.raises(SchemaMismatchError):
            schema.column("c")


class TestCsvIO:
    def test_roundtrip(self, small_table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(small_table, path)
        back = read_csv(path, name="small")
        assert back == small_table

    def test_dtype_inference(self, tmp_path):
        path = tmp_path / "mix.csv"
        path.write_text("i,f,s\n1,1.5,a\n2,2.5,b\n")
        table = read_csv(path)
        assert table["i"].dtype.kind == "i"
        assert table["f"].dtype.kind == "f"
        assert table["s"].dtype.kind == "U"

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(StorageError):
            read_csv(path)

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(StorageError):
            read_csv(path)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mytable.csv"
        path.write_text("a\n1\n")
        assert read_csv(path).name == "mytable"
