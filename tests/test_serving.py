"""Tests for the serving subsystem: store, plan/answer caches, server.

The parity suite asserts the acceptance criterion directly: coalesced,
cached, concurrently-served answers equal sequential ``DBEst.execute``
answers to 1e-9 across COUNT/SUM/AVG/VARIANCE/PERCENTILE, scalar and
group-by workloads, with and without the lazy store underneath — and
store eviction must be transparent (evicted models reload and answer
bit-identically).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import DBEst, DBEstConfig, ModelCatalog, ModelKey
from repro.core.engine import parse_cache_clear, parse_cache_info
from repro.engines import ExactEngine
from repro.errors import (
    CatalogError,
    ModelNotFoundError,
    QueryExecutionError,
    SQLSyntaxError,
    UnsupportedQueryError,
)
from repro.serve import AnswerCache, ModelStore, PlanCache, QueryServer, answer_key
from repro.sql.ast import AggregateCall
from repro.sql.parser import parse_query
from repro.storage.table import Table


@pytest.fixture(scope="module")
def served_engine():
    """An engine with scalar, group-by, multivariate, and raw-group
    state — every model type the serving layer must round-trip."""
    rng = np.random.default_rng(31)
    n_groups, rows = 12, 300
    n = n_groups * rows
    g = np.repeat(np.arange(n_groups), rows).astype(np.float64)
    # Group 0 is tiny so the model set keeps a RawGroup.
    keep = (g != 0) | (np.arange(n) % rows < 10)
    g = g[keep]
    x = rng.uniform(0.0, 100.0, size=g.size)
    z = rng.uniform(-5.0, 5.0, size=g.size)
    y = (1.0 + 0.1 * g) * x + 0.5 * z + rng.normal(0.0, 1.0, size=g.size)
    table = Table({"x": x, "z": z, "y": y, "g": g}, name="traffic")
    config = DBEstConfig(
        regressor="plr", integration_points=65, min_group_rows=30,
        random_seed=31,
    )
    engine = DBEst(config=config)
    engine.register_table(table)
    engine.build_model("traffic", x="x", y="y", sample_size=g.size,
                       group_by="g")
    engine.build_model("traffic", x="x", y="y", sample_size=g.size)
    # Multivariate predicate sets need a non-piecewise regressor; build
    # through a second engine sharing the catalog.
    multi = DBEst(config=DBEstConfig(
        regressor="linear", integration_points=65, min_group_rows=30,
        random_seed=31,
    ))
    multi.register_table(table)
    multi.catalog = engine.catalog
    multi.build_model("traffic", x=("x", "z"), y="y", sample_size=g.size)
    return engine


WORKLOAD = [
    "SELECT COUNT(x) FROM traffic WHERE x BETWEEN 20 AND 60 GROUP BY g;",
    "SELECT SUM(y) FROM traffic WHERE x BETWEEN 20 AND 60 GROUP BY g;",
    "SELECT AVG(y) FROM traffic WHERE x BETWEEN 20 AND 60 GROUP BY g;",
    "SELECT VARIANCE(y) FROM traffic WHERE x BETWEEN 10 AND 80 GROUP BY g;",
    "SELECT AVG(y), COUNT(x) FROM traffic WHERE x BETWEEN 25 AND 45 GROUP BY g;",
    "SELECT AVG(y) FROM traffic WHERE x BETWEEN 10 AND 80;",
    "SELECT PERCENTILE(x, 0.5) FROM traffic WHERE x BETWEEN 10 AND 80;",
    "SELECT SUM(y) FROM traffic WHERE x BETWEEN 30 AND 70 AND z BETWEEN -2 AND 2;",
    "SELECT AVG(y) FROM traffic WHERE x BETWEEN 20 AND 60 AND g = 3;",
    # Contradictory one-sided bounds merge to an empty interval.
    "SELECT COUNT(x) FROM traffic WHERE x >= 70 AND x <= 40 GROUP BY g;",
]


def _model_answer(model, aggregate, ranges):
    """Answer through GroupByModelSet.answer or the scalar dispatcher."""
    from repro.core import answer_aggregate

    if hasattr(model, "answer"):
        return model.answer(aggregate, ranges)
    return answer_aggregate(model, aggregate, ranges)


def _assert_results_match(sequential, served, bound=1e-9):
    for seq_result, served_result in zip(sequential, served):
        assert set(seq_result.values) == set(served_result.values)
        for label, expected in seq_result.values.items():
            got = served_result.values[label]
            if isinstance(expected, dict):
                assert set(expected) == set(got)
                for value in expected:
                    assert got[value] == pytest.approx(
                        expected[value], abs=bound, rel=bound, nan_ok=True
                    )
            else:
                assert got == pytest.approx(
                    expected, abs=bound, rel=bound, nan_ok=True
                )


class TestModelStore:
    def test_lazy_roundtrip_and_catalog_api(self, served_engine, tmp_path):
        store = ModelStore.write(
            served_engine.catalog, tmp_path / "s", cache_bytes=0
        )
        assert len(store) == len(served_engine.catalog)
        assert store.loaded_keys() == []          # nothing resident yet
        key = ModelKey.make("traffic", ("x",), "y", "g")
        assert key in store
        model = store.get(key)
        assert store.loaded_keys() == [key]
        original = served_engine.catalog.get(key)
        aggregate = AggregateCall("AVG", "y")
        ranges = {"x": (20.0, 60.0)}
        assert model.answer(aggregate, ranges) == original.answer(
            aggregate, ranges
        )
        # find resolves through the manifest, including supersets.
        assert store.find("traffic", ("x",), "y", "g") is model
        superset = store.resolve("traffic", ("z",), "y", None)
        assert superset.x_columns == ("x", "z")
        rows = store.summary()
        assert {row["type"] for row in rows} == {
            "GroupByModelSet", "ColumnSetModel",
        }

    def test_eviction_under_budget_reloads_bit_identically(
        self, served_engine, tmp_path
    ):
        catalog = served_engine.catalog
        # A budget smaller than the whole catalog forces eviction cycles.
        store = ModelStore.write(catalog, tmp_path / "s")
        store.cache_bytes = max(store.total_size_bytes() // 2, 1)
        aggregate = AggregateCall("AVG", "y")
        ranges = {"x": (20.0, 60.0)}
        expected = {
            key: _model_answer(catalog.get(key), aggregate, ranges)
            for key in catalog.keys()
        }
        for _ in range(3):  # cycle keys through the LRU repeatedly
            for key in catalog.keys():
                got = _model_answer(store.get(key), aggregate, ranges)
                assert got == expected[key]  # bit-identical
        stats = store.stats()
        assert stats["evictions"] > 0
        assert stats["loads"] > len(catalog)  # some key reloaded
        assert stats["resident_bytes"] <= store.cache_bytes

    def test_evict_all_then_transparent_reload(self, served_engine, tmp_path):
        store = ModelStore.write(served_engine.catalog, tmp_path / "s")
        key = store.keys()[0]
        first = store.get(key)
        store.evict_all()
        assert store.loaded_keys() == []
        assert store.get(key) is not first  # genuinely reloaded
        assert store.stats()["loads"] == 2

    def test_missing_key(self, served_engine, tmp_path):
        store = ModelStore.write(served_engine.catalog, tmp_path / "s")
        with pytest.raises(ModelNotFoundError):
            store.get(ModelKey.make("nope", ("x",), "y"))
        with pytest.raises(ModelNotFoundError):
            store.find("nope", ("x",), "y")

    def test_not_a_store(self, tmp_path):
        with pytest.raises(CatalogError, match="MANIFEST"):
            ModelStore(tmp_path)

    def test_corrupt_manifest_magic(self, served_engine, tmp_path):
        ModelStore.write(served_engine.catalog, tmp_path / "s")
        manifest = tmp_path / "s" / "MANIFEST"
        manifest.write_bytes(b"garbage" + manifest.read_bytes())
        with pytest.raises(CatalogError, match="magic header"):
            ModelStore(tmp_path / "s")

    def test_record_version_mismatch_names_versions(
        self, served_engine, tmp_path
    ):
        from repro.core.catalog import pack_header
        from repro.serve.store import RECORD_MAGIC

        store = ModelStore.write(served_engine.catalog, tmp_path / "s")
        record = store._records[store.keys()[0]]
        record_path = tmp_path / "s" / "records" / record.filename
        body = record_path.read_bytes()[len(pack_header(RECORD_MAGIC, 1)):]
        record_path.write_bytes(pack_header(RECORD_MAGIC, 99) + body)
        with pytest.raises(CatalogError, match="version 99"):
            store.get(store.keys()[0])

    def test_missing_record_file(self, served_engine, tmp_path):
        store = ModelStore.write(served_engine.catalog, tmp_path / "s")
        record = store._records[store.keys()[0]]
        (tmp_path / "s" / "records" / record.filename).unlink()
        with pytest.raises(CatalogError, match="missing"):
            store.get(store.keys()[0])

    def test_write_from_mapping_and_overwrite_prunes(
        self, served_engine, tmp_path
    ):
        keys = served_engine.catalog.keys()
        full = {key: served_engine.catalog.get(key) for key in keys}
        ModelStore.write(full, tmp_path / "s")
        first_gen = set((tmp_path / "s" / "records").glob("*.model"))
        assert len(first_gen) == len(full)
        # Rewriting with fewer models prunes the stale record files.
        store = ModelStore.write({keys[0]: full[keys[0]]}, tmp_path / "s")
        assert len(store) == 1
        assert len(set((tmp_path / "s" / "records").glob("*.model"))) == 1

    def test_negative_budget_rejected(self, served_engine, tmp_path):
        ModelStore.write(served_engine.catalog, tmp_path / "s")
        with pytest.raises(CatalogError):
            ModelStore(tmp_path / "s", cache_bytes=-1)


class TestPlanCache:
    TEMPLATED = [
        ("SELECT AVG(y) FROM t WHERE x BETWEEN 10 AND 20;",
         "SELECT AVG(y) FROM t WHERE x BETWEEN -3.5 AND 4e2;"),
        ("SELECT COUNT(*) FROM t WHERE x >= 7;",
         "SELECT COUNT(*) FROM t WHERE x >= .25;"),
        ("SELECT PERCENTILE(x, 0.5) FROM t WHERE x <= 10;",
         "SELECT PERCENTILE(x, 0.99) FROM t WHERE x <= 88;"),
        ("SELECT SUM(y) FROM t WHERE x BETWEEN 1 AND 2 AND g = 4 GROUP BY h;",
         "SELECT SUM(y) FROM t WHERE x BETWEEN 3 AND 9 AND g = 7.5 GROUP BY h;"),
        ("SELECT AVG(y) FROM t JOIN u ON a = b WHERE x BETWEEN 0 AND 1;",
         "SELECT AVG(y) FROM t JOIN u ON a = b WHERE x BETWEEN 5 AND 6;"),
        ("SELECT COUNT(x) FROM t WHERE g = 'red';",
         "SELECT COUNT(x) FROM t WHERE g = 'blue';"),
    ]

    def test_bound_queries_equal_direct_parse(self):
        cache = PlanCache()
        for first, second in self.TEMPLATED:
            assert cache.parse(first, validate=False) == parse_query(first)
            assert cache.parse(second, validate=False) == parse_query(second)

    def test_template_sharing_and_stats(self):
        cache = PlanCache()
        cache.parse("SELECT AVG(y) FROM t WHERE x BETWEEN 10 AND 20;",
                    validate=False)
        cache.parse("SELECT AVG(y) FROM t WHERE x BETWEEN 33 AND 44;",
                    validate=False)
        stats = cache.stats()
        assert stats == {
            "entries": 1, "max_entries": 256, "hits": 1, "misses": 1,
            "evictions": 0,
            # legacy aliases, kept for dashboards scripted against them
            "plans": 1, "max_plans": 256,
        }
        # A different shape (string literal vs number) is its own plan.
        cache.parse("SELECT AVG(y) FROM t WHERE x BETWEEN 10 AND 20 AND "
                    "g = 'a';", validate=False)
        assert cache.stats()["plans"] == 2

    def test_reversed_between_raises_on_bind(self):
        cache = PlanCache()
        cache.parse("SELECT AVG(y) FROM t WHERE x BETWEEN 1 AND 2;",
                    validate=False)
        with pytest.raises(SQLSyntaxError, match="reversed"):
            cache.parse("SELECT AVG(y) FROM t WHERE x BETWEEN 9 AND 2;",
                        validate=False)

    def test_validation_depends_on_literals(self):
        cache = PlanCache()
        cache.parse("SELECT PERCENTILE(x, 0.5) FROM t WHERE x <= 1;")
        with pytest.raises(UnsupportedQueryError):
            cache.parse("SELECT PERCENTILE(x, 1.5) FROM t WHERE x <= 1;")

    def test_bound_queries_are_independent(self):
        cache = PlanCache()
        sql = "SELECT AVG(y) FROM t WHERE x BETWEEN 10 AND 20;"
        first = cache.parse(sql, validate=False)
        second = cache.parse(sql, validate=False)
        assert first == second and first is not second
        first.ranges.clear()  # caller mutation must not poison the plan
        assert cache.parse(sql, validate=False) == second

    def test_lru_eviction(self):
        cache = PlanCache(max_plans=2)
        for column in ("a", "b", "c"):
            cache.parse(f"SELECT AVG({column}) FROM t WHERE {column} <= 1;",
                        validate=False)
        stats = cache.stats()
        assert stats["plans"] == 2 and stats["evictions"] == 1

    def test_syntax_errors_propagate(self):
        cache = PlanCache()
        with pytest.raises(SQLSyntaxError):
            cache.parse("SELECT FROM t;")


class TestAnswerCache:
    def test_hit_miss_and_eviction(self):
        cache = AnswerCache(max_entries=2)
        key = ModelKey.make("t", ("x",), "y")
        aggregate = AggregateCall("AVG", "y")
        k1 = answer_key(key, aggregate, {"x": (1.0, 2.0)})
        k2 = answer_key(key, aggregate, {"x": (3.0, 4.0)})
        k3 = answer_key(key, AggregateCall("SUM", "y"), {"x": (1.0, 2.0)})
        assert AnswerCache.missing(cache.get(k1))
        cache.put(k1, 1.0)
        cache.put(k2, 2.0)
        assert cache.get(k1) == 1.0
        cache.put(k3, 3.0)  # evicts k2 (least recently touched)
        assert AnswerCache.missing(cache.get(k2))
        assert cache.stats() == {
            "entries": 2, "max_entries": 2, "hits": 1, "misses": 2,
            "evictions": 1,
        }

    def test_equalities_distinguish_entries(self):
        key = ModelKey.make("t", ("x",), "y", "g")
        aggregate = AggregateCall("AVG", "y")
        ranges = {"x": (1.0, 2.0)}
        assert answer_key(key, aggregate, ranges, (("g", 1),)) != answer_key(
            key, aggregate, ranges, (("g", 2),)
        )

    def test_version_mismatch_treated_as_missing(self):
        cache = AnswerCache()
        cache.put(("k",), 1.0, version=1)
        assert cache.get(("k",), version=1) == 1.0
        assert AnswerCache.missing(cache.get(("k",), version=2))
        assert len(cache) == 0  # the stale entry is dropped, not kept
        # A put that raced past an invalidation sweep stays unservable:
        # its tag is older than the version any later reader presents.
        cache.put(("k",), 1.0, version=1)
        assert AnswerCache.missing(cache.get(("k",), version=2))

    def test_copy_false_returns_stored_object(self):
        cache = AnswerCache()
        cache.put(("k",), {1: 1.0})
        assert cache.get(("k",), copy=False) is cache.get(("k",), copy=False)
        assert cache.get(("k",)) is not cache.get(("k",), copy=False)

    def test_dict_values_are_copied(self):
        cache = AnswerCache()
        key = ("k",)
        original = {1: 1.0}
        cache.put(key, original)
        original[1] = 99.0           # writer's later mutation is invisible
        got = cache.get(key)
        assert got == {1: 1.0}
        got[1] = -1.0                # reader's mutation does not poison
        assert cache.get(key) == {1: 1.0}


class TestParseCache:
    def test_execute_hits_parse_cache_for_repeated_strings(
        self, served_engine
    ):
        parse_cache_clear()
        sql = "SELECT AVG(y) FROM traffic WHERE x BETWEEN 12 AND 34;"
        served_engine.execute(sql)
        before = parse_cache_info()
        served_engine.execute(sql)
        served_engine.execute(sql)
        after = parse_cache_info()
        assert after.hits == before.hits + 2
        assert after.misses == before.misses

    def test_query_objects_bypass_the_cache(self, served_engine):
        parse_cache_clear()
        query = parse_query(
            "SELECT AVG(y) FROM traffic WHERE x BETWEEN 12 AND 34;"
        )
        served_engine.execute(query)
        assert parse_cache_info().currsize == 0


class TestQueryServer:
    def test_parity_with_sequential_execute(self, served_engine):
        sequential = [served_engine.execute(sql) for sql in WORKLOAD]
        with QueryServer(served_engine, n_workers=3) as server:
            served = server.run(WORKLOAD * 2)
        _assert_results_match(sequential, served[: len(WORKLOAD)])
        _assert_results_match(sequential, served[len(WORKLOAD):])

    def test_parity_served_from_store_under_eviction(
        self, served_engine, tmp_path
    ):
        sequential = [served_engine.execute(sql) for sql in WORKLOAD]
        store = ModelStore.write(served_engine.catalog, tmp_path / "s")
        # Budget below the total record size forces mid-workload eviction.
        store.cache_bytes = max(store.total_size_bytes() // 2, 1)
        serving = DBEst(config=served_engine.config)
        serving.catalog = store
        with QueryServer(serving, n_workers=3) as server:
            served = server.run(WORKLOAD * 3)
        for offset in range(0, len(served), len(WORKLOAD)):
            _assert_results_match(
                sequential, served[offset : offset + len(WORKLOAD)]
            )
        assert store.stats()["evictions"] > 0

    def test_coalescing_and_caching_reduce_engine_calls(self, served_engine):
        with QueryServer(served_engine, n_workers=2) as server:
            server.run(WORKLOAD * 5)
            stats = server.stats()
        assert stats["queries"] == len(WORKLOAD) * 5
        # Fewer engine calls than queries: duplicates coalesced or cached.
        assert stats["engine_calls"] < stats["queries"]
        assert stats["coalesced"] + stats["answer_cache"]["hits"] > 0
        assert stats["plan_cache"]["hits"] > 0

    def test_concurrent_submitters(self, served_engine):
        sequential = {
            sql: served_engine.execute(sql) for sql in WORKLOAD
        }
        results: dict[int, list] = {}
        with QueryServer(served_engine, n_workers=4) as server:
            def client(worker_id: int) -> None:
                futures = [server.submit(sql) for sql in WORKLOAD]
                results[worker_id] = [future.result() for future in futures]

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for worker_id in range(4):
            _assert_results_match(
                [sequential[sql] for sql in WORKLOAD], results[worker_id]
            )

    def test_unanswerable_query_raises_from_future(self, served_engine):
        with QueryServer(served_engine, n_workers=1) as server:
            future = server.submit(
                "SELECT AVG(nope) FROM traffic WHERE q BETWEEN 1 AND 2;"
            )
            with pytest.raises(ModelNotFoundError):
                future.result()

    def test_fallback_engine_is_used(self, served_engine):
        fallback = ExactEngine()
        fallback.register_table(served_engine.tables["traffic"])
        engine = DBEst(config=served_engine.config, fallback=fallback)
        engine.catalog = served_engine.catalog
        engine.register_table(served_engine.tables["traffic"])
        sql = "SELECT AVG(y) FROM traffic WHERE g BETWEEN 2 AND 5;"
        expected = engine.execute(sql)
        assert expected.source == "fallback"
        with QueryServer(engine, n_workers=1) as server:
            result = server.execute(sql)
        assert result.source == "fallback"
        assert result.values == expected.values
        assert server.stats()["fallbacks"] == 1

    def test_equality_with_group_by_routes_to_fallback(self, served_engine):
        fallback = ExactEngine()
        fallback.register_table(served_engine.tables["traffic"])
        engine = DBEst(config=served_engine.config, fallback=fallback)
        engine.catalog = served_engine.catalog
        engine.register_table(served_engine.tables["traffic"])
        # Group-by models cannot apply the categorical filter; silently
        # ignoring it returned unfiltered per-group answers before.
        sql = ("SELECT COUNT(x) FROM traffic "
               "WHERE x BETWEEN 20 AND 60 AND g = 3 GROUP BY g;")
        expected = engine.execute(sql)
        assert expected.source == "fallback"
        assert set(expected.values["COUNT(x)"]) == {3.0}
        with QueryServer(engine, n_workers=1) as server:
            served = server.execute(sql)
        assert served.source == "fallback"
        assert served.values == expected.values
        with pytest.raises(UnsupportedQueryError):
            served_engine.execute(sql)  # no fallback engine: loud, not wrong

    def test_answer_cache_invalidated_on_model_rebuild(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(0.0, 10.0, size=2000)
        y = 3.0 * x + rng.normal(0.0, 0.5, size=2000)
        engine = DBEst(config=DBEstConfig(
            regressor="plr", integration_points=65, random_seed=5,
        ))
        engine.register_table(Table({"x": x, "y": y}, name="live"))
        engine.build_model("live", x="x", y="y", sample_size=500)
        sql = "SELECT AVG(y) FROM live WHERE x BETWEEN 2 AND 8;"
        with QueryServer(engine, n_workers=1) as server:
            first = server.execute(sql)
            assert server.execute(sql).source == "cache"
            # Rebuild in place: a different sample gives a (slightly)
            # different model; the served answer must track it.
            engine.build_model("live", x="x", y="y", sample_size=1500)
            expected = engine.execute(sql)
            served = server.execute(sql)
        assert served.values == expected.values
        assert served.source == "model"  # stale entry was dropped
        assert first.values != expected.values

    def test_non_repro_error_reaches_future_and_worker_survives(
        self, served_engine
    ):
        with QueryServer(served_engine, n_workers=1) as server:
            # Unseen group value: answer_group raises a plain KeyError.
            bad = server.submit(
                "SELECT AVG(y) FROM traffic "
                "WHERE x BETWEEN 10 AND 20 AND g = 999;"
            )
            with pytest.raises(KeyError):
                bad.result(timeout=30)
            # The lone worker must survive and keep serving.
            good = server.submit(WORKLOAD[0])
            assert good.result(timeout=30).values

    def test_coalesced_results_are_independent_objects(self, served_engine):
        with QueryServer(served_engine, n_workers=1) as server:
            futures = [server.submit(WORKLOAD[0]) for _ in range(6)]
            results = [future.result() for future in futures]
            label = next(iter(results[0].values))
            first = results[0].values[label]
            second = results[1].values[label]
            assert first == second and first is not second
            first.clear()  # one caller's mutation must not leak
            assert second
            assert server.execute(WORKLOAD[0]).values[label] == second

    def test_parse_errors_raise_synchronously(self, served_engine):
        with QueryServer(served_engine, n_workers=1) as server:
            with pytest.raises(SQLSyntaxError):
                server.submit("SELECT FROM traffic;")

    def test_submit_after_close_raises(self, served_engine):
        server = QueryServer(served_engine, n_workers=1)
        server.close()
        with pytest.raises(QueryExecutionError):
            server.submit("SELECT AVG(y) FROM traffic WHERE x <= 1;")
        server.close()  # idempotent

    def test_query_object_submission(self, served_engine):
        query = parse_query(WORKLOAD[0])
        expected = served_engine.execute(query)
        with QueryServer(served_engine, n_workers=1) as server:
            result = server.execute(query)
        _assert_results_match([expected], [result])

    def test_uncoalesced_mode(self, served_engine):
        with QueryServer(served_engine, n_workers=2, coalesce=False) as server:
            served = server.run([WORKLOAD[0]] * 6)
            stats = server.stats()
        assert stats["coalesced"] == 0
        assert stats["batches"] == 6
        # The answer cache still dedupes the work.
        assert stats["engine_calls"] == 1
        sequential = served_engine.execute(WORKLOAD[0])
        _assert_results_match([sequential] * 6, served)

    def test_cache_source_marking(self, served_engine):
        with QueryServer(served_engine, n_workers=1) as server:
            first = server.execute(WORKLOAD[0])
            second = server.execute(WORKLOAD[0])
        assert first.source == "model"
        assert second.source == "cache"


class TestGridCacheStats:
    def test_served_aggregates_share_pdf_grids(self, served_engine):
        model_set = served_engine.catalog.get(
            ModelKey.make("traffic", ("x",), "y", "g")
        )
        evaluator = model_set.batched_evaluator()
        assert evaluator is not None
        before = evaluator.grid_cache_stats()
        ranges = {"x": (41.0, 59.0)}
        for func in ("SUM", "AVG", "VARIANCE"):
            model_set.answer(AggregateCall(func, "y"), ranges)
        after = evaluator.grid_cache_stats()
        # One exp pass, shared: a single miss, the rest hits.
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] > before["hits"]
