"""DBEst reproduction: a model-based approximate query processing engine.

Reproduces "DBEst: Revisiting Approximate Query Processing Engines with
Machine Learning Models" (Ma & Triantafillou, SIGMOD 2019) — the engine,
every substrate it needs (columnar storage, sampling, from-scratch KDE
and boosted-tree regression, SQL front end), the baseline engines it is
compared against, the evaluation workloads, and the benchmark harness.

Quickstart::

    import repro

    sales = repro.generate_store_sales(200_000)
    engine = repro.DBEst()
    engine.register_table(sales)
    engine.build_model("store_sales", x="ss_list_price",
                       y="ss_wholesale_cost", sample_size=10_000)
    result = engine.execute(
        "SELECT AVG(ss_wholesale_cost) FROM store_sales "
        "WHERE ss_list_price BETWEEN 20 AND 40;")
    print(result.scalar())
"""

from repro.core import (
    ColumnSetModel,
    DBEst,
    DBEstConfig,
    GroupByModelSet,
    ModelBundle,
    ModelCatalog,
    ModelKey,
    QueryResult,
)
from repro.engines import ExactEngine, StratifiedAQPEngine, UniformAQPEngine
from repro.errors import ReproError
from repro.obs import (
    MetricsRegistry,
    TraceBuffer,
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
    get_registry,
    render_prometheus,
)
from repro.serve import (
    NO_FAULTS,
    SERVER_DEQUEUE,
    SERVER_WORKER,
    STORE_LOAD,
    AnswerCache,
    FaultInjector,
    ModelStore,
    PlanCache,
    QueryServer,
)
from repro.sql import parse_query
from repro.storage import Table, read_csv, write_csv
from repro.workloads import (
    generate_beijing,
    generate_ccpp,
    generate_range_queries,
    generate_store,
    generate_store_sales,
    generate_zipf_join_tables,
)

__version__ = "1.0.0"

__all__ = [
    "NO_FAULTS",
    "SERVER_DEQUEUE",
    "SERVER_WORKER",
    "STORE_LOAD",
    "AnswerCache",
    "ColumnSetModel",
    "DBEst",
    "DBEstConfig",
    "ExactEngine",
    "FaultInjector",
    "GroupByModelSet",
    "MetricsRegistry",
    "ModelBundle",
    "ModelCatalog",
    "ModelKey",
    "ModelStore",
    "PlanCache",
    "QueryResult",
    "QueryServer",
    "ReproError",
    "StratifiedAQPEngine",
    "Table",
    "TraceBuffer",
    "UniformAQPEngine",
    "__version__",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "generate_beijing",
    "generate_ccpp",
    "generate_range_queries",
    "generate_store",
    "generate_store_sales",
    "generate_zipf_join_tables",
    "get_registry",
    "parse_query",
    "render_prometheus",
    "read_csv",
    "write_csv",
]
