"""Numerical integration and root finding.

DBEst evaluates aggregates as integrals of the density estimator, weighted
by the regression model (paper §3 "Integral Evaluation").  The paper uses
SciPy's QUADPACK wrapper; we expose that as the adaptive method and add a
fixed Simpson grid, which is the default because the weighted integrands
(tree-ensemble predictions) are piecewise constant and cheap to evaluate in
a single vectorised batch.
"""

from repro.integrate.quadrature import (
    adaptive_quad,
    integrate_product,
    simpson_grid,
    simpson_integrate,
    simpson_weights,
)
from repro.integrate.roots import bisect

__all__ = [
    "adaptive_quad",
    "bisect",
    "integrate_product",
    "simpson_grid",
    "simpson_integrate",
    "simpson_weights",
]
