"""Root finding for percentile queries.

PERCENTILE(x, p) asks for the value ``a`` with ``F(a) = p`` where ``F`` is
the KDE's cumulative distribution function.  There is no closed form for
``F^{-1}``, so — exactly as in the paper — we solve ``F(a) - p = 0`` with
the naive bisection method.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import InvalidParameterError, QueryExecutionError


def bisect(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float = 1e-8,
    max_iter: int = 200,
) -> float:
    """Find a root of ``f`` in ``[lo, hi]`` by bisection.

    Requires ``f(lo)`` and ``f(hi)`` to bracket zero (opposite signs or one
    of them exactly zero).  Converges linearly; ``max_iter`` of 200 is far
    beyond what a ``tol`` of 1e-8 over any realistic domain needs.
    """
    if hi < lo:
        raise InvalidParameterError(f"bisection interval reversed: [{lo}, {hi}]")
    f_lo = f(lo)
    f_hi = f(hi)
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    if (f_lo > 0) == (f_hi > 0):
        raise QueryExecutionError(
            f"bisection interval [{lo}, {hi}] does not bracket a root "
            f"(f(lo)={f_lo:.3g}, f(hi)={f_hi:.3g})"
        )
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        f_mid = f(mid)
        if f_mid == 0.0 or (hi - lo) < tol:
            return mid
        if (f_mid > 0) == (f_hi > 0):
            hi, f_hi = mid, f_mid
        else:
            lo, f_lo = mid, f_mid
    return 0.5 * (lo + hi)
