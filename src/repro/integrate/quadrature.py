"""Quadrature rules used by the aggregate evaluators.

Two methods are provided:

* :func:`simpson_integrate` — composite Simpson's rule on a fixed grid.
  The integrand is evaluated once, vectorised, over all nodes; this is the
  default inside DBEst because KDE and tree-ensemble evaluation are far
  cheaper in one batch than in many adaptive point-wise calls.
* :func:`adaptive_quad` — scipy's QUADPACK (Gauss–Kronrod) wrapper, the
  method the paper names; exposed for the integration ablation bench and
  for callers that need certified error estimates.
"""

from __future__ import annotations

from collections.abc import Callable
from functools import lru_cache

import numpy as np
from scipy import integrate as _scipy_integrate

from repro.errors import InvalidParameterError


def _check_interval(lb: float, ub: float) -> None:
    if not np.isfinite(lb) or not np.isfinite(ub):
        raise InvalidParameterError(f"integration bounds must be finite: [{lb}, {ub}]")
    if ub < lb:
        raise InvalidParameterError(f"integration bounds reversed: [{lb}, {ub}]")


@lru_cache(maxsize=64)
def _simpson_weights_cached(n_points: int) -> np.ndarray:
    weights = np.ones(n_points)
    weights[1:-1:2] = 4.0
    weights[2:-1:2] = 2.0
    weights.setflags(write=False)
    return weights


def simpson_weights(n_points: int) -> np.ndarray:
    """Composite-Simpson weights for ``n_points`` equally spaced nodes.

    ``n_points`` must be odd and >= 3; weights sum to ``n_points - 1`` and
    must be multiplied by ``h / 3`` where ``h`` is the node spacing.  The
    returned array is cached and read-only; copy before mutating.
    """
    if n_points < 3 or n_points % 2 == 0:
        raise InvalidParameterError(
            f"Simpson's rule needs an odd number of nodes >= 3, got {n_points}"
        )
    return _simpson_weights_cached(int(n_points))


@lru_cache(maxsize=4096)
def _simpson_grid_cached(lb: float, ub: float, n_points: int) -> tuple:
    nodes = np.linspace(lb, ub, n_points)
    weights = simpson_weights(n_points) * ((ub - lb) / (n_points - 1) / 3.0)
    nodes.setflags(write=False)
    weights.setflags(write=False)
    return nodes, weights


def simpson_grid(lb: float, ub: float, n_points: int) -> tuple[np.ndarray, np.ndarray]:
    """Cached ``(nodes, weights)`` Simpson grid over ``[lb, ub]``.

    ``weights`` already include the ``h / 3`` spacing factor, so an
    integral is just ``weights @ f(nodes)``.  Query workloads hit the same
    (range, resolution) pairs over and over — the per-group evaluators ask
    for one grid per group per aggregate — so grids are memoised.  Both
    arrays are read-only views of the cache; copy before mutating.
    """
    _check_interval(lb, ub)
    if n_points < 3 or n_points % 2 == 0:
        raise InvalidParameterError(
            f"Simpson's rule needs an odd number of nodes >= 3, got {n_points}"
        )
    return _simpson_grid_cached(float(lb), float(ub), int(n_points))


def simpson_integrate(
    f: Callable[[np.ndarray], np.ndarray],
    lb: float,
    ub: float,
    n_points: int = 257,
) -> float:
    """Integrate a vectorised function over ``[lb, ub]`` with Simpson's rule."""
    _check_interval(lb, ub)
    if ub == lb:
        return 0.0
    nodes = np.linspace(lb, ub, n_points)
    values = np.asarray(f(nodes), dtype=np.float64)
    h = (ub - lb) / (n_points - 1)
    return float(h / 3.0 * np.dot(simpson_weights(n_points), values))


def adaptive_quad(
    f: Callable[[float], float],
    lb: float,
    ub: float,
    epsabs: float = 1e-8,
    epsrel: float = 1e-6,
) -> float:
    """Adaptive Gauss–Kronrod integration (QUADPACK via scipy).

    This is the integration method named in the paper.  The integrand is
    called point-wise; use :func:`simpson_integrate` when the integrand is
    vectorised and smoothness is not an issue.
    """
    _check_interval(lb, ub)
    if ub == lb:
        return 0.0
    value, _abserr = _scipy_integrate.quad(
        f, lb, ub, epsabs=epsabs, epsrel=epsrel, limit=200
    )
    return float(value)


def integrate_product(
    density: Callable[[np.ndarray], np.ndarray],
    weight: Callable[[np.ndarray], np.ndarray] | None,
    lb: float,
    ub: float,
    n_points: int = 257,
) -> float:
    """Integrate ``density(x) * weight(x)`` (or just the density) on a grid.

    Evaluates both factors on a shared Simpson grid so tree ensembles and
    the KDE are each called exactly once.
    """
    _check_interval(lb, ub)
    if ub == lb:
        return 0.0
    nodes = np.linspace(lb, ub, n_points)
    values = np.asarray(density(nodes), dtype=np.float64)
    if weight is not None:
        values = values * np.asarray(weight(nodes), dtype=np.float64)
    h = (ub - lb) / (n_points - 1)
    return float(h / 3.0 * np.dot(simpson_weights(n_points), values))
