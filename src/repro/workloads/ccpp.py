"""Synthetic Combined Cycle Power Plant (CCPP) dataset.

The UCI CCPP dataset (Tüfekci 2014; 9568 hourly records, scaled up to
2.6 billion by the paper) has five columns: ambient Temperature (T),
Exhaust Vacuum (V), Ambient Pressure (AP), Relative Humidity (RH) and
net hourly electrical energy output (EP).  EP is an almost-linear,
noisy, decreasing function of T and V — the published regression studies
recover roughly ``EP ≈ 497 − 1.75·T − 0.23·V + 0.06·(AP−1013) −
0.15·(RH−73)`` with a few MW of residual noise — and that is exactly the
structure this generator synthesises, with marginals clipped to the UCI
ranges.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.storage.table import Table

CCPP_COLUMN_PAIRS: list[tuple[str, str]] = [
    ("T", "EP"),
    ("AP", "EP"),
    ("RH", "EP"),
]

# Column ranges of the UCI dataset.
_RANGES = {
    "T": (1.81, 37.11),
    "V": (25.36, 81.56),
    "AP": (992.89, 1033.30),
    "RH": (25.56, 100.16),
    "EP": (420.26, 495.76),
}


def generate_ccpp(n_rows: int, seed: int | None = 23) -> Table:
    """Generate ``n_rows`` of CCPP-shaped sensor data."""
    if n_rows <= 0:
        raise InvalidParameterError(f"n_rows must be positive, got {n_rows}")
    rng = np.random.default_rng(seed)

    # Temperature: bimodal seasonal mixture centred near the UCI mean.
    season = rng.random(n_rows) < 0.5
    temperature = np.where(
        season,
        rng.normal(11.0, 4.5, size=n_rows),
        rng.normal(27.0, 4.5, size=n_rows),
    )
    temperature = np.clip(temperature, *_RANGES["T"])

    # Exhaust vacuum rises with temperature (turbine load correlation).
    vacuum = 25.0 + 1.3 * temperature + rng.normal(0.0, 6.0, size=n_rows)
    vacuum = np.clip(vacuum, *_RANGES["V"])

    pressure = np.clip(
        rng.normal(1013.0, 6.0, size=n_rows), *_RANGES["AP"]
    )
    humidity = np.clip(
        95.0 - 0.8 * temperature + rng.normal(0.0, 10.0, size=n_rows),
        *_RANGES["RH"],
    )

    energy = (
        497.0
        - 1.75 * temperature
        - 0.23 * vacuum
        + 0.06 * (pressure - 1013.0)
        - 0.15 * (humidity - 73.0)
        + rng.normal(0.0, 3.2, size=n_rows)
    )
    energy = np.clip(energy, *_RANGES["EP"])

    return Table(
        {
            "T": temperature,
            "V": vacuum,
            "AP": pressure,
            "RH": humidity,
            "EP": energy,
        },
        name="ccpp",
    )
