"""Synthetic TPC-DS subset: ``store_sales`` and ``store``.

Reproduces the schema slice the paper queries: the fact table
``store_sales`` with its pricing/profit measure columns and the
``store`` dimension it joins on ``ss_store_sk``.  Marginals and
correlations follow the TPC-DS specification's spirit (list price drawn
from a skewed distribution, wholesale cost a noisy fraction of list
price, sales price a discounted list price, profit derived from the
others), so range predicates and aggregates behave like the real
benchmark's.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.storage.table import Table

# The paper's experiments use 16 column pairs from the TPC-DS tables; the
# 16 below are the measure-on-measure pairs of store_sales (4.2, 4.4).
TPCDS_COLUMN_PAIRS: list[tuple[str, str]] = [
    ("ss_list_price", "ss_wholesale_cost"),
    ("ss_list_price", "ss_sales_price"),
    ("ss_list_price", "ss_ext_discount_amt"),
    ("ss_list_price", "ss_net_profit"),
    ("ss_wholesale_cost", "ss_list_price"),
    ("ss_wholesale_cost", "ss_sales_price"),
    ("ss_wholesale_cost", "ss_net_profit"),
    ("ss_sales_price", "ss_net_paid"),
    ("ss_sales_price", "ss_net_profit"),
    ("ss_sold_date_sk", "ss_sales_price"),
    ("ss_sold_date_sk", "ss_net_profit"),
    ("ss_sold_date_sk", "ss_quantity"),
    ("ss_quantity", "ss_ext_discount_amt"),
    ("ss_quantity", "ss_net_paid"),
    ("ss_net_paid", "ss_net_profit"),
    ("ss_ext_discount_amt", "ss_net_profit"),
]

_FIRST_DATE_SK = 2450816  # TPC-DS's first ss_sold_date_sk
_N_DAYS = 1823  # five years of sales dates


def generate_store_sales(
    n_rows: int,
    n_stores: int = 57,
    seed: int | None = 7,
) -> Table:
    """Generate the ``store_sales`` fact table.

    ``n_stores`` defaults to 57 — the paper's group-by experiments report
    exactly 57 distinct ``ss_store_sk`` values.  Store popularity is
    skewed (a few busy stores), dates carry a weekly + seasonal pattern,
    and the pricing columns are mutually correlated as in retail data.
    """
    if n_rows <= 0:
        raise InvalidParameterError(f"n_rows must be positive, got {n_rows}")
    if n_stores <= 0:
        raise InvalidParameterError(f"n_stores must be positive, got {n_stores}")
    rng = np.random.default_rng(seed)

    # Store popularity: Zipf-ish weights so group sizes are uneven.
    store_weights = 1.0 / np.arange(1, n_stores + 1) ** 0.6
    store_weights /= store_weights.sum()
    store_sk = rng.choice(
        np.arange(1, n_stores + 1), size=n_rows, p=store_weights
    ).astype(np.int64)

    # Sales dates: uniform base plus end-of-year surge.
    day = rng.integers(0, _N_DAYS, size=n_rows)
    surge = rng.random(n_rows) < 0.15
    day[surge] = (day[surge] % 365) // 365 * 365 + rng.integers(
        330, 365, size=int(surge.sum())
    )
    date_sk = (_FIRST_DATE_SK + day).astype(np.int64)

    quantity = rng.integers(1, 101, size=n_rows).astype(np.int64)

    # Pricing: lognormal list price in roughly [1, 200].
    list_price = np.clip(np.exp(rng.normal(3.0, 0.8, size=n_rows)), 1.0, 200.0)
    wholesale_frac = rng.uniform(0.35, 0.75, size=n_rows)
    wholesale_cost = list_price * wholesale_frac
    discount_frac = rng.beta(2.0, 5.0, size=n_rows)  # mostly small discounts
    sales_price = list_price * (1.0 - discount_frac)
    ext_discount_amt = quantity * (list_price - sales_price)
    net_paid = quantity * sales_price
    net_profit = quantity * (sales_price - wholesale_cost) + rng.normal(
        0.0, 5.0, size=n_rows
    )

    return Table(
        {
            "ss_sold_date_sk": date_sk,
            "ss_store_sk": store_sk,
            "ss_quantity": quantity,
            "ss_list_price": list_price,
            "ss_wholesale_cost": wholesale_cost,
            "ss_sales_price": sales_price,
            "ss_ext_discount_amt": ext_discount_amt,
            "ss_net_paid": net_paid,
            "ss_net_profit": net_profit,
        },
        name="store_sales",
    )


def generate_store(n_stores: int = 57, seed: int | None = 11) -> Table:
    """Generate the ``store`` dimension table.

    ``s_number_of_employees`` spans the TPC-DS range (200–300), which is
    the join-analysis predicate attribute in paper §4.8.
    """
    if n_stores <= 0:
        raise InvalidParameterError(f"n_stores must be positive, got {n_stores}")
    rng = np.random.default_rng(seed)
    return Table(
        {
            "s_store_sk": np.arange(1, n_stores + 1, dtype=np.int64),
            "s_number_of_employees": rng.integers(
                200, 301, size=n_stores
            ).astype(np.int64),
            "s_floor_space": rng.integers(5_000_000, 10_000_001, size=n_stores)
            .astype(np.int64),
            "s_market_id": rng.integers(1, 11, size=n_stores).astype(np.int64),
        },
        name="store",
    )
