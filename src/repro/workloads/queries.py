"""Random query generation with controlled range selectivity.

The paper's sensitivity analyses generate hundreds of random queries per
column pair, with the range predicate's width fixed at a fraction of the
attribute's domain (0.1 %, 1 %, 10 %, ...).  :class:`QueryWorkload`
packages the generated SQL strings together with the parameters that
produced them so the harness can report per-AF breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidParameterError
from repro.storage.table import Table

DEFAULT_AGGREGATES = ("COUNT", "SUM", "AVG")
ALL_AGGREGATES = ("COUNT", "PERCENTILE", "VARIANCE", "STDDEV", "SUM", "AVG")


def random_range(
    domain: tuple[float, float],
    fraction: float,
    rng: np.random.Generator,
    anchor_values: np.ndarray | None = None,
) -> tuple[float, float]:
    """A random interval covering ``fraction`` of ``domain``'s width.

    With ``anchor_values`` the interval is anchored on a value drawn from
    the data, so queries land in populated regions — the behaviour of
    real analyst workloads (and necessary at laptop scale, where a
    domain-uniform 1% range over a skewed column can select near-zero
    rows and make relative error meaningless).
    """
    lo, hi = domain
    if hi <= lo:
        raise InvalidParameterError(f"degenerate domain [{lo}, {hi}]")
    if not 0.0 < fraction <= 1.0:
        raise InvalidParameterError(
            f"range fraction must be in (0, 1], got {fraction}"
        )
    width = fraction * (hi - lo)
    if anchor_values is not None and anchor_values.size > 0:
        anchor = float(anchor_values[rng.integers(0, anchor_values.size)])
        start = anchor - width * rng.random()
        start = min(max(start, lo), hi - width)
    else:
        start = rng.uniform(lo, hi - width)
    return start, start + width


@dataclass
class QueryWorkload:
    """Generated queries plus their provenance."""

    sql: list[str] = field(default_factory=list)
    aggregates: list[str] = field(default_factory=list)
    column_pairs: list[tuple[str, str]] = field(default_factory=list)
    fractions: list[float] = field(default_factory=list)

    def append(
        self, sql: str, aggregate: str, pair: tuple[str, str], fraction: float
    ) -> None:
        self.sql.append(sql)
        self.aggregates.append(aggregate)
        self.column_pairs.append(pair)
        self.fractions.append(fraction)

    def __len__(self) -> int:
        return len(self.sql)

    def __iter__(self):
        return iter(self.sql)


def generate_range_queries(
    table: Table,
    column_pairs: list[tuple[str, str]],
    n_per_aggregate: int,
    aggregates: tuple[str, ...] = DEFAULT_AGGREGATES,
    range_fraction: float | list[float] = 0.01,
    group_by: str | None = None,
    percentile_p: float = 0.5,
    seed: int | None = 97,
    anchor: str = "domain",
) -> QueryWorkload:
    """Random SELECT-AF-FROM-WHERE(-GROUP BY) queries over column pairs.

    For each column pair and aggregate, ``n_per_aggregate`` queries are
    generated; the range predicate targets the pair's x column and covers
    ``range_fraction`` of its observed domain (a list cycles through
    fractions query by query, as the paper's sweeps do).  ``anchor`` is
    ``"domain"`` (uniform over the domain) or ``"data"`` (ranges anchored
    on sampled data values; see :func:`random_range`).
    """
    if n_per_aggregate <= 0:
        raise InvalidParameterError(
            f"n_per_aggregate must be positive, got {n_per_aggregate}"
        )
    if anchor not in ("domain", "data"):
        raise InvalidParameterError(
            f"anchor must be 'domain' or 'data', got {anchor!r}"
        )
    rng = np.random.default_rng(seed)
    fractions = (
        list(range_fraction)
        if isinstance(range_fraction, (list, tuple))
        else [range_fraction]
    )
    workload = QueryWorkload()
    for x_column, y_column in column_pairs:
        domain = table.column_range(x_column)
        anchors = table[x_column] if anchor == "data" else None
        for aggregate in aggregates:
            for i in range(n_per_aggregate):
                fraction = fractions[i % len(fractions)]
                lb, ub = random_range(domain, fraction, rng, anchor_values=anchors)
                # PERCENTILE targets the predicate column itself (HIVE
                # syntax); every other aggregate targets the y column.
                target = x_column if aggregate == "PERCENTILE" else y_column
                sql = _render(
                    aggregate,
                    target,
                    table.name,
                    x_column,
                    lb,
                    ub,
                    group_by=group_by,
                    percentile_p=percentile_p,
                )
                workload.append(sql, aggregate, (x_column, y_column), fraction)
    return workload


def _render(
    aggregate: str,
    target_column: str,
    table_name: str,
    x_column: str,
    lb: float,
    ub: float,
    group_by: str | None,
    percentile_p: float,
) -> str:
    if aggregate == "PERCENTILE":
        call = f"PERCENTILE({target_column}, {percentile_p})"
    else:
        call = f"{aggregate}({target_column})"
    select = f"{group_by}, {call}" if group_by else call
    sql = (
        f"SELECT {select} FROM {table_name} "
        f"WHERE {x_column} BETWEEN {lb!r} AND {ub!r}"
    )
    if group_by:
        sql += f" GROUP BY {group_by}"
    return sql + ";"


def generate_join_queries(
    left_table: str,
    right_table: str,
    left_key: str,
    right_key: str,
    x_column: str,
    x_domain: tuple[float, float],
    y_columns: list[str],
    n_per_aggregate: int,
    aggregates: tuple[str, ...] = DEFAULT_AGGREGATES,
    range_fraction: float = 0.1,
    group_by: str | None = None,
    seed: int | None = 101,
) -> QueryWorkload:
    """Random join queries à la paper §4.8 (store_sales ⋈ store)."""
    rng = np.random.default_rng(seed)
    workload = QueryWorkload()
    for y_column in y_columns:
        for aggregate in aggregates:
            for _ in range(n_per_aggregate):
                lb, ub = random_range(x_domain, range_fraction, rng)
                call = f"{aggregate}({y_column})"
                select = f"{group_by}, {call}" if group_by else call
                sql = (
                    f"SELECT {select} FROM {left_table} "
                    f"JOIN {right_table} ON {left_key} = {right_key} "
                    f"WHERE {x_column} BETWEEN {lb!r} AND {ub!r}"
                )
                if group_by:
                    sql += f" GROUP BY {group_by}"
                workload.append(
                    sql + ";", aggregate, (x_column, y_column), range_fraction
                )
    return workload
