"""Zipf-distributed join tables (paper Appendix C).

The appendix stress-tests join accuracy with two tables ``A(x, y)`` and
``B(z, y)`` whose join attribute ``y`` follows a Zipf distribution
``p(k) = k^(-s) / ζ(s)`` with ``s = 2`` — plus a *non-skewed* region
where keys are uniform — and shows that sample-then-join engines
collapse on the skewed region while DBEst does not.
"""

from __future__ import annotations

import numpy as np
from scipy.special import zeta

from repro.errors import InvalidParameterError
from repro.storage.table import Table


def zipf_probabilities(n_keys: int, s: float = 2.0) -> np.ndarray:
    """``p(k) = k^-s / ζ(s)`` over ranks 1..n_keys, renormalised to sum 1."""
    if n_keys <= 0:
        raise InvalidParameterError(f"n_keys must be positive, got {n_keys}")
    if s < 1.0:
        raise InvalidParameterError(f"Zipf parameter must be >= 1, got {s}")
    ranks = np.arange(1, n_keys + 1, dtype=np.float64)
    probabilities = ranks ** (-s) / zeta(s)
    return probabilities / probabilities.sum()


def generate_zipf_join_tables(
    n_dim_rows: int = 1000,
    n_fact_rows: int = 100_000,
    n_skewed_keys: int = 50,
    n_uniform_keys: int = 50,
    s: float = 2.0,
    seed: int | None = 41,
) -> tuple[Table, Table]:
    """Generate the (A, B) pair of Appendix C.

    Join keys 1..``n_skewed_keys`` form the *skewed region* (Zipf with
    parameter ``s``); keys ``n_skewed_keys+1`` .. ``+n_uniform_keys``
    form the *non-skewed region* (uniform).  Table A is the small side
    (one row per key plus measure x); table B is the large side with
    measure z.
    """
    rng = np.random.default_rng(seed)
    n_keys = n_skewed_keys + n_uniform_keys

    # Dimension side: every key appears, with a per-key measure.
    dim_keys = np.arange(1, n_keys + 1, dtype=np.int64)
    dim_keys = np.repeat(dim_keys, max(1, n_dim_rows // n_keys))
    table_a = Table(
        {
            "y": dim_keys,
            "x": rng.normal(50.0, 10.0, size=dim_keys.shape[0]),
        },
        name="zipf_a",
    )

    # Fact side: half the rows from the skewed region, half uniform.
    n_skewed_rows = n_fact_rows // 2
    n_uniform_rows = n_fact_rows - n_skewed_rows
    skewed = rng.choice(
        np.arange(1, n_skewed_keys + 1),
        size=n_skewed_rows,
        p=zipf_probabilities(n_skewed_keys, s=s),
    )
    uniform = rng.integers(
        n_skewed_keys + 1, n_keys + 1, size=n_uniform_rows
    )
    fact_keys = np.concatenate([skewed, uniform]).astype(np.int64)
    rng.shuffle(fact_keys)
    # Measure z depends mildly on the key so join errors show up in SUM/AVG.
    z = 100.0 + 0.5 * fact_keys + rng.normal(0.0, 8.0, size=n_fact_rows)
    table_b = Table({"y": fact_keys, "z": z}, name="zipf_b")
    return table_a, table_b


def skewed_key_range(n_skewed_keys: int = 50) -> tuple[int, int]:
    """Key interval of the skewed region."""
    return 1, n_skewed_keys


def uniform_key_range(
    n_skewed_keys: int = 50, n_uniform_keys: int = 50
) -> tuple[int, int]:
    """Key interval of the non-skewed region."""
    return n_skewed_keys + 1, n_skewed_keys + n_uniform_keys
