"""Synthetic Beijing PM2.5 dataset.

The UCI Beijing PM2.5 dataset (Liang et al. 2015; 43 824 hourly records,
scaled up by the paper) predicts the PM2.5 pollution level from weather
covariates: Dew Point (DEWP), Temperature (TEMP), Pressure (PRES) and
Cumulated wind speed (IWS).  The generator reproduces the well-known
dependence structure: pollution is heavy-tailed (log-normal), rises with
humidity (dew point close to temperature), and is strongly dispersed by
wind; temperature is seasonal; pressure is anti-correlated with
temperature.  Marginals are clipped to the UCI ranges.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.storage.table import Table

BEIJING_COLUMN_PAIRS: list[tuple[str, str]] = [
    ("DEWP", "PM25"),
    ("PRES", "PM25"),
    ("TEMP", "PM25"),
    ("IWS", "PM25"),
]

_RANGES = {
    "DEWP": (-40.0, 28.0),
    "TEMP": (-19.0, 42.0),
    "PRES": (991.0, 1046.0),
    "IWS": (0.45, 585.6),
    "PM25": (0.0, 994.0),
}


def generate_beijing(n_rows: int, seed: int | None = 31) -> Table:
    """Generate ``n_rows`` of Beijing-PM2.5-shaped air-quality data."""
    if n_rows <= 0:
        raise InvalidParameterError(f"n_rows must be positive, got {n_rows}")
    rng = np.random.default_rng(seed)

    # Hour-of-year phase drives the seasonal cycle.
    phase = rng.uniform(0.0, 2.0 * np.pi, size=n_rows)
    temperature = 12.0 + 15.0 * np.sin(phase) + rng.normal(0.0, 4.0, size=n_rows)
    temperature = np.clip(temperature, *_RANGES["TEMP"])

    # Dew point trails temperature by a humidity-dependent spread.
    spread = rng.gamma(shape=2.0, scale=4.0, size=n_rows)
    dew_point = np.clip(temperature - spread, *_RANGES["DEWP"])

    pressure = np.clip(
        1016.0 - 0.45 * temperature + rng.normal(0.0, 5.0, size=n_rows),
        *_RANGES["PRES"],
    )

    # Cumulated wind speed: heavy-tailed, mostly calm.
    wind = np.clip(rng.gamma(shape=0.9, scale=28.0, size=n_rows) + 0.45,
                   *_RANGES["IWS"])

    # PM2.5: log-normal, up with humidity (small temp-dewp spread) and
    # pressure, strongly down with wind.
    log_pm = (
        4.35
        + 0.045 * (dew_point - temperature)  # negative spread -> larger
        - 0.012 * temperature
        + 0.010 * (pressure - 1016.0)
        - 0.45 * np.log1p(wind / 10.0)
        + rng.normal(0.0, 0.55, size=n_rows)
    )
    pm25 = np.clip(np.exp(log_pm), *_RANGES["PM25"])

    return Table(
        {
            "DEWP": dew_point,
            "TEMP": temperature,
            "PRES": pressure,
            "IWS": wind,
            "PM25": pm25,
        },
        name="beijing",
    )
