"""Workload generators for the paper's evaluation datasets.

The paper evaluates on TPC-DS (scale factors 40–1000), the UCI Combined
Cycle Power Plant dataset, the Beijing PM2.5 dataset, and a synthetic
Zipf-join microbenchmark.  Neither the TPC-DS dbgen tool nor the UCI
CSVs are available offline, so each generator synthesises data matching
the published schemas, column ranges, and dependence structures (see
DESIGN.md "Substitutions") at laptop scale.
"""

from repro.workloads.beijing import BEIJING_COLUMN_PAIRS, generate_beijing
from repro.workloads.ccpp import CCPP_COLUMN_PAIRS, generate_ccpp
from repro.workloads.queries import (
    QueryWorkload,
    generate_range_queries,
    random_range,
)
from repro.workloads.tpcds import (
    TPCDS_COLUMN_PAIRS,
    generate_store,
    generate_store_sales,
)
from repro.workloads.zipf import generate_zipf_join_tables, zipf_probabilities

__all__ = [
    "BEIJING_COLUMN_PAIRS",
    "CCPP_COLUMN_PAIRS",
    "QueryWorkload",
    "TPCDS_COLUMN_PAIRS",
    "generate_beijing",
    "generate_ccpp",
    "generate_range_queries",
    "generate_store",
    "generate_store_sales",
    "generate_zipf_join_tables",
    "random_range",
    "zipf_probabilities",
]
