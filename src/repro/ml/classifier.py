"""Decision-tree classifier (gini impurity, histogram splits).

The paper trains an "XGBoost classifier" to learn which constituent
regressor answers a given range predicate best (§3 "Regression Model
Selection").  The feature space there is tiny (lb, ub of the range), so a
single gini decision tree is an adequate stand-in; it is also reusable as
a general small classifier in tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelTrainingError
from repro.ml._histogram import BinnedFeatures


class DecisionTreeClassifier:
    """Multi-class decision tree using gini impurity and binned splits."""

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 2,
        max_bins: int = 128,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_bins = max_bins
        self.classes_: np.ndarray | None = None
        self._feature: np.ndarray | None = None
        self._threshold: np.ndarray | None = None
        self._left: np.ndarray | None = None
        self._right: np.ndarray | None = None
        self._label: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Fit to (n, d) features and arbitrary hashable labels."""
        y = np.asarray(y)
        if y.shape[0] == 0:
            raise ModelTrainingError("cannot fit a classifier to zero rows")
        self.classes_, encoded = np.unique(y, return_inverse=True)
        binned = BinnedFeatures(X, max_bins=self.max_bins)
        if encoded.shape[0] != binned.n_rows:
            raise ModelTrainingError(
                f"X has {binned.n_rows} rows but y has {encoded.shape[0]}"
            )

        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        label: list[int] = []

        def add_node() -> int:
            feature.append(-1)
            threshold.append(0.0)
            left.append(-1)
            right.append(-1)
            label.append(0)
            return len(feature) - 1

        n_classes = self.classes_.shape[0]

        def grow(node: int, indices: np.ndarray, depth: int) -> None:
            node_y = encoded[indices]
            counts = np.bincount(node_y, minlength=n_classes)
            label[node] = int(np.argmax(counts))
            if depth >= self.max_depth or indices.shape[0] < 2 * self.min_samples_leaf:
                return
            if counts.max() == indices.shape[0]:  # pure node
                return
            split = self._best_split(binned, node_y, indices, n_classes)
            if split is None:
                return
            feat, split_bin = split
            go_left = binned.codes[indices, feat] <= split_bin
            feature[node] = feat
            threshold[node] = binned.threshold(feat, split_bin)
            lnode = add_node()
            rnode = add_node()
            left[node] = lnode
            right[node] = rnode
            grow(lnode, indices[go_left], depth + 1)
            grow(rnode, indices[~go_left], depth + 1)

        root = add_node()
        grow(root, np.arange(binned.n_rows, dtype=np.intp), 0)

        self._feature = np.asarray(feature, dtype=np.int32)
        self._threshold = np.asarray(threshold, dtype=np.float64)
        self._left = np.asarray(left, dtype=np.int32)
        self._right = np.asarray(right, dtype=np.int32)
        self._label = np.asarray(label, dtype=np.int64)
        return self

    def _best_split(
        self,
        binned: BinnedFeatures,
        node_y: np.ndarray,
        indices: np.ndarray,
        n_classes: int,
    ) -> tuple[int, int] | None:
        """Best (feature, split_bin) by gini reduction, or None."""
        n = indices.shape[0]
        best_score = -np.inf
        best: tuple[int, int] | None = None
        for feat in range(binned.n_features):
            n_bins = binned.n_bins(feat)
            if n_bins < 2:
                continue
            codes = binned.codes[indices, feat]
            # Joint histogram of (bin, class): rows bins, cols classes.
            joint = np.bincount(
                codes * n_classes + node_y, minlength=n_bins * n_classes
            ).reshape(n_bins, n_classes)
            left_counts = np.cumsum(joint, axis=0)[:-1]  # (n_bins-1, C)
            left_totals = left_counts.sum(axis=1)
            right_counts = joint.sum(axis=0)[None, :] - left_counts
            right_totals = n - left_totals
            valid = (left_totals >= self.min_samples_leaf) & (
                right_totals >= self.min_samples_leaf
            )
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                # Weighted gini = sum_side total*(1 - sum p^2); minimising it
                # is maximising sum_side (sum counts^2)/total.
                score = np.where(
                    valid,
                    (left_counts**2).sum(axis=1) / left_totals
                    + (right_counts**2).sum(axis=1) / right_totals,
                    -np.inf,
                )
            split_bin = int(np.argmax(score))
            if score[split_bin] > best_score:
                best_score = float(score[split_bin])
                best = (feat, split_bin)
        return best

    @property
    def is_fitted(self) -> bool:
        return self._feature is not None

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels for (n, d) inputs."""
        if self._feature is None:
            raise ModelTrainingError("classifier used before fit()")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        position = np.zeros(X.shape[0], dtype=np.int32)
        for _ in range(self.max_depth + 1):
            feat = self._feature[position]
            internal = feat >= 0
            if not internal.any():
                break
            rows = np.flatnonzero(internal)
            thresholds = self._threshold[position[rows]]
            go_left = X[rows, feat[rows]] <= thresholds
            position[rows] = np.where(
                go_left, self._left[position[rows]], self._right[position[rows]]
            )
        return self.classes_[self._label[position]]
