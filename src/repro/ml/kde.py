"""Gaussian kernel density estimation.

The paper's density estimator is ``sklearn.neighbors.KernelDensity``; this
module is a from-scratch replacement with two properties that matter for
AQP workloads:

* an **analytic CDF**: for a Gaussian mixture the integral over ``[lb, ub]``
  is a difference of normal CDFs, so plain density integrals (COUNT) need
  no quadrature at all;
* a **binned fast path**: above a size threshold the training points are
  compressed into a weighted histogram (the standard "binned KDE"
  approximation), making both fitting and evaluation O(bins) instead of
  O(n) with negligible accuracy loss for the smooth columns AQP targets.
"""

from __future__ import annotations

import math
from typing import NamedTuple

import numpy as np
from scipy.special import ndtr  # standard normal CDF, vectorised

from repro.errors import InvalidParameterError, ModelTrainingError

_SQRT_2PI = math.sqrt(2.0 * math.pi)


class MixtureState(NamedTuple):
    """Flat, immutable view of a fitted 1-D KDE for batch evaluators.

    ``centres`` / ``weights`` define the Gaussian mixture, ``h`` its
    common bandwidth.  ``support`` is the interval outside which the
    density is treated as zero (``reflect``) or negligible.  When
    ``point_mass`` is not None the column was constant and the whole
    distribution is a unit mass at that value.
    """

    centres: np.ndarray
    weights: np.ndarray
    h: float
    support: tuple[float, float]
    reflect: bool
    point_mass: float | None
    n_train: int


class ProductMixtureState(NamedTuple):
    """Flat view of a fitted product-kernel KDE for batch evaluators.

    The d-dimensional analogue of :class:`MixtureState`: ``centres`` is
    ``(m, d)``, ``h`` the per-dimension bandwidth vector, and
    ``domain_low`` / ``domain_high`` the observed domain box whose raw
    mixture mass ``norm`` renormalises every public density/integral.
    """

    centres: np.ndarray
    weights: np.ndarray
    h: np.ndarray
    domain_low: np.ndarray
    domain_high: np.ndarray
    norm: float
    n_train: int


def scott_bandwidth(x: np.ndarray) -> float:
    """Scott's rule bandwidth: ``sigma * n^(-1/5)`` for 1-D data."""
    n = x.shape[0]
    sigma = float(np.std(x))
    if sigma == 0.0:
        sigma = max(abs(float(x[0])), 1.0) * 1e-3
    return sigma * n ** (-1.0 / 5.0)


def silverman_bandwidth(x: np.ndarray) -> float:
    """Silverman's rule of thumb, robust to outliers via the IQR."""
    n = x.shape[0]
    sigma = float(np.std(x))
    q75, q25 = np.percentile(x, [75.0, 25.0])
    iqr = float(q75 - q25)
    spread = min(sigma, iqr / 1.349) if iqr > 0 else sigma
    if spread == 0.0:
        spread = max(abs(float(x[0])), 1.0) * 1e-3
    return 0.9 * spread * n ** (-1.0 / 5.0)


_BANDWIDTH_RULES = {"scott": scott_bandwidth, "silverman": silverman_bandwidth}


class KernelDensityEstimator:
    """1-D Gaussian KDE with analytic CDF and optional binned compression.

    Parameters
    ----------
    bandwidth:
        ``"scott"`` (default), ``"silverman"``, or a positive float.
    binned:
        Compress the training data into ``n_bins`` weighted centres when
        the sample exceeds ``bin_threshold`` points.  The PDF/CDF are then
        mixtures over bin centres with bin-count weights.
    n_bins, bin_threshold:
        Histogram resolution and the sample size above which binning kicks
        in.
    """

    def __init__(
        self,
        bandwidth: str | float = "scott",
        binned: bool = True,
        n_bins: int = 2048,
        bin_threshold: int = 5000,
        boundary: str = "reflect",
    ) -> None:
        if isinstance(bandwidth, str) and bandwidth not in _BANDWIDTH_RULES:
            raise InvalidParameterError(
                f"unknown bandwidth rule {bandwidth!r}; "
                f"expected one of {sorted(_BANDWIDTH_RULES)} or a float"
            )
        if not isinstance(bandwidth, str) and bandwidth <= 0:
            raise InvalidParameterError(f"bandwidth must be positive, got {bandwidth}")
        if n_bins < 2:
            raise InvalidParameterError(f"n_bins must be >= 2, got {n_bins}")
        if boundary not in ("reflect", "none"):
            raise InvalidParameterError(
                f"boundary must be 'reflect' or 'none', got {boundary!r}"
            )
        self.bandwidth = bandwidth
        self.binned = binned
        self.n_bins = n_bins
        self.bin_threshold = bin_threshold
        self.boundary = boundary
        self._centres: np.ndarray | None = None
        self._weights: np.ndarray | None = None
        self._h: float | None = None
        self._support: tuple[float, float] | None = None
        self.n_train: int = 0

    # -- fitting -------------------------------------------------------

    def fit(self, x: np.ndarray) -> "KernelDensityEstimator":
        """Fit the estimator to a 1-D array of training points."""
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size == 0:
            raise ModelTrainingError("cannot fit a KDE to an empty sample")
        if not np.all(np.isfinite(x)):
            raise ModelTrainingError("KDE training data contains non-finite values")
        self.n_train = int(x.size)

        if isinstance(self.bandwidth, str):
            self._h = _BANDWIDTH_RULES[self.bandwidth](x)
        else:
            self._h = float(self.bandwidth)

        if self.binned and x.size > self.bin_threshold:
            counts, edges = np.histogram(x, bins=self.n_bins)
            centres = 0.5 * (edges[:-1] + edges[1:])
            keep = counts > 0
            self._centres = centres[keep]
            self._weights = counts[keep].astype(np.float64) / x.size
        else:
            self._centres = x.copy()
            self._weights = np.full(x.size, 1.0 / x.size)

        lo, hi = float(x.min()), float(x.max())
        degenerate = (hi - lo) <= 1e-12 * max(1.0, abs(lo), abs(hi))
        # Constant columns (e.g. a per-group dimension attribute) are a
        # point mass: any range containing the point holds all the mass.
        self._point_mass = lo if degenerate else None
        self._reflect = self.boundary == "reflect" and not degenerate
        if self._reflect:
            # Kernels are reflected at the data boundaries, so the density
            # is supported exactly on the observed domain — this removes
            # the boundary bias that would otherwise leak ~h of mass out
            # of every range query touching the domain edges (and bias
            # COUNT low).
            self._support = (lo, hi)
        else:
            # Constant columns (e.g. a per-group dimension attribute) have
            # no usable reflection boundary; keep the padded mixture
            # support so ranges containing the point still carry mass 1.
            pad = 4.0 * self._h
            self._support = (lo - pad, hi + pad)
        return self

    @classmethod
    def from_fit_state(
        cls,
        centres: np.ndarray,
        weights: np.ndarray,
        h: float,
        support: tuple[float, float],
        reflect: bool,
        point_mass: float | None,
        n_train: int,
        bandwidth: str | float = "scott",
        binned: bool = True,
        n_bins: int = 2048,
        bin_threshold: int = 5000,
    ) -> "KernelDensityEstimator":
        """Construct a fitted estimator from precomputed mixture state.

        The batched trainer (:mod:`repro.core.batched_train`) computes
        every group's centres, weights and bandwidth in shared vectorised
        passes and assembles estimators through this constructor; the
        result is indistinguishable from :meth:`fit` on the same data.
        Constructor arguments are validated exactly as in ``__init__``;
        the state arrays are adopted as-is (pass copies if the caller
        keeps mutable references).
        """
        boundary = "reflect" if reflect or point_mass is not None else "none"
        est = cls(
            bandwidth=bandwidth,
            binned=binned,
            n_bins=n_bins,
            bin_threshold=bin_threshold,
            boundary=boundary,
        )
        est._centres = np.asarray(centres, dtype=np.float64)
        est._weights = np.asarray(weights, dtype=np.float64)
        est._h = float(h)
        est._support = (float(support[0]), float(support[1]))
        est._reflect = bool(reflect)
        est._point_mass = None if point_mass is None else float(point_mass)
        est.n_train = int(n_train)
        return est

    @property
    def is_fitted(self) -> bool:
        return self._centres is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ModelTrainingError("KDE used before fit()")

    @property
    def h(self) -> float:
        """Fitted bandwidth."""
        self._require_fitted()
        return float(self._h)

    @property
    def support(self) -> tuple[float, float]:
        """Interval outside which the density is numerically negligible."""
        self._require_fitted()
        return self._support

    # -- evaluation ------------------------------------------------------

    def _mixture_pdf(self, x: np.ndarray) -> np.ndarray:
        """Unreflected Gaussian-mixture density (chunked over centres)."""
        out = np.zeros_like(x)
        h = self._h
        # Chunk over centres to bound the (points x centres) matrix size.
        chunk = max(1, int(4_000_000 // max(x.size, 1)))
        for start in range(0, self._centres.size, chunk):
            c = self._centres[start : start + chunk]
            w = self._weights[start : start + chunk]
            z = (x[:, None] - c[None, :]) / h
            out += np.exp(-0.5 * z * z) @ w
        return out / (h * _SQRT_2PI)

    def _mixture_cdf(self, x: np.ndarray) -> np.ndarray:
        """Unreflected Gaussian-mixture CDF (chunked over centres)."""
        out = np.zeros_like(x)
        h = self._h
        chunk = max(1, int(4_000_000 // max(x.size, 1)))
        for start in range(0, self._centres.size, chunk):
            c = self._centres[start : start + chunk]
            w = self._weights[start : start + chunk]
            out += ndtr((x[:, None] - c[None, :]) / h) @ w
        return out

    def _reflection_active(self) -> bool:
        return getattr(self, "_reflect", False)

    def pdf(self, x: np.ndarray | float) -> np.ndarray:
        """Density at the given points.

        With boundary reflection (the default) kernels are mirrored at the
        data minimum and maximum, so the density is zero outside the
        observed domain and range queries at the edges see no mass leak.
        """
        self._require_fitted()
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        if not self._reflection_active():
            return self._mixture_pdf(x)
        lo, hi = self._support
        inside = (x >= lo) & (x <= hi)
        out = np.zeros_like(x)
        xi = x[inside]
        out[inside] = (
            self._mixture_pdf(xi)
            + self._mixture_pdf(2.0 * lo - xi)
            + self._mixture_pdf(2.0 * hi - xi)
        )
        return out

    def cdf(self, x: np.ndarray | float) -> np.ndarray:
        """Cumulative distribution at the given points (analytic)."""
        self._require_fitted()
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        if getattr(self, "_point_mass", None) is not None:
            return np.where(x >= self._point_mass, 1.0, 0.0)
        if not self._reflection_active():
            return self._mixture_cdf(x)
        lo, hi = self._support
        t = np.clip(x, lo, hi)
        # Integrating the reflected density from lo to t:
        #   [F(t) - F(lo)] + [F(lo) - F(2lo - t)] + [F(2hi - lo) - F(2hi - t)]
        return (
            self._mixture_cdf(t)
            - self._mixture_cdf(2.0 * lo - t)
            + self._mixture_cdf(np.full_like(t, 2.0 * hi - lo))
            - self._mixture_cdf(2.0 * hi - t)
        )

    def integrate(self, lb: float, ub: float) -> float:
        """``∫_lb^ub D(x) dx`` — exact via the Gaussian-mixture CDF."""
        if ub < lb:
            raise InvalidParameterError(f"integration bounds reversed: [{lb}, {ub}]")
        self._require_fitted()
        if getattr(self, "_point_mass", None) is not None:
            # BETWEEN is inclusive on both ends, so a range touching the
            # point mass captures all of it.
            return 1.0 if lb <= self._point_mass <= ub else 0.0
        values = self.cdf(np.asarray([lb, ub]))
        return float(values[1] - values[0])

    def integrate_many(self, lbs: np.ndarray, ubs: np.ndarray) -> np.ndarray:
        """``∫ D(x) dx`` over many intervals in one vectorised pass.

        Evaluates the analytic CDF once at all lower and upper bounds
        instead of making one :meth:`integrate` round-trip per interval —
        the building block batched group-by evaluation is made of.
        """
        self._require_fitted()
        lbs = np.atleast_1d(np.asarray(lbs, dtype=np.float64))
        ubs = np.atleast_1d(np.asarray(ubs, dtype=np.float64))
        if lbs.shape != ubs.shape:
            raise InvalidParameterError(
                f"interval bounds differ in shape: {lbs.shape} vs {ubs.shape}"
            )
        if np.any(ubs < lbs):
            raise InvalidParameterError("integrate_many got a reversed interval")
        if getattr(self, "_point_mass", None) is not None:
            inside = (lbs <= self._point_mass) & (self._point_mass <= ubs)
            return inside.astype(np.float64)
        bounds = np.concatenate([lbs, ubs])
        values = self.cdf(bounds)
        return values[lbs.size:] - values[: lbs.size]

    def export_mixture(self) -> MixtureState:
        """Flat mixture parameters for stacking into batched evaluators.

        The arrays are the estimator's own (not copies); treat them as
        read-only.
        """
        self._require_fitted()
        return MixtureState(
            centres=self._centres,
            weights=self._weights,
            h=float(self._h),
            support=self._support,
            reflect=self._reflection_active(),
            point_mass=getattr(self, "_point_mass", None),
            n_train=self.n_train,
        )

    def sample(self, k: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``k`` points from the fitted mixture (for synthetic data/tests)."""
        self._require_fitted()
        rng = rng or np.random.default_rng()
        idx = rng.choice(self._centres.size, size=k, p=self._weights)
        draws = self._centres[idx] + rng.normal(0.0, self._h, size=k)
        if self._reflection_active():
            lo, hi = self._support
            for _ in range(4):  # repeated reflection handles deep overshoots
                below = draws < lo
                draws[below] = 2.0 * lo - draws[below]
                above = draws > hi
                draws[above] = 2.0 * hi - draws[above]
            draws = np.clip(draws, lo, hi)
        return draws


class MultivariateKDE:
    """Product-kernel Gaussian KDE in d dimensions.

    Supports the multivariate selection operators of paper §2.3: rectangle
    integrals factorise per training point into products of 1-D normal CDF
    differences, so :meth:`integrate_box` stays analytic in any dimension.
    A d-dimensional histogram compresses large samples, mirroring the 1-D
    fast path (bins per dimension shrink as d grows).
    """

    def __init__(
        self,
        bandwidth: str = "scott",
        binned: bool = True,
        bins_per_dim: int = 64,
        bin_threshold: int = 5000,
    ) -> None:
        if bandwidth not in _BANDWIDTH_RULES:
            raise InvalidParameterError(
                f"unknown bandwidth rule {bandwidth!r}; "
                f"expected one of {sorted(_BANDWIDTH_RULES)}"
            )
        if bins_per_dim < 2:
            raise InvalidParameterError(
                f"bins_per_dim must be >= 2, got {bins_per_dim}"
            )
        self.bandwidth = bandwidth
        self.binned = binned
        self.bins_per_dim = bins_per_dim
        self.bin_threshold = bin_threshold
        self._centres: np.ndarray | None = None  # (m, d)
        self._weights: np.ndarray | None = None  # (m,)
        self._h: np.ndarray | None = None  # (d,)
        self.n_train = 0
        self.n_dims = 0

    def fit(self, x: np.ndarray) -> "MultivariateKDE":
        """Fit to an (n, d) array of training points."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] == 0:
            raise ModelTrainingError(
                f"multivariate KDE expects a non-empty (n, d) array, got {x.shape}"
            )
        n, d = x.shape
        self.n_train, self.n_dims = n, d
        rule = _BANDWIDTH_RULES[self.bandwidth]
        h = np.empty(d)
        for j in range(d):
            col = x[:, j]
            if col.min() == col.max():
                # Constant columns: np.std can round to a tiny nonzero
                # value depending on summation order, so detect
                # degeneracy from the range and apply the rules' own
                # degenerate-spread fallback deterministically.
                spread = max(abs(float(col[0])), 1.0) * 1e-3
                factor = 0.9 if self.bandwidth == "silverman" else 1.0
                h[j] = factor * spread * n ** (-1.0 / 5.0)
            else:
                h[j] = rule(col)
        self._h = np.maximum(h, 1e-12)

        if self.binned and n > self.bin_threshold:
            counts, edges = np.histogramdd(x, bins=self.bins_per_dim)
            centres_1d = [0.5 * (e[:-1] + e[1:]) for e in edges]
            mesh = np.meshgrid(*centres_1d, indexing="ij")
            flat_counts = counts.ravel()
            keep = flat_counts > 0
            self._centres = np.stack([m.ravel()[keep] for m in mesh], axis=1)
            self._weights = flat_counts[keep] / n
        else:
            self._centres = x.copy()
            self._weights = np.full(n, 1.0 / n)

        # Mass the raw mixture puts inside the observed domain box.  All
        # public densities/integrals are renormalised by it, which removes
        # the boundary leak (the d-dimensional analogue of the 1-D
        # reflection correction — reflection itself needs 3^d terms).
        self._domain_low = x.min(axis=0)
        self._domain_high = x.max(axis=0)
        self._norm = max(
            self._raw_box_mass(self._domain_low, self._domain_high), 1e-12
        )
        return self

    @classmethod
    def from_fit_state(
        cls,
        centres: np.ndarray,
        weights: np.ndarray,
        h: np.ndarray,
        domain_low: np.ndarray,
        domain_high: np.ndarray,
        n_train: int,
        bandwidth: str = "scott",
        binned: bool = True,
        bins_per_dim: int = 64,
        bin_threshold: int = 5000,
    ) -> "MultivariateKDE":
        """Construct a fitted estimator from precomputed mixture state.

        The multivariate analogue of
        :meth:`KernelDensityEstimator.from_fit_state`: the batched trainer
        computes every group's centres, weights and per-dimension
        bandwidths in shared vectorised passes and assembles estimators
        here.  The domain normaliser ``_norm`` is recomputed through
        :meth:`_raw_box_mass` — the exact code path :meth:`fit` runs — so
        the result is bit-identical to fitting the same data directly.
        """
        est = cls(
            bandwidth=bandwidth,
            binned=binned,
            bins_per_dim=bins_per_dim,
            bin_threshold=bin_threshold,
        )
        est._centres = np.atleast_2d(np.asarray(centres, dtype=np.float64))
        est._weights = np.asarray(weights, dtype=np.float64)
        est._h = np.asarray(h, dtype=np.float64)
        est.n_train = int(n_train)
        est.n_dims = int(est._centres.shape[1])
        est._domain_low = np.asarray(domain_low, dtype=np.float64)
        est._domain_high = np.asarray(domain_high, dtype=np.float64)
        est._norm = max(
            est._raw_box_mass(est._domain_low, est._domain_high), 1e-12
        )
        return est

    @property
    def is_fitted(self) -> bool:
        return self._centres is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ModelTrainingError("multivariate KDE used before fit()")

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Density at an (m, d) array of points (domain-renormalised)."""
        self._require_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        h = self._h
        norm = float(np.prod(h)) * _SQRT_2PI ** self.n_dims
        out = np.zeros(x.shape[0])
        # The (points, chunk, d) difference tensor holds points*chunk*d
        # elements, so the element budget must be divided by d as well —
        # budgeting on points alone made the temporary d times larger
        # than intended and could exhaust memory for high-d queries.
        chunk = max(
            1, int(2_000_000 // (max(x.shape[0], 1) * max(self.n_dims, 1)))
        )
        for start in range(0, self._centres.shape[0], chunk):
            c = self._centres[start : start + chunk]
            w = self._weights[start : start + chunk]
            z = (x[:, None, :] - c[None, :, :]) / h[None, None, :]
            out += np.exp(-0.5 * np.sum(z * z, axis=2)) @ w
        return out / (norm * self._norm)

    def _raw_box_mass(self, lows: np.ndarray, highs: np.ndarray) -> float:
        h = self._h
        upper = ndtr((highs[None, :] - self._centres) / h[None, :])
        lower = ndtr((lows[None, :] - self._centres) / h[None, :])
        per_point = np.prod(upper - lower, axis=1)
        return float(per_point @ self._weights)

    def integrate_box(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> float:
        """``∫ D(x) dx`` over the axis-aligned box ``[lows, highs]``.

        Analytic (products of 1-D normal CDF differences per training
        point), renormalised so the observed domain box carries mass 1.
        """
        self._require_fitted()
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        if lows.shape != (self.n_dims,) or highs.shape != (self.n_dims,):
            raise InvalidParameterError(
                f"box bounds must each have shape ({self.n_dims},)"
            )
        if np.any(highs < lows):
            raise InvalidParameterError("box has a dimension with high < low")
        lows = np.maximum(lows, self._domain_low)
        highs = np.minimum(highs, self._domain_high)
        if np.any(highs < lows):
            return 0.0
        return self._raw_box_mass(lows, highs) / self._norm

    def export_mixture(self) -> ProductMixtureState:
        """Flat mixture parameters for stacking into batched evaluators.

        The multivariate analogue of
        :meth:`KernelDensityEstimator.export_mixture`.  The arrays are
        the estimator's own (not copies); treat them as read-only.
        """
        self._require_fitted()
        return ProductMixtureState(
            centres=self._centres,
            weights=self._weights,
            h=self._h,
            domain_low=self._domain_low,
            domain_high=self._domain_high,
            norm=float(self._norm),
            n_train=self.n_train,
        )
