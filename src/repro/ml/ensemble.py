"""Ensemble regressor with a learned per-query-range model selector.

Paper §3 ("Regression Model Selection"): DBEst trains several constituent
regressors (GBoost, XGBoost, piecewise-linear), evaluates each on random
range queries over the independent attribute's domain, and trains a
classifier that, given a query's range ``[lb, ub]``, picks the constituent
that answers that region best.  This module reproduces that design.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from functools import partial

import numpy as np

from repro.errors import InvalidParameterError, ModelTrainingError
from repro.ml.classifier import DecisionTreeClassifier
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import PiecewiseLinearRegressor
from repro.ml.xgb import XGBRegressor


def default_constituents() -> dict[str, Callable[[], object]]:
    """The constituent set the paper describes: GBoost + XGBoost (+ PLR).

    Factories are ``functools.partial`` objects so fitted ensembles stay
    picklable (model catalogs and bundles are serialised with pickle).
    """
    return {
        "gboost": partial(
            GradientBoostingRegressor,
            n_estimators=60, learning_rate=0.15, max_depth=4,
        ),
        "xgboost": partial(
            XGBRegressor,
            n_estimators=60, learning_rate=0.15, max_depth=4, reg_lambda=1.0,
        ),
        "plr": partial(PiecewiseLinearRegressor, n_knots=8),
    }


class EnsembleRegressor:
    """Constituent regressors routed by a learned range classifier.

    Parameters
    ----------
    constituents:
        Mapping of name to zero-argument factory producing an estimator
        with ``fit``/``predict``.  Defaults to GBoost + XGBoost + PLR.
    n_eval_queries:
        Number of random range queries used to label training data for
        the selector classifier.
    min_eval_points:
        Ranges that select fewer training points than this are rediscarded
        when building selector labels.
    random_state:
        Seed for query generation.
    """

    def __init__(
        self,
        constituents: Mapping[str, Callable[[], object]] | None = None,
        n_eval_queries: int = 60,
        min_eval_points: int = 5,
        random_state: int | None = None,
    ) -> None:
        factories = (
            default_constituents() if constituents is None else dict(constituents)
        )
        if not factories:
            raise ModelTrainingError("ensemble needs at least one constituent")
        self._factories = factories
        self.n_eval_queries = n_eval_queries
        self.min_eval_points = min_eval_points
        self.random_state = random_state
        self.models_: dict[str, object] = {}
        self.selector_: DecisionTreeClassifier | None = None
        self._default_name: str | None = None
        # Observed feature domain, recorded by every fit path: (lo, hi)
        # for 1-D fits, a tuple of per-dimension (lo, hi) pairs for
        # multivariate fits, None only before fit().
        self._domain: tuple | None = None

    # -- fitting ---------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "EnsembleRegressor":
        """Fit constituents, then train the per-range selector."""
        x = np.asarray(X, dtype=np.float64)
        if x.ndim == 2:
            if x.shape[1] != 1:
                # Multivariate: fall back to a single best constituent.
                return self._fit_multivariate(x, y)
            x = x[:, 0]
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.shape[0]:
            raise ModelTrainingError(
                f"X has {x.shape[0]} rows but y has {y.shape[0]}"
            )

        self.models_ = {name: factory() for name, factory in self._factories.items()}
        for model in self.models_.values():
            model.fit(x, y)
        return self._fit_selector(x, y)

    def _fit_selector(self, x: np.ndarray, y: np.ndarray) -> "EnsembleRegressor":
        """Label random range queries and train the per-range selector.

        Runs on ``self.models_`` already fitted to ``(x, y)`` — the tail
        of the 1-D :meth:`fit` path, split out so
        :meth:`from_fitted_constituents` can reuse it verbatim.
        """
        lo, hi = float(x.min()), float(x.max())
        self._domain = (lo, hi)
        rng = np.random.default_rng(self.random_state)

        features: list[list[float]] = []
        labels: list[str] = []
        global_scores = {name: 0.0 for name in self.models_}
        for _ in range(self.n_eval_queries):
            a, b = np.sort(rng.uniform(lo, hi, size=2))
            in_range = (x >= a) & (x <= b)
            if int(in_range.sum()) < self.min_eval_points:
                continue
            truth = float(y[in_range].mean())
            xs = x[in_range]
            best_name, best_err = None, np.inf
            for name, model in self.models_.items():
                estimate = float(np.mean(model.predict(xs)))
                err = abs(estimate - truth)
                global_scores[name] += err
                if err < best_err:
                    best_err, best_name = err, name
            features.append([a, b])
            labels.append(best_name)

        self._default_name = min(global_scores, key=global_scores.get)
        if len(set(labels)) >= 2:
            self.selector_ = DecisionTreeClassifier(max_depth=4, min_samples_leaf=2)
            self.selector_.fit(np.asarray(features), np.asarray(labels))
        else:
            self.selector_ = None
        return self

    def _fit_multivariate(self, X: np.ndarray, y: np.ndarray) -> "EnsembleRegressor":
        """d>1 features: fit tree constituents only, keep the global best.

        Records the same fitted invariants as the 1-D path — the observed
        feature ``_domain`` (per-dimension bounds) and ``_default_name`` —
        so export and introspection code never has to special-case
        multivariate ensembles, and validates the row counts with the
        same error the 1-D path raises.
        """
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.shape[0] != y.shape[0]:
            raise ModelTrainingError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]}"
            )
        self.models_ = {}
        for name, factory in self._factories.items():
            model = factory()
            try:
                model.fit(X, y)
            except ModelTrainingError:
                continue  # e.g. PLR rejects multivariate input
            self.models_[name] = model
        return self._finish_multivariate(X, y)

    def _finish_multivariate(
        self, X: np.ndarray, y: np.ndarray
    ) -> "EnsembleRegressor":
        """Pick the global-best constituent and record multivariate domain.

        The tail of :meth:`_fit_multivariate`, run on ``self.models_``
        already fitted to ``(X, y)``; split out so
        :meth:`from_fitted_constituents` can reuse it verbatim.
        """
        if not self.models_:
            raise ModelTrainingError("no constituent accepted multivariate input")
        errors = {
            name: float(np.mean((model.predict(X) - y) ** 2))
            for name, model in self.models_.items()
        }
        self._default_name = min(errors, key=errors.get)
        self.selector_ = None
        self._domain = tuple(
            (float(X[:, j].min()), float(X[:, j].max()))
            for j in range(X.shape[1])
        )
        return self

    @classmethod
    def from_fitted_constituents(
        cls,
        models: Mapping[str, object],
        X: np.ndarray,
        y: np.ndarray,
        *,
        constituents: Mapping[str, Callable[[], object]] | None = None,
        n_eval_queries: int = 60,
        min_eval_points: int = 5,
        random_state: int | None = None,
    ) -> "EnsembleRegressor":
        """An ensemble from constituents fitted elsewhere on ``(X, y)``.

        The batched forest trainer fits each group's tree/booster
        constituents through the shared level-synchronous kernel and the
        PLR constituent per group; this installs them (in the same order
        :meth:`fit` would create them) and runs the identical selector /
        best-constituent stage, so the result is indistinguishable from a
        scalar :meth:`fit` on the same rows.
        """
        ens = cls(
            constituents=constituents,
            n_eval_queries=n_eval_queries,
            min_eval_points=min_eval_points,
            random_state=random_state,
        )
        x = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        ens.models_ = dict(models)
        if x.ndim == 2:
            if x.shape[1] != 1:
                return ens._finish_multivariate(x, y)
            x = x[:, 0]
        return ens._fit_selector(x, y)

    # -- prediction --------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return bool(self.models_)

    def select(self, lb: float | None = None, ub: float | None = None) -> str:
        """Name of the constituent to use for the query range [lb, ub]."""
        if not self.models_:
            raise ModelTrainingError("ensemble used before fit()")
        if self.selector_ is None or lb is None or ub is None:
            return self._default_name
        label = self.selector_.predict(np.asarray([[lb, ub]]))[0]
        return str(label)

    def predict(
        self,
        X: np.ndarray,
        lb: float | None = None,
        ub: float | None = None,
    ) -> np.ndarray:
        """Predict with the constituent chosen for the given query range."""
        name = self.select(lb, ub)
        return self.models_[name].predict(X)

    def predict_many(
        self,
        grids: list[np.ndarray],
        bounds: list[tuple[float | None, float | None]] | None = None,
    ) -> list[np.ndarray]:
        """Predict over many (grid, query-range) pairs in batched passes.

        Each grid is routed through :meth:`select` with its own ``(lb,
        ub)`` bounds — exactly as per-grid :meth:`predict` calls would be
        — but grids landing on the same constituent are evaluated in one
        concatenated pass (constituents predict point-wise, so values are
        identical to per-grid calls).
        """
        if bounds is None:
            bounds = [(None, None)] * len(grids)
        if len(bounds) != len(grids):
            raise InvalidParameterError(
                f"{len(grids)} grids but {len(bounds)} bounds"
            )
        names = [self.select(lb, ub) for lb, ub in bounds]
        out: list[np.ndarray | None] = [None] * len(grids)
        for name in set(names):
            positions = [i for i, n in enumerate(names) if n == name]
            model = self.models_[name]
            chosen = [grids[i] for i in positions]
            if hasattr(model, "predict_many"):
                results = model.predict_many(chosen)
            else:
                flat = np.concatenate(
                    [np.asarray(g, dtype=np.float64) for g in chosen]
                )
                splits = np.cumsum([np.asarray(g).shape[0] for g in chosen])[:-1]
                results = np.split(model.predict(flat), splits)
            for i, values in zip(positions, results):
                out[i] = values
        return out

    def export_constituent_states(self) -> dict[str, tuple] | None:
        """Batch state for every constituent, keyed by name, or None.

        Batched group-by evaluators stack each constituent across groups
        so a query can route every group through its *selected* model and
        still evaluate each constituent family in one vectorised pass.
        Returns None when any constituent cannot export a stackable state
        (multivariate fits, unknown estimator types).
        """
        if not self.models_:
            raise ModelTrainingError("ensemble used before fit()")
        states: dict[str, tuple] = {}
        for name, model in self.models_.items():
            export = getattr(model, "export_batch_state", None)
            state = export() if export is not None else None
            if state is None:
                return None
            states[name] = state
        return states

    @property
    def constituent_names(self) -> list[str]:
        return list(self.models_)
