"""Gradient boosting regression (Friedman's GBoost).

First-order gradient boosting with squared loss: each stage fits a CART
tree to the current residuals and is added with a shrinkage factor.
Optional stochastic row subsampling per stage implements Friedman's
"stochastic gradient boosting" variant the paper cites ([21]).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError, ModelTrainingError
from repro.ml._histogram import BinnedFeatures
from repro.ml.tree import DecisionTreeRegressor


class GradientBoostingRegressor:
    """Boosted regression trees with squared loss.

    Parameters
    ----------
    n_estimators:
        Number of boosting stages.
    learning_rate:
        Shrinkage applied to each stage's contribution.
    max_depth, min_samples_leaf, max_bins:
        Passed through to each stage's :class:`DecisionTreeRegressor`.
    subsample:
        Fraction of rows drawn (without replacement) per stage; 1.0
        disables subsampling.
    random_state:
        Seed for the subsampling generator.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 10,
        max_bins: int = 256,
        subsample: float = 1.0,
        random_state: int | None = None,
    ) -> None:
        if n_estimators <= 0:
            raise InvalidParameterError(
                f"n_estimators must be positive, got {n_estimators}"
            )
        if not 0.0 < learning_rate <= 1.0:
            raise InvalidParameterError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        if not 0.0 < subsample <= 1.0:
            raise InvalidParameterError(
                f"subsample must be in (0, 1], got {subsample}"
            )
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_bins = max_bins
        self.subsample = subsample
        self.random_state = random_state
        self._base: float = 0.0
        self._trees: list[DecisionTreeRegressor] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        """Fit the boosted ensemble to (n,) or (n, d) features."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        binned = BinnedFeatures(X, max_bins=self.max_bins)
        if y.shape[0] != binned.n_rows:
            raise ModelTrainingError(
                f"X has {binned.n_rows} rows but y has {y.shape[0]}"
            )
        rng = np.random.default_rng(self.random_state)
        self._base = float(y.mean())
        self._trees = []

        prediction = np.full(y.shape[0], self._base)
        n = y.shape[0]
        for _ in range(self.n_estimators):
            residual = y - prediction
            if self.subsample < 1.0:
                k = max(1, int(round(self.subsample * n)))
                rows = rng.choice(n, size=k, replace=False)
            else:
                rows = None
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_bins=self.max_bins,
            )
            tree.fit(None, residual, binned=binned, sample_indices=rows)
            # Update with the tree's prediction over *all* rows so later
            # stages see the full-ensemble residual.
            prediction += self.learning_rate * tree.predict(X)
            self._trees.append(tree)
        return self

    @classmethod
    def from_fit_state(
        cls,
        base: float,
        trees: list[DecisionTreeRegressor],
        *,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 10,
        max_bins: int = 256,
        random_state: int | None = None,
    ) -> "GradientBoostingRegressor":
        """A fitted booster from pre-built per-stage trees.

        The batched forest fitter grows every group's boosting rounds in
        shared level-synchronous passes; this rebuilds a regressor
        identical to a scalar :meth:`fit` on the same rows.
        """
        model = cls(
            n_estimators=len(trees),
            learning_rate=learning_rate,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            max_bins=max_bins,
            random_state=random_state,
        )
        model._base = float(base)
        model._trees = list(trees)
        return model

    @property
    def is_fitted(self) -> bool:
        return bool(self._trees)

    @property
    def n_stages(self) -> int:
        return len(self._trees)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted values for (n,) or (n, d) inputs."""
        if not self._trees:
            raise ModelTrainingError("gradient boosting model used before fit()")
        X = np.asarray(X, dtype=np.float64)
        n = X.shape[0] if X.ndim > 0 else 1
        out = np.full(n, self._base)
        for tree in self._trees:
            out = out + self.learning_rate * tree.predict(X)
        return out

    def predict_many(self, grids: list[np.ndarray]) -> list[np.ndarray]:
        """Predict over many point sets with one pass through the stages.

        One concatenated :meth:`predict` walks each constituent tree once
        instead of once per grid; per-point predictions are independent of
        batch composition, so the values match per-grid calls exactly.
        """
        if not grids:
            return []
        flat = np.concatenate([np.asarray(g, dtype=np.float64) for g in grids])
        values = self.predict(flat)
        splits = np.cumsum([np.asarray(g).shape[0] for g in grids])[:-1]
        return np.split(values, splits)

    def export_batch_state(self) -> tuple | None:
        """Flat ``("forest", ...)`` state for stacking into batched evaluators.

        Concatenates every stage's node arrays (child indices stay
        tree-local; ``offsets`` maps tree ordinals to flat node ranges) so
        a batched evaluator can traverse many groups' boosters in
        lock-step.  Returns None for multivariate fits.
        """
        if not self._trees:
            raise ModelTrainingError("gradient boosting model used before fit()")
        per_tree = [tree.export_batch_state() for tree in self._trees]
        if any(state is None for state in per_tree):
            return None
        counts = [state[4].shape[0] for state in per_tree]
        offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        return (
            "forest",
            self._base,
            self.learning_rate,
            offsets,
            np.concatenate([state[4] for state in per_tree]),
            np.concatenate([state[5] for state in per_tree]),
            np.concatenate([state[6] for state in per_tree]),
            np.concatenate([state[7] for state in per_tree]),
            np.concatenate([state[8] for state in per_tree]),
        )

    def staged_predict(self, X: np.ndarray, every: int = 1):
        """Yield predictions after each ``every`` stages (for diagnostics)."""
        X = np.asarray(X, dtype=np.float64)
        out = np.full(X.shape[0], self._base)
        for stage, tree in enumerate(self._trees, start=1):
            out = out + self.learning_rate * tree.predict(X)
            if stage % every == 0:
                yield out.copy()
