"""Shared feature-binning utilities for histogram-based tree learners.

Both the CART regressor and the XGBoost-style booster pre-discretise each
feature into at most ``max_bins`` quantile bins, then search splits over
bin boundaries using ``np.bincount`` histograms — the same strategy
LightGBM/XGBoost's "hist" mode uses, which keeps split finding O(bins)
per node instead of O(n log n).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelTrainingError

# Element budget for blocked broadcast comparisons (rows x features x
# edges); matches the batched trainer's chunking budget.
_BLOCK_ELEMENTS = 1 << 22


def sequential_sum(values: np.ndarray) -> float:
    """Strict left-to-right float64 sum of a 1-D array.

    ``ndarray.sum`` uses pairwise accumulation whose grouping depends on
    the array length, so two reductions over the same values in different
    layouts can differ in the last ulp.  The batched forest fitter
    (:mod:`repro.core.batched_forest`) accumulates node statistics with
    ``np.bincount``, which adds strictly in input order; taking the last
    element of a cumulative sum reproduces that exact order here, keeping
    scalar and batched fits bit-identical.
    """
    if values.shape[0] == 0:
        return 0.0
    return float(np.cumsum(values)[-1])


def compute_bin_edges(x: np.ndarray, max_bins: int) -> np.ndarray:
    """Quantile bin edges (interior boundaries only) for one feature.

    Returns at most ``max_bins - 1`` strictly increasing thresholds; a
    constant feature yields an empty edge array and can never be split.
    """
    quantiles = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
    edges = np.unique(np.quantile(x, quantiles))
    # An edge at the feature maximum cannot separate anything ("x <= max"
    # is always true); dropping it makes constant features unsplittable.
    edges = edges[edges < x.max()]
    return edges.astype(np.float64, copy=False)


def bin_codes(x: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Map feature values to bin indices in ``[0, len(edges)]``."""
    return np.searchsorted(edges, x, side="left").astype(np.int32, copy=False)


class BinnedFeatures:
    """Pre-binned view of an (n, d) feature matrix.

    All features are binned in one pass: a single ``np.quantile`` call
    over axis 0 computes every column's candidate edges, consecutive
    duplicates and edges at each column's maximum are masked out
    vectorised, and bin codes come from one blocked broadcast comparison
    (``#edges < x`` equals ``searchsorted(edges, x, side="left")``, with
    exact comparisons so ties land in the same bin).  The edges are
    bit-identical to per-column :func:`compute_bin_edges` calls.
    """

    def __init__(self, X: np.ndarray, max_bins: int = 256) -> None:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        if X.ndim != 2 or X.shape[0] == 0:
            raise ModelTrainingError(
                f"expected a non-empty (n, d) feature matrix, got shape {X.shape}"
            )
        if not np.all(np.isfinite(X)):
            raise ModelTrainingError("feature matrix contains non-finite values")
        self.n_rows, self.n_features = X.shape
        n, d = X.shape
        quantiles = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
        quant = np.quantile(X, quantiles, axis=0)  # (Q, d), sorted per column
        keep = np.ones(quant.shape, dtype=bool)
        keep[1:] = quant[1:] != quant[:-1]
        keep &= quant < X.max(axis=0)[None, :]
        edge_counts = keep.sum(axis=0)
        self.edges: list[np.ndarray] = [
            np.ascontiguousarray(quant[keep[:, j], j]) for j in range(d)
        ]
        width = int(edge_counts.max()) if d else 0
        padded = np.full((d, width), np.inf)
        pos = np.cumsum(keep, axis=0) - 1
        qi, ji = np.nonzero(keep)
        padded[ji, pos[qi, ji]] = quant[qi, ji]
        codes = np.empty((n, d), dtype=np.int32)
        block = max(1, _BLOCK_ELEMENTS // max(d * width, 1))
        for r0 in range(0, n, block):
            r1 = min(r0 + block, n)
            codes[r0:r1] = (padded[None, :, :] < X[r0:r1, :, None]).sum(axis=2)
        self.codes = codes

    def n_bins(self, feature: int) -> int:
        return self.edges[feature].shape[0] + 1

    def threshold(self, feature: int, split_bin: int) -> float:
        """Raw-value threshold equivalent to 'code <= split_bin'."""
        return float(self.edges[feature][split_bin])
