"""Shared feature-binning utilities for histogram-based tree learners.

Both the CART regressor and the XGBoost-style booster pre-discretise each
feature into at most ``max_bins`` quantile bins, then search splits over
bin boundaries using ``np.bincount`` histograms — the same strategy
LightGBM/XGBoost's "hist" mode uses, which keeps split finding O(bins)
per node instead of O(n log n).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelTrainingError


def compute_bin_edges(x: np.ndarray, max_bins: int) -> np.ndarray:
    """Quantile bin edges (interior boundaries only) for one feature.

    Returns at most ``max_bins - 1`` strictly increasing thresholds; a
    constant feature yields an empty edge array and can never be split.
    """
    quantiles = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
    edges = np.unique(np.quantile(x, quantiles))
    # An edge at the feature maximum cannot separate anything ("x <= max"
    # is always true); dropping it makes constant features unsplittable.
    edges = edges[edges < x.max()]
    return edges.astype(np.float64, copy=False)


def bin_codes(x: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Map feature values to bin indices in ``[0, len(edges)]``."""
    return np.searchsorted(edges, x, side="left").astype(np.int32, copy=False)


class BinnedFeatures:
    """Pre-binned view of an (n, d) feature matrix."""

    def __init__(self, X: np.ndarray, max_bins: int = 256) -> None:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        if X.ndim != 2 or X.shape[0] == 0:
            raise ModelTrainingError(
                f"expected a non-empty (n, d) feature matrix, got shape {X.shape}"
            )
        if not np.all(np.isfinite(X)):
            raise ModelTrainingError("feature matrix contains non-finite values")
        self.n_rows, self.n_features = X.shape
        self.edges: list[np.ndarray] = []
        codes = np.empty((self.n_rows, self.n_features), dtype=np.int32)
        for j in range(self.n_features):
            edges = compute_bin_edges(X[:, j], max_bins)
            self.edges.append(edges)
            codes[:, j] = bin_codes(X[:, j], edges)
        self.codes = codes

    def n_bins(self, feature: int) -> int:
        return self.edges[feature].shape[0] + 1

    def threshold(self, feature: int, split_bin: int) -> float:
        """Raw-value threshold equivalent to 'code <= split_bin'."""
        return float(self.edges[feature][split_bin])
