"""XGBoost-style second-order gradient boosting.

Implements the regularised objective of Chen & Guestrin's XGBoost ([12] in
the paper) for squared loss: split gain

    gain = 1/2 * [ GL²/(HL+λ) + GR²/(HR+λ) − G²/(H+λ) ] − γ

and leaf weight ``−G/(H+λ)``, where G/H are gradient/hessian sums.  With
squared loss the hessian is 1 per row, but the regularisation terms (λ, γ)
and the gain-based pruning still make this a genuinely different learner
from the CART/GBM pair, which is what the paper's ensemble exploits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError, ModelTrainingError
from repro.ml._histogram import BinnedFeatures, sequential_sum


class _XGBTree:
    """A single regularised tree trained on (gradient, hessian) pairs."""

    def __init__(
        self,
        max_depth: int,
        min_child_weight: float,
        reg_lambda: float,
        gamma: float,
    ) -> None:
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.value: list[float] = []

    def _add_node(self) -> int:
        self.feature.append(-1)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(0.0)
        return len(self.feature) - 1

    def fit(
        self,
        binned: BinnedFeatures,
        grad: np.ndarray,
        hess: np.ndarray,
        indices: np.ndarray,
    ) -> "_XGBTree":
        root = self._add_node()
        self._grow(root, binned, grad, hess, indices, depth=0)
        self._feature_arr = np.asarray(self.feature, dtype=np.int32)
        self._threshold_arr = np.asarray(self.threshold, dtype=np.float64)
        self._left_arr = np.asarray(self.left, dtype=np.int32)
        self._right_arr = np.asarray(self.right, dtype=np.int32)
        self._value_arr = np.asarray(self.value, dtype=np.float64)
        return self

    def _grow(
        self,
        node: int,
        binned: BinnedFeatures,
        grad: np.ndarray,
        hess: np.ndarray,
        indices: np.ndarray,
        depth: int,
    ) -> None:
        # Sequential (not pairwise) node sums: matches the bincount
        # accumulation order of the batched forest fitter bit-for-bit.
        g_sum = sequential_sum(grad[indices])
        h_sum = sequential_sum(hess[indices])
        self.value[node] = -g_sum / (h_sum + self.reg_lambda)
        if depth >= self.max_depth or h_sum < 2 * self.min_child_weight:
            return
        split = self._best_split(binned, grad, hess, indices, g_sum, h_sum)
        if split is None:
            return
        feature, split_bin = split
        go_left = binned.codes[indices, feature] <= split_bin
        self.feature[node] = feature
        self.threshold[node] = binned.threshold(feature, split_bin)
        left = self._add_node()
        right = self._add_node()
        self.left[node] = left
        self.right[node] = right
        self._grow(left, binned, grad, hess, indices[go_left], depth + 1)
        self._grow(right, binned, grad, hess, indices[~go_left], depth + 1)

    def _best_split(
        self,
        binned: BinnedFeatures,
        grad: np.ndarray,
        hess: np.ndarray,
        indices: np.ndarray,
        g_sum: float,
        h_sum: float,
    ) -> tuple[int, int] | None:
        lam = self.reg_lambda
        parent = g_sum * g_sum / (h_sum + lam)
        best_gain = 0.0
        best: tuple[int, int] | None = None
        node_grad = grad[indices]
        node_hess = hess[indices]
        for feature in range(binned.n_features):
            n_bins = binned.n_bins(feature)
            if n_bins < 2:
                continue
            codes = binned.codes[indices, feature]
            g_hist = np.bincount(codes, weights=node_grad, minlength=n_bins)
            h_hist = np.bincount(codes, weights=node_hess, minlength=n_bins)
            gl = np.cumsum(g_hist)[:-1]
            hl = np.cumsum(h_hist)[:-1]
            gr = g_sum - gl
            hr = h_sum - hl
            valid = (hl >= self.min_child_weight) & (hr >= self.min_child_weight)
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                gain = np.where(
                    valid,
                    0.5 * (gl**2 / (hl + lam) + gr**2 / (hr + lam) - parent)
                    - self.gamma,
                    -np.inf,
                )
            split_bin = int(np.argmax(gain))
            if gain[split_bin] > best_gain:
                best_gain = float(gain[split_bin])
                best = (feature, split_bin)
        return best

    @classmethod
    def from_arrays(
        cls,
        nodes: dict[str, np.ndarray],
        max_depth: int,
        min_child_weight: float,
        reg_lambda: float,
        gamma: float,
    ) -> "_XGBTree":
        """A fitted tree from flat node arrays (batched forest fitter)."""
        tree = cls(max_depth, min_child_weight, reg_lambda, gamma)
        tree.feature = nodes["feature"].tolist()
        tree.threshold = nodes["threshold"].tolist()
        tree.left = nodes["left"].tolist()
        tree.right = nodes["right"].tolist()
        tree.value = nodes["value"].tolist()
        tree._feature_arr = np.ascontiguousarray(nodes["feature"], dtype=np.int32)
        tree._threshold_arr = np.ascontiguousarray(
            nodes["threshold"], dtype=np.float64
        )
        tree._left_arr = np.ascontiguousarray(nodes["left"], dtype=np.int32)
        tree._right_arr = np.ascontiguousarray(nodes["right"], dtype=np.int32)
        tree._value_arr = np.ascontiguousarray(nodes["value"], dtype=np.float64)
        return tree

    def predict(self, X: np.ndarray, max_depth: int) -> np.ndarray:
        position = np.zeros(X.shape[0], dtype=np.int32)
        for _ in range(max_depth + 1):
            feature = self._feature_arr[position]
            internal = feature >= 0
            if not internal.any():
                break
            rows = np.flatnonzero(internal)
            feats = feature[rows]
            thresholds = self._threshold_arr[position[rows]]
            go_left = X[rows, feats] <= thresholds
            children = np.where(
                go_left,
                self._left_arr[position[rows]],
                self._right_arr[position[rows]],
            )
            position[rows] = children
        return self._value_arr[position]


class XGBRegressor:
    """Second-order boosted trees with L2 and min-gain regularisation.

    Parameters mirror the XGBoost library's most important knobs:
    ``reg_lambda`` (L2 on leaf weights), ``gamma`` (minimum split gain),
    ``min_child_weight`` (minimum hessian per child), ``subsample``
    (per-stage row sampling).
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        min_child_weight: float = 5.0,
        max_bins: int = 256,
        subsample: float = 1.0,
        random_state: int | None = None,
    ) -> None:
        if n_estimators <= 0:
            raise InvalidParameterError(
                f"n_estimators must be positive, got {n_estimators}"
            )
        if not 0.0 < learning_rate <= 1.0:
            raise InvalidParameterError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        if reg_lambda < 0 or gamma < 0:
            raise InvalidParameterError("reg_lambda and gamma must be >= 0")
        if not 0.0 < subsample <= 1.0:
            raise InvalidParameterError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.min_child_weight = min_child_weight
        self.max_bins = max_bins
        self.subsample = subsample
        self.random_state = random_state
        self._base = 0.0
        self._trees: list[_XGBTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "XGBRegressor":
        """Fit the boosted ensemble to (n,) or (n, d) features."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        y = np.asarray(y, dtype=np.float64).ravel()
        binned = BinnedFeatures(X, max_bins=self.max_bins)
        if y.shape[0] != binned.n_rows:
            raise ModelTrainingError(
                f"X has {binned.n_rows} rows but y has {y.shape[0]}"
            )
        rng = np.random.default_rng(self.random_state)
        self._base = float(y.mean())
        self._trees = []

        n = y.shape[0]
        prediction = np.full(n, self._base)
        hess = np.ones(n)
        all_rows = np.arange(n, dtype=np.intp)
        for _ in range(self.n_estimators):
            grad = prediction - y  # d/dpred of 0.5*(pred-y)^2
            if self.subsample < 1.0:
                k = max(1, int(round(self.subsample * n)))
                rows = rng.choice(n, size=k, replace=False)
            else:
                rows = all_rows
            tree = _XGBTree(
                max_depth=self.max_depth,
                min_child_weight=self.min_child_weight,
                reg_lambda=self.reg_lambda,
                gamma=self.gamma,
            )
            tree.fit(binned, grad, hess, rows)
            prediction += self.learning_rate * tree.predict(X, self.max_depth)
            self._trees.append(tree)
        return self

    @classmethod
    def from_fit_state(
        cls,
        base: float,
        tree_nodes: list[dict[str, np.ndarray]],
        *,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        min_child_weight: float = 5.0,
        max_bins: int = 256,
        random_state: int | None = None,
    ) -> "XGBRegressor":
        """A fitted booster from per-stage flat node arrays.

        The batched forest fitter grows every group's boosting rounds in
        shared level-synchronous passes and hands each group its slice of
        the stacked node arrays; this rebuilds a regressor identical to a
        scalar :meth:`fit` on the same rows.
        """
        model = cls(
            n_estimators=len(tree_nodes),
            learning_rate=learning_rate,
            max_depth=max_depth,
            reg_lambda=reg_lambda,
            gamma=gamma,
            min_child_weight=min_child_weight,
            max_bins=max_bins,
            random_state=random_state,
        )
        model._base = float(base)
        model._trees = [
            _XGBTree.from_arrays(
                nodes, max_depth, min_child_weight, reg_lambda, gamma
            )
            for nodes in tree_nodes
        ]
        return model

    @property
    def is_fitted(self) -> bool:
        return bool(self._trees)

    @property
    def n_stages(self) -> int:
        return len(self._trees)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted values for (n,) or (n, d) inputs."""
        if not self._trees:
            raise ModelTrainingError("XGB model used before fit()")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        out = np.full(X.shape[0], self._base)
        for tree in self._trees:
            out = out + self.learning_rate * tree.predict(X, self.max_depth)
        return out

    def predict_many(self, grids: list[np.ndarray]) -> list[np.ndarray]:
        """Predict over many point sets with one pass through the stages.

        One concatenated :meth:`predict` walks each boosted tree once
        instead of once per grid; per-point predictions are independent of
        batch composition, so the values match per-grid calls exactly.
        """
        if not grids:
            return []
        flat = np.concatenate([np.asarray(g, dtype=np.float64) for g in grids])
        values = self.predict(flat)
        splits = np.cumsum([np.asarray(g).shape[0] for g in grids])[:-1]
        return np.split(values, splits)

    def export_batch_state(self) -> tuple | None:
        """Flat ``("forest", ...)`` state for stacking into batched evaluators.

        Same layout as :meth:`GradientBoostingRegressor.export_batch_state
        <repro.ml.gbm.GradientBoostingRegressor.export_batch_state>`:
        concatenated node arrays with tree-local child indices and a flat
        node-offset table.  Returns None for multivariate fits.
        """
        if not self._trees:
            raise ModelTrainingError("XGB model used before fit()")
        features = [tree._feature_arr for tree in self._trees]
        for feature in features:
            if np.any(feature[feature >= 0] != 0):
                return None
        counts = [feature.shape[0] for feature in features]
        offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        return (
            "forest",
            self._base,
            self.learning_rate,
            offsets,
            np.concatenate(features),
            np.concatenate([tree._threshold_arr for tree in self._trees]),
            np.concatenate([tree._left_arr for tree in self._trees]),
            np.concatenate([tree._right_arr for tree in self._trees]),
            np.concatenate([tree._value_arr for tree in self._trees]),
        )
