"""CART regression tree with histogram split finding.

This is the base learner for both boosting implementations and is usable
standalone.  Split search works on pre-binned features (see
``_histogram.py``): per node, per feature, the bin histogram of counts and
label sums gives every candidate split's variance reduction in one
``cumsum``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelTrainingError
from repro.ml._histogram import BinnedFeatures, sequential_sum


@dataclass
class _FlatTree:
    """Arrays describing the tree: feature < 0 marks a leaf."""

    feature: list[int] = field(default_factory=list)
    threshold: list[float] = field(default_factory=list)
    left: list[int] = field(default_factory=list)
    right: list[int] = field(default_factory=list)
    value: list[float] = field(default_factory=list)

    def add_node(self) -> int:
        self.feature.append(-1)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(0.0)
        return len(self.feature) - 1

    def finalize(self) -> dict[str, np.ndarray]:
        return {
            "feature": np.asarray(self.feature, dtype=np.int32),
            "threshold": np.asarray(self.threshold, dtype=np.float64),
            "left": np.asarray(self.left, dtype=np.int32),
            "right": np.asarray(self.right, dtype=np.int32),
            "value": np.asarray(self.value, dtype=np.float64),
        }


class DecisionTreeRegressor:
    """Least-squares regression tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root at depth 0).
    min_samples_leaf:
        Minimum training rows on each side of a split.
    min_samples_split:
        Minimum rows in a node for it to be considered for splitting.
    max_bins:
        Histogram resolution used for split finding.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 10,
        min_samples_split: int = 20,
        max_bins: int = 256,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_bins = max_bins
        self._nodes: dict[str, np.ndarray] | None = None
        self.n_features = 0

    # -- fitting -----------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        binned: BinnedFeatures | None = None,
        sample_indices: np.ndarray | None = None,
    ) -> "DecisionTreeRegressor":
        """Fit to features ``X`` (n,) or (n, d) and targets ``y``.

        ``binned`` lets a booster share one binning across all its trees;
        ``sample_indices`` restricts training to a row subset (subsampling).
        """
        y = np.asarray(y, dtype=np.float64).ravel()
        if binned is None:
            binned = BinnedFeatures(X, max_bins=self.max_bins)
        if y.shape[0] != binned.n_rows:
            raise ModelTrainingError(
                f"X has {binned.n_rows} rows but y has {y.shape[0]}"
            )
        self.n_features = binned.n_features
        indices = (
            np.arange(binned.n_rows, dtype=np.intp)
            if sample_indices is None
            else np.asarray(sample_indices, dtype=np.intp)
        )
        if indices.size == 0:
            raise ModelTrainingError("cannot fit a tree to zero rows")

        tree = _FlatTree()
        root = tree.add_node()
        self._grow(tree, root, binned, y, indices, depth=0)
        self._nodes = tree.finalize()
        return self

    def _grow(
        self,
        tree: _FlatTree,
        node: int,
        binned: BinnedFeatures,
        y: np.ndarray,
        indices: np.ndarray,
        depth: int,
    ) -> None:
        node_y = y[indices]
        n = indices.shape[0]
        # Sequential (not pairwise) node sum: the batched forest fitter
        # accumulates the same statistic with np.bincount, which adds in
        # input order; matching that order keeps both paths bit-identical.
        node_sum = sequential_sum(node_y)
        tree.value[node] = node_sum / n
        if depth >= self.max_depth or n < self.min_samples_split:
            return
        split = self._best_split(binned, node_y, indices, node_sum)
        if split is None:
            return
        feature, split_bin = split
        go_left = binned.codes[indices, feature] <= split_bin
        left_idx = indices[go_left]
        right_idx = indices[~go_left]

        tree.feature[node] = feature
        tree.threshold[node] = binned.threshold(feature, split_bin)
        left = tree.add_node()
        right = tree.add_node()
        tree.left[node] = left
        tree.right[node] = right
        self._grow(tree, left, binned, y, left_idx, depth + 1)
        self._grow(tree, right, binned, y, right_idx, depth + 1)

    def _best_split(
        self,
        binned: BinnedFeatures,
        node_y: np.ndarray,
        indices: np.ndarray,
        total_sum: float,
    ) -> tuple[int, int] | None:
        """Best (feature, split_bin) by variance reduction, or None."""
        n = indices.shape[0]
        parent_score = total_sum * total_sum / n
        best_gain = 1e-12
        best: tuple[int, int] | None = None
        for feature in range(binned.n_features):
            n_bins = binned.n_bins(feature)
            if n_bins < 2:
                continue
            codes = binned.codes[indices, feature]
            counts = np.bincount(codes, minlength=n_bins).astype(np.float64)
            sums = np.bincount(codes, weights=node_y, minlength=n_bins)
            left_counts = np.cumsum(counts)[:-1]
            left_sums = np.cumsum(sums)[:-1]
            right_counts = n - left_counts
            right_sums = total_sum - left_sums
            valid = (left_counts >= self.min_samples_leaf) & (
                right_counts >= self.min_samples_leaf
            )
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                score = np.where(
                    valid,
                    left_sums**2 / left_counts + right_sums**2 / right_counts,
                    -np.inf,
                )
            split_bin = int(np.argmax(score))
            gain = float(score[split_bin]) - parent_score
            if gain > best_gain:
                best_gain = gain
                best = (feature, split_bin)
        return best

    @classmethod
    def from_fit_state(
        cls,
        nodes: dict[str, np.ndarray],
        n_features: int,
        *,
        max_depth: int = 6,
        min_samples_leaf: int = 10,
        min_samples_split: int = 20,
        max_bins: int = 256,
    ) -> "DecisionTreeRegressor":
        """A fitted tree from pre-built flat node arrays.

        The batched forest fitter (:mod:`repro.core.batched_forest`)
        grows every group's tree level-synchronously and emits the same
        arrays :meth:`_FlatTree.finalize` produces; this wraps them in a
        regressor indistinguishable from a scalar :meth:`fit`.
        """
        tree = cls(
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            min_samples_split=min_samples_split,
            max_bins=max_bins,
        )
        tree._nodes = nodes
        tree.n_features = n_features
        return tree

    # -- prediction ----------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._nodes is not None

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted values for (n,) or (n, d) inputs."""
        if self._nodes is None:
            raise ModelTrainingError("tree used before fit()")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        nodes = self._nodes
        position = np.zeros(X.shape[0], dtype=np.int32)
        # Each pass advances every row one level; depth bounds iterations.
        for _ in range(self.max_depth + 1):
            feature = nodes["feature"][position]
            internal = feature >= 0
            if not internal.any():
                break
            rows = np.flatnonzero(internal)
            feats = feature[rows]
            thresholds = nodes["threshold"][position[rows]]
            go_left = X[rows, feats] <= thresholds
            children = np.where(
                go_left,
                nodes["left"][position[rows]],
                nodes["right"][position[rows]],
            )
            position[rows] = children
        return nodes["value"][position]

    def predict_many(self, grids: list[np.ndarray]) -> list[np.ndarray]:
        """Predict over many point sets in one tree traversal.

        Concatenates the grids, runs a single vectorised :meth:`predict`,
        and splits the result back — per-point predictions are independent
        of batch composition, so the values are identical to per-grid
        calls while the tree is walked once instead of ``len(grids)``
        times.
        """
        if not grids:
            return []
        flat = np.concatenate([np.asarray(g, dtype=np.float64) for g in grids])
        values = self.predict(flat)
        splits = np.cumsum([np.asarray(g).shape[0] for g in grids])[:-1]
        return np.split(values, splits)

    def export_batch_state(self) -> tuple | None:
        """``("forest", base, lr, offsets, feature, threshold, left, right,
        value)`` for stacking into batched evaluators, or None.

        A single tree is a one-tree forest with base 0 and unit learning
        rate.  Only 1-D models are stackable (every internal node must
        split feature 0); multivariate fits return None so callers fall
        back to per-model :meth:`predict`.
        """
        if self._nodes is None:
            raise ModelTrainingError("tree used before fit()")
        nodes = self._nodes
        internal = nodes["feature"] >= 0
        if np.any(nodes["feature"][internal] != 0):
            return None
        offsets = np.asarray([0, nodes["feature"].shape[0]], dtype=np.int64)
        return (
            "forest",
            0.0,
            1.0,
            offsets,
            nodes["feature"],
            nodes["threshold"],
            nodes["left"],
            nodes["right"],
            nodes["value"],
        )

    @property
    def n_nodes(self) -> int:
        if self._nodes is None:
            return 0
        return int(self._nodes["feature"].shape[0])

    @property
    def n_leaves(self) -> int:
        if self._nodes is None:
            return 0
        return int(np.sum(self._nodes["feature"] < 0))
