"""Machine-learning substrate implemented from scratch on numpy.

scikit-learn and XGBoost are not available in this environment, so every
model DBEst depends on lives here:

* :class:`KernelDensityEstimator` / :class:`MultivariateKDE` — Gaussian
  kernel density estimation with analytic CDFs and a binned fast path.
* :class:`DecisionTreeRegressor` — CART with histogram-based splits.
* :class:`GradientBoostingRegressor` — classic first-order boosting.
* :class:`XGBRegressor` — second-order (XGBoost-style) boosting with L2
  regularisation and minimum-gain pruning.
* :class:`PiecewiseLinearRegressor` — linear-spline regression.
* :class:`DecisionTreeClassifier` — gini classifier used by the ensemble's
  per-query-range model selector.
* :class:`EnsembleRegressor` — constituent regressors plus a learned
  classifier that routes each query range to the best constituent
  (paper §3 "Regression Model Selection").
* :class:`GridSearchCV`, :func:`k_fold_indices`, :func:`train_test_split`
  — model selection utilities.
"""

from repro.ml.classifier import DecisionTreeClassifier
from repro.ml.ensemble import EnsembleRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.histogram_density import HistogramDensity
from repro.ml.kde import KernelDensityEstimator, MultivariateKDE, scott_bandwidth
from repro.ml.linear import LinearRegressor, PiecewiseLinearRegressor
from repro.ml.metrics import (
    mean_absolute_error,
    mean_relative_error,
    mean_squared_error,
    r2_score,
    relative_error,
    root_mean_squared_error,
)
from repro.ml.model_selection import GridSearchCV, k_fold_indices, train_test_split
from repro.ml.tree import DecisionTreeRegressor
from repro.ml.xgb import XGBRegressor

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "EnsembleRegressor",
    "GradientBoostingRegressor",
    "GridSearchCV",
    "HistogramDensity",
    "KernelDensityEstimator",
    "LinearRegressor",
    "MultivariateKDE",
    "PiecewiseLinearRegressor",
    "XGBRegressor",
    "k_fold_indices",
    "mean_absolute_error",
    "mean_relative_error",
    "mean_squared_error",
    "r2_score",
    "relative_error",
    "root_mean_squared_error",
    "scott_bandwidth",
    "train_test_split",
]
