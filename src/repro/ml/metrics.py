"""Accuracy metrics used across training, tests, and the benchmark harness."""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError


def _paired(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise InvalidParameterError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise InvalidParameterError("metrics need at least one observation")
    return y_true, y_pred


def relative_error(truth: float, estimate: float) -> float:
    """``|estimate - truth| / |truth|``; defined as |estimate| when truth is 0.

    This is the metric the paper reports everywhere ("relative error (%)").
    The zero-truth convention keeps the metric finite for empty ranges.
    """
    if truth == 0.0:
        return abs(estimate)
    return abs(estimate - truth) / abs(truth)


def mean_relative_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Average of :func:`relative_error` over paired arrays."""
    y_true, y_pred = _paired(y_true, y_pred)
    return float(
        np.mean([relative_error(t, p) for t, p in zip(y_true, y_pred)])
    )


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _paired(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _paired(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; 0.0 for a constant target by convention."""
    y_true, y_pred = _paired(y_true, y_pred)
    total = float(np.sum((y_true - y_true.mean()) ** 2))
    if total == 0.0:
        return 0.0
    residual = float(np.sum((y_true - y_pred) ** 2))
    return 1.0 - residual / total
