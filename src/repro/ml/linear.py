"""Linear and piecewise-linear regression.

The paper's implementation "used various regression models from piece-wise
linear models to XGBoost" (§3).  :class:`PiecewiseLinearRegressor` fits a
continuous linear spline on a hinge basis — the classic piecewise-linear
model — and :class:`LinearRegressor` is ordinary least squares, used as a
cheap constituent and in tests as a known-answer reference.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError, ModelTrainingError


class LinearRegressor:
    """Ordinary least squares on (n,) or (n, d) features with intercept."""

    def __init__(self) -> None:
        self._coef: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegressor":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.shape[0] != y.shape[0]:
            raise ModelTrainingError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]}"
            )
        design = np.column_stack([np.ones(X.shape[0]), X])
        self._coef, *_ = np.linalg.lstsq(design, y, rcond=None)
        return self

    @classmethod
    def from_coef(cls, coef: np.ndarray) -> "LinearRegressor":
        """Construct a fitted model from ``[intercept, slopes...]``.

        Used by the batched trainer, which solves all groups' normal
        equations in one stacked pass and assembles the per-group models
        from the coefficient rows.
        """
        model = cls()
        model._coef = np.asarray(coef, dtype=np.float64).ravel()
        if model._coef.shape[0] < 2:
            raise ModelTrainingError(
                f"linear coefficients need >= 2 entries, got {model._coef.shape[0]}"
            )
        return model

    @property
    def is_fitted(self) -> bool:
        return self._coef is not None

    @property
    def intercept(self) -> float:
        if self._coef is None:
            raise ModelTrainingError("linear model used before fit()")
        return float(self._coef[0])

    @property
    def slope(self) -> np.ndarray:
        if self._coef is None:
            raise ModelTrainingError("linear model used before fit()")
        return self._coef[1:]

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._coef is None:
            raise ModelTrainingError("linear model used before fit()")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        return self._coef[0] + X @ self._coef[1:]

    def export_batch_state(self) -> tuple:
        """``("linear", coef)`` for stacking into batched evaluators.

        ``coef`` is ``[intercept, slopes...]``; a prediction at ``x`` is
        ``coef[0] + x @ coef[1:]`` for 1-D and multivariate fits alike —
        callers stack groups of equal feature width into one affine pass.
        """
        if self._coef is None:
            raise ModelTrainingError("linear model used before fit()")
        return ("linear", self._coef)


class PiecewiseLinearRegressor:
    """Continuous linear spline: OLS on a hinge (ReLU) basis.

    Knots are placed at interior quantiles of the training feature, so the
    spline spends its flexibility where the data is dense.  Only supports
    1-D features — which is exactly how DBEst's column-pair models use it.
    """

    def __init__(self, n_knots: int = 8) -> None:
        if n_knots < 1:
            raise InvalidParameterError(f"n_knots must be >= 1, got {n_knots}")
        self.n_knots = n_knots
        self._knots: np.ndarray | None = None
        self._coef: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "PiecewiseLinearRegressor":
        x = np.asarray(X, dtype=np.float64)
        if x.ndim == 2:
            if x.shape[1] != 1:
                raise ModelTrainingError(
                    "PiecewiseLinearRegressor supports 1-D features only"
                )
            x = x[:, 0]
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.shape[0]:
            raise ModelTrainingError(
                f"X has {x.shape[0]} rows but y has {y.shape[0]}"
            )
        quantiles = np.linspace(0.0, 1.0, self.n_knots + 2)[1:-1]
        self._knots = np.unique(np.quantile(x, quantiles))
        design = self._design(x)
        self._coef, *_ = np.linalg.lstsq(design, y, rcond=None)
        return self

    @classmethod
    def from_state(
        cls, knots: np.ndarray, coef: np.ndarray, n_knots: int = 8
    ) -> "PiecewiseLinearRegressor":
        """Construct a fitted spline from its knot and coefficient arrays.

        ``coef`` is ``[intercept, slope, hinge coefficients...]`` with one
        hinge coefficient per knot (the :meth:`export_batch_state`
        layout); ``n_knots`` records the *requested* knot count, which may
        exceed ``len(knots)`` when quantile knots collided.  Used by the
        batched trainer to assemble per-group models from stacked solves.
        """
        model = cls(n_knots=n_knots)
        model._knots = np.asarray(knots, dtype=np.float64).ravel()
        model._coef = np.asarray(coef, dtype=np.float64).ravel()
        if model._coef.shape[0] != model._knots.shape[0] + 2:
            raise ModelTrainingError(
                f"{model._coef.shape[0]} coefficients do not match "
                f"{model._knots.shape[0]} knots (+ intercept and slope)"
            )
        return model

    def _design(self, x: np.ndarray) -> np.ndarray:
        hinges = np.maximum(0.0, x[:, None] - self._knots[None, :])
        return np.column_stack([np.ones(x.shape[0]), x, hinges])

    @property
    def is_fitted(self) -> bool:
        return self._coef is not None

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._coef is None:
            raise ModelTrainingError("piecewise-linear model used before fit()")
        x = np.asarray(X, dtype=np.float64)
        if x.ndim == 2:
            x = x[:, 0]
        return self._design(x) @ self._coef

    def export_batch_state(self) -> tuple:
        """``("plr", knots, coef)`` for stacking into batched evaluators.

        ``coef`` is ``[intercept, slope, hinge coefficients...]`` with one
        hinge coefficient per knot; a prediction at ``x`` is
        ``coef[0] + coef[1]*x + sum_j coef[2+j]*max(0, x - knots[j])``.
        """
        if self._coef is None:
            raise ModelTrainingError("piecewise-linear model used before fit()")
        return ("plr", self._knots, self._coef)
