"""Model selection: k-fold CV, train/test split, grid search.

The paper uses scikit-learn's ``GridSearchCV`` to tune its regressors with
cross-validation (§3 "Regression Model Selection"); this module provides
the equivalent on top of our from-scratch estimators.  An estimator here is
any class whose instances expose ``fit(X, y)`` and ``predict(X)`` and whose
constructor accepts the grid's keyword parameters.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.ml.metrics import mean_squared_error


def k_fold_indices(
    n: int,
    k: int,
    rng: np.random.Generator | None = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold (train_indices, test_indices) pairs over ``range(n)``."""
    if k < 2:
        raise InvalidParameterError(f"k-fold needs k >= 2, got {k}")
    if n < k:
        raise InvalidParameterError(f"cannot split {n} rows into {k} folds")
    rng = rng or np.random.default_rng()
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    pairs = []
    for i, test in enumerate(folds):
        train = np.concatenate([f for j, f in enumerate(folds) if j != i])
        pairs.append((train, test))
    return pairs


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.25,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into (X_train, X_test, y_train, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise InvalidParameterError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    X = np.asarray(X)
    y = np.asarray(y)
    n = y.shape[0]
    rng = rng or np.random.default_rng()
    order = rng.permutation(n)
    n_test = max(1, int(round(test_fraction * n)))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class GridSearchCV:
    """Exhaustive parameter grid search with k-fold cross-validation.

    Parameters
    ----------
    estimator_factory:
        Estimator class (or zero-cost factory) called as
        ``estimator_factory(**params)`` for each grid point.
    param_grid:
        Mapping of parameter name to the list of values to try.
    cv:
        Number of folds.
    scorer:
        ``scorer(y_true, y_pred) -> float`` where *lower is better*
        (default: mean squared error).
    random_state:
        Seed for the fold shuffling.
    """

    def __init__(
        self,
        estimator_factory: Callable,
        param_grid: Mapping[str, Sequence],
        cv: int = 3,
        scorer: Callable[[np.ndarray, np.ndarray], float] = mean_squared_error,
        random_state: int | None = None,
    ) -> None:
        if not param_grid:
            raise InvalidParameterError("param_grid must not be empty")
        self.estimator_factory = estimator_factory
        self.param_grid = dict(param_grid)
        self.cv = cv
        self.scorer = scorer
        self.random_state = random_state
        self.best_params_: dict | None = None
        self.best_score_: float | None = None
        self.best_estimator_ = None
        self.results_: list[dict] = []

    def _grid_points(self):
        names = list(self.param_grid)
        for values in itertools.product(*(self.param_grid[n] for n in names)):
            yield dict(zip(names, values))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GridSearchCV":
        """Evaluate the full grid, then refit the best setting on all data."""
        X = np.asarray(X)
        y = np.asarray(y, dtype=np.float64).ravel()
        rng = np.random.default_rng(self.random_state)
        folds = k_fold_indices(y.shape[0], self.cv, rng=rng)

        self.results_ = []
        best_score = np.inf
        best_params: dict | None = None
        for params in self._grid_points():
            scores = []
            for train_idx, test_idx in folds:
                model = self.estimator_factory(**params)
                model.fit(X[train_idx], y[train_idx])
                pred = model.predict(X[test_idx])
                scores.append(self.scorer(y[test_idx], pred))
            mean_score = float(np.mean(scores))
            self.results_.append({"params": params, "score": mean_score})
            if mean_score < best_score:
                best_score = mean_score
                best_params = params

        self.best_params_ = best_params
        self.best_score_ = best_score
        self.best_estimator_ = self.estimator_factory(**best_params)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict with the refit best estimator."""
        if self.best_estimator_ is None:
            raise InvalidParameterError("GridSearchCV used before fit()")
        return self.best_estimator_.predict(X)
