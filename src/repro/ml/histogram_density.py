"""Histogram density estimation.

Paper §3 ("Density Estimator"): "Histograms are the simplest form of
density estimators and have enjoyed a prominent role in DBs ... However,
their discrete nature is at odds with the continuous-function view
employed within DBEst.  Therefore, the kernel density estimation method
is chosen."  This module implements the rejected alternative — an
equi-width histogram density with the same interface as the KDE — so the
choice can be measured (see ``bench_ablation_density.py``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError, ModelTrainingError


class HistogramDensity:
    """Equi-width histogram density with the KDE's evaluation interface.

    The PDF is piecewise constant; the CDF piecewise linear.  ``support``
    is the observed data range, matching the boundary-reflected KDE.
    """

    def __init__(self, n_bins: int = 64) -> None:
        if n_bins < 1:
            raise InvalidParameterError(f"n_bins must be >= 1, got {n_bins}")
        self.n_bins = n_bins
        self._edges: np.ndarray | None = None
        self._density: np.ndarray | None = None
        self._cum: np.ndarray | None = None
        self.n_train = 0

    def fit(self, x: np.ndarray) -> "HistogramDensity":
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size == 0:
            raise ModelTrainingError("cannot fit a histogram to an empty sample")
        if not np.all(np.isfinite(x)):
            raise ModelTrainingError("histogram training data contains non-finite values")
        self.n_train = int(x.size)
        lo, hi = float(x.min()), float(x.max())
        if hi <= lo:
            hi = lo + max(abs(lo), 1.0) * 1e-9  # degenerate: one sliver bin
        counts, edges = np.histogram(x, bins=self.n_bins, range=(lo, hi))
        widths = np.diff(edges)
        self._edges = edges
        self._density = counts / (self.n_train * widths)
        # Cumulative mass at each edge (piecewise-linear CDF knots).
        self._cum = np.concatenate([[0.0], np.cumsum(counts / self.n_train)])
        return self

    @property
    def is_fitted(self) -> bool:
        return self._edges is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ModelTrainingError("histogram density used before fit()")

    @property
    def support(self) -> tuple[float, float]:
        self._require_fitted()
        return float(self._edges[0]), float(self._edges[-1])

    def pdf(self, x: np.ndarray | float) -> np.ndarray:
        """Piecewise-constant density at the given points."""
        self._require_fitted()
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        bins = np.clip(
            np.searchsorted(self._edges, x, side="right") - 1,
            0,
            self.n_bins - 1,
        )
        out = self._density[bins]
        lo, hi = self.support
        out = np.where((x < lo) | (x > hi), 0.0, out)
        return out

    def cdf(self, x: np.ndarray | float) -> np.ndarray:
        """Piecewise-linear CDF (linear interpolation between edges)."""
        self._require_fitted()
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        return np.interp(x, self._edges, self._cum)

    def integrate(self, lb: float, ub: float) -> float:
        """``∫_lb^ub D(x) dx`` via the piecewise-linear CDF."""
        if ub < lb:
            raise InvalidParameterError(f"integration bounds reversed: [{lb}, {ub}]")
        values = self.cdf(np.asarray([lb, ub]))
        return float(values[1] - values[0])

    def sample(self, k: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``k`` points (uniform within a mass-weighted random bin)."""
        self._require_fitted()
        rng = rng or np.random.default_rng()
        masses = np.diff(self._cum)
        total = masses.sum()
        if total <= 0:
            raise ModelTrainingError("histogram has no mass to sample from")
        bins = rng.choice(self.n_bins, size=k, p=masses / total)
        return rng.uniform(self._edges[bins], self._edges[bins + 1])
