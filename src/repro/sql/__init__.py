"""SQL front end for the supported analytical query class.

Grammar (paper §2.2):

.. code-block:: sql

    SELECT [z,] AF(y) [, AF(y2) ...] FROM t [JOIN t2 ON a = b]
    WHERE x BETWEEN lb AND ub [AND x2 BETWEEN lb2 AND ub2] [AND z = v]
    [GROUP BY z];

with AF in COUNT, SUM, AVG, VARIANCE, STDDEV, PERCENTILE(col, p).
"""

from repro.sql.ast import (
    AggregateCall,
    EqualityPredicate,
    JoinClause,
    Query,
    RangePredicate,
)
from repro.sql.parser import (
    bind_template,
    parse_query,
    parse_template,
    split_literals,
)
from repro.sql.validator import validate_query

__all__ = [
    "AggregateCall",
    "EqualityPredicate",
    "JoinClause",
    "Query",
    "RangePredicate",
    "bind_template",
    "parse_query",
    "parse_template",
    "split_literals",
    "validate_query",
]
