"""Semantic validation of parsed queries.

The parser accepts anything grammatical; this module enforces the
engine-level rules (which aggregates exist, PERCENTILE's restrictions,
group-by consistency) and, when a table registry is supplied, resolves
column references against actual schemas.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import UnknownColumnError, UnknownTableError, UnsupportedQueryError
from repro.sql.ast import SUPPORTED_AGGREGATES, Query
from repro.storage.table import Table


def validate_query(
    query: Query,
    tables: Mapping[str, Table] | None = None,
) -> None:
    """Raise on semantic errors; returns None when the query is acceptable."""
    for agg in query.aggregates:
        if agg.func not in SUPPORTED_AGGREGATES:
            raise UnsupportedQueryError(f"unsupported aggregate {agg.func!r}")
        if agg.func == "PERCENTILE":
            if agg.parameter is None or not 0.0 < agg.parameter < 1.0:
                raise UnsupportedQueryError(
                    "PERCENTILE requires a p in (0, 1), "
                    f"got {agg.parameter!r}"
                )
            if query.group_by is not None:
                raise UnsupportedQueryError(
                    "PERCENTILE with GROUP BY is not supported"
                )
        if agg.func != "COUNT" and agg.column is None:
            raise UnsupportedQueryError(f"{agg.func} requires a column argument")

    if query.select_columns:
        if query.group_by is None:
            raise UnsupportedQueryError(
                "bare columns in SELECT are only allowed with GROUP BY"
            )
        stray = [c for c in query.select_columns if c != query.group_by]
        if stray:
            raise UnsupportedQueryError(
                f"selected columns {stray} are not the GROUP BY column"
            )

    if query.group_by is not None and any(
        r.column == query.group_by for r in query.ranges
    ):
        raise UnsupportedQueryError(
            "a column cannot be both the GROUP BY attribute and a range predicate"
        )

    if tables is None:
        return

    if query.table not in tables:
        raise UnknownTableError(query.table)
    available = set(tables[query.table].column_names)
    for join in query.joins:
        if join.table not in tables:
            raise UnknownTableError(join.table)
        available |= set(tables[join.table].column_names)

    def check(column: str | None) -> None:
        if column is not None and column not in available:
            raise UnknownColumnError(query.table, column)

    for agg in query.aggregates:
        check(agg.column)
    for rng in query.ranges:
        check(rng.column)
    for eq in query.equalities:
        check(eq.column)
    check(query.group_by)
    for join in query.joins:
        check(join.left_key)
        check(join.right_key)
