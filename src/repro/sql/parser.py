"""Recursive-descent parser for the supported query grammar.

Qualified names (``t.col``) are accepted and collapsed to their final
component: every column name in this repository's schemas is unique across
the joined tables (TPC-DS style ``ss_``/``s_`` prefixes), so the qualifier
carries no information.
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sql.ast import (
    SUPPORTED_AGGREGATES,
    AggregateCall,
    EqualityPredicate,
    JoinClause,
    Query,
    RangePredicate,
)
from repro.sql.lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self) -> Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of query")
        self.index += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._advance()
        if token.kind != kind or (value is not None and token.value != value):
            expected = value or kind
            raise SQLSyntaxError(
                f"expected {expected}, got {token.value!r}", position=token.position
            )
        return token

    def _match(self, kind: str, value: str | None = None) -> bool:
        token = self._peek()
        if token is None or token.kind != kind:
            return False
        if value is not None and token.value != value:
            return False
        self.index += 1
        return True

    # -- grammar -----------------------------------------------------------

    def parse(self) -> Query:
        self._expect("KEYWORD", "SELECT")
        select_columns, aggregates = self._select_list()
        self._expect("KEYWORD", "FROM")
        table = self._name()
        joins = []
        while self._match("KEYWORD", "JOIN"):
            joins.append(self._join_tail())
        ranges: list[RangePredicate] = []
        equalities: list[EqualityPredicate] = []
        if self._match("KEYWORD", "WHERE"):
            self._predicate(ranges, equalities)
            while self._match("KEYWORD", "AND"):
                self._predicate(ranges, equalities)
        group_by = None
        if self._match("KEYWORD", "GROUP"):
            self._expect("KEYWORD", "BY")
            group_by = self._name()
        self._match("SYMBOL", ";")
        trailing = self._peek()
        if trailing is not None:
            raise SQLSyntaxError(
                f"unexpected trailing input {trailing.value!r}",
                position=trailing.position,
            )
        if not aggregates:
            raise SQLSyntaxError("query must contain at least one aggregate")
        return Query(
            aggregates=aggregates,
            table=table,
            joins=joins,
            ranges=ranges,
            equalities=equalities,
            group_by=group_by,
            select_columns=select_columns,
        )

    def _select_list(self) -> tuple[list[str], list[AggregateCall]]:
        columns: list[str] = []
        aggregates: list[AggregateCall] = []
        while True:
            token = self._peek()
            if token is None:
                raise SQLSyntaxError("unexpected end of select list")
            if token.kind == "IDENT" and token.value.upper() in SUPPORTED_AGGREGATES:
                aggregates.append(self._aggregate())
            elif token.kind == "IDENT":
                columns.append(self._name())
            else:
                raise SQLSyntaxError(
                    f"unexpected token {token.value!r} in select list",
                    position=token.position,
                )
            if not self._match("SYMBOL", ","):
                break
        return columns, aggregates

    def _aggregate(self) -> AggregateCall:
        name = self._advance()
        func = name.value.upper()
        self._expect("SYMBOL", "(")
        if self._match("SYMBOL", "*"):
            column = None
        else:
            column = self._name()
        parameter = None
        if self._match("SYMBOL", ","):
            number = self._expect("NUMBER")
            parameter = float(number.value)
        self._expect("SYMBOL", ")")
        if func == "PERCENTILE" and parameter is None:
            raise SQLSyntaxError(
                "PERCENTILE requires a percentile argument: PERCENTILE(col, p)",
                position=name.position,
            )
        if func != "PERCENTILE" and parameter is not None:
            raise SQLSyntaxError(
                f"{func} takes a single column argument", position=name.position
            )
        if func != "COUNT" and column is None:
            raise SQLSyntaxError(
                f"{func}(*) is not valid; only COUNT accepts *",
                position=name.position,
            )
        return AggregateCall(func=func, column=column, parameter=parameter)

    def _join_tail(self) -> JoinClause:
        table = self._name()
        self._expect("KEYWORD", "ON")
        left = self._name()
        self._expect("SYMBOL", "=")
        right = self._name()
        return JoinClause(table=table, left_key=left, right_key=right)

    def _predicate(
        self,
        ranges: list[RangePredicate],
        equalities: list[EqualityPredicate],
    ) -> None:
        column = self._name()
        if self._match("KEYWORD", "BETWEEN"):
            low = float(self._expect("NUMBER").value)
            self._expect("KEYWORD", "AND")
            high = float(self._expect("NUMBER").value)
            if high < low:
                raise SQLSyntaxError(
                    f"BETWEEN bounds reversed for {column!r}: {low} > {high}"
                )
            ranges.append(RangePredicate(column=column, low=low, high=high))
            return
        operator = self._peek()
        if operator is not None and operator.kind == "SYMBOL" and (
            operator.value in ("<", "<=", ">", ">=")
        ):
            # One-sided comparisons become half-open ranges.  Strict and
            # inclusive comparisons coincide over the continuous domains
            # DBEst models (a single point carries zero density mass).
            self._advance()
            bound = float(self._expect("NUMBER").value)
            if operator.value in ("<", "<="):
                ranges.append(
                    RangePredicate(column=column, low=float("-inf"), high=bound)
                )
            else:
                ranges.append(
                    RangePredicate(column=column, low=bound, high=float("inf"))
                )
            return
        self._expect("SYMBOL", "=")
        token = self._advance()
        if token.kind == "NUMBER":
            literal = float(token.value)
            value: object = int(literal) if literal.is_integer() else literal
        elif token.kind == "STRING":
            value = token.value
        elif token.kind == "IDENT":
            value = token.value
        else:
            raise SQLSyntaxError(
                f"expected a literal after =, got {token.value!r}",
                position=token.position,
            )
        equalities.append(EqualityPredicate(column=column, value=value))

    def _name(self) -> str:
        """Parse a possibly qualified identifier; return the last component."""
        token = self._expect("IDENT")
        name = token.value
        while self._match("SYMBOL", "."):
            name = self._expect("IDENT").value
        return name


def parse_query(sql: str) -> Query:
    """Parse query text into a :class:`~repro.sql.ast.Query`.

    Raises :class:`~repro.errors.SQLSyntaxError` on malformed input.
    """
    tokens = tokenize(sql)
    if not tokens:
        raise SQLSyntaxError("empty query")
    return _Parser(tokens).parse()


# -- template normalisation (plan-cache hook) ------------------------------
#
# The serving layer's plan cache keys queries by *shape*: the token
# stream with every numeric literal abstracted to a placeholder.  Two
# dashboard queries that differ only in their BETWEEN bounds share one
# parse.  ``split_literals`` produces the shape key plus the stripped
# literals; ``parse_template`` parses the placeholder tokens into a
# *skeleton* Query whose numeric fields hold literal slot indices
# (0.0, 1.0, ...); ``bind_template`` substitutes a concrete literal
# tuple back in, yielding a Query identical to ``parse_query`` on the
# original text.


def split_literals(sql: str) -> tuple[str, tuple[float, ...], list[Token]]:
    """Abstract numeric literals out of a query's token stream.

    Returns ``(template_key, literals, slotted_tokens)``:
    ``template_key`` uniquely identifies the query shape (token kinds
    and values, with every NUMBER replaced by ``?``), ``literals`` are
    the stripped numbers in token order, and ``slotted_tokens`` is the
    token list with each NUMBER's value replaced by its slot index —
    ready for :func:`parse_template`.
    """
    tokens = tokenize(sql)
    if not tokens:
        raise SQLSyntaxError("empty query")
    literals: list[float] = []
    slotted: list[Token] = []
    parts: list[str] = []
    for token in tokens:
        if token.kind == "NUMBER":
            slotted.append(
                Token("NUMBER", repr(float(len(literals))), token.position)
            )
            parts.append("NUMBER\x00?")
            literals.append(float(token.value))
        else:
            slotted.append(token)
            parts.append(f"{token.kind}\x00{token.value}")
    return "\x01".join(parts), tuple(literals), slotted


def parse_template(slotted_tokens: list[Token]) -> Query:
    """Parse slot-substituted tokens into a skeleton :class:`Query`.

    Every numeric field of the skeleton holds the (float) index of the
    literal it stands for; the only other numeric values the grammar can
    produce are the ±inf bounds of one-sided comparisons, which are
    preserved as-is.  Value-dependent checks the real parser performs
    (reversed BETWEEN bounds) are deferred to :func:`bind_template`,
    since slot indices are always in token order.
    """
    return _Parser(list(slotted_tokens)).parse()


def bind_template(skeleton: Query, literals: tuple[float, ...]) -> Query:
    """Substitute concrete literals into a skeleton parsed by
    :func:`parse_template`, returning a fresh independent Query.

    Raises the same :class:`SQLSyntaxError` the direct parse raises for
    reversed BETWEEN bounds (the one value-dependent grammar check).
    """
    import math

    def value_of(slot: float) -> float:
        # Finite numbers in a skeleton are always slot indices; the
        # only parser-introduced constants are the ±inf half-open
        # comparison bounds.
        if math.isinf(slot):
            return slot
        return literals[int(slot)]

    aggregates = [
        AggregateCall(
            func=agg.func,
            column=agg.column,
            parameter=(
                None if agg.parameter is None else value_of(agg.parameter)
            ),
        )
        for agg in skeleton.aggregates
    ]
    ranges = []
    for predicate in skeleton.ranges:
        low = value_of(predicate.low)
        high = value_of(predicate.high)
        both_finite = not (math.isinf(predicate.low) or math.isinf(predicate.high))
        if both_finite and high < low:
            # Only BETWEEN yields two literal bounds in one predicate;
            # mirror the parser's check the skeleton could not make.
            raise SQLSyntaxError(
                f"BETWEEN bounds reversed for {predicate.column!r}: "
                f"{low} > {high}"
            )
        ranges.append(RangePredicate(column=predicate.column, low=low, high=high))
    equalities = []
    for predicate in skeleton.equalities:
        value = predicate.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            literal = literals[int(value)]
            value = int(literal) if float(literal).is_integer() else literal
        equalities.append(EqualityPredicate(column=predicate.column, value=value))
    return Query(
        aggregates=aggregates,
        table=skeleton.table,
        joins=list(skeleton.joins),
        ranges=ranges,
        equalities=equalities,
        group_by=skeleton.group_by,
        select_columns=list(skeleton.select_columns),
    )
