"""Tokenizer for the supported SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLSyntaxError

KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "AND",
        "BETWEEN",
        "GROUP",
        "BY",
        "JOIN",
        "ON",
        "AS",
    }
)

_SYMBOLS = {"(", ")", ",", "=", ";", "*", ".", "<", ">"}
_TWO_CHAR_SYMBOLS = {"<=", ">="}


@dataclass(frozen=True)
class Token:
    """A lexed token: kind is KEYWORD, IDENT, NUMBER, STRING, or SYMBOL."""

    kind: str
    value: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Convert query text into tokens; raises :class:`SQLSyntaxError`."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        # Numbers are detected before symbols so leading-dot literals
        # (".5") and signed literals ("-3") lex as one NUMBER token.
        starts_number = ch.isdigit() or (
            ch in "+-." and i + 1 < n and (text[i + 1].isdigit() or text[i + 1] == ".")
        )
        if text[i : i + 2] in _TWO_CHAR_SYMBOLS:
            tokens.append(Token("SYMBOL", text[i : i + 2], i))
            i += 2
            continue
        if ch in _SYMBOLS and not starts_number:
            tokens.append(Token("SYMBOL", ch, i))
            i += 1
            continue
        if ch == "'" or ch == '"':
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 1
            if j >= n:
                raise SQLSyntaxError("unterminated string literal", position=i)
            tokens.append(Token("STRING", text[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit() or (
            ch in "+-." and i + 1 < n and (text[i + 1].isdigit() or text[i + 1] == ".")
        ):
            j = i + 1 if ch in "+-" else i
            start = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > start:
                    seen_exp = True
                    j += 1
                    if j < n and text[j] in "+-":
                        j += 1
                else:
                    break
            literal = text[start:j]
            try:
                float(literal)
            except ValueError:
                raise SQLSyntaxError(
                    f"malformed number {literal!r}", position=start
                ) from None
            tokens.append(Token("NUMBER", literal, start))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", position=i)
    return tokens
