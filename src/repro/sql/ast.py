"""AST dataclasses for the supported query grammar."""

from __future__ import annotations

from dataclasses import dataclass, field

SUPPORTED_AGGREGATES = frozenset(
    {"COUNT", "SUM", "AVG", "VARIANCE", "STDDEV", "PERCENTILE"}
)


@dataclass(frozen=True)
class AggregateCall:
    """One aggregate in the SELECT list.

    ``column`` is None for ``COUNT(*)``; ``parameter`` carries the p of
    ``PERCENTILE(x, p)`` and is None otherwise.
    """

    func: str
    column: str | None
    parameter: float | None = None

    def __str__(self) -> str:
        inner = self.column if self.column is not None else "*"
        if self.parameter is not None:
            return f"{self.func}({inner}, {self.parameter})"
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class RangePredicate:
    """``column BETWEEN low AND high`` (inclusive on both ends).

    One-sided comparison predicates parse to half-open ranges with an
    infinite bound; they render back as comparisons.
    """

    column: str
    low: float
    high: float

    def __str__(self) -> str:
        import math

        if math.isinf(self.low) and not math.isinf(self.high):
            return f"{self.column} <= {self.high}"
        if math.isinf(self.high) and not math.isinf(self.low):
            return f"{self.column} >= {self.low}"
        return f"{self.column} BETWEEN {self.low} AND {self.high}"


def merged_ranges(ranges: list["RangePredicate"]) -> dict[str, tuple[float, float]]:
    """Intersect all range predicates per column.

    ``x >= 10 AND x <= 20`` yields ``{"x": (10, 20)}``; contradictory
    constraints produce an empty interval (low > high), which evaluators
    treat as selecting nothing.
    """
    merged: dict[str, tuple[float, float]] = {}
    for predicate in ranges:
        low, high = merged.get(
            predicate.column, (float("-inf"), float("inf"))
        )
        merged[predicate.column] = (
            max(low, predicate.low),
            min(high, predicate.high),
        )
    return merged


@dataclass(frozen=True)
class EqualityPredicate:
    """``column = value`` — used for nominal/categorical selections."""

    column: str
    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"{self.column} = '{self.value}'"
        return f"{self.column} = {self.value}"


@dataclass(frozen=True)
class JoinClause:
    """``JOIN table ON left_key = right_key`` (inner equi-join)."""

    table: str
    left_key: str
    right_key: str

    def __str__(self) -> str:
        return f"JOIN {self.table} ON {self.left_key} = {self.right_key}"


@dataclass
class Query:
    """A parsed analytical query."""

    aggregates: list[AggregateCall]
    table: str
    joins: list[JoinClause] = field(default_factory=list)
    ranges: list[RangePredicate] = field(default_factory=list)
    equalities: list[EqualityPredicate] = field(default_factory=list)
    group_by: str | None = None
    select_columns: list[str] = field(default_factory=list)

    def to_sql(self) -> str:
        """Render back to SQL text (used in tests for round-tripping)."""
        select_parts = list(self.select_columns) + [str(a) for a in self.aggregates]
        sql = f"SELECT {', '.join(select_parts)} FROM {self.table}"
        for join in self.joins:
            sql += f" {join}"
        predicates = [str(r) for r in self.ranges] + [str(e) for e in self.equalities]
        if predicates:
            sql += " WHERE " + " AND ".join(predicates)
        if self.group_by:
            sql += f" GROUP BY {self.group_by}"
        return sql + ";"
