"""Per-group model sets for GROUP BY queries.

Paper §2.3 ("Supporting Group By"): each value of the group attribute is
treated as a separate data set — one sample, one density estimator, one
regressor per group.  Paper "Limitations": groups with too few rows are
kept as raw tuples and aggregated exactly, since models over tiny groups
are an overkill.

Queries default to the batched evaluator (:mod:`repro.core.batched`),
which answers all groups in one vectorised pass; the per-group scalar
loop remains as the fallback for model sets the batched path cannot
stack, as the oracle the parity tests compare against, and as an
explicit opt-out (``answer(..., batched=False)``).
"""

from __future__ import annotations

import pickle
import threading
from collections.abc import Callable
from time import perf_counter

import numpy as np

from repro.core.aggregates import Ranges, answer_aggregate
from repro.core.batched_train import GroupPartition, train_batched_models
from repro.core.config import DBEstConfig
from repro.core.model import ColumnSetModel
from repro.core.parallel import chunk_items, map_parallel
from repro.errors import ModelTrainingError
from repro.obs import get_registry
from repro.sampling.reservoir import StreamingReservoir
from repro.sql.ast import AggregateCall


class _StreamState:
    """Ingest-side state of a set trained with ``streaming=True``.

    Holds the flat sample arrays, the sample's :class:`GroupPartition`
    (kept incremental across refreshes via :meth:`GroupPartition.merge`),
    the per-group :class:`StreamingReservoir`, and the exact group
    census.  Everything pickles, so a streaming set survives a trip
    through the model store and keeps absorbing appends afterwards.
    """

    def __init__(
        self,
        sample_x: np.ndarray,
        sample_y: np.ndarray | None,
        sample_groups: np.ndarray,
        part: GroupPartition,
        reservoir: StreamingReservoir,
        full_counts: dict,
        population_scale: float,
    ) -> None:
        self.sample_x = sample_x
        self.sample_y = sample_y
        self.sample_groups = sample_groups
        self.part = part
        self.reservoir = reservoir
        self.full_counts = full_counts
        self.population_scale = population_scale

    @classmethod
    def seed(
        cls,
        sample_x: np.ndarray,
        sample_y: np.ndarray | None,
        sample_groups: np.ndarray,
        sample_part: GroupPartition,
        full_counts: dict,
        population_scale: float,
        config: DBEstConfig,
    ) -> "_StreamState":
        """Adopt a just-trained set's sample as the streaming baseline.

        Modelled groups get a fixed-capacity stratum (pure Algorithm-L
        replacement keeps their sample uniform); raw groups may grow to
        the fleet-average capacity so appends can carry them over the
        promotion threshold.  Groups with zero sample rows stay
        unseeded — their stratum starts fresh on the first append, so
        its sample over-represents post-stream rows; such groups are
        tiny and answered exactly from raw tuples anyway.
        """
        counts = sample_part.counts
        positive = counts[counts > 0]
        default_cap = max(
            int(round(float(positive.mean()))) if positive.size else 0,
            config.min_group_rows,
        )
        reservoir = StreamingReservoir(
            default_cap, seed=getattr(config, "random_seed", None)
        )
        values = sample_part.values.tolist()
        for g, value in enumerate(values):
            k = int(counts[g])
            if k == 0:
                continue
            if k >= config.min_group_rows:
                cap = k
            else:
                cap = max(k, default_cap)
            reservoir.seed_group(
                value, size=k, seen=int(full_counts[value]), capacity=cap
            )
        sample_y = (
            None
            if sample_y is None
            else np.asarray(sample_y, dtype=np.float64).ravel().copy()
        )
        return cls(
            sample_x=np.array(sample_x, dtype=np.float64, copy=True),
            sample_y=sample_y,
            sample_groups=np.asarray(sample_groups).copy(),
            part=sample_part,
            reservoir=reservoir,
            full_counts=dict(full_counts),
            population_scale=float(population_scale),
        )


def _answer_chunk(payload: tuple) -> list[tuple]:
    """Evaluate one chunk of (value, evaluator) pairs.

    Module-level so process pools can pickle it; ``evaluator`` is either a
    :class:`ColumnSetModel` or a :class:`RawGroup` (both picklable), which
    travel to the worker inside the payload.
    """
    from repro.core.parallel import limit_blas_threads

    limit_blas_threads(1)
    pairs, aggregate, ranges, x_columns = payload
    out = []
    for value, evaluator in pairs:
        if isinstance(evaluator, RawGroup):
            out.append((value, evaluator.answer(aggregate, ranges, x_columns)))
        else:
            out.append((value, answer_aggregate(evaluator, aggregate, ranges)))
    return out


def _answer_batched_segment(payload: tuple) -> dict:
    """Evaluate one batched-evaluator segment (module-level: picklable).

    Workers receive a contiguous slice of the flat CSR arrays — much
    cheaper to pickle than the per-group model objects the scalar path
    ships — and run the same vectorised pass over their segment.
    """
    from repro.core.parallel import limit_blas_threads

    limit_blas_threads(1)
    segment, aggregate, ranges = payload
    return segment.answer(aggregate, ranges)


class RawGroup:
    """Exact fallback for a small group: keeps its tuples, answers exactly.

    ``x`` and ``y`` hold *all* rows of the group from the base table (the
    paper: "just keep and process the small number of tuples in the
    group"), so every aggregate is computed exactly.  When the "full"
    data is itself a sample standing in for a larger population (join
    models, where the join result is discarded after sampling),
    ``population_scale`` > 1 scales COUNT and SUM back up.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray | None,
        population_scale: float = 1.0,
    ) -> None:
        self.x = np.asarray(x, dtype=np.float64)
        if self.x.ndim == 1:
            self.x = self.x[:, None]
        self.y = None if y is None else np.asarray(y, dtype=np.float64).ravel()
        self.population_scale = float(population_scale)

    def _mask(self, x_columns: tuple[str, ...], ranges: Ranges) -> np.ndarray:
        mask = np.ones(self.x.shape[0], dtype=bool)
        for j, column in enumerate(x_columns):
            if column in ranges:
                lb, ub = ranges[column]
                mask &= (self.x[:, j] >= lb) & (self.x[:, j] <= ub)
        return mask

    def answer(
        self,
        aggregate: AggregateCall,
        ranges: Ranges,
        x_columns: tuple[str, ...],
    ) -> float:
        mask = self._mask(x_columns, ranges)
        n = int(mask.sum())
        if aggregate.func == "COUNT":
            return float(n) * self.population_scale
        if n == 0:
            return 0.0 if aggregate.func == "SUM" else float("nan")
        target = (
            self.y[mask]
            if self.y is not None and aggregate.column not in x_columns
            else self.x[mask, 0]
        )
        if aggregate.func == "SUM":
            return float(target.sum()) * self.population_scale
        if aggregate.func == "AVG":
            return float(target.mean())
        if aggregate.func == "VARIANCE":
            return float(target.var())
        if aggregate.func == "STDDEV":
            return float(target.std())
        if aggregate.func == "PERCENTILE":
            return float(np.quantile(target, aggregate.parameter))
        raise ModelTrainingError(f"unsupported aggregate {aggregate.func!r}")

    def nbytes(self) -> int:
        return int(self.x.nbytes + (0 if self.y is None else self.y.nbytes))


class GroupByModelSet:
    """All per-group state needed to answer one GROUP BY query template."""

    def __init__(
        self,
        table_name: str,
        x_columns: tuple[str, ...],
        y_column: str | None,
        group_column: str,
        models: dict,
        raw_groups: dict,
        config: DBEstConfig | None = None,
    ) -> None:
        self.table_name = table_name
        self.x_columns = tuple(x_columns)
        self.y_column = y_column
        self.group_column = group_column
        self.models = models
        self.raw_groups = raw_groups
        self.config = config or DBEstConfig()
        # Lazily-built batched evaluator; dropped from pickles (it is
        # derived state and would double the serialised model size).
        self._batched_cache = None
        self._batched_built = False
        # Streaming-ingest state; set by train(streaming=True).
        self._stream: _StreamState | None = None

    # -- training ---------------------------------------------------------

    @classmethod
    def train(
        cls,
        sample_x: np.ndarray,
        sample_y: np.ndarray | None,
        sample_groups: np.ndarray,
        full_groups: np.ndarray,
        full_x: np.ndarray,
        full_y: np.ndarray | None,
        table_name: str,
        x_columns: tuple[str, ...] | list[str],
        y_column: str | None,
        group_column: str,
        config: DBEstConfig | None = None,
        population_scale: float = 1.0,
        batched: bool | None = None,
        streaming: bool = False,
    ) -> "GroupByModelSet":
        """Build per-group models from a uniform sample.

        ``sample_*`` arrays come from the reservoir sample; ``full_groups``
        is the group column over the whole table (used for exact per-group
        population counts — the paper records group values during
        training), and ``full_x`` / ``full_y`` supply the raw tuples kept
        for under-represented groups.  ``population_scale`` > 1 marks
        ``full_*`` as itself being a sample of a ``scale``-times-larger
        population (join models).

        Training defaults to the batched trainer
        (:mod:`repro.core.batched_train`), which partitions the sample
        once and fits every group's density and regressor — 1-D and
        multivariate predicate sets alike — in shared vectorised passes;
        the per-group loop below remains as the parity oracle and as an
        explicit opt-out (``batched=False`` or
        ``DBEstConfig(batched_train=False)``).
        Either way both trainers and the ``RawGroup`` collection share
        one sorted partition per table — no path re-scans the sample or
        the full data per group.

        ``streaming=True`` additionally retains the sample arrays, the
        sample partition, and per-group Algorithm-L reservoir state so
        appended rows can later flow through :meth:`refresh` without a
        full rebuild; a plain ``train`` is exactly the
        everything-dirty case of that incremental path.
        """
        config = config or DBEstConfig()
        sample_x = np.asarray(sample_x, dtype=np.float64)
        if sample_x.ndim == 1:
            sample_x = sample_x[:, None]

        # One sorted partition of the full table supplies the group
        # census (distinct values + population counts) and, below, the
        # RawGroup row slices — np.unique plus per-group masking would
        # sort and scan the table once more each.
        full_part = GroupPartition.from_groups(full_groups)
        group_values = full_part.values
        full_counts = full_part.counts
        if group_values.shape[0] > config.max_groups:
            raise ModelTrainingError(
                f"{group_values.shape[0]} groups exceeds max_groups="
                f"{config.max_groups}; paper-style fallback to another engine"
            )
        values_list = group_values.tolist()
        population = {
            value: int(round(count * population_scale))
            for value, count in zip(values_list, full_counts.tolist())
        }

        sample_part = GroupPartition.from_groups(
            sample_groups, values=group_values
        )
        modelled_mask = sample_part.counts >= config.min_group_rows

        # Raw groups: contiguous slices of one sorted pass over the full
        # table (stable sort keeps each group's original row order, so
        # the arrays match what the old per-group boolean masks built).
        raw_groups: dict = {}
        raw_indices = np.flatnonzero(~modelled_mask)
        if raw_indices.size:
            fx = np.asarray(full_x, dtype=np.float64)
            fy = None if full_y is None else np.asarray(full_y)
            for g in raw_indices.tolist():
                rows = full_part.rows(g)
                gx = fx[rows] if fx.ndim == 1 else fx[rows, :]
                raw_groups[values_list[g]] = RawGroup(
                    gx,
                    None if fy is None else fy[rows],
                    population_scale=population_scale,
                )

        use_batched = (
            batched
            if batched is not None
            else getattr(config, "batched_train", True)
        )
        models: dict | None = None
        if use_batched:
            models = train_batched_models(
                sample_x,
                sample_y,
                sample_part,
                modelled_mask,
                table_name=table_name,
                x_columns=tuple(x_columns),
                y_column=y_column,
                population=population,
                config=config,
            )
        if models is None:
            models = cls._fit_scalar_models(
                sample_x,
                sample_y,
                sample_part,
                np.flatnonzero(modelled_mask),
                values_list,
                population,
                table_name,
                tuple(x_columns),
                y_column,
                config,
            )
        instance = cls(
            table_name=table_name,
            x_columns=tuple(x_columns),
            y_column=y_column,
            group_column=group_column,
            models=models,
            raw_groups=raw_groups,
            config=config,
        )
        if streaming:
            full_count_map = dict(zip(values_list, full_counts.tolist()))
            instance._stream = _StreamState.seed(
                sample_x,
                sample_y,
                np.asarray(sample_groups),
                sample_part,
                full_count_map,
                population_scale,
                config,
            )
        return instance

    @staticmethod
    def _fit_scalar_models(
        sample_x: np.ndarray,
        sample_y: np.ndarray | None,
        sample_part: GroupPartition,
        indices: np.ndarray,
        values_list: list,
        population: dict,
        table_name: str,
        x_columns: tuple[str, ...],
        y_column: str | None,
        config: DBEstConfig,
    ) -> dict:
        """Per-group scalar fits over ``indices`` — the parity-oracle loop.

        Shared by full training (all modelled groups) and streaming
        refresh (the dirty subset), so both paths fit through literally
        the same code when the batched trainer is opted out.
        """
        models: dict = {}
        sample_y_arr = None if sample_y is None else np.asarray(sample_y)
        for g in indices.tolist():
            rows = sample_part.rows(g)
            gx = sample_x[rows, :]
            if gx.shape[1] == 1:
                gx = gx[:, 0]
            gy = None if sample_y_arr is None else sample_y_arr[rows]
            models[values_list[g]] = ColumnSetModel.train(
                gx,
                gy,
                table_name=table_name,
                x_columns=x_columns,
                y_column=y_column,
                population_size=population[values_list[g]],
                config=config,
            )
        return models

    # -- streaming refresh --------------------------------------------------

    @property
    def is_streaming(self) -> bool:
        return getattr(self, "_stream", None) is not None

    def refresh(
        self,
        delta_x: np.ndarray,
        delta_y: np.ndarray | None,
        delta_groups: np.ndarray,
        batched: bool | None = None,
    ) -> list:
        """Absorb appended rows and re-fit only the groups they touch.

        The incremental counterpart of :meth:`train` (which is the
        everything-dirty case of this path): each touched group's
        reservoir stratum decides which delta rows enter the standing
        sample (in-place slot replacements for full strata, appends for
        filling ones), the sample partition is merged incrementally via
        :meth:`GroupPartition.merge`, raw groups append their tuples
        (promoting to a model once their sample crosses
        ``min_group_rows``), and only the dirty groups re-fit through
        the batched trainer (``group_mask``).  The stacked evaluator is
        then spliced — clean groups keep their CSR segments — or, when
        splicing does not apply, invalidated for a lazy rebuild; readers
        holding the old evaluator are never blocked.

        Requires ``train(..., streaming=True)``.  Returns the sorted
        list of refreshed group values.  Concurrent *queries* against
        this set are safe (they see either the old or the new model of
        a group); concurrent refresh calls are not — serialise ingest.
        """
        stream = getattr(self, "_stream", None)
        if stream is None:
            raise ModelTrainingError(
                "refresh requires a set trained with streaming=True"
            )
        config = self.config
        delta_x = np.asarray(delta_x, dtype=np.float64)
        if delta_x.ndim == 1:
            delta_x = delta_x[:, None]
        delta_y_arr = (
            None
            if delta_y is None
            else np.asarray(delta_y, dtype=np.float64).ravel()
        )
        if (stream.sample_y is None) != (delta_y_arr is None):
            raise ModelTrainingError(
                "delta must carry a y column exactly when training did"
            )
        delta_groups = np.asarray(delta_groups)
        if delta_groups.shape[0] != delta_x.shape[0]:
            raise ModelTrainingError(
                "delta_groups and delta_x row counts differ"
            )
        if delta_groups.shape[0] == 0:
            return []

        # -- 1. reservoir decisions against the standing sample ------------
        delta_part = GroupPartition.from_groups(delta_groups)
        part = stream.part
        old_counts = part.counts
        old_pos = {v: i for i, v in enumerate(part.values.tolist())}
        dirty_values = delta_part.values.tolist()
        replacements: list = []  # (flat sample row, delta row)
        append_src: list = []  # delta rows entering the sample, in order
        for g, value in enumerate(dirty_values):
            rows = delta_part.rows(g)
            gi = old_pos.get(value)
            size_before = 0 if gi is None else int(old_counts[gi])
            pending: list = []
            for i, slot in stream.reservoir.absorb(value, rows.shape[0]):
                if slot == -1:
                    pending.append(int(rows[i]))
                elif slot < size_before:
                    flat = int(part.order[part.offsets[gi] + slot])
                    replacements.append((flat, int(rows[i])))
                else:
                    # Replacing a row appended earlier in this batch.
                    pending[slot - size_before] = int(rows[i])
            append_src.extend(pending)
            stream.full_counts[value] = (
                stream.full_counts.get(value, 0) + rows.shape[0]
            )
        for flat, src in replacements:  # in decision order: last wins
            stream.sample_x[flat] = delta_x[src]
            if delta_y_arr is not None:
                stream.sample_y[flat] = delta_y_arr[src]

        # -- 2. incremental partition merge ---------------------------------
        append_idx = np.asarray(append_src, dtype=np.intp)
        appended_groups = delta_groups[append_idx]
        stream.sample_x = np.concatenate(
            [stream.sample_x, delta_x[append_idx]], axis=0
        )
        if delta_y_arr is not None:
            stream.sample_y = np.concatenate(
                [stream.sample_y, delta_y_arr[append_idx]]
            )
        stream.sample_groups = np.concatenate(
            [stream.sample_groups, appended_groups]
        )
        part, _ = part.merge(appended_groups)
        stream.part = part

        # -- 3. raw-group upkeep and promotion ------------------------------
        values_list = part.values.tolist()
        union_pos = {v: i for i, v in enumerate(values_list)}
        counts = part.counts
        modelled_mask = counts >= config.min_group_rows
        promoted: list = []
        for g, value in enumerate(dirty_values):
            if modelled_mask[union_pos[value]]:
                if value in self.raw_groups:
                    promoted.append(value)
                continue
            rows = delta_part.rows(g)
            gx = delta_x[rows]
            gy = None if delta_y_arr is None else delta_y_arr[rows]
            raw = self.raw_groups.get(value)
            if raw is None:
                self.raw_groups[value] = RawGroup(
                    gx, gy, population_scale=stream.population_scale
                )
            else:
                raw.x = np.concatenate([raw.x, gx], axis=0)
                if raw.y is not None:
                    raw.y = np.concatenate([raw.y, gy])

        # -- 4. re-fit exactly the dirty modelled groups --------------------
        dirty_set = set(dirty_values)
        dirty_mask = np.fromiter(
            (v in dirty_set for v in values_list), dtype=bool, count=len(values_list)
        )
        population = {
            v: int(round(stream.full_counts[v] * stream.population_scale))
            for v in values_list
        }
        use_batched = (
            batched
            if batched is not None
            else getattr(config, "batched_train", True)
        )
        registry = get_registry()
        refit_t0 = perf_counter()
        new_models: dict | None = None
        if use_batched:
            new_models = train_batched_models(
                stream.sample_x,
                stream.sample_y,
                part,
                modelled_mask,
                table_name=self.table_name,
                x_columns=self.x_columns,
                y_column=self.y_column,
                population=population,
                config=config,
                group_mask=dirty_mask,
            )
        if new_models is None:
            new_models = self._fit_scalar_models(
                stream.sample_x,
                stream.sample_y,
                part,
                np.flatnonzero(modelled_mask & dirty_mask),
                values_list,
                population,
                self.table_name,
                self.x_columns,
                self.y_column,
                config,
            )
        self.models.update(new_models)
        for value in promoted:
            del self.raw_groups[value]
        refit_s = perf_counter() - refit_t0

        # -- 5. evaluator splice (non-blocking for readers) -----------------
        dirty_sorted = sorted(dirty_set)
        splice_t0 = perf_counter()
        self._refresh_evaluator(dirty_sorted)
        if registry.enabled:
            registry.counter("repro_refresh_total").inc()
            registry.counter("repro_refresh_dirty_groups_total").inc(
                len(dirty_sorted)
            )
            registry.counter("repro_refresh_rows_total").inc(
                int(delta_groups.shape[0])
            )
            registry.histogram("repro_refresh_refit_seconds").observe(refit_s)
            registry.histogram("repro_refresh_splice_seconds").observe(
                perf_counter() - splice_t0
            )
        return dirty_sorted

    def _refresh_evaluator(self, dirty_values: list) -> None:
        """Splice the cached evaluator, or invalidate it for lazy rebuild.

        Readers that already hold the old evaluator keep using it — the
        swap is a plain reference assignment under the build lock.
        """
        lock = self.__dict__.setdefault("_eval_build_lock", threading.Lock())
        with lock:
            old = (
                self._batched_cache
                if getattr(self, "_batched_built", False)
                else None
            )
            new_eval = None
            if old is not None:
                from repro.core.batched import BatchedGroupEvaluator

                new_eval = BatchedGroupEvaluator.splice(
                    old, self, dirty_values
                )
            self._batched_cache = new_eval
            self._batched_built = new_eval is not None

    # -- querying -----------------------------------------------------------

    @property
    def group_values(self) -> list:
        return sorted(list(self.models) + list(self.raw_groups))

    @property
    def n_groups(self) -> int:
        return len(self.models) + len(self.raw_groups)

    def answer_group(
        self, value, aggregate: AggregateCall, ranges: Ranges
    ) -> float:
        """Answer one aggregate for one group value."""
        if value in self.models:
            return answer_aggregate(self.models[value], aggregate, ranges)
        if value in self.raw_groups:
            return self.raw_groups[value].answer(aggregate, ranges, self.x_columns)
        raise KeyError(f"group value {value!r} not seen during training")

    def batched_evaluator(self):
        """The stacked evaluator for this set, or None if unbatchable.

        Built on first use and cached; the cache is dropped on pickling
        (see ``__getstate__``) and rebuilt lazily after a load.
        Thread-safe: the serving layer answers one model set from many
        threads, and the expensive CSR stacking must happen once.
        """
        # getattr: stay compatible with sets pickled before this attribute.
        if not getattr(self, "_batched_built", False):
            # setdefault is atomic under the GIL: concurrent first
            # callers agree on one lock (pickles drop it, see
            # __getstate__, so it may need re-creating after a load).
            lock = self.__dict__.setdefault("_eval_build_lock", threading.Lock())
            with lock:
                if not getattr(self, "_batched_built", False):
                    from repro.core.batched import BatchedGroupEvaluator

                    self._batched_cache = BatchedGroupEvaluator.build(self)
                    self._batched_built = True
        return self._batched_cache

    def answer(
        self,
        aggregate: AggregateCall,
        ranges: Ranges,
        n_workers: int | None = None,
        batched: bool | None = None,
    ) -> dict:
        """Answer one aggregate for every group.

        The default path stacks all groups — 1-D and multivariate
        predicate sets alike — into the batched evaluator and answers
        them in one vectorised pass; the per-group loop the paper's §4.7
        identifies as its Python bottleneck survives only as a fallback.
        ``batched`` overrides the config knob; the rare sets the
        evaluator cannot stack silently use the scalar loop.

        Per-group evaluation is embarrassingly parallel (paper §4.7.1);
        ``n_workers`` > 1 fans work out over a pool.  On the batched path
        the workers receive contiguous slices of the flat arrays; on the
        scalar path they receive pickled per-group models.  The default
        ``process`` pool sidesteps the GIL (the scalar loop is many small
        numpy calls, so threads cannot speed it up — the same observation
        §4.7 of the paper makes about its own Python implementation).
        """
        workers = n_workers if n_workers is not None else self.config.n_workers
        use_batched = (
            batched
            if batched is not None
            else getattr(self.config, "batched_groupby", True)
        )
        if use_batched:
            evaluator = self.batched_evaluator()
            if evaluator is not None:
                return self._answer_batched(evaluator, aggregate, ranges, workers)

        values = self.group_values
        if workers <= 1 or len(values) <= 1:
            return {
                value: self.answer_group(value, aggregate, ranges)
                for value in values
            }

        def evaluator_for(value):
            return self.models.get(value) or self.raw_groups[value]

        chunks = chunk_items(values, workers)
        payloads = [
            (
                [(value, evaluator_for(value)) for value in chunk],
                aggregate,
                ranges,
                self.x_columns,
            )
            for chunk in chunks
        ]
        results = map_parallel(
            _answer_chunk, payloads, workers=workers,
            mode=self.config.parallel_mode,
        )
        return dict(pair for chunk_result in results for pair in chunk_result)

    def _answer_batched(
        self, evaluator, aggregate: AggregateCall, ranges: Ranges, workers: int
    ) -> dict:
        """Run the batched evaluator, fanning segments over a pool if asked."""
        if workers <= 1 or self.n_groups <= 1:
            return evaluator.answer(aggregate, ranges)
        segments = evaluator.split(workers)
        if len(segments) <= 1:
            return evaluator.answer(aggregate, ranges)
        payloads = [(segment, aggregate, ranges) for segment in segments]
        results = map_parallel(
            _answer_batched_segment, payloads, workers=workers,
            mode=self.config.parallel_mode,
        )
        merged: dict = {}
        for part in results:
            merged.update(part)
        return merged

    # -- introspection -----------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_batched_cache"] = None
        state["_batched_built"] = False
        state.pop("_eval_build_lock", None)  # locks do not pickle
        return state

    def size_bytes(self) -> int:
        return len(pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL))

    def __repr__(self) -> str:
        return (
            f"GroupByModelSet(table={self.table_name!r}, x={self.x_columns}, "
            f"y={self.y_column!r}, group={self.group_column!r}, "
            f"n_groups={self.n_groups}, raw={len(self.raw_groups)})"
        )


GroupEvaluator = Callable[[object], tuple]
