"""Per-group model sets for GROUP BY queries.

Paper §2.3 ("Supporting Group By"): each value of the group attribute is
treated as a separate data set — one sample, one density estimator, one
regressor per group.  Paper "Limitations": groups with too few rows are
kept as raw tuples and aggregated exactly, since models over tiny groups
are an overkill.

Queries default to the batched evaluator (:mod:`repro.core.batched`),
which answers all groups in one vectorised pass; the per-group scalar
loop remains as the fallback for model sets the batched path cannot
stack, as the oracle the parity tests compare against, and as an
explicit opt-out (``answer(..., batched=False)``).
"""

from __future__ import annotations

import pickle
import threading
from collections.abc import Callable

import numpy as np

from repro.core.aggregates import Ranges, answer_aggregate
from repro.core.batched_train import GroupPartition, train_batched_models
from repro.core.config import DBEstConfig
from repro.core.model import ColumnSetModel
from repro.core.parallel import chunk_items, map_parallel
from repro.errors import ModelTrainingError
from repro.sql.ast import AggregateCall


def _answer_chunk(payload: tuple) -> list[tuple]:
    """Evaluate one chunk of (value, evaluator) pairs.

    Module-level so process pools can pickle it; ``evaluator`` is either a
    :class:`ColumnSetModel` or a :class:`RawGroup` (both picklable), which
    travel to the worker inside the payload.
    """
    from repro.core.parallel import limit_blas_threads

    limit_blas_threads(1)
    pairs, aggregate, ranges, x_columns = payload
    out = []
    for value, evaluator in pairs:
        if isinstance(evaluator, RawGroup):
            out.append((value, evaluator.answer(aggregate, ranges, x_columns)))
        else:
            out.append((value, answer_aggregate(evaluator, aggregate, ranges)))
    return out


def _answer_batched_segment(payload: tuple) -> dict:
    """Evaluate one batched-evaluator segment (module-level: picklable).

    Workers receive a contiguous slice of the flat CSR arrays — much
    cheaper to pickle than the per-group model objects the scalar path
    ships — and run the same vectorised pass over their segment.
    """
    from repro.core.parallel import limit_blas_threads

    limit_blas_threads(1)
    segment, aggregate, ranges = payload
    return segment.answer(aggregate, ranges)


class RawGroup:
    """Exact fallback for a small group: keeps its tuples, answers exactly.

    ``x`` and ``y`` hold *all* rows of the group from the base table (the
    paper: "just keep and process the small number of tuples in the
    group"), so every aggregate is computed exactly.  When the "full"
    data is itself a sample standing in for a larger population (join
    models, where the join result is discarded after sampling),
    ``population_scale`` > 1 scales COUNT and SUM back up.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray | None,
        population_scale: float = 1.0,
    ) -> None:
        self.x = np.asarray(x, dtype=np.float64)
        if self.x.ndim == 1:
            self.x = self.x[:, None]
        self.y = None if y is None else np.asarray(y, dtype=np.float64).ravel()
        self.population_scale = float(population_scale)

    def _mask(self, x_columns: tuple[str, ...], ranges: Ranges) -> np.ndarray:
        mask = np.ones(self.x.shape[0], dtype=bool)
        for j, column in enumerate(x_columns):
            if column in ranges:
                lb, ub = ranges[column]
                mask &= (self.x[:, j] >= lb) & (self.x[:, j] <= ub)
        return mask

    def answer(
        self,
        aggregate: AggregateCall,
        ranges: Ranges,
        x_columns: tuple[str, ...],
    ) -> float:
        mask = self._mask(x_columns, ranges)
        n = int(mask.sum())
        if aggregate.func == "COUNT":
            return float(n) * self.population_scale
        if n == 0:
            return 0.0 if aggregate.func == "SUM" else float("nan")
        target = (
            self.y[mask]
            if self.y is not None and aggregate.column not in x_columns
            else self.x[mask, 0]
        )
        if aggregate.func == "SUM":
            return float(target.sum()) * self.population_scale
        if aggregate.func == "AVG":
            return float(target.mean())
        if aggregate.func == "VARIANCE":
            return float(target.var())
        if aggregate.func == "STDDEV":
            return float(target.std())
        if aggregate.func == "PERCENTILE":
            return float(np.quantile(target, aggregate.parameter))
        raise ModelTrainingError(f"unsupported aggregate {aggregate.func!r}")

    def nbytes(self) -> int:
        return int(self.x.nbytes + (0 if self.y is None else self.y.nbytes))


class GroupByModelSet:
    """All per-group state needed to answer one GROUP BY query template."""

    def __init__(
        self,
        table_name: str,
        x_columns: tuple[str, ...],
        y_column: str | None,
        group_column: str,
        models: dict,
        raw_groups: dict,
        config: DBEstConfig | None = None,
    ) -> None:
        self.table_name = table_name
        self.x_columns = tuple(x_columns)
        self.y_column = y_column
        self.group_column = group_column
        self.models = models
        self.raw_groups = raw_groups
        self.config = config or DBEstConfig()
        # Lazily-built batched evaluator; dropped from pickles (it is
        # derived state and would double the serialised model size).
        self._batched_cache = None
        self._batched_built = False

    # -- training ---------------------------------------------------------

    @classmethod
    def train(
        cls,
        sample_x: np.ndarray,
        sample_y: np.ndarray | None,
        sample_groups: np.ndarray,
        full_groups: np.ndarray,
        full_x: np.ndarray,
        full_y: np.ndarray | None,
        table_name: str,
        x_columns: tuple[str, ...] | list[str],
        y_column: str | None,
        group_column: str,
        config: DBEstConfig | None = None,
        population_scale: float = 1.0,
        batched: bool | None = None,
    ) -> "GroupByModelSet":
        """Build per-group models from a uniform sample.

        ``sample_*`` arrays come from the reservoir sample; ``full_groups``
        is the group column over the whole table (used for exact per-group
        population counts — the paper records group values during
        training), and ``full_x`` / ``full_y`` supply the raw tuples kept
        for under-represented groups.  ``population_scale`` > 1 marks
        ``full_*`` as itself being a sample of a ``scale``-times-larger
        population (join models).

        Training defaults to the batched trainer
        (:mod:`repro.core.batched_train`), which partitions the sample
        once and fits every group's density and regressor — 1-D and
        multivariate predicate sets alike — in shared vectorised passes;
        the per-group loop below remains as the parity oracle and as an
        explicit opt-out (``batched=False`` or
        ``DBEstConfig(batched_train=False)``).
        Either way both trainers and the ``RawGroup`` collection share
        one sorted partition per table — no path re-scans the sample or
        the full data per group.
        """
        config = config or DBEstConfig()
        sample_x = np.asarray(sample_x, dtype=np.float64)
        if sample_x.ndim == 1:
            sample_x = sample_x[:, None]

        # One sorted partition of the full table supplies the group
        # census (distinct values + population counts) and, below, the
        # RawGroup row slices — np.unique plus per-group masking would
        # sort and scan the table once more each.
        full_part = GroupPartition.from_groups(full_groups)
        group_values = full_part.values
        full_counts = full_part.counts
        if group_values.shape[0] > config.max_groups:
            raise ModelTrainingError(
                f"{group_values.shape[0]} groups exceeds max_groups="
                f"{config.max_groups}; paper-style fallback to another engine"
            )
        values_list = group_values.tolist()
        population = {
            value: int(round(count * population_scale))
            for value, count in zip(values_list, full_counts.tolist())
        }

        sample_part = GroupPartition.from_groups(
            sample_groups, values=group_values
        )
        modelled_mask = sample_part.counts >= config.min_group_rows

        # Raw groups: contiguous slices of one sorted pass over the full
        # table (stable sort keeps each group's original row order, so
        # the arrays match what the old per-group boolean masks built).
        raw_groups: dict = {}
        raw_indices = np.flatnonzero(~modelled_mask)
        if raw_indices.size:
            fx = np.asarray(full_x, dtype=np.float64)
            fy = None if full_y is None else np.asarray(full_y)
            for g in raw_indices.tolist():
                rows = full_part.rows(g)
                gx = fx[rows] if fx.ndim == 1 else fx[rows, :]
                raw_groups[values_list[g]] = RawGroup(
                    gx,
                    None if fy is None else fy[rows],
                    population_scale=population_scale,
                )

        use_batched = (
            batched
            if batched is not None
            else getattr(config, "batched_train", True)
        )
        models: dict | None = None
        if use_batched:
            models = train_batched_models(
                sample_x,
                sample_y,
                sample_part,
                modelled_mask,
                table_name=table_name,
                x_columns=tuple(x_columns),
                y_column=y_column,
                population=population,
                config=config,
            )
        if models is None:
            models = {}
            sample_y_arr = None if sample_y is None else np.asarray(sample_y)
            for g in np.flatnonzero(modelled_mask).tolist():
                rows = sample_part.rows(g)
                gx = sample_x[rows, :]
                if gx.shape[1] == 1:
                    gx = gx[:, 0]
                gy = None if sample_y_arr is None else sample_y_arr[rows]
                models[values_list[g]] = ColumnSetModel.train(
                    gx,
                    gy,
                    table_name=table_name,
                    x_columns=tuple(x_columns),
                    y_column=y_column,
                    population_size=population[values_list[g]],
                    config=config,
                )
        return cls(
            table_name=table_name,
            x_columns=tuple(x_columns),
            y_column=y_column,
            group_column=group_column,
            models=models,
            raw_groups=raw_groups,
            config=config,
        )

    # -- querying -----------------------------------------------------------

    @property
    def group_values(self) -> list:
        return sorted(list(self.models) + list(self.raw_groups))

    @property
    def n_groups(self) -> int:
        return len(self.models) + len(self.raw_groups)

    def answer_group(
        self, value, aggregate: AggregateCall, ranges: Ranges
    ) -> float:
        """Answer one aggregate for one group value."""
        if value in self.models:
            return answer_aggregate(self.models[value], aggregate, ranges)
        if value in self.raw_groups:
            return self.raw_groups[value].answer(aggregate, ranges, self.x_columns)
        raise KeyError(f"group value {value!r} not seen during training")

    def batched_evaluator(self):
        """The stacked evaluator for this set, or None if unbatchable.

        Built on first use and cached; the cache is dropped on pickling
        (see ``__getstate__``) and rebuilt lazily after a load.
        Thread-safe: the serving layer answers one model set from many
        threads, and the expensive CSR stacking must happen once.
        """
        # getattr: stay compatible with sets pickled before this attribute.
        if not getattr(self, "_batched_built", False):
            # setdefault is atomic under the GIL: concurrent first
            # callers agree on one lock (pickles drop it, see
            # __getstate__, so it may need re-creating after a load).
            lock = self.__dict__.setdefault("_eval_build_lock", threading.Lock())
            with lock:
                if not getattr(self, "_batched_built", False):
                    from repro.core.batched import BatchedGroupEvaluator

                    self._batched_cache = BatchedGroupEvaluator.build(self)
                    self._batched_built = True
        return self._batched_cache

    def answer(
        self,
        aggregate: AggregateCall,
        ranges: Ranges,
        n_workers: int | None = None,
        batched: bool | None = None,
    ) -> dict:
        """Answer one aggregate for every group.

        The default path stacks all groups — 1-D and multivariate
        predicate sets alike — into the batched evaluator and answers
        them in one vectorised pass; the per-group loop the paper's §4.7
        identifies as its Python bottleneck survives only as a fallback.
        ``batched`` overrides the config knob; the rare sets the
        evaluator cannot stack silently use the scalar loop.

        Per-group evaluation is embarrassingly parallel (paper §4.7.1);
        ``n_workers`` > 1 fans work out over a pool.  On the batched path
        the workers receive contiguous slices of the flat arrays; on the
        scalar path they receive pickled per-group models.  The default
        ``process`` pool sidesteps the GIL (the scalar loop is many small
        numpy calls, so threads cannot speed it up — the same observation
        §4.7 of the paper makes about its own Python implementation).
        """
        workers = n_workers if n_workers is not None else self.config.n_workers
        use_batched = (
            batched
            if batched is not None
            else getattr(self.config, "batched_groupby", True)
        )
        if use_batched:
            evaluator = self.batched_evaluator()
            if evaluator is not None:
                return self._answer_batched(evaluator, aggregate, ranges, workers)

        values = self.group_values
        if workers <= 1 or len(values) <= 1:
            return {
                value: self.answer_group(value, aggregate, ranges)
                for value in values
            }

        def evaluator_for(value):
            return self.models.get(value) or self.raw_groups[value]

        chunks = chunk_items(values, workers)
        payloads = [
            (
                [(value, evaluator_for(value)) for value in chunk],
                aggregate,
                ranges,
                self.x_columns,
            )
            for chunk in chunks
        ]
        results = map_parallel(
            _answer_chunk, payloads, workers=workers,
            mode=self.config.parallel_mode,
        )
        return dict(pair for chunk_result in results for pair in chunk_result)

    def _answer_batched(
        self, evaluator, aggregate: AggregateCall, ranges: Ranges, workers: int
    ) -> dict:
        """Run the batched evaluator, fanning segments over a pool if asked."""
        if workers <= 1 or self.n_groups <= 1:
            return evaluator.answer(aggregate, ranges)
        segments = evaluator.split(workers)
        if len(segments) <= 1:
            return evaluator.answer(aggregate, ranges)
        payloads = [(segment, aggregate, ranges) for segment in segments]
        results = map_parallel(
            _answer_batched_segment, payloads, workers=workers,
            mode=self.config.parallel_mode,
        )
        merged: dict = {}
        for part in results:
            merged.update(part)
        return merged

    # -- introspection -----------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_batched_cache"] = None
        state["_batched_built"] = False
        state.pop("_eval_build_lock", None)  # locks do not pickle
        return state

    def size_bytes(self) -> int:
        return len(pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL))

    def __repr__(self) -> str:
        return (
            f"GroupByModelSet(table={self.table_name!r}, x={self.x_columns}, "
            f"y={self.y_column!r}, group={self.group_column!r}, "
            f"n_groups={self.n_groups}, raw={len(self.raw_groups)})"
        )


GroupEvaluator = Callable[[object], tuple]
