"""The DBEst engine façade.

Ties the pieces together exactly as the paper's architecture figure does:
a sampling module (reservoir sampling over registered tables), a models
module (column-set and group-by models), and a model catalog.  Queries
arriving as SQL are parsed, matched against the catalog, and answered
from models; queries no model can answer go to the configured fallback
engine (paper: "the query will be sent to an underlying system in the
level below").
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence
from functools import lru_cache

import numpy as np

from repro.core.advisor import DegradedRoute, route_degraded
from repro.core.aggregates import answer_aggregate
from repro.core.bundles import ModelBundle
from repro.core.catalog import ModelCatalog, ModelKey
from repro.core.config import DBEstConfig
from repro.core.groupby import GroupByModelSet
from repro.core.joins import (
    join_table_name,
    precompute_join_sample,
    sampled_join_sample,
)
from repro.core.model import ColumnSetModel
from repro.core.result import QueryResult
from repro.errors import (
    InvalidParameterError,
    ModelNotFoundError,
    UnknownTableError,
    UnsupportedQueryError,
)
from repro.obs import register_global_collector
from repro.sampling.reservoir import reservoir_sample_indices
from repro.sql.ast import AggregateCall, Query
from repro.sql.parser import parse_query
from repro.sql.validator import validate_query
from repro.storage.table import Table


@lru_cache(maxsize=512)
def _parse_validated(sql: str) -> Query:
    """Parse + validate one SQL string, memoised on the exact text.

    Query objects are treated as immutable once parsed (nothing in the
    engine mutates them), so repeated executions of the same string —
    the common case for dashboard-style workloads — skip the tokenizer,
    the recursive-descent parser, and semantic validation entirely.
    Queries that fail to parse or validate raise on every call
    (``lru_cache`` does not cache exceptions), preserving error
    behaviour exactly.
    """
    query = parse_query(sql)
    validate_query(query)
    return query


def parse_cache_info():
    """Hit/miss statistics of the engine-wide parse cache."""
    return _parse_validated.cache_info()


def parse_cache_clear() -> None:
    """Drop all memoised parses (mainly for tests)."""
    _parse_validated.cache_clear()


def _publish_parse_cache(registry) -> None:
    """Pull collector surfacing the engine-wide parse LRU as gauges."""
    info = _parse_validated.cache_info()
    registry.gauge("repro_parse_cache_hits").set(info.hits)
    registry.gauge("repro_parse_cache_misses").set(info.misses)
    registry.gauge("repro_parse_cache_entries").set(info.currsize)
    registry.gauge("repro_parse_cache_max_entries").set(info.maxsize or 0)


# The parse cache is a module-level singleton, so its collector lives
# for the life of the process regardless of which registry is active.
register_global_collector(_publish_parse_cache)


class DBEst:
    """Model-based approximate query processing engine.

    Typical use::

        engine = DBEst()
        engine.register_table(store_sales)
        engine.build_model("store_sales", x="ss_list_price",
                           y="ss_wholesale_cost", sample_size=10_000)
        result = engine.execute(
            "SELECT AVG(ss_wholesale_cost) FROM store_sales "
            "WHERE ss_list_price BETWEEN 20 AND 40;")
        print(result.scalar())
    """

    def __init__(
        self,
        config: DBEstConfig | None = None,
        fallback=None,
    ) -> None:
        self.config = config or DBEstConfig()
        self.catalog = ModelCatalog()
        self.tables: dict[str, Table] = {}
        self.fallback = fallback
        self.build_stats: dict[ModelKey, dict] = {}
        self._rng = np.random.default_rng(self.config.random_seed)
        # Degraded-path engines (exact scan / uniform / stratified AQP
        # over registered base tables), built lazily on first use and
        # keyed by (engine kind, tables, stratification column).
        self._degraded_engines: dict[tuple, object] = {}
        self._degrade_lock = threading.Lock()

    def __getstate__(self) -> dict:
        # The degraded-engine cache and its lock are process-local
        # conveniences: strip them so engines stay picklable for the
        # multi-process harness, and rebuild lazily after unpickling.
        state = self.__dict__.copy()
        state["_degraded_engines"] = {}
        del state["_degrade_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._degrade_lock = threading.Lock()

    # -- data registration -------------------------------------------------

    def register_table(self, table: Table) -> None:
        """Make a base table available for sampling and model building."""
        if not table.name:
            raise InvalidParameterError("tables must be named to be registered")
        self.tables[table.name] = table

    def _get_table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    # -- model building ------------------------------------------------------

    def build_model(
        self,
        table: str,
        x: str | Sequence[str],
        y: str | None = None,
        sample_size: int | None = None,
        group_by: str | None = None,
        streaming: bool = False,
    ) -> ModelKey:
        """Sample a table and train a (group-by) column-set model.

        Returns the catalog key under which the model is registered.  The
        sample is discarded after training (paper §3: "any samples it
        builds are deleted after model training") — unless
        ``streaming=True`` (group-by models only), which retains the
        per-group reservoir state so later :meth:`append_rows` calls can
        refresh just the touched groups instead of retraining.
        """
        base = self._get_table(table)
        x_columns = (x,) if isinstance(x, str) else tuple(x)
        size = sample_size or self.config.default_sample_size

        t0 = time.perf_counter()
        indices = reservoir_sample_indices(base.n_rows, size, rng=self._rng)
        sample_x = self._feature_matrix(base, x_columns, indices)
        sample_y = None if y is None else base[y][indices].astype(np.float64)
        sampling_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        if group_by is None:
            if streaming:
                raise InvalidParameterError(
                    "streaming=True requires group_by (per-group reservoirs)"
                )
            model: object = ColumnSetModel.train(
                sample_x if len(x_columns) > 1 else sample_x[:, 0],
                sample_y,
                table_name=table,
                x_columns=x_columns,
                y_column=y,
                population_size=base.n_rows,
                config=self.config,
            )
        else:
            model = GroupByModelSet.train(
                sample_x,
                sample_y,
                sample_groups=base[group_by][indices],
                full_groups=base[group_by],
                full_x=self._feature_matrix(
                    base, x_columns, np.arange(base.n_rows)
                ),
                full_y=None if y is None else base[y],
                table_name=table,
                x_columns=x_columns,
                y_column=y,
                group_column=group_by,
                config=self.config,
                streaming=streaming,
            )
        training_seconds = time.perf_counter() - t0

        key = ModelKey.make(table, x_columns, y, group_by)
        self.catalog.register(key, model, replace=True)
        self.build_stats[key] = {
            "sampling_seconds": sampling_seconds,
            "training_seconds": training_seconds,
            "sample_size": int(min(size, base.n_rows)),
            "model_bytes": model.size_bytes(),
        }
        return key

    def append_rows(self, table: str, rows: Table) -> dict:
        """Append rows to a registered table and refresh its models.

        The streaming-ingest entry point: the delta is concatenated onto
        the registered (immutable) table, then every catalog model over
        that table trained with ``streaming=True`` absorbs the new rows
        through :meth:`GroupByModelSet.refresh` — per-group reservoirs
        decide which rows enter the standing sample, and only the dirty
        groups re-fit.  Each refreshed model is re-registered (bumping
        the catalog change-log) or, when the engine serves from a
        :class:`~repro.serve.ModelStore`, republished as a new record
        generation via ``write_refresh`` — either way downstream answer
        caches invalidate exactly the refreshed keys.  Models without
        streaming state are left stale and reported under ``"skipped"``
        (retrain them with :meth:`build_model` to pick up the rows).

        Returns ``{"rows": n, "refreshed": {key: [group values]},
        "skipped": [keys]}``.
        """
        base = self._get_table(table)
        if rows.n_rows == 0:
            return {"rows": 0, "refreshed": {}, "skipped": []}
        self.tables[table] = base.concat(rows)
        refreshed: dict[ModelKey, list] = {}
        skipped: list[ModelKey] = []
        for key in list(self.catalog.keys()):
            if key.table != table:
                continue
            model = self.catalog.get(key)
            hydrate = getattr(model, "_hydrated", None)
            if hydrate is not None:  # mapped store wrapper -> heap set
                model = hydrate()
            if not getattr(model, "is_streaming", False):
                skipped.append(key)
                continue
            delta_x = self._feature_matrix(
                rows, key.x_columns, np.arange(rows.n_rows)
            )
            delta_y = (
                None
                if key.y_column is None
                else rows[key.y_column].astype(np.float64)
            )
            dirty = model.refresh(delta_x, delta_y, rows[key.group_by])
            register = getattr(self.catalog, "register", None)
            if register is not None:
                register(key, model, replace=True)
            else:
                self.catalog.write_refresh(key, model)
            refreshed[key] = dirty
        return {"rows": int(rows.n_rows), "refreshed": refreshed, "skipped": skipped}

    def build_join_model(
        self,
        left: str,
        right: str,
        left_key: str,
        right_key: str,
        x: str | Sequence[str],
        y: str | None = None,
        sample_size: int | None = None,
        group_by: str | None = None,
        strategy: str = "precompute",
        key_fraction: float = 0.1,
    ) -> ModelKey:
        """Build models over a join result (paper §2.2, two strategies).

        The model is registered under the virtual table name
        ``{left}_join_{right}``, which is also what join queries resolve
        to at execution time.
        """
        left_table = self._get_table(left)
        right_table = self._get_table(right)
        size = sample_size or self.config.default_sample_size

        t0 = time.perf_counter()
        if strategy == "precompute":
            sample, population = precompute_join_sample(
                left_table, right_table, left_key, right_key, size, rng=self._rng
            )
        elif strategy == "sampled":
            sample, population = sampled_join_sample(
                left_table,
                right_table,
                left_key,
                right_key,
                size,
                key_fraction=key_fraction,
                rng=self._rng,
            )
        else:
            raise InvalidParameterError(
                f"strategy must be 'precompute' or 'sampled', got {strategy!r}"
            )
        sampling_seconds = time.perf_counter() - t0

        x_columns = (x,) if isinstance(x, str) else tuple(x)
        virtual = join_table_name(left, right)
        all_idx = np.arange(sample.n_rows)
        sample_x = self._feature_matrix(sample, x_columns, all_idx)
        sample_y = None if y is None else sample[y].astype(np.float64)

        t0 = time.perf_counter()
        if group_by is None:
            model: object = ColumnSetModel.train(
                sample_x if len(x_columns) > 1 else sample_x[:, 0],
                sample_y,
                table_name=virtual,
                x_columns=x_columns,
                y_column=y,
                population_size=population,
                config=self.config,
            )
        else:
            # For joins the training sample doubles as the "full" data:
            # the join result itself was discarded (that is the point of
            # strategy 1) so group populations are estimated by scaling
            # the sample's group counts up to the join cardinality.
            scale = population / max(sample.n_rows, 1)
            model = GroupByModelSet.train(
                sample_x,
                sample_y,
                sample_groups=sample[group_by],
                full_groups=sample[group_by],
                full_x=sample_x,
                full_y=sample_y,
                table_name=virtual,
                x_columns=x_columns,
                y_column=y,
                group_column=group_by,
                config=self.config,
                population_scale=scale,
            )
        training_seconds = time.perf_counter() - t0

        key = ModelKey.make(virtual, x_columns, y, group_by)
        self.catalog.register(key, model, replace=True)
        self.build_stats[key] = {
            "sampling_seconds": sampling_seconds,
            "training_seconds": training_seconds,
            "sample_size": sample.n_rows,
            "model_bytes": model.size_bytes(),
        }
        return key

    @staticmethod
    def _feature_matrix(
        table: Table, x_columns: tuple[str, ...], indices: np.ndarray
    ) -> np.ndarray:
        return np.column_stack(
            [table[c][indices].astype(np.float64) for c in x_columns]
        )

    # -- bundles ------------------------------------------------------------

    def bundle_model(self, key: ModelKey, path) -> ModelBundle:
        """Serialise a group-by model set to disk and swap in a lazy handle."""
        model = self.catalog.get(key)
        if not isinstance(model, GroupByModelSet):
            raise InvalidParameterError(
                "only GROUP BY model sets can be bundled"
            )
        bundle = ModelBundle.write(model, path)
        self.catalog.register(key, bundle, replace=True)
        return bundle

    def pack_store(
        self,
        path,
        store_format: str | None = None,
        cache_bytes: int | None = None,
    ):
        """Write this engine's catalog as an on-disk model store.

        ``store_format`` overrides ``config.store_format`` ("pickle" |
        "mmap"); returns the open :class:`~repro.serve.store.ModelStore`
        handle, ready to be assigned as another engine's catalog.
        """
        from repro.serve.store import ModelStore

        return ModelStore.write(
            self.catalog,
            path,
            cache_bytes=cache_bytes,
            config=self.config,
            store_format=store_format,
        )

    # -- query execution ------------------------------------------------------

    def execute(self, sql: str | Query) -> QueryResult:
        """Answer an analytical query from models (or the fallback engine)."""
        if isinstance(sql, str):
            query = _parse_validated(sql)
        else:
            query = sql
            validate_query(query)
        start = time.perf_counter()
        try:
            values = self._answer_from_models(query)
            source = "model"
        except (ModelNotFoundError, UnsupportedQueryError):
            if self.fallback is None:
                raise
            fallback_result = self.fallback.execute(query)
            values = fallback_result.values
            source = "fallback"
        elapsed = time.perf_counter() - start
        return QueryResult(
            values=values,
            source=source,
            elapsed_seconds=elapsed,
            sql=sql if isinstance(sql, str) else query.to_sql(),
        )

    def _answer_from_models(self, query: Query) -> dict:
        from repro.sql.ast import merged_ranges

        table = self._resolve_table_name(query)
        ranges = merged_ranges(query.ranges)
        values: dict[str, float | dict] = {}
        for aggregate in query.aggregates:
            values[str(aggregate)] = self.answer_one(
                table, aggregate, ranges, query
            )
        return values

    @staticmethod
    def _resolve_table_name(query: Query) -> str:
        name = query.table
        for join in query.joins:
            name = join_table_name(name, join.table)
        return name

    @staticmethod
    def _lookup_columns(
        aggregate: AggregateCall,
        ranges: dict[str, tuple[float, float]],
    ) -> tuple[tuple[str, ...], str | None]:
        """The (x_columns, y_column) catalog lookup an aggregate needs.

        ``x_columns == (None,)`` marks an untargetable COUNT(*) without
        any range predicate; callers decide whether to raise or bail.
        """
        x_columns = tuple(sorted(ranges)) if ranges else (aggregate.column,)
        # Density-based aggregates only need a model whose x matches.
        density_based = aggregate.func in ("COUNT", "PERCENTILE") or (
            aggregate.column in x_columns
        )
        y_lookup = None if density_based else aggregate.column
        return x_columns, y_lookup

    def model_key_for(
        self,
        table: str,
        aggregate: AggregateCall,
        ranges: dict[str, tuple[float, float]],
        query: Query,
    ) -> ModelKey | None:
        """The registered catalog key :meth:`answer_one` would resolve.

        Returns None when the aggregate never reaches a model:
        contradictory ranges, untargetable COUNT(*), unsupported
        predicate shapes, or no registered model (fallback territory).
        Used by the serving layer to key answer caches and per-model
        locks on the *resolved* model identity, so two query shapes
        that resolve to the same superset model share one entry.
        """
        if any(high < low for low, high in ranges.values()):
            return None
        x_columns, y_lookup = self._lookup_columns(aggregate, ranges)
        if x_columns == (None,):
            return None
        if query.group_by is not None:
            if query.equalities:
                return None
            group = query.group_by
        elif query.equalities:
            if len(query.equalities) > 1:
                return None
            group = query.equalities[0].column
        else:
            group = None
        try:
            return self.catalog.resolve(table, x_columns, y_lookup, group)
        except ModelNotFoundError:
            return None

    def answer_one(
        self,
        table: str,
        aggregate: AggregateCall,
        ranges: dict[str, tuple[float, float]],
        query: Query,
    ) -> float | dict:
        """Answer a single aggregate of a parsed query from models.

        ``table`` is the (join-resolved) table name and ``ranges`` the
        merged range predicates; ``query`` supplies GROUP BY / equality
        context.  This is the per-aggregate core of :meth:`execute`,
        exposed so the serving layer can compute each aggregate of a
        coalesced batch exactly once.
        """
        if any(high < low for low, high in ranges.values()):
            # Contradictory comparison predicates select nothing.
            if query.group_by is not None:
                return {}
            return 0.0 if aggregate.func in ("COUNT", "SUM") else float("nan")
        x_columns, y_lookup = self._lookup_columns(aggregate, ranges)
        if x_columns == (None,):
            raise UnsupportedQueryError(
                "COUNT(*) without a range predicate has no model to target"
            )

        if query.group_by is not None:
            if query.equalities:
                # Group-by models carry no categorical filter: silently
                # ignoring the equality would return unfiltered per-group
                # answers.  Raising routes the query to the fallback
                # engine, which does apply it.
                raise UnsupportedQueryError(
                    "equality predicates cannot be combined with GROUP BY "
                    "on the model path"
                )
            model = self.catalog.find(table, x_columns, y_lookup, query.group_by)
            return model.answer(
                aggregate,
                ranges,
                n_workers=self.config.n_workers,
                batched=self.config.batched_groupby,
            )

        # Nominal-categorical selection: equality on a group-by column is
        # answered by the matching group's model (paper §2.3, "Supporting
        # Categorical Attributes").
        if query.equalities:
            if len(query.equalities) > 1:
                raise UnsupportedQueryError(
                    "at most one equality predicate is supported"
                )
            eq = query.equalities[0]
            model = self.catalog.find(table, x_columns, y_lookup, eq.column)
            return model.answer_group(eq.value, aggregate, ranges)

        model = self.catalog.find(table, x_columns, y_lookup)
        return answer_aggregate(model, aggregate, ranges)

    # -- graceful degradation ----------------------------------------------

    def answer_degraded(
        self,
        table: str,
        aggregate: AggregateCall,
        ranges: dict[str, tuple[float, float]],
        query: Query,
    ) -> tuple[float | dict, DegradedRoute]:
        """Answer one aggregate *without* the model path.

        The serving layer calls this when the model path is unavailable
        (circuit breaker open, corrupt store record) or a deadline
        leaves no room for it: :func:`~repro.core.advisor.route_degraded`
        picks an exact scan, a stratified sample, or a uniform sample
        over the registered base tables, and the chosen engine answers
        within the route's quoted error bound.  Returns the value and
        the route taken; raises :class:`UnsupportedQueryError` when no
        base table is registered to degrade onto (e.g. an engine serving
        purely from a packed model store).
        """
        involved = [query.table] + [join.table for join in query.joins]
        missing = [name for name in involved if name not in self.tables]
        if missing:
            raise UnsupportedQueryError(
                f"cannot serve a degraded answer: base table(s) "
                f"{missing} are not registered with this engine"
            )
        if query.joins:
            # Join queries degrade to an exact join over the base
            # tables; the sampling engines would need pre-built
            # universe samples per join key to stay unbiased.
            route = DegradedRoute(
                engine="exact",
                reason="join query degrades to an exact join over "
                "registered base tables",
            )
        else:
            route = route_degraded(
                query,
                n_rows=self.tables[query.table].n_rows,
                sample_size=self.config.degrade_sample_size,
                exact_row_limit=self.config.degrade_exact_rows,
            )
        engine = self._degraded_engine(route, involved)
        single = Query(
            aggregates=[aggregate],
            table=query.table,
            joins=list(query.joins),
            ranges=list(query.ranges),
            equalities=list(query.equalities),
            group_by=query.group_by,
        )
        # The baseline engines keep per-query scratch state
        # (last_intervals); serialise evaluation so concurrent degraded
        # answers from server workers cannot interleave on it.
        with self._degrade_lock:
            values = engine.execute(single).values
        return values[str(aggregate)], route

    def _degraded_engine(self, route: DegradedRoute, tables: list[str]):
        """The lazily-built, cached engine for one degraded route."""
        from repro.engines import (
            ExactEngine,
            StratifiedAQPEngine,
            UniformAQPEngine,
        )

        key = (route.engine, tuple(sorted(tables)), route.stratify_on)
        with self._degrade_lock:
            engine = self._degraded_engines.get(key)
            if engine is not None:
                return engine
            if route.engine == "exact":
                engine = ExactEngine()
                for name in tables:
                    engine.register_table(self.tables[name])
            elif route.engine == "uniform_aqp":
                engine = UniformAQPEngine(
                    sample_size=self.config.degrade_sample_size,
                    random_seed=self.config.random_seed,
                )
                for name in tables:
                    engine.register_table(self.tables[name])
                    engine.prepare_table(name)
            elif route.engine == "stratified_aqp":
                engine = StratifiedAQPEngine(
                    random_seed=self.config.random_seed
                )
                for name in tables:
                    engine.register_table(self.tables[name])
                    engine.prepare_table(
                        name,
                        stratify_on=route.stratify_on,
                        sample_size=self.config.degrade_sample_size,
                    )
            else:  # pragma: no cover - route_degraded is exhaustive
                raise InvalidParameterError(
                    f"unknown degraded engine {route.engine!r}"
                )
            self._degraded_engines[key] = engine
            return engine

    # -- introspection -----------------------------------------------------

    def state_size_bytes(self) -> int:
        """Total serialised size of the model state (space overhead)."""
        return self.catalog.total_size_bytes()

    def describe(self) -> list[dict]:
        """Catalog summary joined with per-model build statistics."""
        rows = self.catalog.summary()
        for row, key in zip(rows, self.catalog.keys()):
            row.update(self.build_stats.get(key, {}))
        return rows
