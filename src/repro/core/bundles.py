"""Model bundles: serialised group-model sets loaded on demand.

Paper §2.3 "Limitations": for queries with very large numbers of groups,
DBEst serialises all the models a query needs into a *bundle* stored on
SSD; only the bundle for the query at hand is read and deserialised
(measured at <132 ms for 500 groups), keeping memory small while
preserving the query-time speedups.
"""

from __future__ import annotations

import pickle
import time
from pathlib import Path

from repro.core.groupby import GroupByModelSet
from repro.errors import BundleError


class ModelBundle:
    """A group-by model set that lives on disk until first use.

    Create with :meth:`write`, which serialises a
    :class:`~repro.core.groupby.GroupByModelSet` and returns a bundle
    handle holding only the path.  The first call that needs the models
    loads and caches them; :meth:`unload` drops them back out of memory.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._model_set: GroupByModelSet | None = None
        self.last_load_seconds: float | None = None

    @classmethod
    def write(cls, model_set: GroupByModelSet, path: str | Path) -> "ModelBundle":
        """Serialise ``model_set`` to ``path`` and return a lazy handle."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(model_set, protocol=pickle.HIGHEST_PROTOCOL)
        path.write_bytes(payload)
        return cls(path)

    @property
    def loaded(self) -> bool:
        return self._model_set is not None

    def size_bytes(self) -> int:
        """On-disk bundle size."""
        if not self.path.exists():
            raise BundleError(f"bundle file {self.path} does not exist")
        return self.path.stat().st_size

    def load(self) -> GroupByModelSet:
        """Read + deserialise the bundle (timed, cached)."""
        if self._model_set is None:
            if not self.path.exists():
                raise BundleError(f"bundle file {self.path} does not exist")
            start = time.perf_counter()
            payload = self.path.read_bytes()
            try:
                model_set = pickle.loads(payload)
            except Exception as exc:
                raise BundleError(
                    f"bundle {self.path} is corrupt: {exc}"
                ) from exc
            self.last_load_seconds = time.perf_counter() - start
            if not isinstance(model_set, GroupByModelSet):
                raise BundleError(
                    f"bundle {self.path} holds a {type(model_set).__name__}, "
                    "expected GroupByModelSet"
                )
            self._model_set = model_set
        return self._model_set

    def unload(self) -> None:
        """Drop the in-memory models; the next use reloads from disk."""
        self._model_set = None

    # -- delegation so the engine can treat bundles like model sets --------

    def answer(
        self,
        aggregate,
        ranges,
        n_workers: int | None = None,
        batched: bool | None = None,
    ) -> dict:
        return self.load().answer(
            aggregate, ranges, n_workers=n_workers, batched=batched
        )

    def answer_group(self, value, aggregate, ranges) -> float:
        return self.load().answer_group(value, aggregate, ranges)

    @property
    def group_values(self) -> list:
        return self.load().group_values

    @property
    def n_groups(self) -> int:
        return self.load().n_groups

    @property
    def x_columns(self) -> tuple[str, ...]:
        return self.load().x_columns

    @property
    def y_column(self) -> str | None:
        return self.load().y_column

    @property
    def group_column(self) -> str:
        return self.load().group_column
