"""Model-powered analytics beyond AQP.

The paper's introduction lists what else DBEst's models buy once built:
(i) imputing missing attribute values, (ii) estimating a dependent
variable under missing/hypothesised inputs, (iii) estimating aggregates
under hypothesised inputs, (iv) quickly discovering relationships
between attributes, and (v) quickly visualising descriptive statistics
of data subspaces.  This module implements those five capabilities on
top of :class:`~repro.core.model.ColumnSetModel`.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import ColumnSetModel
from repro.errors import InvalidParameterError, UnsupportedQueryError
from repro.storage.table import Table


def impute_missing(
    table: Table,
    model: ColumnSetModel,
    missing: np.ndarray | None = None,
) -> Table:
    """(i) Fill missing values of the model's y column using R(x).

    ``missing`` is a boolean mask of rows to impute; by default every
    NaN in the y column.  Returns a new table; the original is untouched.
    """
    if model.y_column is None or model.regressor is None:
        raise UnsupportedQueryError("imputation needs a model with a y column")
    if model.n_dims != 1:
        raise UnsupportedQueryError("imputation currently supports 1-D models")
    y = np.asarray(table[model.y_column], dtype=np.float64)
    if missing is None:
        missing = np.isnan(y)
    else:
        missing = np.asarray(missing, dtype=bool)
        if missing.shape != (table.n_rows,):
            raise InvalidParameterError(
                f"missing mask must have shape ({table.n_rows},)"
            )
    if not missing.any():
        return table
    x = np.asarray(table[model.x_columns[0]], dtype=np.float64)
    filled = y.copy()
    filled[missing] = model.predict_y(x[missing])
    return table.with_column(model.y_column, filled)


def estimate_y(
    model: ColumnSetModel,
    hypothesised_x: float | np.ndarray,
) -> np.ndarray:
    """(ii) Predicted y for missing or hypothesised x values."""
    return model.predict_y(np.atleast_1d(np.asarray(hypothesised_x, dtype=float)))


def what_if_aggregate(
    model: ColumnSetModel,
    func: str,
    lb: float,
    ub: float,
) -> float:
    """(iii) Aggregate of y over a *hypothesised* x range.

    The range need not contain any observed data — the regression model
    extrapolates and the density conditions on the nearest data mass —
    which is exactly the hypotheses-testing use the paper describes.
    """
    from repro.core.aggregates import answer_aggregate
    from repro.sql.ast import AggregateCall

    if model.y_column is None:
        raise UnsupportedQueryError("what-if aggregates need a model with y")
    call = AggregateCall(func.upper(), model.y_column)
    return answer_aggregate(model, call, {model.x_columns[0]: (lb, ub)})


def relationship_strength(model: ColumnSetModel, n_points: int = 512) -> float:
    """(iv) Strength of the x->y relationship captured by the model.

    Returns the R² of the regression function against its density-
    weighted mean: 0 means y does not vary with x (no relationship),
    values near 1 mean x nearly determines y.  Computed entirely from the
    models — no data access.
    """
    if model.regressor is None or model.n_dims != 1:
        raise UnsupportedQueryError(
            "relationship discovery needs a 1-D model with a regressor"
        )
    lo, hi = model.density.support
    grid = np.linspace(lo, hi, n_points)
    weights = model.density.pdf(grid)
    total = weights.sum()
    if total <= 0:
        return 0.0
    weights = weights / total
    predictions = model.predict_y(grid)
    mean = float(weights @ predictions)
    explained = float(weights @ (predictions - mean) ** 2)
    noise = float(weights @ model.residual_variance(grid))
    denominator = explained + noise
    if denominator <= 0:
        return 0.0
    return explained / denominator


def rank_relationships(models: dict[str, ColumnSetModel]) -> list[tuple[str, float]]:
    """(iv) Rank named models by relationship strength, strongest first."""
    scored = [
        (name, relationship_strength(model)) for name, model in models.items()
    ]
    return sorted(scored, key=lambda pair: pair[1], reverse=True)


def describe_subspace(
    model: ColumnSetModel,
    lb: float,
    ub: float,
) -> dict[str, float]:
    """(v) Descriptive statistics of y within an x subspace, from models.

    One call replaces a handful of aggregate queries: the analyst gets
    count, mean, total, spread, and the subspace's share of the table.
    """
    if model.y_column is None:
        raise UnsupportedQueryError("describe needs a model with a y column")
    ranges = {model.x_columns[0]: (lb, ub)}
    count = model.count(ranges)
    return {
        "count": count,
        "fraction_of_table": count / max(model.population_size, 1),
        "mean": model.avg(ranges),
        "sum": model.sum_(ranges),
        "variance": model.variance_y(ranges),
        "stddev": model.stddev_y(ranges),
    }


def sketch_density(
    model: ColumnSetModel,
    n_bins: int = 24,
    width: int = 40,
) -> str:
    """(v) A text sketch of D(x) for quick terminal visualisation."""
    if model.n_dims != 1:
        raise UnsupportedQueryError("density sketches are 1-D only")
    lo, hi = model.density.support
    edges = np.linspace(lo, hi, n_bins + 1)
    centres = 0.5 * (edges[:-1] + edges[1:])
    masses = np.asarray(
        [model.density.integrate(a, b) for a, b in zip(edges[:-1], edges[1:])]
    )
    peak = masses.max() if masses.max() > 0 else 1.0
    lines = []
    for centre, mass in zip(centres, masses):
        bar = "#" * int(round(width * mass / peak))
        lines.append(f"{centre:>12.3f} | {bar}")
    return "\n".join(lines)
