"""The column-set model: one density estimator + one regression model.

This is DBEst's unit of state.  For a column pair ``(x, y)`` of table
``T`` with ``N`` rows, the model holds a KDE ``D(x)`` fitted on a small
uniform sample and a regression model ``R(x) ~ y``, and answers every
supported aggregate through the integral formulas of paper §2.3.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.core.config import DBEstConfig
from repro.errors import (
    InvalidParameterError,
    ModelTrainingError,
    UnsupportedQueryError,
)
from repro.integrate import adaptive_quad, bisect, simpson_grid
from repro.ml.ensemble import EnsembleRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.kde import KernelDensityEstimator, MultivariateKDE
from repro.ml.linear import LinearRegressor, PiecewiseLinearRegressor
from repro.ml.tree import DecisionTreeRegressor
from repro.ml.xgb import XGBRegressor

_EMPTY_DENSITY = 1e-12


def _make_regressor(config: DBEstConfig):
    """Instantiate the configured regression model."""
    seed = config.random_seed
    if config.regressor == "ensemble":
        return EnsembleRegressor(random_state=seed)
    if config.regressor == "gboost":
        return GradientBoostingRegressor(random_state=seed)
    if config.regressor == "xgboost":
        return XGBRegressor(random_state=seed)
    if config.regressor == "plr":
        return PiecewiseLinearRegressor()
    if config.regressor == "linear":
        return LinearRegressor()
    if config.regressor == "tree":
        return DecisionTreeRegressor()
    raise InvalidParameterError(f"unknown regressor {config.regressor!r}")


class ColumnSetModel:
    """Density estimator + regression model over one column set.

    Build with :meth:`train`; answer aggregates with the ``count`` /
    ``avg`` / ``sum_`` / ``variance_*`` / ``percentile`` methods, or let
    :func:`repro.core.aggregates.answer_aggregate` dispatch from a parsed
    aggregate call.
    """

    def __init__(
        self,
        table_name: str,
        x_columns: tuple[str, ...],
        y_column: str | None,
        population_size: int,
        density,
        regressor,
        x_domain: list[tuple[float, float]],
        n_sample: int,
        integration_points: int = 257,
        integration_method: str = "simpson",
    ) -> None:
        self.table_name = table_name
        self.x_columns = tuple(x_columns)
        self.y_column = y_column
        self.population_size = int(population_size)
        self.density = density
        self.regressor = regressor
        self.x_domain = list(x_domain)
        self.n_sample = int(n_sample)
        self.integration_points = integration_points
        self.integration_method = integration_method
        # Residual-variance function for the law-of-total-variance
        # correction (see variance_y): piecewise-constant sigma^2(x) over
        # quantile bins of the 1-D training feature, plus a global scalar
        # fallback for multivariate models.
        self._residual_edges: np.ndarray | None = None
        self._residual_var: np.ndarray | None = None
        self._residual_var_global: float = 0.0

    # -- training -----------------------------------------------------------

    @classmethod
    def train(
        cls,
        x: np.ndarray,
        y: np.ndarray | None,
        table_name: str,
        x_columns: tuple[str, ...] | list[str],
        y_column: str | None,
        population_size: int,
        config: DBEstConfig | None = None,
    ) -> "ColumnSetModel":
        """Fit density and regression models from sample arrays.

        ``x`` is (n,) for one predicate column or (n, d) for multivariate
        predicates; ``y`` may be None for density-only models (queries
        that aggregate the predicate column itself).
        """
        config = config or DBEstConfig()
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x_matrix = x[:, None]
        else:
            x_matrix = x
        n, d = x_matrix.shape
        if n == 0:
            raise ModelTrainingError("cannot train a model on an empty sample")
        if len(tuple(x_columns)) != d:
            raise ModelTrainingError(
                f"{len(tuple(x_columns))} x-column names for {d}-dim features"
            )

        if d == 1:
            density = KernelDensityEstimator(
                bandwidth=config.kde_bandwidth,
                binned=config.kde_binned,
                n_bins=config.kde_bins,
                bin_threshold=config.kde_bin_threshold,
            ).fit(x_matrix[:, 0])
        else:
            if not isinstance(config.kde_bandwidth, str):
                raise InvalidParameterError(
                    f"multivariate predicates need a bandwidth rule name, "
                    f"got the fixed bandwidth {config.kde_bandwidth!r}; "
                    f"the product-kernel KDE has one bandwidth per dimension"
                )
            density = MultivariateKDE(
                bandwidth=config.kde_bandwidth,
                binned=config.kde_binned,
                bins_per_dim=config.kde_bins_per_dim,
                bin_threshold=config.kde_bin_threshold,
            ).fit(x_matrix)

        regressor = None
        if y is not None and y_column is not None:
            y = np.asarray(y, dtype=np.float64).ravel()
            if y.shape[0] != n:
                raise ModelTrainingError(
                    f"x has {n} rows but y has {y.shape[0]}"
                )
            regressor = _make_regressor(config)
            features = x_matrix[:, 0] if d == 1 else x_matrix
            regressor.fit(features, y)

        domain = [
            (float(x_matrix[:, j].min()), float(x_matrix[:, j].max()))
            for j in range(d)
        ]
        model = cls(
            table_name=table_name,
            x_columns=tuple(x_columns),
            y_column=y_column,
            population_size=population_size,
            density=density,
            regressor=regressor,
            x_domain=domain,
            n_sample=n,
            integration_points=config.integration_points,
            integration_method=config.integration_method,
        )
        if regressor is not None:
            model._fit_residual_variance(x_matrix, y)
        return model

    @classmethod
    def from_fitted_parts(
        cls,
        *,
        table_name: str,
        x_columns: tuple[str, ...],
        y_column: str | None,
        population_size: int,
        density,
        regressor,
        x_domain: list[tuple[float, float]],
        n_sample: int,
        config: DBEstConfig,
        residual_edges: np.ndarray | None = None,
        residual_var: np.ndarray | None = None,
        residual_var_global: float = 0.0,
    ) -> "ColumnSetModel":
        """Assemble a model from pre-fitted components.

        The batched trainer (:mod:`repro.core.batched_train`) fits every
        group's density, regressor and residual-variance state in shared
        vectorised passes and builds the per-group model objects through
        this constructor; the result matches :meth:`train` on the same
        sample.  ``residual_*`` may be omitted for density-only models.
        """
        model = cls(
            table_name=table_name,
            x_columns=tuple(x_columns),
            y_column=y_column,
            population_size=population_size,
            density=density,
            regressor=regressor,
            x_domain=list(x_domain),
            n_sample=n_sample,
            integration_points=config.integration_points,
            integration_method=config.integration_method,
        )
        model._residual_edges = residual_edges
        model._residual_var = residual_var
        model._residual_var_global = float(residual_var_global)
        return model

    def _fit_residual_variance(self, x_matrix: np.ndarray, y: np.ndarray) -> None:
        """Estimate Var(y | x) from training residuals.

        Equation 8 of the paper (Var(y) ≈ E[R²] − E[R]²) only measures the
        variance *of the regression function* and systematically misses
        the conditional noise Var(y|x).  By the law of total variance,
        Var(y) = E[Var(y|x)] + Var(E[y|x]); we estimate the first term as
        a piecewise-constant function of x over quantile bins so
        ``variance_y`` can add its density-weighted expectation.
        """
        features = x_matrix[:, 0] if x_matrix.shape[1] == 1 else x_matrix
        residuals = y - self._predict(features, None, None)
        self._residual_var_global = float(np.mean(residuals**2))
        if x_matrix.shape[1] != 1:
            return
        x = x_matrix[:, 0]
        n_bins = max(4, min(64, x.shape[0] // 50))
        edges = np.unique(
            np.quantile(x, np.linspace(0.0, 1.0, n_bins + 1)[1:-1])
        )
        codes = np.searchsorted(edges, x, side="left")
        counts = np.bincount(codes, minlength=edges.shape[0] + 1)
        sums = np.bincount(
            codes, weights=residuals**2, minlength=edges.shape[0] + 1
        )
        with np.errstate(invalid="ignore"):
            per_bin = np.where(counts > 0, sums / np.maximum(counts, 1),
                               self._residual_var_global)
        self._residual_edges = edges
        self._residual_var = per_bin

    def residual_variance(self, x: np.ndarray) -> np.ndarray:
        """σ²(x): estimated conditional variance of y at the given points."""
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        if self._residual_edges is None or self._residual_var is None:
            return np.full(x.shape[0], self._residual_var_global)
        codes = np.searchsorted(self._residual_edges, x, side="left")
        return self._residual_var[codes]

    # -- helpers -----------------------------------------------------------

    @property
    def n_dims(self) -> int:
        return len(self.x_columns)

    def _predict(
        self, grid: np.ndarray, lb: float | None, ub: float | None
    ) -> np.ndarray:
        if self.regressor is None:
            raise UnsupportedQueryError(
                f"model on {self.x_columns} has no regression model; "
                "regression-based aggregates need a y column"
            )
        if isinstance(self.regressor, EnsembleRegressor):
            return self.regressor.predict(grid, lb=lb, ub=ub)
        return self.regressor.predict(grid)

    def predict_y(self, x: np.ndarray) -> np.ndarray:
        """Point prediction of y given x (imputation / what-if analytics)."""
        x = np.asarray(x, dtype=np.float64)
        return self._predict(x, None, None)

    def _clip_1d(self, lb: float, ub: float) -> tuple[float, float]:
        lo, hi = self.density.support
        return max(lb, lo), min(ub, hi)

    def _normalise_ranges(
        self, ranges: dict[str, tuple[float, float]]
    ) -> list[tuple[float, float]]:
        """Per-x-column (lb, ub), defaulting unconstrained dims to the domain."""
        out = []
        for column, (dlo, dhi) in zip(self.x_columns, self.x_domain):
            lb, ub = ranges.get(column, (dlo, dhi))
            if ub < lb:
                raise InvalidParameterError(
                    f"range on {column!r} reversed: [{lb}, {ub}]"
                )
            out.append((float(lb), float(ub)))
        return out

    # -- 1-D integral machinery ----------------------------------------------

    def _fraction_1d(self, lb: float, ub: float) -> float:
        """``∫ D(x) dx`` over the (clipped) query range."""
        lb, ub = self._clip_1d(lb, ub)
        if ub <= lb:
            return 0.0
        if self.integration_method == "quad":
            return max(
                0.0, adaptive_quad(lambda t: float(self.density.pdf(t)[0]), lb, ub)
            )
        return max(0.0, self.density.integrate(lb, ub))

    def _grid_moments_1d(
        self, lb: float, ub: float, use_regressor: bool
    ) -> tuple[float, float, float]:
        """(∫D, ∫fD, ∫f²D) over the range, f = R(x) or identity."""
        a, b = self._clip_1d(lb, ub)
        if b <= a:
            return 0.0, 0.0, 0.0
        m = self.integration_points
        if self.integration_method == "quad":
            pdf = lambda t: float(self.density.pdf(t)[0])  # noqa: E731
            if use_regressor:
                f = lambda t: float(  # noqa: E731
                    self._predict(np.asarray([t]), lb, ub)[0]
                )
            else:
                f = lambda t: t  # noqa: E731
            den = adaptive_quad(pdf, a, b)
            num1 = adaptive_quad(lambda t: f(t) * pdf(t), a, b)
            num2 = adaptive_quad(lambda t: f(t) ** 2 * pdf(t), a, b)
            return den, num1, num2
        nodes, w = simpson_grid(a, b, m)
        d = self.density.pdf(nodes)
        f = self._predict(nodes, lb, ub) if use_regressor else nodes
        den = float(w @ d)
        num1 = float(w @ (d * f))
        num2 = float(w @ (d * f * f))
        return den, num1, num2

    # -- multivariate integral machinery ------------------------------------

    def _box_grid(
        self, bounds: list[tuple[float, float]]
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """(points, weights) tensor-Simpson grid over a box, or None if empty."""
        clipped = []
        for (lb, ub), (dlo, dhi) in zip(bounds, self.x_domain):
            a, b = max(lb, dlo), min(ub, dhi)
            if b <= a:
                return None
            clipped.append((a, b))
        d = len(clipped)
        # Keep total grid size manageable: m^d <= ~70k points.
        m = min(self.integration_points, max(9, int(round(70_000 ** (1.0 / d)))))
        if m % 2 == 0:
            m -= 1
        axes, weights = [], []
        for a, b in clipped:
            nodes, w = simpson_grid(a, b, m)
            axes.append(nodes)
            weights.append(w)
        mesh = np.meshgrid(*axes, indexing="ij")
        points = np.stack([g.ravel() for g in mesh], axis=1)
        w = weights[0]
        for wj in weights[1:]:
            w = np.multiply.outer(w, wj)
        return points, w.ravel()

    def _fraction_nd(self, bounds: list[tuple[float, float]]) -> float:
        lows = np.asarray([max(lb, dlo) for (lb, _), (dlo, _) in zip(bounds, self.x_domain)])
        highs = np.asarray([min(ub, dhi) for (_, ub), (_, dhi) in zip(bounds, self.x_domain)])
        if np.any(highs <= lows):
            return 0.0
        return max(0.0, self.density.integrate_box(lows, highs))

    def _grid_moments_nd(
        self, bounds: list[tuple[float, float]]
    ) -> tuple[float, float, float]:
        grid = self._box_grid(bounds)
        if grid is None:
            return 0.0, 0.0, 0.0
        points, w = grid
        d = self.density.pdf(points)
        f = self._predict(points, None, None)
        return (
            float(w @ d),
            float(w @ (d * f)),
            float(w @ (d * f * f)),
        )

    # -- aggregates (paper §2.3) ----------------------------------------------

    def count(self, ranges: dict[str, tuple[float, float]]) -> float:
        """COUNT ≈ N · ∫ D(x) dx  (Equation 1)."""
        bounds = self._normalise_ranges(ranges)
        if self.n_dims == 1:
            frac = self._fraction_1d(*bounds[0])
        else:
            frac = self._fraction_nd(bounds)
        return self.population_size * frac

    def avg(self, ranges: dict[str, tuple[float, float]]) -> float:
        """AVG(y) ≈ ∫ D·R dx / ∫ D dx  (Equation 6 / 10)."""
        den, num1, _ = self._moments(ranges, use_regressor=True)
        if den <= _EMPTY_DENSITY:
            return float("nan")
        return num1 / den

    def avg_x(self, ranges: dict[str, tuple[float, float]]) -> float:
        """Density-based AVG of the predicate column: E[x] over the range.

        No regressor is involved — the identity function is integrated
        against the density, the same construction as Equation 2's
        moments.
        """
        if self.n_dims != 1:
            raise UnsupportedQueryError(
                "density-based AVG is only defined for one predicate column"
            )
        den, num1, _ = self._grid_moments_1d(
            *self._normalise_ranges(ranges)[0], use_regressor=False
        )
        return num1 / den if den > 0 else float("nan")

    def sum_(self, ranges: dict[str, tuple[float, float]]) -> float:
        """SUM(y) = COUNT · AVG  (Equation 7), computed consistently.

        COUNT uses the analytic mixture CDF; AVG the shared Simpson grid;
        their product keeps SUM = COUNT × AVG an exact identity.
        """
        count = self.count(ranges)
        if count <= 0.0:
            return 0.0
        average = self.avg(ranges)
        if np.isnan(average):
            return 0.0
        return count * average

    def variance_y(self, ranges: dict[str, tuple[float, float]]) -> float:
        """VARIANCE(y) via the law of total variance.

        Equation 8 (E[R²] − E[R]²) gives the explained part, Var(E[y|x]);
        the density-weighted expectation of the fitted residual-variance
        function adds the unexplained part, E[Var(y|x)].
        """
        den, num1, num2 = self._moments(ranges, use_regressor=True)
        if den <= _EMPTY_DENSITY:
            return float("nan")
        explained = num2 / den - (num1 / den) ** 2
        return max(0.0, explained + self._expected_residual_variance(ranges, den))

    def _expected_residual_variance(
        self, ranges: dict[str, tuple[float, float]], den: float
    ) -> float:
        """E[Var(y|x)] over the query range, density weighted."""
        if self.n_dims != 1 or self._residual_edges is None:
            return self._residual_var_global
        a, b = self._clip_1d(*self._normalise_ranges(ranges)[0])
        if b <= a or den <= _EMPTY_DENSITY:
            return self._residual_var_global
        nodes, w = simpson_grid(a, b, self.integration_points)
        d = self.density.pdf(nodes)
        sigma2 = self.residual_variance(nodes)
        return float(w @ (d * sigma2)) / den

    def stddev_y(self, ranges: dict[str, tuple[float, float]]) -> float:
        """STDDEV(y)  (Equation 9)."""
        variance = self.variance_y(ranges)
        return float(np.sqrt(variance)) if not np.isnan(variance) else variance

    def variance_x(self, ranges: dict[str, tuple[float, float]]) -> float:
        """Density-based VARIANCE(x)  (Equation 2)."""
        if self.n_dims != 1:
            raise UnsupportedQueryError(
                "density-based VARIANCE is only defined for one predicate column"
            )
        den, num1, num2 = self._grid_moments_1d(
            *self._normalise_ranges(ranges)[0], use_regressor=False
        )
        if den <= _EMPTY_DENSITY:
            return float("nan")
        return max(0.0, num2 / den - (num1 / den) ** 2)

    def stddev_x(self, ranges: dict[str, tuple[float, float]]) -> float:
        """Density-based STDDEV(x)  (Equation 3)."""
        variance = self.variance_x(ranges)
        return float(np.sqrt(variance)) if not np.isnan(variance) else variance

    def percentile(
        self,
        p: float,
        ranges: dict[str, tuple[float, float]] | None = None,
    ) -> float:
        """PERCENTILE(x, p): solve F(a) = p by bisection  (Equations 4–5).

        With a range predicate present, the CDF is conditioned on the
        range, matching the paper's sensitivity experiments that vary
        query ranges for all aggregate functions.
        """
        if self.n_dims != 1:
            raise UnsupportedQueryError("PERCENTILE needs a single predicate column")
        if not 0.0 < p < 1.0:
            raise InvalidParameterError(f"percentile p must be in (0, 1), got {p}")
        lo, hi = self.density.support
        if ranges:
            (lb, ub) = self._normalise_ranges(ranges)[0]
            lo, hi = max(lo, lb), min(hi, ub)
        total = self.density.integrate(lo, hi)
        if total <= _EMPTY_DENSITY:
            return float("nan")
        base = float(self.density.cdf(np.asarray([lo]))[0])

        def objective(t: float) -> float:
            return (float(self.density.cdf(np.asarray([t]))[0]) - base) / total - p

        return bisect(objective, lo, hi, tol=1e-9)

    def _moments(
        self, ranges: dict[str, tuple[float, float]], use_regressor: bool
    ) -> tuple[float, float, float]:
        bounds = self._normalise_ranges(ranges)
        if self.n_dims == 1:
            return self._grid_moments_1d(*bounds[0], use_regressor=use_regressor)
        if not use_regressor:
            raise UnsupportedQueryError(
                "density-based moments are only defined for one predicate column"
            )
        return self._grid_moments_nd(bounds)

    # -- introspection ---------------------------------------------------------

    def size_bytes(self) -> int:
        """Serialized model size — the paper's "space overhead" metric."""
        return len(pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL))

    def __repr__(self) -> str:
        return (
            f"ColumnSetModel(table={self.table_name!r}, x={self.x_columns}, "
            f"y={self.y_column!r}, N={self.population_size}, n={self.n_sample})"
        )
