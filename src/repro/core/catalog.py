"""The model catalog.

Paper §2.1: "The model catalog stores information for the available models
and their correspondence to the column sets and tables of the base data
they model.  When a query arrives, DBEst reads the model catalog to check
for models that could answer it."
"""

from __future__ import annotations

import pickle
import struct
from collections.abc import Collection
from dataclasses import dataclass
from pathlib import Path

from repro.errors import CatalogError, ModelNotFoundError

#: Header prefix on every on-disk artefact this package writes.  The
#: magic distinguishes artefact kinds (whole catalog, store manifest,
#: store record); the little-endian u16 that follows is the format
#: version, bumped whenever the payload layout changes so stale blobs
#: fail loudly at load time instead of deep inside model code.
CATALOG_MAGIC = b"DBESTCAT"
CATALOG_FORMAT_VERSION = 1
_VERSION_STRUCT = struct.Struct("<H")


def pack_header(magic: bytes, version: int) -> bytes:
    """The byte header written in front of a pickled payload."""
    return magic + _VERSION_STRUCT.pack(version)


def split_header(
    payload: bytes, magic: bytes, expected_version: int, what: str
) -> bytes:
    """Validate ``payload``'s header and return the body after it.

    Raises :class:`CatalogError` naming the found/expected version (or
    the missing magic) so callers see *which* artefact is stale instead
    of an unpickling traceback from deep inside model code.
    """
    header_len = len(magic) + _VERSION_STRUCT.size
    if len(payload) < header_len or not payload.startswith(magic):
        raise CatalogError(
            f"{what} does not start with the {magic.decode('ascii')} "
            "magic header; it is not a DBEst artefact of this kind "
            "(or predates the versioned format)"
        )
    (version,) = _VERSION_STRUCT.unpack(
        payload[len(magic) : header_len]
    )
    if version != expected_version:
        raise CatalogError(
            f"{what} is format version {version}, but this build reads "
            f"version {expected_version}; rebuild it with the current code"
        )
    return payload[header_len:]


@dataclass(frozen=True)
class ModelKey:
    """Identity of a model: table, predicate columns, target, group column.

    ``x_columns`` is a sorted tuple so lookup is order-insensitive;
    ``y_column`` is None for density-only models; ``group_by`` is None for
    scalar models.
    """

    table: str
    x_columns: tuple[str, ...]
    y_column: str | None
    group_by: str | None = None

    @classmethod
    def make(
        cls,
        table: str,
        x_columns,
        y_column: str | None,
        group_by: str | None = None,
    ) -> "ModelKey":
        if isinstance(x_columns, str):
            x_columns = (x_columns,)
        return cls(
            table=table,
            x_columns=tuple(sorted(x_columns)),
            y_column=y_column,
            group_by=group_by,
        )


def resolve_model_key(
    keys: Collection[ModelKey],
    table: str,
    x_columns,
    y_column: str | None,
    group_by: str | None = None,
) -> ModelKey:
    """Resolve which registered key answers a query.

    ``keys`` is the collection of registered :class:`ModelKey` in
    registration order (a dict or dict view preserves it).  Shared by
    :meth:`ModelCatalog.find` and the lazy on-disk
    :class:`~repro.serve.store.ModelStore`, which must resolve against
    its manifest *without* loading any model.

    Resolution order:

    1. exact key match;
    2. for COUNT(*)-style lookups (``y_column`` None), any model over
       the same predicate columns and group column (COUNT only needs
       the density estimator) — earliest registered wins;
    3. a *superset* model: one whose predicate columns contain the
       query's — unconstrained dimensions integrate over their full
       domain, so a multivariate model answers lower-dimensional
       queries exactly as a marginal would.  The tightest superset
       (fewest extra dimensions) wins; ties break to the earliest
       registered (the sort is stable over registration order).
    """
    key = ModelKey.make(table, x_columns, y_column, group_by)
    if key in keys:
        return key
    if y_column is None:
        for candidate in keys:
            if (
                candidate.table == key.table
                and candidate.x_columns == key.x_columns
                and candidate.group_by == key.group_by
            ):
                return candidate
    wanted = set(key.x_columns)
    supersets = [
        candidate
        for candidate in keys
        if candidate.table == key.table
        and candidate.group_by == key.group_by
        and wanted < set(candidate.x_columns)
        and (y_column is None or candidate.y_column == y_column)
    ]
    if supersets:
        supersets.sort(key=lambda candidate: len(candidate.x_columns))
        return supersets[0]
    raise ModelNotFoundError(
        f"no model for table={table!r} x={key.x_columns} "
        f"y={y_column!r} group_by={group_by!r}"
    )


class ModelCatalog:
    """Registry mapping :class:`ModelKey` to trained model objects.

    Values are :class:`~repro.core.model.ColumnSetModel`,
    :class:`~repro.core.groupby.GroupByModelSet`, or
    :class:`~repro.core.bundles.ModelBundle` instances — anything the
    engine knows how to evaluate.
    """

    #: Change-log entries kept for :meth:`changed_keys_since`.  Readers
    #: further behind than this fall back to "everything may have
    #: changed" (a full cache clear) instead of unbounded log growth.
    MAX_CHANGELOG = 256

    def __init__(self) -> None:
        self._models: dict[ModelKey, object] = {}
        self._version = 0
        self._changelog: list[tuple[int, ModelKey]] = []

    @property
    def version(self) -> int:
        """Bumped on every register/remove.

        Serving layers compare it between queries to invalidate
        memoised answers when a model is swapped in place (e.g.
        ``build_model`` re-registering an existing key).
        """
        return self._version

    def _record_change(self, key: ModelKey) -> None:
        self._version += 1
        self._changelog.append((self._version, key))
        if len(self._changelog) > self.MAX_CHANGELOG:
            del self._changelog[: -self.MAX_CHANGELOG]

    def changed_keys_since(self, version: int) -> set[ModelKey] | None:
        """Keys registered/removed after ``version`` was current.

        Returns the (possibly empty) set of changed keys, or None when
        the change-log no longer reaches back that far — callers must
        then treat *every* memoised answer as suspect.  This is what
        lets the serving layer evict only the affected answer-cache
        entries on a model rebuild instead of dropping the whole cache.
        """
        if version >= self._version:
            return set()
        missing = self._version - version
        if missing > len(self._changelog):
            return None  # log truncated below the reader's horizon
        return {key for v, key in self._changelog if v > version}

    def register(self, key: ModelKey, model: object, replace: bool = False) -> None:
        if key in self._models and not replace:
            raise CatalogError(f"a model is already registered for {key}")
        self._models[key] = model
        self._record_change(key)

    def get(self, key: ModelKey) -> object:
        try:
            return self._models[key]
        except KeyError:
            raise ModelNotFoundError(f"no model registered for {key}") from None

    def remove(self, key: ModelKey) -> None:
        if key not in self._models:
            raise CatalogError(f"no model registered for {key}")
        del self._models[key]
        self._record_change(key)

    def __contains__(self, key: ModelKey) -> bool:
        return key in self._models

    def __len__(self) -> int:
        return len(self._models)

    def keys(self) -> list[ModelKey]:
        return list(self._models)

    def resolve(
        self,
        table: str,
        x_columns,
        y_column: str | None,
        group_by: str | None = None,
    ) -> ModelKey:
        """The registered key that answers a query (see
        :func:`resolve_model_key` for the resolution order)."""
        return resolve_model_key(self._models, table, x_columns, y_column, group_by)

    def find(
        self,
        table: str,
        x_columns,
        y_column: str | None,
        group_by: str | None = None,
    ) -> object:
        """Resolve the model answering a query (see :meth:`resolve`)."""
        return self._models[self.resolve(table, x_columns, y_column, group_by)]

    # -- persistence -------------------------------------------------------

    def save(self, path: str | Path) -> int:
        """Write the catalog to disk; returns bytes written.

        The file starts with the :data:`CATALOG_MAGIC` +
        format-version header so stale or foreign blobs are rejected
        with a clear :class:`CatalogError` at load time.
        """
        path = Path(path)
        payload = pack_header(
            CATALOG_MAGIC, CATALOG_FORMAT_VERSION
        ) + pickle.dumps(self._models, protocol=pickle.HIGHEST_PROTOCOL)
        path.write_bytes(payload)
        return len(payload)

    @classmethod
    def load(cls, path: str | Path) -> "ModelCatalog":
        """Restore a catalog written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise CatalogError(f"catalog file {path} does not exist")
        catalog = cls()
        body = split_header(
            path.read_bytes(),
            CATALOG_MAGIC,
            CATALOG_FORMAT_VERSION,
            f"catalog file {path}",
        )
        try:
            payload = pickle.loads(body)
        except Exception as exc:
            raise CatalogError(f"catalog file {path} is corrupt: {exc}") from exc
        if not isinstance(payload, dict):
            raise CatalogError(
                f"catalog file {path} holds a {type(payload).__name__}, "
                "expected a model mapping"
            )
        catalog._models = payload
        return catalog

    def total_size_bytes(self) -> int:
        """Serialized size of all registered models (space-overhead metric)."""
        return len(pickle.dumps(self._models, protocol=pickle.HIGHEST_PROTOCOL))

    def summary(self) -> list[dict]:
        """One description dict per registered model (for tooling/docs)."""
        rows = []
        for key, model in self._models.items():
            rows.append(
                {
                    "table": key.table,
                    "x_columns": key.x_columns,
                    "y_column": key.y_column,
                    "group_by": key.group_by,
                    "type": type(model).__name__,
                }
            )
        return rows
