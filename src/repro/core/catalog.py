"""The model catalog.

Paper §2.1: "The model catalog stores information for the available models
and their correspondence to the column sets and tables of the base data
they model.  When a query arrives, DBEst reads the model catalog to check
for models that could answer it."
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.errors import CatalogError, ModelNotFoundError


@dataclass(frozen=True)
class ModelKey:
    """Identity of a model: table, predicate columns, target, group column.

    ``x_columns`` is a sorted tuple so lookup is order-insensitive;
    ``y_column`` is None for density-only models; ``group_by`` is None for
    scalar models.
    """

    table: str
    x_columns: tuple[str, ...]
    y_column: str | None
    group_by: str | None = None

    @classmethod
    def make(
        cls,
        table: str,
        x_columns,
        y_column: str | None,
        group_by: str | None = None,
    ) -> "ModelKey":
        if isinstance(x_columns, str):
            x_columns = (x_columns,)
        return cls(
            table=table,
            x_columns=tuple(sorted(x_columns)),
            y_column=y_column,
            group_by=group_by,
        )


class ModelCatalog:
    """Registry mapping :class:`ModelKey` to trained model objects.

    Values are :class:`~repro.core.model.ColumnSetModel`,
    :class:`~repro.core.groupby.GroupByModelSet`, or
    :class:`~repro.core.bundles.ModelBundle` instances — anything the
    engine knows how to evaluate.
    """

    def __init__(self) -> None:
        self._models: dict[ModelKey, object] = {}

    def register(self, key: ModelKey, model: object, replace: bool = False) -> None:
        if key in self._models and not replace:
            raise CatalogError(f"a model is already registered for {key}")
        self._models[key] = model

    def get(self, key: ModelKey) -> object:
        try:
            return self._models[key]
        except KeyError:
            raise ModelNotFoundError(f"no model registered for {key}") from None

    def remove(self, key: ModelKey) -> None:
        if key not in self._models:
            raise CatalogError(f"no model registered for {key}")
        del self._models[key]

    def __contains__(self, key: ModelKey) -> bool:
        return key in self._models

    def __len__(self) -> int:
        return len(self._models)

    def keys(self) -> list[ModelKey]:
        return list(self._models)

    def find(
        self,
        table: str,
        x_columns,
        y_column: str | None,
        group_by: str | None = None,
    ) -> object:
        """Resolve the model answering a query.

        Resolution order:

        1. exact key match;
        2. for COUNT(*)-style lookups (``y_column`` None), any model over
           the same predicate columns and group column (COUNT only needs
           the density estimator);
        3. a *superset* model: one whose predicate columns contain the
           query's — unconstrained dimensions integrate over their full
           domain, so a multivariate model answers lower-dimensional
           queries exactly as a marginal would.
        """
        key = ModelKey.make(table, x_columns, y_column, group_by)
        if key in self._models:
            return self._models[key]
        if y_column is None:
            for candidate, model in self._models.items():
                if (
                    candidate.table == key.table
                    and candidate.x_columns == key.x_columns
                    and candidate.group_by == key.group_by
                ):
                    return model
        wanted = set(key.x_columns)
        supersets = [
            (candidate, model)
            for candidate, model in self._models.items()
            if candidate.table == key.table
            and candidate.group_by == key.group_by
            and wanted < set(candidate.x_columns)
            and (y_column is None or candidate.y_column == y_column)
        ]
        if supersets:
            # Prefer the tightest superset (fewest extra dimensions).
            supersets.sort(key=lambda pair: len(pair[0].x_columns))
            return supersets[0][1]
        raise ModelNotFoundError(
            f"no model for table={table!r} x={key.x_columns} "
            f"y={y_column!r} group_by={group_by!r}"
        )

    # -- persistence -------------------------------------------------------

    def save(self, path: str | Path) -> int:
        """Pickle the whole catalog to disk; returns bytes written."""
        path = Path(path)
        payload = pickle.dumps(self._models, protocol=pickle.HIGHEST_PROTOCOL)
        path.write_bytes(payload)
        return len(payload)

    @classmethod
    def load(cls, path: str | Path) -> "ModelCatalog":
        """Restore a catalog written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise CatalogError(f"catalog file {path} does not exist")
        catalog = cls()
        try:
            payload = pickle.loads(path.read_bytes())
        except Exception as exc:
            raise CatalogError(f"catalog file {path} is corrupt: {exc}") from exc
        if not isinstance(payload, dict):
            raise CatalogError(
                f"catalog file {path} holds a {type(payload).__name__}, "
                "expected a model mapping"
            )
        catalog._models = payload
        return catalog

    def total_size_bytes(self) -> int:
        """Serialized size of all registered models (space-overhead metric)."""
        return len(pickle.dumps(self._models, protocol=pickle.HIGHEST_PROTOCOL))

    def summary(self) -> list[dict]:
        """One description dict per registered model (for tooling/docs)."""
        rows = []
        for key, model in self._models.items():
            rows.append(
                {
                    "table": key.table,
                    "x_columns": key.x_columns,
                    "y_column": key.y_column,
                    "group_by": key.group_by,
                    "type": type(model).__name__,
                }
            )
        return rows
