"""Workload-driven model selection.

Paper §3 "Selecting which Models to Build": every offline-state AQP
engine must decide which column sets to prepare.  BlinkDB showed that
"interesting column sets can be identified early in the execution of a
typical workload"; VerdictDB asks the user.  DBEst is orthogonal — any
of these work.  This module implements the BlinkDB-style option: mine a
query-log prefix, count template frequencies, and recommend (or
directly build) the models that cover the most queries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.errors import SQLError
from repro.sql.ast import Query
from repro.sql.parser import parse_query


@dataclass(frozen=True)
class ModelTemplate:
    """A buildable model signature extracted from queries."""

    table: str
    x_columns: tuple[str, ...]
    y_column: str | None
    group_by: str | None
    join: tuple[str, str, str] | None = None  # (right_table, left_key, right_key)

    def describe(self) -> str:
        parts = [f"table={self.table}", f"x={','.join(self.x_columns)}"]
        if self.y_column:
            parts.append(f"y={self.y_column}")
        if self.group_by:
            parts.append(f"group_by={self.group_by}")
        if self.join:
            parts.append(f"join={self.join[0]}")
        return " ".join(parts)


def template_of(query: Query) -> ModelTemplate | None:
    """The model template a parsed query would need, or None if unsupported."""
    if len(query.joins) > 1:
        return None
    ranges = tuple(sorted({r.column for r in query.ranges}))
    if not ranges:
        # Percentile-style queries without WHERE target the AF column.
        columns = {a.column for a in query.aggregates if a.column}
        if len(columns) != 1:
            return None
        ranges = (next(iter(columns)),)
    y_columns = {
        a.column
        for a in query.aggregates
        if a.column and a.column not in ranges and a.func != "PERCENTILE"
    }
    if len(y_columns) > 1:
        return None  # one model per y column; callers split multi-AF queries
    y_column = next(iter(y_columns)) if y_columns else None
    group_by = query.group_by
    if group_by is None and query.equalities:
        if len(query.equalities) > 1:
            return None
        group_by = query.equalities[0].column
    join = None
    if query.joins:
        j = query.joins[0]
        join = (j.table, j.left_key, j.right_key)
    return ModelTemplate(
        table=query.table,
        x_columns=ranges,
        y_column=y_column,
        group_by=group_by,
        join=join,
    )


@dataclass
class Recommendation:
    """One recommended model with its supporting query count."""

    template: ModelTemplate
    frequency: int
    coverage: float


class WorkloadAdvisor:
    """Mine a query log and recommend which models to build."""

    def __init__(self) -> None:
        self._counts: Counter[ModelTemplate] = Counter()
        self.n_queries = 0
        self.n_unsupported = 0

    def observe(self, sql: str | Query) -> None:
        """Record one workload query (malformed/unsupported ones are counted)."""
        self.n_queries += 1
        try:
            query = parse_query(sql) if isinstance(sql, str) else sql
        except SQLError:
            self.n_unsupported += 1
            return
        template = template_of(query)
        if template is None:
            self.n_unsupported += 1
            return
        self._counts[template] += 1

    def observe_all(self, workload) -> None:
        for sql in workload:
            self.observe(sql)

    def recommend(
        self,
        max_models: int | None = None,
        min_frequency: int = 1,
    ) -> list[Recommendation]:
        """Templates ranked by how many workload queries they answer."""
        supported = max(self.n_queries - self.n_unsupported, 1)
        ranked = [
            Recommendation(
                template=template,
                frequency=count,
                coverage=count / supported,
            )
            for template, count in self._counts.most_common()
            if count >= min_frequency
        ]
        if max_models is not None:
            ranked = ranked[:max_models]
        return ranked

    def build_recommended(
        self,
        engine,
        max_models: int | None = None,
        min_frequency: int = 1,
        sample_size: int | None = None,
    ) -> list[ModelTemplate]:
        """Build every recommended model on a :class:`~repro.core.engine.DBEst`.

        Returns the templates that were built; templates whose tables are
        not registered with the engine are skipped.
        """
        built = []
        for rec in self.recommend(max_models=max_models, min_frequency=min_frequency):
            template = rec.template
            if template.table not in engine.tables:
                continue
            if template.join is not None:
                right, left_key, right_key = template.join
                if right not in engine.tables:
                    continue
                engine.build_join_model(
                    template.table, right, left_key, right_key,
                    x=template.x_columns, y=template.y_column,
                    sample_size=sample_size, group_by=template.group_by,
                )
            else:
                engine.build_model(
                    template.table,
                    x=template.x_columns,
                    y=template.y_column,
                    sample_size=sample_size,
                    group_by=template.group_by,
                )
            built.append(template)
        return built
