"""Workload-driven model selection and per-query engine routing.

Paper §3 "Selecting which Models to Build": every offline-state AQP
engine must decide which column sets to prepare.  BlinkDB showed that
"interesting column sets can be identified early in the execution of a
typical workload"; VerdictDB asks the user.  DBEst is orthogonal — any
of these work.  This module implements the BlinkDB-style option: mine a
query-log prefix, count template frequencies, and recommend (or
directly build) the models that cover the most queries.

It also houses the *online* routing decision the fault-tolerant serving
layer needs: when the model path is unavailable (circuit breaker open,
corrupt record, deadline pressure), :func:`route_degraded` picks which
of the approximate/exact duality's engines should answer instead —
exact scans for small tables, stratified samples for grouped/categorical
queries (rare groups stay represented), uniform samples otherwise —
and quotes the CLT-style relative error bound the caller should expect.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.errors import SQLError
from repro.sql.ast import Query
from repro.sql.parser import parse_query


@dataclass(frozen=True)
class ModelTemplate:
    """A buildable model signature extracted from queries."""

    table: str
    x_columns: tuple[str, ...]
    y_column: str | None
    group_by: str | None
    join: tuple[str, str, str] | None = None  # (right_table, left_key, right_key)

    def describe(self) -> str:
        parts = [f"table={self.table}", f"x={','.join(self.x_columns)}"]
        if self.y_column:
            parts.append(f"y={self.y_column}")
        if self.group_by:
            parts.append(f"group_by={self.group_by}")
        if self.join:
            parts.append(f"join={self.join[0]}")
        return " ".join(parts)


def template_of(query: Query) -> ModelTemplate | None:
    """The model template a parsed query would need, or None if unsupported."""
    if len(query.joins) > 1:
        return None
    ranges = tuple(sorted({r.column for r in query.ranges}))
    if not ranges:
        # Percentile-style queries without WHERE target the AF column.
        columns = {a.column for a in query.aggregates if a.column}
        if len(columns) != 1:
            return None
        ranges = (next(iter(columns)),)
    y_columns = {
        a.column
        for a in query.aggregates
        if a.column and a.column not in ranges and a.func != "PERCENTILE"
    }
    if len(y_columns) > 1:
        return None  # one model per y column; callers split multi-AF queries
    y_column = next(iter(y_columns)) if y_columns else None
    group_by = query.group_by
    if group_by is None and query.equalities:
        if len(query.equalities) > 1:
            return None
        group_by = query.equalities[0].column
    join = None
    if query.joins:
        j = query.joins[0]
        join = (j.table, j.left_key, j.right_key)
    return ModelTemplate(
        table=query.table,
        x_columns=ranges,
        y_column=y_column,
        group_by=group_by,
        join=join,
    )


@dataclass(frozen=True)
class DegradedRoute:
    """Which engine serves a degraded answer, and at what accuracy.

    ``engine`` is ``"exact"``, ``"stratified_aqp"`` or ``"uniform_aqp"``;
    ``stratify_on`` names the stratification column for the stratified
    route (the query's GROUP BY or categorical-equality column);
    ``error_bound`` is the advised relative error bound for ratio
    aggregates (0.0 on the exact route) — a ~3-sigma CLT-style bound of
    ``3 / sqrt(effective sample rows)``, loose enough to hold across
    COUNT/SUM/AVG on non-adversarial data and what the serving tests
    assert degraded answers against.
    """

    engine: str
    reason: str
    stratify_on: str | None = None
    error_bound: float = 0.0


def route_degraded(
    query: Query,
    n_rows: int,
    sample_size: int = 10_000,
    exact_row_limit: int = 50_000,
) -> DegradedRoute:
    """Pick the degraded engine for one query.

    ``n_rows`` is the base table's row count and ``sample_size`` the
    budget a sampling engine would keep resident.  Tables at or below
    ``exact_row_limit`` answer exactly (a full columnar scan at that
    size is cheaper than maintaining a sample); grouped or categorical
    queries route to stratified samples so rare groups keep
    representation; scalar range aggregates route to uniform samples.
    """
    if n_rows <= exact_row_limit:
        return DegradedRoute(
            engine="exact",
            reason=(
                f"table fits an exact scan ({n_rows} rows <= "
                f"{exact_row_limit})"
            ),
        )
    effective = max(1, min(n_rows, sample_size))
    stratify_on = query.group_by
    if stratify_on is None and len(query.equalities) == 1:
        stratify_on = query.equalities[0].column
    if stratify_on is not None:
        return DegradedRoute(
            engine="stratified_aqp",
            reason=(
                f"grouped/categorical query: stratified sample on "
                f"{stratify_on!r} keeps rare groups represented"
            ),
            stratify_on=stratify_on,
            error_bound=3.0 / math.sqrt(effective),
        )
    return DegradedRoute(
        engine="uniform_aqp",
        reason=f"scalar aggregate over a {n_rows}-row table",
        error_bound=3.0 / math.sqrt(effective),
    )


@dataclass
class Recommendation:
    """One recommended model with its supporting query count."""

    template: ModelTemplate
    frequency: int
    coverage: float


class WorkloadAdvisor:
    """Mine a query log and recommend which models to build."""

    def __init__(self) -> None:
        self._counts: Counter[ModelTemplate] = Counter()
        self.n_queries = 0
        self.n_unsupported = 0

    def observe(self, sql: str | Query) -> None:
        """Record one workload query (malformed/unsupported ones are counted)."""
        self.n_queries += 1
        try:
            query = parse_query(sql) if isinstance(sql, str) else sql
        except SQLError:
            self.n_unsupported += 1
            return
        template = template_of(query)
        if template is None:
            self.n_unsupported += 1
            return
        self._counts[template] += 1

    def observe_all(self, workload) -> None:
        for sql in workload:
            self.observe(sql)

    def recommend(
        self,
        max_models: int | None = None,
        min_frequency: int = 1,
    ) -> list[Recommendation]:
        """Templates ranked by how many workload queries they answer."""
        supported = max(self.n_queries - self.n_unsupported, 1)
        ranked = [
            Recommendation(
                template=template,
                frequency=count,
                coverage=count / supported,
            )
            for template, count in self._counts.most_common()
            if count >= min_frequency
        ]
        if max_models is not None:
            ranked = ranked[:max_models]
        return ranked

    def build_recommended(
        self,
        engine,
        max_models: int | None = None,
        min_frequency: int = 1,
        sample_size: int | None = None,
    ) -> list[ModelTemplate]:
        """Build every recommended model on a :class:`~repro.core.engine.DBEst`.

        Returns the templates that were built; templates whose tables are
        not registered with the engine are skipped.
        """
        built = []
        for rec in self.recommend(max_models=max_models, min_frequency=min_frequency):
            template = rec.template
            if template.table not in engine.tables:
                continue
            if template.join is not None:
                right, left_key, right_key = template.join
                if right not in engine.tables:
                    continue
                engine.build_join_model(
                    template.table, right, left_key, right_key,
                    x=template.x_columns, y=template.y_column,
                    sample_size=sample_size, group_by=template.group_by,
                )
            else:
                engine.build_model(
                    template.table,
                    x=template.x_columns,
                    y=template.y_column,
                    sample_size=sample_size,
                    group_by=template.group_by,
                )
            built.append(template)
        return built
