"""Dispatch from parsed aggregate calls to column-set model methods.

Implements the paper's split between *density-based* aggregates (COUNT,
PERCENTILE, and VARIANCE/STDDEV over the predicate column itself) and
*regression-based* aggregates (SUM, AVG, and VARIANCE/STDDEV over the
dependent column), choosing by which column the aggregate names.
"""

from __future__ import annotations

from repro.core.model import ColumnSetModel
from repro.errors import UnsupportedQueryError
from repro.sql.ast import AggregateCall

Ranges = dict[str, tuple[float, float]]


def answer_aggregate(
    model: ColumnSetModel,
    aggregate: AggregateCall,
    ranges: Ranges,
) -> float:
    """Evaluate one aggregate against one column-set model.

    ``ranges`` maps predicate column name to (lb, ub); columns of the
    model without an entry default to their full domain.
    """
    func = aggregate.func
    column = aggregate.column
    on_x = column is not None and column in model.x_columns
    on_y = column is not None and column == model.y_column

    if func == "COUNT":
        # COUNT(y), COUNT(x) and COUNT(*) all count rows in the range.
        return model.count(ranges)

    if func == "PERCENTILE":
        if not on_x:
            raise UnsupportedQueryError(
                f"PERCENTILE must target the predicate column "
                f"{model.x_columns}, got {column!r}"
            )
        return model.percentile(aggregate.parameter, ranges)

    if func == "AVG":
        if on_x:
            return model.avg_x(ranges)
        if on_y:
            return model.avg(ranges)
        raise UnsupportedQueryError(
            f"AVG column {column!r} is neither the model's x nor y"
        )

    if func == "SUM":
        if on_y:
            return model.sum_(ranges)
        raise UnsupportedQueryError(
            f"SUM column {column!r} is not the model's dependent column "
            f"({model.y_column!r})"
        )

    if func == "VARIANCE":
        if on_x:
            return model.variance_x(ranges)
        if on_y:
            return model.variance_y(ranges)
        raise UnsupportedQueryError(
            f"VARIANCE column {column!r} is neither the model's x nor y"
        )

    if func == "STDDEV":
        if on_x:
            return model.stddev_x(ranges)
        if on_y:
            return model.stddev_y(ranges)
        raise UnsupportedQueryError(
            f"STDDEV column {column!r} is neither the model's x nor y"
        )

    raise UnsupportedQueryError(f"unsupported aggregate {func!r}")
