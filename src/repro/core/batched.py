"""Batched evaluation: answer a GROUP BY aggregate for all groups at once.

The scalar path in :mod:`repro.core.groupby` answers one group at a time
— one Simpson grid, one KDE mixture pass, one regressor call per group —
which is exactly the "many small Python calls" bottleneck the paper
concedes in §4.7.  Profiling confirms it: for a typical 60-centre group
the per-group ``pdf``/``predict``/``dot`` sequence spends ~85% of its
time in numpy dispatch overhead, not floating-point work.

Batched evaluation
==================

:class:`BatchedGroupEvaluator` stacks every group's state into flat
arrays at build time so a query touches each array once:

* **CSR mixture layout** — all groups' KDE centres and mixture weights
  are concatenated into ``centres``/``cweights`` with ``coffsets`` group
  offsets (the classic CSR indptr).  Per-group scalars (bandwidth,
  support, domain, population, point-mass value) become ``(G,)`` arrays.
* **Analytic aggregates** (COUNT, the CDF legs of PERCENTILE) evaluate
  ``ndtr`` over the flat centre array once and segment-reduce with
  ``np.add.reduceat``.
* **Grid aggregates** (SUM/AVG/VARIANCE/STDDEV) build one ``(G, m)``
  node matrix with a single vectorised ``np.linspace``, evaluate every
  group's reflected mixture pdf in cache-sized blocks of the CSR array,
  and reduce moments with row-wise dot products.  The pdf rows are
  memoised by query bounds, so SUM, AVG and VARIANCE over the same
  ranges share one exp pass instead of re-exponentiating per aggregate.
* **Regressors** stack by family: piecewise-linear / OLS coefficients
  become one hinge/affine kernel; tree boosters (``tree`` / ``gboost``
  / ``xgboost``) export flat node arrays and are traversed in lock-step
  across all groups; ``ensemble`` regressors keep per-group constituent
  *selection* (each group's own range classifier) but evaluate every
  group that selected the same constituent through the corresponding
  stacked pass.  Truly exotic regressors fall back to a per-group
  predict loop while the density work stays batched.
* **Raw groups** are concatenated row-wise and answered with one masked
  segmented reduction per aggregate.
* **PERCENTILE** runs all groups' bisections in lock-step: each
  iteration evaluates the analytic CDF for every unconverged group in
  one segmented pass, mirroring :func:`repro.integrate.bisect` exactly.
* **Multivariate predicates** stack the same way: all groups'
  product-kernel mixtures (:class:`~repro.ml.kde.MultivariateKDE`)
  concatenate into one ``(M, d)`` CSR centre array, box integrals
  (COUNT) evaluate ``ndtr`` over the stacked centres once with
  per-dimension CDF differences multiplied per centre and
  segment-reduced, and grid aggregates run every group's tensor-Simpson
  box grid through one blocked product-kernel pdf pass with the
  per-group domain renormalisation folded into a single scale factor.

Scalar fallback
===============

Multivariate sets are *not* a fallback condition: both 1-D and
product-kernel model sets stack.  :meth:`BatchedGroupEvaluator.build`
returns None — and ``GroupByModelSet.answer`` keeps the per-group loop —
only when the set is genuinely not stackable:
``integration_method="quad"``, non-uniform integration grids, a density
that is not a fitted :class:`~repro.ml.kde.KernelDensityEstimator` /
:class:`~repro.ml.kde.MultivariateKDE`, mixed presence of regressors, or
an empty raw group.  The scalar loop also remains the parity oracle in
the test suite, and can be forced with ``answer(..., batched=False)`` or
``DBEstConfig(batched_groupby=False)``.

Parity: batched answers match the scalar loop to ~1e-12 relative (the
test suite asserts 1e-9); differences come only from floating-point
summation order.
"""

from __future__ import annotations

import math
from time import perf_counter
from types import SimpleNamespace

import numpy as np
from scipy.special import ndtr

from repro.core.model import _EMPTY_DENSITY, ColumnSetModel
from repro.core.parallel import chunk_bounds
from repro.errors import (
    InvalidParameterError,
    ModelTrainingError,
    QueryExecutionError,
    UnsupportedQueryError,
)
from repro.integrate import simpson_weights
from repro.ml.ensemble import EnsembleRegressor
from repro.ml.kde import KernelDensityEstimator, MultivariateKDE
from repro.obs import get_registry
from repro.sql.ast import AggregateCall

_SQRT_2PI = math.sqrt(2.0 * math.pi)

# Target element count of one (centres x nodes) pdf block: big enough to
# amortise numpy dispatch, small enough that the block and its
# temporaries stay cache-resident (measured fastest around 64k elements
# on 200-group workloads; a single giant pass is ~40% slower).
_PDF_BLOCK = 1 << 16

Ranges = dict[str, tuple[float, float]]


def _segment_sum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sums of a flat array; segments must be non-empty."""
    return np.add.reduceat(values, offsets[:-1])


# Placeholder tag marking "an ndarray lived here" in a flattened state
# skeleton; the paired segment name keys the actual array.
_MAPPED_SEGMENT = "__mapped_segment__"


def _flatten_arrays(node, prefix: str, segments: dict):
    """Replace every ndarray under ``node`` with a named placeholder.

    Arrays are recorded in ``segments`` keyed by their slash-joined path
    (``"m/centres"``, ``"m/reg_ens/plr/tree/knots"``); dicts recurse;
    everything else (None, group-value lists, scalars, pickled regressor
    objects) passes through untouched.  :func:`_restore_arrays` inverts.
    """
    if isinstance(node, np.ndarray):
        segments[prefix] = node
        return (_MAPPED_SEGMENT, prefix)
    if isinstance(node, dict):
        return {
            key: _flatten_arrays(value, f"{prefix}/{key}", segments)
            for key, value in node.items()
        }
    return node


def _restore_arrays(node, segments: dict):
    """Swap :func:`_flatten_arrays` placeholders back to arrays."""
    if isinstance(node, tuple) and len(node) == 2 and node[0] == _MAPPED_SEGMENT:
        return segments[node[1]]
    if isinstance(node, dict):
        return {key: _restore_arrays(value, segments) for key, value in node.items()}
    return node


class BatchedGroupEvaluator:
    """All per-group state of one GROUP BY model set, stacked flat.

    Build with :meth:`build` (returns None when the set cannot be
    stacked); answer every group with :meth:`answer`; slice contiguous
    group segments for worker pools with :meth:`split`.
    """

    def __init__(self, x_columns: tuple[str, ...], y_column: str | None,
                 model_state: dict | None, raw_state: dict | None) -> None:
        self.x_columns = x_columns
        self.y_column = y_column
        self._m = model_state
        self._r = raw_state
        # Memoised (bounds -> Simpson grid + pdf rows): SUM, AVG and
        # VARIANCE over the same ranges share one exp pass instead of
        # re-evaluating the mixture pdf per aggregate.  Keyed by the
        # per-group bound arrays; bounded FIFO; dropped from pickles.
        self._grid_cache: dict = {}
        self._grid_hits = 0
        self._grid_misses = 0

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_grid_cache"] = {}
        state["_grid_hits"] = 0
        state["_grid_misses"] = 0
        return state

    def grid_cache_stats(self) -> dict:
        """Hit/miss/occupancy counters of the memoised pdf-grid cache.

        The serving layer's answer cache sits *above* this one: an
        answer-cache miss that re-runs a previously-seen bounds template
        still reuses the exp pass memoised here.  These counters let
        benchmarks and the query server report both layers.
        """
        return {
            "entries": len(self._grid_cache),
            "hits": int(getattr(self, "_grid_hits", 0)),
            "misses": int(getattr(self, "_grid_misses", 0)),
        }

    def _evict_grid_entries(self, need_room_for: int = 0) -> None:
        """Drop oldest grid-cache entries down to the configured bounds.

        Tolerates concurrent mutation: the serving layer may answer two
        different bounds templates against the same evaluator from two
        threads, so a racing pop is treated as \"someone else evicted
        it\" rather than an error.
        """
        total = need_room_for + sum(
            entry.get("elements", 0) for entry in list(self._grid_cache.values())
        )
        while self._grid_cache and (
            len(self._grid_cache) >= self._GRID_CACHE_MAX
            or total > self._ND_GRID_CACHE_ELEMENTS
        ):
            try:
                evicted = self._grid_cache.pop(next(iter(self._grid_cache)))
            except (StopIteration, KeyError, RuntimeError):
                break  # racing evictor got there first; best-effort is fine
            total -= evicted.get("elements", 0)

    # -- mapped persistence -------------------------------------------------

    def export_mapped_state(self) -> tuple[dict, dict]:
        """Flatten this evaluator into ``(meta, segments)`` for persistence.

        ``segments`` maps a slash-joined state path (``"m/centres"``,
        ``"m/reg_plr/knots"``, ``"r/x"``, ...) to the ndarray living
        there — every array the answer paths touch, *including* the
        derived expansions (``aug_*``, ``inv_h_rep``, ``centre_over_h``,
        ``pdf_scale``), so a loader never re-runs the per-group derive
        loop.  ``meta`` is the state skeleton with each array replaced
        by a ``(_MAPPED_SEGMENT, name)`` placeholder; everything
        non-array (group values, ``points``, ``reg_mode``, pickled
        ``reg_objects``) stays in it verbatim.  :meth:`from_mapped`
        inverts the transform, accepting any mapping of name to
        array-like — in particular ``np.memmap`` views straight off a
        store record.
        """
        segments: dict = {}
        meta = {
            "x_columns": tuple(self.x_columns),
            "y_column": self.y_column,
            "model": _flatten_arrays(self._m, "m", segments),
            "raw": _flatten_arrays(self._r, "r", segments),
        }
        return meta, segments

    @classmethod
    def from_mapped(cls, meta: dict, segments: dict) -> "BatchedGroupEvaluator":
        """Rebuild an evaluator from :meth:`export_mapped_state` output.

        Zero copies: the state dicts reference the given arrays (memmap
        views included) directly, and no derive pass runs — the derived
        arrays were persisted as segments of their own.
        """
        return cls(
            tuple(meta["x_columns"]),
            meta["y_column"],
            _restore_arrays(meta["model"], segments),
            _restore_arrays(meta["raw"], segments),
        )

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, model_set) -> "BatchedGroupEvaluator | None":
        """Stack a :class:`GroupByModelSet`; None if it is not batchable."""
        x_columns = tuple(model_set.x_columns)
        if len(x_columns) == 1:
            model_state = cls._stack_models(model_set)
        else:
            model_state = cls._stack_models_nd(model_set)
        if model_set.models and model_state is None:
            return None
        raw_state = cls._stack_raw(model_set)
        if model_set.raw_groups and raw_state is None:
            return None
        return cls(x_columns, model_set.y_column, model_state, raw_state)

    @classmethod
    def splice(
        cls, old: "BatchedGroupEvaluator | None", model_set, dirty_values
    ) -> "BatchedGroupEvaluator | None":
        """Evaluator for a refreshed set, re-stacking only dirty groups.

        Clean groups' stacked CSR segments are copied straight out of
        ``old``; only the groups in ``dirty_values`` go through the
        per-model export path (a mini :meth:`_stack_models` pass over
        just those models, merged field-wise in sorted-value order).
        The result is bit-identical to :meth:`build` on the full set —
        the parity tests assert it — while costing O(dirty) exports
        plus one array copy.  Returns None when splicing does not apply
        (multivariate state, ensemble regressors, regressor-mode or
        grid mismatch between old and new fits); the caller then falls
        back to a full rebuild.
        """
        if old is None:
            return cls.build(model_set)
        m = old._m
        if m is not None and m.get("ndim", 1) != 1:
            return None
        if len(model_set.x_columns) != 1:
            return None
        dirty = set(dirty_values)
        dirty_models = {
            v: mod for v, mod in model_set.models.items() if v in dirty
        }
        raw_state = cls._stack_raw(model_set)
        if model_set.raw_groups and raw_state is None:
            return None
        if not dirty_models:
            # Dirty groups are all raw: the model state is untouched.
            return cls(old.x_columns, old.y_column, m, raw_state)
        shim = SimpleNamespace(
            models=dirty_models, x_columns=model_set.x_columns
        )
        mini = cls._stack_models(shim)
        if mini is None:
            return None
        if m is None:
            if len(dirty_models) != len(model_set.models):
                return None
            return cls(old.x_columns, old.y_column, mini, raw_state)
        if mini["points"] != m["points"] or mini["reg_mode"] != m["reg_mode"]:
            return None
        if m["reg_mode"] == "ensemble":
            return None
        state = cls._merge_model_states(m, mini)
        if state is None:
            return None
        if len(state["values"]) != len(model_set.models) or any(
            v not in model_set.models for v in state["values"]
        ):
            return None  # groups appeared/vanished outside the dirty set
        return cls(old.x_columns, old.y_column, state, raw_state)

    @classmethod
    def _merge_model_states(cls, m: dict, mini: dict) -> dict | None:
        """Field-wise merge of two stacked 1-D states, ``mini`` winning."""
        old_pos = {v: i for i, v in enumerate(m["values"])}
        new_pos = {v: i for i, v in enumerate(mini["values"])}
        union = sorted(set(old_pos) | set(new_pos))
        g = len(union)
        src = [
            (mini, new_pos[v]) if v in new_pos else (m, old_pos[v])
            for v in union
        ]
        is_new = np.asarray([st is mini for st, _ in src], dtype=bool)
        take = np.asarray([i for _, i in src], dtype=np.intp)
        new_dest = np.flatnonzero(is_new)
        old_dest = np.flatnonzero(~is_new)

        def merge_scalar(field: str) -> np.ndarray:
            out = np.empty(g, dtype=np.asarray(m[field]).dtype)
            out[old_dest] = np.asarray(m[field])[take[old_dest]]
            out[new_dest] = np.asarray(mini[field])[take[new_dest]]
            return out

        def merge_csr(data_field: str, off_field: str) -> tuple:
            segs = []
            counts = np.empty(g, dtype=np.int64)
            for u, (st, i) in enumerate(src):
                off = st[off_field]
                seg = st[data_field][off[i]:off[i + 1]]
                segs.append(seg)
                counts[u] = seg.shape[0]
            data = np.concatenate(segs) if segs else np.empty(0)
            return data, np.concatenate(([0], np.cumsum(counts)))

        centres, coffsets = merge_csr("centres", "coffsets")
        cweights, _ = merge_csr("cweights", "coffsets")
        res_edges, res_eoffsets = merge_csr("res_edges", "res_eoffsets")
        res_var, res_voffsets = merge_csr("res_var", "res_voffsets")
        state: dict = {
            "values": union,
            "centres": centres,
            "cweights": cweights,
            "coffsets": coffsets.astype(np.int64),
            "points": m["points"],
            "res_edges": res_edges,
            "res_var": res_var,
            "res_eoffsets": res_eoffsets.astype(np.int64),
            "res_voffsets": res_voffsets.astype(np.int64),
            "reg_mode": m["reg_mode"],
        }
        for key in ("h", "sup_lo", "sup_hi", "dom_lo", "dom_hi", "reflect",
                    "pm_mask", "pm_value", "population", "res_global"):
            state[key] = merge_scalar(key)
        def merge_plr_csr(field: str) -> tuple:
            segs = []
            counts = np.empty(g, dtype=np.int64)
            for u, (st, i) in enumerate(src):
                plr = st["reg_plr"]
                off = plr["koffsets"]
                seg = plr[field][off[i]:off[i + 1]]
                segs.append(seg)
                counts[u] = seg.shape[0]
            data = np.concatenate(segs) if segs else np.empty(0)
            return data, np.concatenate(([0], np.cumsum(counts)))

        mode = m["reg_mode"]
        if mode == "plr":
            knots, koffsets = merge_plr_csr("knots")
            hinge, _ = merge_plr_csr("hinge")
            affine = np.empty((g, 2))
            affine[old_dest] = m["reg_plr"]["affine"][take[old_dest]]
            affine[new_dest] = mini["reg_plr"]["affine"][take[new_dest]]
            state["reg_plr"] = {
                "knots": knots,
                "koffsets": koffsets.astype(np.int64),
                "hinge": hinge,
                "affine": affine,
            }
        elif mode == "linear":
            affine = np.empty((g, m["reg_affine"].shape[1]))
            affine[old_dest] = m["reg_affine"][take[old_dest]]
            affine[new_dest] = mini["reg_affine"][take[new_dest]]
            state["reg_affine"] = affine
        elif mode == "forest":
            # Reconstruct per-group export tuples from the stacked
            # arrays (the inverse of _stack_forest) and re-stack in
            # union order; both directions are pure offset arithmetic,
            # so the node arrays come out bit-identical.
            def forest_export(st: dict, i: int) -> tuple:
                f = st["reg_forest"]
                t0, t1 = f["gtoffsets"][i], f["gtoffsets"][i + 1]
                n0, n1 = f["toffsets"][t0], f["toffsets"][t1]
                return (
                    "forest", f["base"][i], f["lr"][i],
                    f["toffsets"][t0:t1 + 1] - n0,
                    f["feature"][n0:n1], f["threshold"][n0:n1],
                    f["left"][n0:n1], f["right"][n0:n1], f["value"][n0:n1],
                )

            state["reg_forest"] = cls._stack_forest(
                [forest_export(st, i) for st, i in src]
            )
        elif mode == "generic":
            state["reg_objects"] = [st["reg_objects"][i] for st, i in src]
        # Derived arrays merge like the primary fields (both sides were
        # built by _derive_model_arrays, whose outputs are per-group
        # segments/scalars) — re-deriving would walk every group again,
        # defeating the O(dirty) splice.
        state["counts"] = np.diff(state["coffsets"])
        state["inv_h"] = 1.0 / state["h"]
        state["inv_h_rep"] = np.repeat(state["inv_h"], state["counts"])
        aug_centre_over_h, aug_offsets = merge_csr(
            "aug_centre_over_h", "aug_offsets"
        )
        aug_weights, _ = merge_csr("aug_weights", "aug_offsets")
        state["aug_centre_over_h"] = aug_centre_over_h
        state["aug_weights"] = aug_weights
        state["aug_offsets"] = aug_offsets.astype(np.int64)
        state["aug_counts"] = np.diff(state["aug_offsets"])
        return state

    @classmethod
    def _stack_models(cls, model_set) -> dict | None:
        items = sorted(model_set.models.items(), key=lambda kv: kv[0])
        if not items:
            return None
        centres, weights, counts = [], [], []
        h, sup_lo, sup_hi, dom_lo, dom_hi = [], [], [], [], []
        reflect, pm_mask, pm_value, population, points = [], [], [], [], []
        res_edges, res_var, res_global, res_counts = [], [], [], []
        regressors = []
        for _value, model in items:
            if not isinstance(model, ColumnSetModel) or model.n_dims != 1:
                return None
            if model.integration_method != "simpson":
                return None
            density = model.density
            if not isinstance(density, KernelDensityEstimator):
                return None
            if not density.is_fitted or density._centres.size == 0:
                return None
            mix = density.export_mixture()
            centres.append(mix.centres)
            weights.append(mix.weights)
            counts.append(mix.centres.size)
            h.append(mix.h)
            sup_lo.append(mix.support[0])
            sup_hi.append(mix.support[1])
            reflect.append(mix.reflect)
            pm_mask.append(mix.point_mass is not None)
            pm_value.append(mix.point_mass if mix.point_mass is not None else np.nan)
            dom_lo.append(model.x_domain[0][0])
            dom_hi.append(model.x_domain[0][1])
            population.append(model.population_size)
            points.append(model.integration_points)
            edges = model._residual_edges
            var = model._residual_var
            res_edges.append(edges if edges is not None else np.empty(0))
            res_var.append(var if var is not None else np.empty(0))
            res_counts.append(0 if edges is None else edges.shape[0])
            res_global.append(model._residual_var_global)
            regressors.append(model.regressor)
        if len(set(points)) != 1:
            return None

        state: dict = {
            "values": [value for value, _ in items],
            "centres": np.concatenate(centres),
            "cweights": np.concatenate(weights),
            "coffsets": np.concatenate(([0], np.cumsum(counts))),
            "h": np.asarray(h),
            "sup_lo": np.asarray(sup_lo),
            "sup_hi": np.asarray(sup_hi),
            "dom_lo": np.asarray(dom_lo),
            "dom_hi": np.asarray(dom_hi),
            "reflect": np.asarray(reflect, dtype=bool),
            "pm_mask": np.asarray(pm_mask, dtype=bool),
            "pm_value": np.asarray(pm_value),
            "population": np.asarray(population, dtype=np.float64),
            "points": int(points[0]),
            "res_edges": np.concatenate(res_edges) if res_edges else np.empty(0),
            "res_var": np.concatenate(res_var) if res_var else np.empty(0),
            "res_eoffsets": np.concatenate(([0], np.cumsum(res_counts))),
            "res_voffsets": np.concatenate(
                ([0], np.cumsum([c + 1 if c else 0 for c in res_counts]))
            ),
            "res_global": np.asarray(res_global),
        }
        cls._derive_model_arrays(state)
        if not cls._stack_regressors(state, regressors):
            return None
        return state

    @staticmethod
    def _derive_model_arrays(state: dict) -> None:
        """Precompute per-centre expansions the hot loops need."""
        counts = np.diff(state["coffsets"])
        state["counts"] = counts
        inv_h = 1.0 / state["h"]
        state["inv_h"] = inv_h
        state["inv_h_rep"] = np.repeat(inv_h, counts)
        # Boundary reflection folded into the mixture: mirroring kernels
        # at the support edges equals adding mirrored centres 2*lo - c and
        # 2*hi - c with the same weights.  The pdf pass then needs exactly
        # one kernel term per (centre, node) pair instead of three
        # per-term matrices; groups without reflection keep their plain
        # centres.  (The analytic CDF keeps the original centres — the
        # scalar path's four-C formula is replicated exactly.)
        aug_centres, aug_weights, aug_counts = [], [], []
        offsets = state["coffsets"]
        reflect = state["reflect"]
        for g in range(counts.shape[0]):
            seg = slice(offsets[g], offsets[g + 1])
            c = state["centres"][seg]
            w = state["cweights"][seg]
            if reflect[g]:
                lo, hi = state["sup_lo"][g], state["sup_hi"][g]
                aug_centres.append(
                    np.concatenate([c, 2.0 * lo - c, 2.0 * hi - c])
                )
                aug_weights.append(np.concatenate([w, w, w]))
                aug_counts.append(3 * c.size)
            else:
                aug_centres.append(c)
                aug_weights.append(w)
                aug_counts.append(c.size)
        aug_counts = np.asarray(aug_counts, dtype=np.int64)
        state["aug_counts"] = aug_counts
        state["aug_offsets"] = np.concatenate(([0], np.cumsum(aug_counts)))
        inv_h_aug = np.repeat(inv_h, aug_counts)
        # Scaled centres: z = x * inv_h - centre_over_h avoids a division
        # per (centre, node) pair in the pdf blocks.
        state["aug_centre_over_h"] = np.concatenate(aug_centres) * inv_h_aug
        state["aug_weights"] = np.concatenate(aug_weights)

    @classmethod
    def _stack_models_nd(cls, model_set) -> dict | None:
        """Stack multivariate (product-kernel) model groups, or None.

        The d-dimensional analogue of :meth:`_stack_models`: centres
        become one ``(M, d)`` CSR array, per-group scalars become
        ``(G,)`` / ``(G, d)`` arrays, and the domain normaliser of every
        group's :class:`~repro.ml.kde.MultivariateKDE` folds into a
        single per-group pdf scale.
        """
        items = sorted(model_set.models.items(), key=lambda kv: kv[0])
        if not items:
            return None
        d = len(model_set.x_columns)
        centres, weights, counts = [], [], []
        h, dom_lo, dom_hi, kde_lo, kde_hi, norm = [], [], [], [], [], []
        population, points, res_global = [], [], []
        regressors = []
        for _value, model in items:
            if not isinstance(model, ColumnSetModel) or model.n_dims != d:
                return None
            if model.integration_method != "simpson":
                return None
            density = model.density
            if not isinstance(density, MultivariateKDE):
                return None
            if not density.is_fitted or density._centres.shape[0] == 0:
                return None
            mix = density.export_mixture()
            centres.append(mix.centres)
            weights.append(mix.weights)
            counts.append(mix.centres.shape[0])
            h.append(mix.h)
            dom_lo.append([bounds[0] for bounds in model.x_domain])
            dom_hi.append([bounds[1] for bounds in model.x_domain])
            kde_lo.append(mix.domain_low)
            kde_hi.append(mix.domain_high)
            norm.append(mix.norm)
            population.append(model.population_size)
            points.append(model.integration_points)
            res_global.append(model._residual_var_global)
            regressors.append(model.regressor)
        if len(set(points)) != 1:
            return None
        # The scalar _box_grid caps the tensor-Simpson grid at ~70k
        # points per group (m odd nodes per dimension); the batched grid
        # must use the same m to reproduce its moments.
        m = min(int(points[0]), max(9, int(round(70_000 ** (1.0 / d)))))
        if m % 2 == 0:
            m -= 1
        state: dict = {
            "ndim": d,
            "values": [value for value, _ in items],
            "centres": np.concatenate(centres, axis=0),
            "cweights": np.concatenate(weights),
            "coffsets": np.concatenate(([0], np.cumsum(counts))),
            "h": np.stack(h),
            "dom_lo": np.asarray(dom_lo),
            "dom_hi": np.asarray(dom_hi),
            "kde_lo": np.stack(kde_lo),
            "kde_hi": np.stack(kde_hi),
            "norm": np.asarray(norm),
            "population": np.asarray(population, dtype=np.float64),
            "points": int(points[0]),
            "grid_m": m,
            "res_global": np.asarray(res_global),
        }
        cls._derive_model_arrays_nd(state)
        if not cls._stack_regressors_nd(state, regressors):
            return None
        return state

    @staticmethod
    def _derive_model_arrays_nd(state: dict) -> None:
        """Precompute the per-centre expansions the nd hot loops need."""
        counts = np.diff(state["coffsets"])
        state["counts"] = counts
        inv_h = 1.0 / state["h"]
        state["inv_h"] = inv_h
        inv_h_rep = np.repeat(inv_h, counts, axis=0)
        state["inv_h_rep"] = inv_h_rep
        # Scaled centres: z_j = x_j * inv_h_j - centre_j_over_h_j avoids
        # a division per (centre, point, dim) triple in the pdf blocks.
        state["centre_over_h"] = state["centres"] * inv_h_rep
        # 1 / (prod_j h_j * sqrt(2 pi)^d * norm): the factor the scalar
        # pdf divides by, applied once per group pdf row.
        state["pdf_scale"] = 1.0 / (
            np.prod(state["h"], axis=1)
            * _SQRT_2PI ** state["ndim"]
            * state["norm"]
        )

    @staticmethod
    def _stack_regressors_nd(state: dict, regressors: list) -> bool:
        """Classify the per-group regressors of a multivariate set."""
        if all(reg is None for reg in regressors):
            state["reg_mode"] = "none"
            return True
        if any(reg is None for reg in regressors):
            return False  # mixed presence: let the scalar loop handle it
        d = state["ndim"]
        exported = []
        for reg in regressors:
            export = getattr(reg, "export_batch_state", None)
            exported.append(export() if export is not None else None)
        if all(
            e is not None and e[0] == "linear" and e[1].shape[0] == d + 1
            for e in exported
        ):
            state["reg_mode"] = "linear"
            state["reg_affine"] = np.stack([e[1] for e in exported])
        else:
            # Trees, boosters and ensembles have no stacked multivariate
            # form: the per-group predict loop remains while the density
            # work around it stays batched.
            state["reg_mode"] = "generic"
            state["reg_objects"] = list(regressors)
        return True

    @classmethod
    def _stack_regressors(cls, state: dict, regressors: list) -> bool:
        """Classify and (when possible) stack the per-group regressors."""
        if all(reg is None for reg in regressors):
            state["reg_mode"] = "none"
            return True
        if any(reg is None for reg in regressors):
            return False  # mixed presence: let the scalar loop handle it
        exported = []
        for reg in regressors:
            export = getattr(reg, "export_batch_state", None)
            exported.append(export() if export is not None else None)
        kinds = {None if e is None else e[0] for e in exported}
        if kinds == {"plr"}:
            state["reg_mode"] = "plr"
            state["reg_plr"] = cls._stack_plr(exported)
        elif kinds == {"linear"}:
            state["reg_mode"] = "linear"
            state["reg_affine"] = np.stack([e[1] for e in exported])
        elif kinds == {"forest"}:
            state["reg_mode"] = "forest"
            state["reg_forest"] = cls._stack_forest(exported)
        elif all(isinstance(reg, EnsembleRegressor) for reg in regressors):
            ensemble_state = cls._stack_ensembles(regressors)
            if ensemble_state is None:
                state["reg_mode"] = "generic"
                state["reg_objects"] = list(regressors)
            else:
                state["reg_mode"] = "ensemble"
                state["reg_ens"] = ensemble_state
                state["reg_objects"] = list(regressors)
        else:
            state["reg_mode"] = "generic"
            state["reg_objects"] = list(regressors)
        return True

    @staticmethod
    def _stack_plr(exported: list[tuple]) -> dict:
        """Stack per-group ``("plr", knots, coef)`` exports flat (CSR)."""
        knots = [e[1] for e in exported]
        counts = [k.shape[0] for k in knots]
        return {
            "knots": np.concatenate(knots),
            "koffsets": np.concatenate(([0], np.cumsum(counts))),
            "hinge": np.concatenate([e[2][2:] for e in exported]),
            "affine": np.stack([e[2][:2] for e in exported]),
        }

    @staticmethod
    def _stack_forest(exported: list[tuple]) -> dict:
        """Stack per-group ``("forest", ...)`` exports into one flat forest.

        Child indices stay tree-local; ``toffsets`` maps every tree to
        its flat node range and ``gtoffsets`` maps every group to its
        tree range, so lock-step traversal and contiguous group slicing
        both reduce to offset arithmetic.
        """
        base = np.asarray([e[1] for e in exported], dtype=np.float64)
        lr = np.asarray([e[2] for e in exported], dtype=np.float64)
        tree_counts = np.asarray([e[3].shape[0] - 1 for e in exported])
        gtoffsets = np.concatenate(([0], np.cumsum(tree_counts)))
        node_counts = [int(e[3][-1]) for e in exported]
        node_base = np.concatenate(([0], np.cumsum(node_counts)))
        toffsets = np.concatenate(
            [e[3][:-1] + node_base[i] for i, e in enumerate(exported)]
            + [node_base[-1:]]
        )
        return {
            "base": base,
            "lr": lr,
            "gtoffsets": gtoffsets.astype(np.int64),
            "toffsets": toffsets.astype(np.int64),
            "feature": np.concatenate([e[4] for e in exported]),
            "threshold": np.concatenate([e[5] for e in exported]),
            "left": np.concatenate([e[6] for e in exported]),
            "right": np.concatenate([e[7] for e in exported]),
            "value": np.concatenate([e[8] for e in exported]),
        }

    @classmethod
    def _stack_ensembles(cls, regressors: list) -> dict | None:
        """Stack every ensemble constituent across groups, or None.

        Selection stays per group (each ensemble routes a query range
        through its own classifier), but once selected, all groups that
        picked the same constituent family evaluate through one stacked
        pass — piecewise-linear constituents via the hinge kernel, tree
        boosters via lock-step forest traversal.
        """
        names: set | None = None
        per_group: list[dict] = []
        for reg in regressors:
            states = reg.export_constituent_states()
            if states is None:
                return None
            if names is None:
                names = set(states)
            elif set(states) != names:
                return None
            per_group.append(states)
        plr: dict = {}
        forest: dict = {}
        for name in sorted(names):
            kinds = {states[name][0] for states in per_group}
            if kinds == {"plr"}:
                plr[name] = cls._stack_plr([s[name] for s in per_group])
            elif kinds == {"forest"}:
                forest[name] = cls._stack_forest([s[name] for s in per_group])
            else:
                return None
        return {"plr": plr, "forest": forest}

    @classmethod
    def _stack_raw(cls, model_set) -> dict | None:
        items = sorted(model_set.raw_groups.items(), key=lambda kv: kv[0])
        if not items:
            return None
        d = len(model_set.x_columns)
        xs, ys, counts, has_y, scale = [], [], [], [], []
        for _value, raw in items:
            if raw.x.ndim != 2 or raw.x.shape[1] != d or raw.x.shape[0] == 0:
                return None
            xs.append(raw.x)
            counts.append(raw.x.shape[0])
            has_y.append(raw.y is not None)
            ys.append(raw.y if raw.y is not None else np.zeros(raw.x.shape[0]))
            scale.append(raw.population_scale)
        return {
            "values": [value for value, _ in items],
            "x": np.concatenate(xs, axis=0),
            "y": np.concatenate(ys),
            "offsets": np.concatenate(([0], np.cumsum(counts))),
            "counts": np.asarray(counts),
            "has_y": np.asarray(has_y, dtype=bool),
            "scale": np.asarray(scale, dtype=np.float64),
        }

    # -- introspection ------------------------------------------------------

    @property
    def n_groups(self) -> int:
        n = 0
        if self._m is not None:
            n += len(self._m["values"])
        if self._r is not None:
            n += len(self._r["values"])
        return n

    # -- splitting (for worker pools) ---------------------------------------

    def split(self, n_chunks: int) -> list["BatchedGroupEvaluator"]:
        """Contiguous group segments sharing this evaluator's arrays.

        Worker pools pickle the (cheap, plain-array) segments instead of
        the per-group model objects the scalar path ships.
        """
        if n_chunks < 1:
            raise InvalidParameterError(f"n_chunks must be >= 1, got {n_chunks}")
        model_parts = self._split_models(n_chunks)
        raw_parts = self._split_raw(n_chunks)
        length = max(len(model_parts), len(raw_parts))
        parts = []
        for i in range(length):
            part = BatchedGroupEvaluator(
                self.x_columns,
                self.y_column,
                model_parts[i] if i < len(model_parts) else None,
                raw_parts[i] if i < len(raw_parts) else None,
            )
            if part.n_groups:
                parts.append(part)
        return parts or [self]

    def _split_models(self, n_chunks: int) -> list[dict | None]:
        if self._m is None:
            return []
        if self._m.get("ndim", 1) != 1:
            return self._split_models_nd(n_chunks)
        state = self._m
        g = len(state["values"])
        bounds = chunk_bounds(g, n_chunks)
        parts = []
        for g0, g1 in bounds:
            c0, c1 = state["coffsets"][g0], state["coffsets"][g1]
            e0, e1 = state["res_eoffsets"][g0], state["res_eoffsets"][g1]
            v0, v1 = state["res_voffsets"][g0], state["res_voffsets"][g1]
            part = {
                "values": state["values"][g0:g1],
                "centres": state["centres"][c0:c1],
                "cweights": state["cweights"][c0:c1],
                "coffsets": state["coffsets"][g0:g1 + 1] - c0,
                "points": state["points"],
                "res_edges": state["res_edges"][e0:e1],
                "res_var": state["res_var"][v0:v1],
                "res_eoffsets": state["res_eoffsets"][g0:g1 + 1] - e0,
                "res_voffsets": state["res_voffsets"][g0:g1 + 1] - v0,
                "reg_mode": state["reg_mode"],
            }
            for key in ("h", "sup_lo", "sup_hi", "dom_lo", "dom_hi", "reflect",
                        "pm_mask", "pm_value", "population", "res_global"):
                part[key] = state[key][g0:g1]
            if state["reg_mode"] == "plr":
                part["reg_plr"] = self._slice_plr(state["reg_plr"], g0, g1)
            elif state["reg_mode"] == "linear":
                part["reg_affine"] = state["reg_affine"][g0:g1]
            elif state["reg_mode"] == "forest":
                part["reg_forest"] = self._slice_forest(
                    state["reg_forest"], g0, g1
                )
            elif state["reg_mode"] == "ensemble":
                part["reg_ens"] = {
                    "plr": {
                        name: self._slice_plr(sub, g0, g1)
                        for name, sub in state["reg_ens"]["plr"].items()
                    },
                    "forest": {
                        name: self._slice_forest(sub, g0, g1)
                        for name, sub in state["reg_ens"]["forest"].items()
                    },
                }
                part["reg_objects"] = state["reg_objects"][g0:g1]
            elif state["reg_mode"] == "generic":
                part["reg_objects"] = state["reg_objects"][g0:g1]
            # Slice the derived expansions instead of re-deriving them:
            # bit-identical (plain contiguous slices) and, on a mapped
            # state, the parts stay zero-copy views of the same pages.
            a0, a1 = state["aug_offsets"][g0], state["aug_offsets"][g1]
            part["counts"] = state["counts"][g0:g1]
            part["inv_h"] = state["inv_h"][g0:g1]
            part["inv_h_rep"] = state["inv_h_rep"][c0:c1]
            part["aug_counts"] = state["aug_counts"][g0:g1]
            part["aug_offsets"] = state["aug_offsets"][g0:g1 + 1] - a0
            part["aug_centre_over_h"] = state["aug_centre_over_h"][a0:a1]
            part["aug_weights"] = state["aug_weights"][a0:a1]
            parts.append(part)
        return parts

    def _split_models_nd(self, n_chunks: int) -> list[dict | None]:
        """Contiguous group slices of a stacked multivariate state."""
        state = self._m
        parts = []
        for g0, g1 in chunk_bounds(len(state["values"]), n_chunks):
            c0, c1 = state["coffsets"][g0], state["coffsets"][g1]
            part = {
                "ndim": state["ndim"],
                "values": state["values"][g0:g1],
                "centres": state["centres"][c0:c1],
                "cweights": state["cweights"][c0:c1],
                "coffsets": state["coffsets"][g0:g1 + 1] - c0,
                "points": state["points"],
                "grid_m": state["grid_m"],
                "reg_mode": state["reg_mode"],
            }
            for key in ("h", "dom_lo", "dom_hi", "kde_lo", "kde_hi",
                        "norm", "population", "res_global"):
                part[key] = state[key][g0:g1]
            if state["reg_mode"] == "linear":
                part["reg_affine"] = state["reg_affine"][g0:g1]
            elif state["reg_mode"] == "generic":
                part["reg_objects"] = state["reg_objects"][g0:g1]
            for key in ("counts", "inv_h", "pdf_scale"):
                part[key] = state[key][g0:g1]
            for key in ("inv_h_rep", "centre_over_h"):
                part[key] = state[key][c0:c1]
            parts.append(part)
        return parts

    @staticmethod
    def _slice_plr(plr: dict, g0: int, g1: int) -> dict:
        """Contiguous group slice of a stacked piecewise-linear state."""
        k0, k1 = plr["koffsets"][g0], plr["koffsets"][g1]
        return {
            "knots": plr["knots"][k0:k1],
            "hinge": plr["hinge"][k0:k1],
            "koffsets": plr["koffsets"][g0:g1 + 1] - k0,
            "affine": plr["affine"][g0:g1],
        }

    @staticmethod
    def _slice_forest(forest: dict, g0: int, g1: int) -> dict:
        """Contiguous group slice of a stacked forest state."""
        t0, t1 = forest["gtoffsets"][g0], forest["gtoffsets"][g1]
        n0, n1 = forest["toffsets"][t0], forest["toffsets"][t1]
        return {
            "base": forest["base"][g0:g1],
            "lr": forest["lr"][g0:g1],
            "gtoffsets": forest["gtoffsets"][g0:g1 + 1] - t0,
            "toffsets": forest["toffsets"][t0:t1 + 1] - n0,
            "feature": forest["feature"][n0:n1],
            "threshold": forest["threshold"][n0:n1],
            "left": forest["left"][n0:n1],
            "right": forest["right"][n0:n1],
            "value": forest["value"][n0:n1],
        }

    def _split_raw(self, n_chunks: int) -> list[dict | None]:
        if self._r is None:
            return []
        state = self._r
        parts = []
        for g0, g1 in chunk_bounds(len(state["values"]), n_chunks):
            r0, r1 = state["offsets"][g0], state["offsets"][g1]
            parts.append({
                "values": state["values"][g0:g1],
                "x": state["x"][r0:r1],
                "y": state["y"][r0:r1],
                "offsets": state["offsets"][g0:g1 + 1] - r0,
                "counts": state["counts"][g0:g1],
                "has_y": state["has_y"][g0:g1],
                "scale": state["scale"][g0:g1],
            })
        return parts

    # -- answering ----------------------------------------------------------

    def answer(self, aggregate: AggregateCall, ranges: Ranges) -> dict:
        """One aggregate for every group, in a handful of array passes."""
        registry = get_registry()
        t0 = perf_counter() if registry.enabled else 0.0
        out: dict = {}
        if self._m is not None:
            if self._m.get("ndim", 1) == 1:
                out.update(self._answer_models(aggregate, ranges))
            else:
                out.update(self._answer_models_nd(aggregate, ranges))
        if self._r is not None:
            out.update(self._answer_raw(aggregate, ranges))
        if registry.enabled:
            registry.histogram("repro_kernel_answer_seconds").observe(
                perf_counter() - t0
            )
            registry.counter(
                "repro_kernel_groups_total", {"func": aggregate.func}
            ).inc(len(out))
        return out

    # -- model groups -------------------------------------------------------

    def _answer_models(self, aggregate: AggregateCall, ranges: Ranges) -> dict:
        func, column = aggregate.func, aggregate.column
        x_column = self.x_columns[0]
        on_x = column is not None and column == x_column
        on_y = column is not None and column == self.y_column
        lb, ub = self._normalised_bounds(ranges)

        if func == "COUNT":
            vals = self._count(lb, ub)
        elif func == "PERCENTILE":
            if not on_x:
                raise UnsupportedQueryError(
                    f"PERCENTILE must target the predicate column "
                    f"{self.x_columns}, got {column!r}"
                )
            vals = self._percentile(aggregate.parameter, bool(ranges), lb, ub)
        elif func == "AVG":
            if on_x:
                den, num1, _num2, _cache = self._moments(lb, ub, use_regressor=False)
                with np.errstate(invalid="ignore", divide="ignore"):
                    vals = np.where(den > 0, num1 / den, np.nan)
            elif on_y:
                vals = self._avg_y(lb, ub)
            else:
                raise UnsupportedQueryError(
                    f"AVG column {column!r} is neither the model's x nor y"
                )
        elif func == "SUM":
            if not on_y:
                raise UnsupportedQueryError(
                    f"SUM column {column!r} is not the model's dependent "
                    f"column ({self.y_column!r})"
                )
            count = self._count(lb, ub)
            avg = self._avg_y(lb, ub)
            vals = np.where(
                (count <= 0.0) | np.isnan(avg), 0.0, count * avg
            )
        elif func in ("VARIANCE", "STDDEV"):
            if on_x:
                vals = self._variance_x(lb, ub)
            elif on_y:
                vals = self._variance_y(lb, ub)
            else:
                raise UnsupportedQueryError(
                    f"{func} column {column!r} is neither the model's x nor y"
                )
            if func == "STDDEV":
                vals = np.sqrt(vals)
        else:
            raise UnsupportedQueryError(f"unsupported aggregate {func!r}")
        return dict(zip(self._m["values"], vals.tolist()))

    def _normalised_bounds(self, ranges: Ranges) -> tuple[np.ndarray, np.ndarray]:
        """Per-group (lb, ub); unconstrained groups default to their domain."""
        state = self._m
        entry = ranges.get(self.x_columns[0]) if ranges else None
        if entry is None:
            return state["dom_lo"], state["dom_hi"]
        lb, ub = entry
        if ub < lb:
            raise InvalidParameterError(
                f"range on {self.x_columns[0]!r} reversed: [{lb}, {ub}]"
            )
        g = len(state["values"])
        return np.full(g, float(lb)), np.full(g, float(ub))

    # -- analytic CDF machinery ---------------------------------------------

    def _mixture_cdf_at(self, t: np.ndarray) -> np.ndarray:
        """Unreflected mixture CDF of each group at its own point ``t``."""
        state = self._m
        t_rep = np.repeat(t, state["counts"])
        legs = ndtr((t_rep - state["centres"]) * state["inv_h_rep"])
        legs *= state["cweights"]
        return _segment_sum(legs, state["coffsets"])

    def _cdf_at(self, t: np.ndarray) -> np.ndarray:
        """Analytic CDF of each group at its own point (reflection-aware)."""
        state = self._m
        lo, hi = state["sup_lo"], state["sup_hi"]
        clipped = np.clip(t, lo, hi)
        use_reflect = state["reflect"]
        base = np.where(use_reflect, clipped, t)
        raw = self._mixture_cdf_at(base)
        if use_reflect.any():
            reflected = (
                raw
                - self._mixture_cdf_at(2.0 * lo - clipped)
                + self._mixture_cdf_at(2.0 * hi - lo)
                - self._mixture_cdf_at(2.0 * hi - clipped)
            )
            raw = np.where(use_reflect, reflected, raw)
        pm = state["pm_mask"]
        if pm.any():
            raw = np.where(pm, (t >= state["pm_value"]).astype(np.float64), raw)
        return raw

    def _count(self, lb: np.ndarray, ub: np.ndarray) -> np.ndarray:
        """COUNT = population * clipped mixture mass, all groups at once."""
        state = self._m
        a = np.maximum(lb, state["sup_lo"])
        b = np.minimum(ub, state["sup_hi"])
        nonempty = b > a
        pm = state["pm_mask"]
        frac = np.zeros(len(state["values"]))
        mass = np.maximum(self._cdf_at(b) - self._cdf_at(a), 0.0)
        frac = np.where(nonempty & ~pm, mass, frac)
        pm_hit = (
            nonempty & pm
            & (a <= state["pm_value"]) & (state["pm_value"] <= b)
        )
        frac = np.where(pm_hit, 1.0, frac)
        return state["population"] * frac

    # -- grid-moment machinery ----------------------------------------------

    _GRID_CACHE_MAX = 8
    # Element budget for the multivariate grid machinery: one nd entry
    # holds (points + weights + pdf) ~ (d + 2) * G * m^d floats — with
    # the default 257-point grid that is tens of MB per entry, so the
    # entry cap alone could pin GBs.  Cached entries evict oldest-first
    # until a new entry fits; a query whose single entry would exceed
    # the budget streams its groups through budget-sized blocks instead,
    # so construction memory is bounded too.
    _ND_GRID_CACHE_ELEMENTS = 32_000_000  # ~256 MB of float64

    def _moments(
        self, lb: np.ndarray, ub: np.ndarray, use_regressor: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, dict]:
        """(∫D, ∫fD, ∫f²D) per group over the shared Simpson grid.

        The per-group grids, pdf rows and scaled weights are memoised by
        query bounds: SUM, AVG and VARIANCE over the same ranges evaluate
        the (exp-bound) mixture pdf once and reuse it, re-running only
        the cheap regression factor and the weighted reductions.  The
        returned cache dict carries the same arrays so VARIANCE's
        residual pass can reuse them within one call (the scalar path
        recomputes them with identical values).
        """
        state = self._m
        g = len(state["values"])
        key = (lb.tobytes(), ub.tobytes())
        registry = get_registry()
        cache = self._grid_cache.get(key)
        if cache is None:
            self._grid_misses += 1
            if registry.enabled:
                registry.counter("repro_grid_cache_misses_total").inc()
            a = np.maximum(lb, state["sup_lo"])
            b = np.minimum(ub, state["sup_hi"])
            active = np.flatnonzero(b > a)
            cache = {"a": a, "b": b, "active": active}
            if active.size:
                m = state["points"]
                nodes = np.linspace(a[active], b[active], m, axis=1)
                scale = (b[active] - a[active]) / (m - 1) / 3.0
                cache.update(
                    nodes=nodes,
                    pdf=self._pdf_grid(active, nodes),
                    weights=simpson_weights(m)[None, :] * scale[:, None],
                )
            self._evict_grid_entries()
            self._grid_cache[key] = cache
        else:
            self._grid_hits += 1
            if registry.enabled:
                registry.counter("repro_grid_cache_hits_total").inc()
        active = cache["active"]
        den = np.zeros(g)
        num1 = np.zeros(g)
        num2 = np.zeros(g)
        if active.size == 0:
            return den, num1, num2, cache
        nodes, d, w = cache["nodes"], cache["pdf"], cache["weights"]
        t0 = perf_counter() if registry.enabled else 0.0
        if use_regressor:
            f = self._predict_grid(active, nodes, lb, ub)
        else:
            f = nodes
        wd = w * d
        den[active] = wd.sum(axis=1)
        num1[active] = (wd * f).sum(axis=1)
        num2[active] = (wd * f * f).sum(axis=1)
        if registry.enabled:
            registry.histogram("repro_kernel_simpson_seconds").observe(
                perf_counter() - t0
            )
        return den, num1, num2, cache

    def _pdf_grid(self, active: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        """Reflected mixture pdf of each active group on its node row.

        Reflection is pre-folded into the augmented centre array, so one
        kernel term per (centre, node) pair suffices.  The pass works
        through the CSR in cache-sized blocks: each block materialises
        the kernel matrix for a run of whole groups, folds the mixture
        weights in, and segment-sums rows into per-group pdf rows.
        """
        state = self._m
        n_active, m = nodes.shape
        inv_h = state["inv_h"][active]
        ns = nodes * inv_h[:, None]

        counts = state["aug_counts"][active]
        local_offsets = np.concatenate(([0], np.cumsum(counts)))
        # Per-row (centre) indices into the flat augmented arrays and
        # into the active-group node matrix.
        flat_rows = _csr_take_rows(state["aug_offsets"], active)
        local_group = np.repeat(np.arange(n_active), counts)
        coh = state["aug_centre_over_h"][flat_rows]
        cw = state["aug_weights"][flat_rows]

        registry = get_registry()
        t0 = perf_counter() if registry.enabled else 0.0
        out = np.empty((n_active, m))
        chunk_starts = _chunk_by_budget(counts * m, _PDF_BLOCK)
        for g0, g1 in zip(chunk_starts[:-1], chunk_starts[1:]):
            r0, r1 = local_offsets[g0], local_offsets[g1]
            rows = slice(r0, r1)
            acc = ns.take(local_group[rows], axis=0)
            acc -= coh[rows, None]
            np.square(acc, out=acc)
            acc *= -0.5
            np.exp(acc, out=acc)
            acc *= cw[rows, None]
            out[g0:g1] = np.add.reduceat(acc, local_offsets[g0:g1] - r0, axis=0)
        out *= (inv_h / _SQRT_2PI)[:, None]
        if registry.enabled:
            registry.counter("repro_kernel_pdf_blocks_total").inc(
                len(chunk_starts) - 1
            )
            registry.counter("repro_kernel_pdf_elements_total").inc(
                int(counts.sum()) * m
            )
            registry.histogram("repro_kernel_pdf_seconds").observe(
                perf_counter() - t0
            )
        return out

    def _predict_grid(
        self,
        active: np.ndarray,
        nodes: np.ndarray,
        lb: np.ndarray,
        ub: np.ndarray,
    ) -> np.ndarray:
        """Regression predictions for each active group on its node row."""
        state = self._m
        mode = state["reg_mode"]
        if mode == "none":
            raise UnsupportedQueryError(
                f"model on {self.x_columns} has no regression model; "
                "regression-based aggregates need a y column"
            )
        if mode == "linear":
            coef = state["reg_affine"][active]
            return coef[:, 0:1] + coef[:, 1:2] * nodes
        if mode == "plr":
            return self._plr_predict(state["reg_plr"], active, nodes)
        if mode == "forest":
            return self._forest_predict(state["reg_forest"], active, nodes)
        if mode == "ensemble":
            return self._ensemble_predict(active, nodes, lb, ub)
        # Generic regressors (exotic estimators the exporters cannot
        # stack): the scalar predict loop remains, but the density work
        # around it is batched.
        out = np.empty_like(nodes)
        for i, g in enumerate(active.tolist()):
            regressor = state["reg_objects"][g]
            if isinstance(regressor, EnsembleRegressor):
                out[i] = regressor.predict(nodes[i], lb=lb[g], ub=ub[g])
            else:
                out[i] = regressor.predict(nodes[i])
        return out

    @staticmethod
    def _plr_predict(
        plr: dict, active: np.ndarray, nodes: np.ndarray
    ) -> np.ndarray:
        """Stacked piecewise-linear predictions on the given node rows."""
        coef = plr["affine"][active]
        out = coef[:, 0:1] + coef[:, 1:2] * nodes
        counts = np.diff(plr["koffsets"])[active]
        local_offsets = np.concatenate(([0], np.cumsum(counts)))
        rows = _csr_take_rows(plr["koffsets"], active)
        knots = plr["knots"][rows]
        hinge_coef = plr["hinge"][rows]
        lg = np.repeat(np.arange(active.shape[0]), counts)
        hinges = np.maximum(0.0, nodes.take(lg, axis=0) - knots[:, None])
        hinges *= hinge_coef[:, None]
        out += np.add.reduceat(hinges, local_offsets[:-1], axis=0)
        return out

    @staticmethod
    def _forest_predict(
        forest: dict, active: np.ndarray, nodes: np.ndarray
    ) -> np.ndarray:
        """Lock-step traversal of every active group's boosted trees.

        All (tree, node-row) pairs advance one level per iteration over
        the flat stacked node arrays — the per-group, per-stage Python
        loop of the scalar path becomes ~max_depth gather passes — then
        per-group learning-rate-scaled leaf sums reduce with one
        ``np.add.reduceat``, matching the scalar accumulation order.
        """
        gtoffsets = forest["gtoffsets"]
        tree_idx = _csr_take_rows(gtoffsets, active)
        tree_counts = np.diff(gtoffsets)[active]
        roots = forest["toffsets"][:-1][tree_idx]
        lg = np.repeat(np.arange(active.shape[0]), tree_counts)
        x = nodes[lg]                                   # (T, m)
        offs = roots[:, None]
        pos = np.broadcast_to(offs, x.shape).copy()
        feature = forest["feature"]
        threshold = forest["threshold"]
        left = forest["left"]
        right = forest["right"]
        # A root-to-leaf path can never visit more nodes than the
        # largest tree holds, so this bound is exact; leftover internal
        # positions afterwards mean cyclic/corrupt node arrays, which
        # must raise rather than silently return split-node values.
        depth_bound = int(np.max(np.diff(forest["toffsets"]), initial=1))
        for _ in range(depth_bound):
            feat = feature[pos]
            internal = feat >= 0
            if not internal.any():
                break
            child = np.where(x <= threshold[pos], left[pos], right[pos])
            pos = np.where(internal, offs + child, pos)
        else:
            if (feature[pos] >= 0).any():
                raise QueryExecutionError(
                    "stacked forest traversal did not reach leaves within "
                    f"{depth_bound} levels; node arrays are corrupt"
                )
        contrib = forest["value"][pos]
        contrib *= forest["lr"][active][lg, None]
        local_toffsets = np.concatenate(([0], np.cumsum(tree_counts)))
        summed = np.add.reduceat(contrib, local_toffsets[:-1], axis=0)
        return summed + forest["base"][active][:, None]

    def _ensemble_predict(
        self,
        active: np.ndarray,
        nodes: np.ndarray,
        lb: np.ndarray,
        ub: np.ndarray,
    ) -> np.ndarray:
        """Route each group through its selected constituent, stacked.

        Selection is the scalar path's own ``select(lb, ub)`` per group
        (a tiny classifier lookup); evaluation batches all groups that
        picked the same constituent through one stacked pass.
        """
        state = self._m
        ens = state["reg_ens"]
        objects = state["reg_objects"]
        names = np.asarray([
            objects[g].select(float(lb[g]), float(ub[g]))
            for g in active.tolist()
        ])
        out = np.empty_like(nodes)
        for name in np.unique(names).tolist():
            positions = np.flatnonzero(names == name)
            sub_active = active[positions]
            if name in ens["plr"]:
                out[positions] = self._plr_predict(
                    ens["plr"][name], sub_active, nodes[positions]
                )
            else:
                out[positions] = self._forest_predict(
                    ens["forest"][name], sub_active, nodes[positions]
                )
        return out

    # -- aggregate bodies ---------------------------------------------------

    def _avg_y(self, lb: np.ndarray, ub: np.ndarray) -> np.ndarray:
        den, num1, _num2, _cache = self._moments(lb, ub, use_regressor=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(den <= _EMPTY_DENSITY, np.nan, num1 / den)

    def _variance_x(self, lb: np.ndarray, ub: np.ndarray) -> np.ndarray:
        den, num1, num2, _cache = self._moments(lb, ub, use_regressor=False)
        with np.errstate(invalid="ignore", divide="ignore"):
            explained = num2 / den - (num1 / den) ** 2
            return np.where(
                den <= _EMPTY_DENSITY, np.nan, np.maximum(0.0, explained)
            )

    def _variance_y(self, lb: np.ndarray, ub: np.ndarray) -> np.ndarray:
        den, num1, num2, cache = self._moments(lb, ub, use_regressor=True)
        residual = self._expected_residual_variance(den, cache)
        with np.errstate(invalid="ignore", divide="ignore"):
            explained = num2 / den - (num1 / den) ** 2
            return np.where(
                den <= _EMPTY_DENSITY,
                np.nan,
                np.maximum(0.0, explained + residual),
            )

    def _expected_residual_variance(
        self, den: np.ndarray, cache: dict
    ) -> np.ndarray:
        """E[Var(y|x)] per group, reusing the moment pass's pdf grid."""
        state = self._m
        out = state["res_global"].copy()
        active = cache["active"]
        if active.size == 0:
            return out
        edge_counts = np.diff(state["res_eoffsets"])
        nodes, pdf, weights = cache["nodes"], cache["pdf"], cache["weights"]
        for i, g in enumerate(active.tolist()):
            if edge_counts[g] == 0 or den[g] <= _EMPTY_DENSITY:
                continue
            edges = state["res_edges"][
                state["res_eoffsets"][g]:state["res_eoffsets"][g + 1]
            ]
            var = state["res_var"][
                state["res_voffsets"][g]:state["res_voffsets"][g + 1]
            ]
            codes = np.searchsorted(edges, nodes[i], side="left")
            out[g] = float(weights[i] @ (pdf[i] * var[codes])) / den[g]
        return out

    # -- percentile ---------------------------------------------------------

    def _percentile(
        self,
        p: float,
        has_ranges: bool,
        lb: np.ndarray,
        ub: np.ndarray,
    ) -> np.ndarray:
        """All groups' bisections in lock-step (mirrors integrate.bisect)."""
        state = self._m
        if not 0.0 < p < 1.0:
            raise InvalidParameterError(
                f"percentile p must be in (0, 1), got {p}"
            )
        lo = state["sup_lo"].copy()
        hi = state["sup_hi"].copy()
        if has_ranges:
            lo = np.maximum(lo, lb)
            hi = np.minimum(hi, ub)
        if np.any(hi < lo):
            bad = int(np.flatnonzero(hi < lo)[0])
            raise InvalidParameterError(
                f"integration bounds reversed: [{lo[bad]}, {hi[bad]}]"
            )
        pm = state["pm_mask"]
        base = self._cdf_at(lo)
        total = self._cdf_at(hi) - base
        pm_inside = (lo <= state["pm_value"]) & (state["pm_value"] <= hi)
        total = np.where(pm, pm_inside.astype(np.float64), total)
        result = np.full(len(state["values"]), np.nan)
        alive = total > _EMPTY_DENSITY
        if not alive.any():
            return result

        def objective(t: np.ndarray) -> np.ndarray:
            with np.errstate(invalid="ignore", divide="ignore"):
                return (self._cdf_at(t) - base) / total - p

        f_lo = objective(lo)
        f_hi = objective(hi)
        done = ~alive
        hit_lo = alive & (f_lo == 0.0)
        result[hit_lo] = lo[hit_lo]
        done |= hit_lo
        hit_hi = alive & ~done & (f_hi == 0.0)
        result[hit_hi] = hi[hit_hi]
        done |= hit_hi
        bad = alive & ~done & ((f_lo > 0) == (f_hi > 0))
        if bad.any():
            g = int(np.flatnonzero(bad)[0])
            raise QueryExecutionError(
                f"bisection interval [{lo[g]}, {hi[g]}] does not bracket a "
                f"root (f(lo)={f_lo[g]:.3g}, f(hi)={f_hi[g]:.3g})"
            )
        tol = 1e-9
        for _ in range(200):
            open_mask = alive & ~done
            if not open_mask.any():
                break
            mid = 0.5 * (lo + hi)
            f_mid = objective(mid)
            newly = open_mask & ((f_mid == 0.0) | ((hi - lo) < tol))
            result[newly] = mid[newly]
            done |= newly
            open_mask &= ~newly
            same_sign = (f_mid > 0) == (f_hi > 0)
            shrink_hi = open_mask & same_sign
            hi = np.where(shrink_hi, mid, hi)
            f_hi = np.where(shrink_hi, f_mid, f_hi)
            lo = np.where(open_mask & ~same_sign, mid, lo)
        leftover = alive & ~done
        result[leftover] = 0.5 * (lo[leftover] + hi[leftover])
        return result

    # -- multivariate model groups ------------------------------------------

    def _answer_models_nd(self, aggregate: AggregateCall, ranges: Ranges) -> dict:
        """One aggregate for every multivariate model group.

        Mirrors the scalar :class:`~repro.core.model.ColumnSetModel`
        dispatch exactly, including which aggregates a multivariate
        model refuses (density-based x-moments and PERCENTILE).
        """
        func, column = aggregate.func, aggregate.column
        on_x = column is not None and column in self.x_columns
        on_y = column is not None and column == self.y_column
        lb, ub = self._normalised_bounds_nd(ranges)

        if func == "COUNT":
            vals = self._count_nd(lb, ub)
        elif func == "PERCENTILE":
            if not on_x:
                raise UnsupportedQueryError(
                    f"PERCENTILE must target the predicate column "
                    f"{self.x_columns}, got {column!r}"
                )
            raise UnsupportedQueryError(
                "PERCENTILE needs a single predicate column"
            )
        elif func == "AVG":
            if on_x:
                raise UnsupportedQueryError(
                    "density-based AVG is only defined for one predicate column"
                )
            if not on_y:
                raise UnsupportedQueryError(
                    f"AVG column {column!r} is neither the model's x nor y"
                )
            vals = self._avg_y_nd(lb, ub)
        elif func == "SUM":
            if not on_y:
                raise UnsupportedQueryError(
                    f"SUM column {column!r} is not the model's dependent "
                    f"column ({self.y_column!r})"
                )
            count = self._count_nd(lb, ub)
            avg = self._avg_y_nd(lb, ub)
            vals = np.where(
                (count <= 0.0) | np.isnan(avg), 0.0, count * avg
            )
        elif func in ("VARIANCE", "STDDEV"):
            if on_x:
                raise UnsupportedQueryError(
                    "density-based VARIANCE is only defined for one "
                    "predicate column"
                )
            if not on_y:
                raise UnsupportedQueryError(
                    f"{func} column {column!r} is neither the model's x nor y"
                )
            vals = self._variance_y_nd(lb, ub)
            if func == "STDDEV":
                vals = np.sqrt(vals)
        else:
            raise UnsupportedQueryError(f"unsupported aggregate {func!r}")
        return dict(zip(self._m["values"], vals.tolist()))

    def _normalised_bounds_nd(
        self, ranges: Ranges
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-group ``(G, d)`` bounds; unconstrained dims default to domain."""
        state = self._m
        lb = state["dom_lo"].copy()
        ub = state["dom_hi"].copy()
        for j, column in enumerate(self.x_columns):
            entry = ranges.get(column) if ranges else None
            if entry is None:
                continue
            low, high = entry
            if high < low:
                raise InvalidParameterError(
                    f"range on {column!r} reversed: [{low}, {high}]"
                )
            lb[:, j] = float(low)
            ub[:, j] = float(high)
        return lb, ub

    def _count_nd(self, lb: np.ndarray, ub: np.ndarray) -> np.ndarray:
        """COUNT = population * renormalised box mass, all groups at once."""
        state = self._m
        frac = np.zeros(len(state["values"]))
        # Two clips, replicating the scalar path: _fraction_nd clips to
        # the model domain (empty when any high <= low), integrate_box
        # re-clips to the KDE's own domain (empty when any high < low).
        a = np.maximum(lb, state["dom_lo"])
        b = np.minimum(ub, state["dom_hi"])
        open_box = (b > a).all(axis=1)
        a = np.maximum(a, state["kde_lo"])
        b = np.minimum(b, state["kde_hi"])
        open_box &= ~(b < a).any(axis=1)
        active = np.flatnonzero(open_box)
        if active.size:
            mass = self._box_mass_nd(active, a[active], b[active])
            frac[active] = np.maximum(0.0, mass / state["norm"][active])
        return state["population"] * frac

    def _box_mass_nd(
        self, active: np.ndarray, a: np.ndarray, b: np.ndarray
    ) -> np.ndarray:
        """Raw product-kernel box mass per active group (one ndtr pass).

        Each centre contributes the product over dimensions of its 1-D
        normal-CDF differences; per-group sums reduce the flat CSR with
        ``np.add.reduceat``.
        """
        state = self._m
        counts = state["counts"][active]
        local_offsets = np.concatenate(([0], np.cumsum(counts)))
        rows = _csr_take_rows(state["coffsets"], active)
        centres = state["centres"][rows]
        inv_h = state["inv_h_rep"][rows]
        upper = ndtr((np.repeat(b, counts, axis=0) - centres) * inv_h)
        lower = ndtr((np.repeat(a, counts, axis=0) - centres) * inv_h)
        per_point = np.prod(upper - lower, axis=1)
        per_point *= state["cweights"][rows]
        return _segment_sum(per_point, local_offsets)

    def _moments_nd(
        self, lb: np.ndarray, ub: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(∫D, ∫RD, ∫R²D) per group over its tensor-Simpson box grid.

        The per-group grids, combined Simpson weights and pdf rows are
        memoised by query bounds exactly as in :meth:`_moments`, so SUM,
        AVG and VARIANCE over the same ranges share one product-kernel
        exp pass.  Memory stays bounded in the group count: when one
        entry would exceed the cache's element budget, the groups stream
        through budget-sized blocks instead (no memoisation, never more
        than one block of grids in flight).
        """
        state = self._m
        g = len(state["values"])
        den = np.zeros(g)
        num1 = np.zeros(g)
        num2 = np.zeros(g)
        key = (lb.tobytes(), ub.tobytes())
        registry = get_registry()
        cache = self._grid_cache.get(key)
        if cache is None:
            self._grid_misses += 1
            if registry.enabled:
                registry.counter("repro_grid_cache_misses_total").inc()
            a = np.maximum(lb, state["dom_lo"])
            b = np.minimum(ub, state["dom_hi"])
            active = np.flatnonzero((b > a).all(axis=1))
            per_group = (state["ndim"] + 2) * state["grid_m"] ** state["ndim"]
            elements = int(active.size) * per_group
            if elements > self._ND_GRID_CACHE_ELEMENTS:
                block_starts = _chunk_by_budget(
                    np.full(active.size, per_group, dtype=np.int64),
                    self._ND_GRID_CACHE_ELEMENTS,
                )
                for i0, i1 in zip(block_starts[:-1], block_starts[1:]):
                    block = active[i0:i1]
                    points, weights = self._box_grid_nd(block, a, b)
                    pdf = self._pdf_box_grid(block, points)
                    self._reduce_moments_nd(
                        block, points, weights, pdf, den, num1, num2
                    )
                return den, num1, num2
            cache = {"active": active, "elements": elements}
            if active.size:
                points, weights = self._box_grid_nd(active, a, b)
                cache.update(
                    points=points,
                    weights=weights,
                    pdf=self._pdf_box_grid(active, points),
                )
            self._evict_grid_entries(need_room_for=elements)
            self._grid_cache[key] = cache
        else:
            self._grid_hits += 1
            if registry.enabled:
                registry.counter("repro_grid_cache_hits_total").inc()
        active = cache["active"]
        if active.size:
            self._reduce_moments_nd(
                active, cache["points"], cache["weights"], cache["pdf"],
                den, num1, num2,
            )
        return den, num1, num2

    def _box_grid_nd(
        self, active: np.ndarray, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Tensor-Simpson grids of the given groups' clipped boxes.

        Returns ``(points, weights)`` of shapes ``(A, m^d, d)`` and
        ``(A, m^d)`` in the C-order meshgrid-ravel layout of the scalar
        ``_box_grid`` (digit j indexes dim j's nodes, dim 0 major).
        """
        state = self._m
        d = state["ndim"]
        m = state["grid_m"]
        nodes = np.linspace(a[active], b[active], m, axis=-1)
        wdim = simpson_weights(m)[None, None, :] * (
            (b[active] - a[active]) / (m - 1) / 3.0
        )[:, :, None]
        digits = np.indices((m,) * d).reshape(d, -1)
        points = np.stack(
            [nodes[:, j, digits[j]] for j in range(d)], axis=2
        )
        weights = wdim[:, 0, digits[0]]
        for j in range(1, d):
            weights = weights * wdim[:, j, digits[j]]
        return points, weights

    def _reduce_moments_nd(
        self,
        active: np.ndarray,
        points: np.ndarray,
        weights: np.ndarray,
        pdf: np.ndarray,
        den: np.ndarray,
        num1: np.ndarray,
        num2: np.ndarray,
    ) -> None:
        """Weighted moment reductions of one block of group grids."""
        wd = weights * pdf
        den[active] = wd.sum(axis=1)
        f = self._predict_box_grid(active, points)
        num1[active] = (wd * f).sum(axis=1)
        num2[active] = (wd * f * f).sum(axis=1)

    def _pdf_box_grid(self, active: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Renormalised product-kernel pdf of each active group's grid.

        The d-dimensional analogue of :meth:`_pdf_grid`: one kernel term
        per (centre, grid-point) pair, worked through the CSR in
        cache-sized blocks of whole groups.  Squared z-scores accumulate
        dimension by dimension, so no ``(rows, points, d)`` temporary is
        ever materialised.
        """
        state = self._m
        d = state["ndim"]
        n_active, n_points, _ = points.shape
        # Dim-major contiguous layout: the per-centre row gathers below
        # then copy contiguous rows instead of striding over dimensions.
        ps = np.ascontiguousarray(
            np.moveaxis(points * state["inv_h"][active][:, None, :], 2, 0)
        )
        counts = state["counts"][active]
        local_offsets = np.concatenate(([0], np.cumsum(counts)))
        flat_rows = _csr_take_rows(state["coffsets"], active)
        local_group = np.repeat(np.arange(n_active), counts)
        coh = state["centre_over_h"][flat_rows]
        cw = state["cweights"][flat_rows]
        out = np.empty((n_active, n_points))
        chunk_starts = _chunk_by_budget(counts * n_points, _PDF_BLOCK)
        for g0, g1 in zip(chunk_starts[:-1], chunk_starts[1:]):
            r0, r1 = local_offsets[g0], local_offsets[g1]
            rows = slice(r0, r1)
            lg = local_group[rows]
            acc = ps[0].take(lg, axis=0)
            acc -= coh[rows, 0][:, None]
            np.square(acc, out=acc)
            for j in range(1, d):
                z = ps[j].take(lg, axis=0)
                z -= coh[rows, j][:, None]
                np.square(z, out=z)
                acc += z
            acc *= -0.5
            np.exp(acc, out=acc)
            acc *= cw[rows, None]
            out[g0:g1] = np.add.reduceat(acc, local_offsets[g0:g1] - r0, axis=0)
        out *= state["pdf_scale"][active][:, None]
        return out

    def _predict_box_grid(
        self, active: np.ndarray, points: np.ndarray
    ) -> np.ndarray:
        """Regression predictions for each active group on its box grid."""
        state = self._m
        mode = state["reg_mode"]
        if mode == "none":
            raise UnsupportedQueryError(
                f"model on {self.x_columns} has no regression model; "
                "regression-based aggregates need a y column"
            )
        if mode == "linear":
            coef = state["reg_affine"][active]
            return coef[:, 0, None] + np.einsum(
                "apd,ad->ap", points, coef[:, 1:]
            )
        # Generic regressors (trees, boosters, ensembles): the per-group
        # predict loop remains — with the same unbounded routing the
        # scalar _grid_moments_nd uses — while the density work around it
        # stays batched.
        out = np.empty(points.shape[:2])
        for i, g in enumerate(active.tolist()):
            out[i] = state["reg_objects"][g].predict(points[i])
        return out

    def _avg_y_nd(self, lb: np.ndarray, ub: np.ndarray) -> np.ndarray:
        den, num1, _num2 = self._moments_nd(lb, ub)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(den <= _EMPTY_DENSITY, np.nan, num1 / den)

    def _variance_y_nd(self, lb: np.ndarray, ub: np.ndarray) -> np.ndarray:
        den, num1, num2 = self._moments_nd(lb, ub)
        with np.errstate(invalid="ignore", divide="ignore"):
            explained = num2 / den - (num1 / den) ** 2
            # Multivariate models keep no residual bins: the unexplained
            # part is the global scalar, as in the scalar path.
            return np.where(
                den <= _EMPTY_DENSITY,
                np.nan,
                np.maximum(0.0, explained + self._m["res_global"]),
            )

    # -- raw groups ---------------------------------------------------------

    def _answer_raw(self, aggregate: AggregateCall, ranges: Ranges) -> dict:
        """All raw groups in one masked segmented pass per aggregate."""
        state = self._r
        func = aggregate.func
        offsets = state["offsets"]
        mask = np.ones(state["x"].shape[0], dtype=bool)
        for j, column in enumerate(self.x_columns):
            if column in ranges:
                lb, ub = ranges[column]
                mask &= (state["x"][:, j] >= lb) & (state["x"][:, j] <= ub)
        n = _segment_sum(mask.astype(np.float64), offsets)
        if func == "COUNT":
            return dict(zip(state["values"], (n * state["scale"]).tolist()))
        use_y = state["has_y"] & (aggregate.column not in self.x_columns)
        target = np.where(
            np.repeat(use_y, state["counts"]), state["y"], state["x"][:, 0]
        )
        if func == "PERCENTILE":
            vals = [
                float(np.quantile(seg[m_seg], aggregate.parameter))
                if m_seg.any() else float("nan")
                for seg, m_seg in zip(
                    np.split(target, offsets[1:-1]),
                    np.split(mask, offsets[1:-1]),
                )
            ]
            return dict(zip(state["values"], vals))
        masked = np.where(mask, target, 0.0)
        total = _segment_sum(masked, offsets)
        with np.errstate(invalid="ignore", divide="ignore"):
            if func == "SUM":
                vals = np.where(n > 0, total * state["scale"], 0.0)
            elif func in ("AVG", "VARIANCE", "STDDEV"):
                mean = total / n
                if func == "AVG":
                    vals = mean
                else:
                    deviation = np.where(
                        mask,
                        (target - np.repeat(mean, state["counts"])) ** 2,
                        0.0,
                    )
                    vals = _segment_sum(deviation, offsets) / n
                    if func == "STDDEV":
                        vals = np.sqrt(vals)
            else:
                raise ModelTrainingError(f"unsupported aggregate {func!r}")
        return dict(zip(state["values"], vals.tolist()))


def _chunk_by_budget(sizes: np.ndarray, budget: int) -> np.ndarray:
    """Boundaries packing consecutive groups into <= ``budget`` elements.

    Returns chunk start indices ``[0, ..., n]``; every chunk holds at
    least one group, so oversized single groups still get processed.
    """
    starts = [0]
    acc = 0
    for i, size in enumerate(sizes.tolist()):
        if acc and acc + size > budget:
            starts.append(i)
            acc = 0
        acc += size
    starts.append(int(sizes.shape[0]))
    return np.asarray(starts, dtype=np.int64)


def _csr_take_rows(offsets: np.ndarray, groups: np.ndarray) -> np.ndarray:
    """Flat row indices of the given (possibly non-contiguous) CSR groups."""
    counts = np.diff(offsets)[groups]
    starts = offsets[:-1][groups]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Runs of consecutive indices: start each run with a jump from the
    # previous run's last index, fill with +1 steps, and cumsum.
    out = np.ones(total, dtype=np.int64)
    ends = np.cumsum(counts)
    out[0] = starts[0]
    out[ends[:-1]] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(out)
