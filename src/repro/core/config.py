"""Engine configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidParameterError

_REGRESSORS = ("ensemble", "gboost", "xgboost", "plr", "linear", "tree")
_INTEGRATION_METHODS = ("simpson", "quad")
_PARALLEL_MODES = ("thread", "process")
_SHED_POLICIES = ("reject", "drop-oldest")
_STORE_FORMATS = ("pickle", "mmap")


@dataclass
class DBEstConfig:
    """Tunable knobs of the DBEst engine.

    Attributes
    ----------
    default_sample_size:
        Rows drawn by reservoir sampling when ``build_model`` is not given
        an explicit sample size.
    regressor:
        Which regression model backs column-pair models: the paper's
        default is the classifier-routed ``"ensemble"``; single-model
        choices exist for the regressor ablation.
    kde_bandwidth / kde_binned / kde_bins:
        Density-estimator settings (see :mod:`repro.ml.kde`).
    kde_bins_per_dim / kde_bin_threshold:
        Multivariate histogram resolution (bins *per dimension* — the
        d-dimensional grid holds ``kde_bins_per_dim ** d`` cells, so this
        is deliberately separate from the 1-D ``kde_bins``) and the
        sample size above which binned compression kicks in for both the
        1-D and the multivariate estimator.
    integration_points:
        Simpson grid size for regression-weighted integrals (odd, >= 3).
    integration_method:
        ``"simpson"`` (default, vectorised fixed grid) or ``"quad"``
        (adaptive QUADPACK, the method named by the paper) — compared in
        the integration ablation bench.
    min_group_rows:
        GROUP BY groups whose *sample* has fewer rows than this are kept
        as raw tuples instead of models (paper: "building models over
        small groups is an overkill").
    max_groups:
        Refuse to build group-by models above this group count (paper's
        "large cardinality" limitation); callers see a ModelTrainingError
        and should fall back to another engine.
    n_workers / parallel_mode:
        Worker pool for per-group model evaluation (§4.7); 1 means
        sequential single-thread execution, the paper's default setup.
    batched_groupby:
        Answer GROUP BY aggregates for all groups in one vectorised pass
        (see :mod:`repro.core.batched`) instead of the per-group scalar
        loop.  Both 1-D and multivariate predicate sets stack; the rare
        sets the batched path cannot stack (adaptive quadrature, exotic
        densities, mixed regressor presence) silently fall back to the
        scalar loop regardless of this flag.
    batched_train:
        Build GROUP BY model sets with the batched trainer
        (:mod:`repro.core.batched_train`): one sorted partition of the
        sample, all KDEs — 1-D and multivariate product kernels — from
        segmented reductions and one global bincount, all
        OLS/piecewise-linear regressors from stacked normal equations.
        Nonlinear regressors keep batched density fitting and train
        through the level-synchronous forest kernel (see
        ``batched_forest``).
    batched_forest:
        Train nonlinear regressors (tree / gboost / xgboost / ensemble)
        with the level-synchronous histogram-forest kernel
        (:mod:`repro.core.batched_forest`): all groups' trees grow one
        depth level at a time through shared bincount/cumsum passes,
        producing node arrays bit-identical to per-group fits.  Off
        routes them through the chunked per-group ``map_parallel``
        fallback (the parity oracle).  Only consulted when
        ``batched_train`` is on.
    serve_cache_bytes:
        Resident-model byte budget of the lazy on-disk model store
        (:class:`~repro.serve.store.ModelStore`).  Loaded models are
        kept in an LRU; once their summed record sizes exceed this
        budget the least-recently-touched models are dropped back to
        disk (they reload transparently on next touch).  0 means
        unbounded.
    store_format:
        Record format :meth:`~repro.serve.store.ModelStore.write` uses
        when not told explicitly: ``"pickle"`` (version-1 records, the
        parity oracle) or ``"mmap"`` (version-2 memory-mappable records
        — group-by sets persist their stacked CSR arrays as aligned
        segments, loads become an mmap + header check, and forked
        worker pools share the pages instead of receiving pickled
        arrays).  Models the mapped format cannot hold fall back to
        pickle records within the same store.
    serve_deadline_ms:
        Default per-request serving deadline in milliseconds (None =
        no deadline).  A queued query whose deadline expires before a
        worker dequeues it fails with
        :class:`~repro.errors.DeadlineExceededError`; a query whose
        remaining budget at evaluation time is smaller than the model
        path's observed latency degrades to a sampling engine instead
        (when ``serve_degrade`` is on).
    serve_max_queue:
        Admission-control bound on queued (not yet executing) requests
        (0 = unbounded).  When full, ``serve_shed_policy`` decides who
        is shed with :class:`~repro.errors.ServerOverloadedError`.
    serve_shed_policy:
        ``"reject"`` sheds the *new* arrival at submit time;
        ``"drop-oldest"`` sheds the oldest queued request and admits
        the new one (dashboards prefer fresh queries over stale ones).
    serve_retries:
        Bounded retry count for transient ``OSError`` during model-store
        record loads (0 = no retry).  Retries back off exponentially
        from ``serve_retry_backoff_ms`` with deterministic jitter.
    serve_retry_backoff_ms:
        Base backoff before the first store-load retry, in milliseconds;
        attempt *k* waits ``base * 2**k`` scaled by a jitter in
        [0.5, 1.5) drawn from the store's seeded RNG.
    serve_breaker_threshold:
        Consecutive model-path failures on one resolved model key that
        trip its circuit breaker open.  While open, queries on that key
        skip the failing model entirely (degrading when possible).
    serve_breaker_reset_ms:
        Cool-down after which an open breaker lets one half-open probe
        through; a successful probe closes the breaker, a failure
        re-opens it for another cool-down.
    serve_degrade:
        Route queries through :meth:`~repro.core.engine.DBEst.answer_degraded`
        (stratified/uniform AQP or exact, picked per query by
        :func:`~repro.core.advisor.route_degraded`) when the model path
        is broken (breaker open, corrupt record) or the deadline is
        near.  Degraded answers are tagged on the
        :class:`~repro.core.result.QueryResult`.
    degrade_sample_size:
        Rows kept by the degraded sampling engines (uniform/stratified)
        per table; drawn once, lazily, on first degraded answer.
    degrade_exact_rows:
        Tables at or below this row count answer degraded queries
        exactly (a full scan is cheap enough); larger tables route to a
        sampling engine.
    random_seed:
        Seed for sampling and model training; None draws fresh entropy.
    """

    default_sample_size: int = 10_000
    regressor: str = "ensemble"
    kde_bandwidth: str | float = "scott"
    kde_binned: bool = True
    kde_bins: int = 2048
    kde_bins_per_dim: int = 64
    kde_bin_threshold: int = 5000
    integration_points: int = 257
    integration_method: str = "simpson"
    min_group_rows: int = 30
    max_groups: int = 10_000
    n_workers: int = 1
    parallel_mode: str = "process"
    batched_groupby: bool = True
    batched_train: bool = True
    batched_forest: bool = True
    serve_cache_bytes: int = 256 << 20
    store_format: str = "pickle"
    serve_deadline_ms: float | None = None
    serve_max_queue: int = 0
    serve_shed_policy: str = "reject"
    serve_retries: int = 2
    serve_retry_backoff_ms: float = 5.0
    serve_breaker_threshold: int = 3
    serve_breaker_reset_ms: float = 500.0
    serve_degrade: bool = True
    degrade_sample_size: int = 10_000
    degrade_exact_rows: int = 50_000
    random_seed: int | None = field(default=None)

    def __post_init__(self) -> None:
        if self.default_sample_size <= 0:
            raise InvalidParameterError(
                f"default_sample_size must be positive, got {self.default_sample_size}"
            )
        if self.regressor not in _REGRESSORS:
            raise InvalidParameterError(
                f"regressor must be one of {_REGRESSORS}, got {self.regressor!r}"
            )
        if self.integration_points < 3 or self.integration_points % 2 == 0:
            raise InvalidParameterError(
                "integration_points must be odd and >= 3, "
                f"got {self.integration_points}"
            )
        if self.integration_method not in _INTEGRATION_METHODS:
            raise InvalidParameterError(
                f"integration_method must be one of {_INTEGRATION_METHODS}, "
                f"got {self.integration_method!r}"
            )
        if self.parallel_mode not in _PARALLEL_MODES:
            raise InvalidParameterError(
                f"parallel_mode must be one of {_PARALLEL_MODES}, "
                f"got {self.parallel_mode!r}"
            )
        if self.n_workers < 1:
            raise InvalidParameterError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if self.min_group_rows < 1:
            raise InvalidParameterError(
                f"min_group_rows must be >= 1, got {self.min_group_rows}"
            )
        if self.kde_bins_per_dim < 2:
            raise InvalidParameterError(
                f"kde_bins_per_dim must be >= 2, got {self.kde_bins_per_dim}"
            )
        if self.kde_bin_threshold < 1:
            raise InvalidParameterError(
                f"kde_bin_threshold must be >= 1, got {self.kde_bin_threshold}"
            )
        if self.serve_cache_bytes < 0:
            raise InvalidParameterError(
                f"serve_cache_bytes must be >= 0 (0 = unbounded), "
                f"got {self.serve_cache_bytes}"
            )
        if self.store_format not in _STORE_FORMATS:
            raise InvalidParameterError(
                f"store_format must be one of {_STORE_FORMATS}, "
                f"got {self.store_format!r}"
            )
        if self.serve_deadline_ms is not None and self.serve_deadline_ms <= 0:
            raise InvalidParameterError(
                f"serve_deadline_ms must be positive (or None for no "
                f"deadline), got {self.serve_deadline_ms}"
            )
        if self.serve_max_queue < 0:
            raise InvalidParameterError(
                f"serve_max_queue must be >= 0 (0 = unbounded), "
                f"got {self.serve_max_queue}"
            )
        if self.serve_shed_policy not in _SHED_POLICIES:
            raise InvalidParameterError(
                f"serve_shed_policy must be one of {_SHED_POLICIES}, "
                f"got {self.serve_shed_policy!r}"
            )
        if self.serve_retries < 0:
            raise InvalidParameterError(
                f"serve_retries must be >= 0, got {self.serve_retries}"
            )
        if self.serve_retry_backoff_ms < 0:
            raise InvalidParameterError(
                f"serve_retry_backoff_ms must be >= 0, "
                f"got {self.serve_retry_backoff_ms}"
            )
        if self.serve_breaker_threshold < 1:
            raise InvalidParameterError(
                f"serve_breaker_threshold must be >= 1, "
                f"got {self.serve_breaker_threshold}"
            )
        if self.serve_breaker_reset_ms < 0:
            raise InvalidParameterError(
                f"serve_breaker_reset_ms must be >= 0, "
                f"got {self.serve_breaker_reset_ms}"
            )
        if self.degrade_sample_size < 1:
            raise InvalidParameterError(
                f"degrade_sample_size must be >= 1, "
                f"got {self.degrade_sample_size}"
            )
        if self.degrade_exact_rows < 0:
            raise InvalidParameterError(
                f"degrade_exact_rows must be >= 0, "
                f"got {self.degrade_exact_rows}"
            )
