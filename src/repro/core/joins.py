"""Join support: produce training samples over join results.

Paper §2.2 gives two strategies for predictable/popular joins:

1. **precompute** — compute the full join result, draw a small uniform
   sample from it, build models, discard both join and sample.  Possible
   for DBEst precisely because nothing but the models must be kept.
2. **sampled** — for very large inputs, universe-sample each side on the
   join key with the same hash (à la VerdictDB/QuickR), join the samples,
   then draw the small uniform training sample from that.  The join
   cardinality ``N`` is estimated by scaling the sampled-join size by the
   inverse inclusion probability.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.sampling.hashed import hash_sample_table
from repro.sampling.reservoir import reservoir_sample_table
from repro.storage.join import hash_join
from repro.storage.table import Table


def join_table_name(left: str, right: str) -> str:
    """Canonical name the engine registers join models under."""
    return f"{left}_join_{right}"


def precompute_join_sample(
    left: Table,
    right: Table,
    left_key: str,
    right_key: str,
    sample_size: int,
    rng: np.random.Generator | None = None,
) -> tuple[Table, int]:
    """Strategy 1: full join, then a small uniform sample.

    Returns ``(sample, N)`` where ``N`` is the exact join cardinality.
    """
    joined = hash_join(
        left, right, left_key, right_key,
        name=join_table_name(left.name, right.name),
    )
    sample = reservoir_sample_table(joined, sample_size, rng=rng)
    return sample, joined.n_rows


def sampled_join_sample(
    left: Table,
    right: Table,
    left_key: str,
    right_key: str,
    sample_size: int,
    key_fraction: float = 0.1,
    rng: np.random.Generator | None = None,
    seed: int = 17,
) -> tuple[Table, int]:
    """Strategy 2: universe-sample both sides, join samples, then subsample.

    Universe sampling keeps a key value with probability ``key_fraction``
    on *both* sides simultaneously, so every join group survives intact
    with that probability and the sampled-join size is an unbiased
    ``key_fraction``-fraction estimate of the true join cardinality.
    """
    if not 0.0 < key_fraction <= 1.0:
        raise InvalidParameterError(
            f"key_fraction must be in (0, 1], got {key_fraction}"
        )
    left_sample = hash_sample_table(left, left_key, key_fraction, seed=seed)
    right_sample = hash_sample_table(right, right_key, key_fraction, seed=seed)
    joined = hash_join(
        left_sample, right_sample, left_key, right_key,
        name=join_table_name(left.name, right.name),
    )
    estimated_n = int(round(joined.n_rows / key_fraction))
    sample = reservoir_sample_table(joined, sample_size, rng=rng)
    return sample, estimated_n
