"""DBEst core: the paper's primary contribution.

The :class:`DBEst` engine builds :class:`ColumnSetModel` objects (a KDE
density estimator plus a regression model per column pair) from small
uniform samples, registers them in a :class:`ModelCatalog`, and answers
analytical SQL via integrals over the models — never touching base data
at query time.
"""

from repro.core.advisor import ModelTemplate, Recommendation, WorkloadAdvisor
from repro.core.aggregates import answer_aggregate
from repro.core.analytics import (
    describe_subspace,
    estimate_y,
    impute_missing,
    rank_relationships,
    relationship_strength,
    sketch_density,
    what_if_aggregate,
)
from repro.core.bundles import ModelBundle
from repro.core.catalog import ModelCatalog, ModelKey
from repro.core.config import DBEstConfig
from repro.core.engine import DBEst
from repro.core.groupby import GroupByModelSet, RawGroup
from repro.core.model import ColumnSetModel
from repro.core.result import QueryResult

__all__ = [
    "ColumnSetModel",
    "DBEst",
    "DBEstConfig",
    "GroupByModelSet",
    "ModelBundle",
    "ModelCatalog",
    "ModelKey",
    "ModelTemplate",
    "QueryResult",
    "RawGroup",
    "Recommendation",
    "WorkloadAdvisor",
    "answer_aggregate",
    "describe_subspace",
    "estimate_y",
    "impute_missing",
    "rank_relationships",
    "relationship_strength",
    "sketch_density",
    "what_if_aggregate",
]
