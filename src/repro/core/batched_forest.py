"""Level-synchronous forest training across all groups at once.

The last per-group Python loop in the train path was nonlinear
regression: tree, gboost, xgboost and ensemble models were fitted one
group at a time through chunked ``map_parallel``.  This module grows
**every group's tree simultaneously**, replacing per-group recursion
with a fixed number of whole-forest array passes per depth level, and
emits node arrays **bit-identical** to the scalar fits (same edges, same
gains, same node order), so the chunked path survives purely as the
opt-out fallback and parity oracle.

Algorithm — level-synchronous growth
------------------------------------

All groups' rows live in one flat group-major array (the trainer's
``GroupPartition`` layout, original within-group order).  Each feature
is discretised once per group with the segmented-quantile machinery from
:mod:`repro.core.batched_train` — bit-identical to the scalar
:class:`~repro.ml._histogram.BinnedFeatures` edges (consecutive dedup of
the per-group quantile vector, edges at the group maximum dropped) —
giving an ``(R, d)`` code matrix and a ``(G, d, W)`` edge tensor padded
with ``+inf``.

Growth then proceeds one depth level at a time over *all* trees:

1. **Node statistics.**  Active rows are kept contiguous per node; one
   ``np.bincount`` over the node slot vector yields every node's label
   sum, every node's value, and the stop test (``min_samples_split`` /
   ``2 * min_child_weight``), for all groups in one call.
2. **Histograms.**  For the splittable nodes a single flattened
   multi-index bincount builds the per-(node, feature, bin) count and
   label-sum tensor: ``flat = (slot * d + feature) * B + code``.  Nodes
   are chunked so the tensor stays inside a fixed element budget.
3. **Split search.**  Left/right statistics are prefix sums over the bin
   axis (one ``cumsum``); CART variance-reduction scores and XGB
   regularised gains are evaluated for every (node, feature, bin) at
   once, invalid bins (child-size bounds, per-group bin padding) masked
   to ``-inf``.
4. **Reassignment.**  Rows of splitting nodes route left/right by one
   gather of their split-feature code; a stable argsort on
   ``2 * node + side`` keeps children contiguous *and* preserves each
   row's original relative order, so the next level's bincounts
   accumulate in the same order the scalar recursion would.  Rows of
   retiring nodes write the node value into the flat in-sample
   prediction (used by boosting and by the residual-variance pass).

Boosting is the same kernel run ``n_estimators`` times with labels
rebound between rounds — residuals ``y - prediction`` for gboost,
gradients ``prediction - y`` for xgboost (unit hessians make the hessian
histogram the count histogram) — and the per-round in-sample prediction
update comes free from step 4's leaf assignment, bitwise equal to
``tree.predict`` on the training rows because training-time code
partition and post-fit threshold traversal agree (``code <= s`` iff
``x <= edges[s]``).

Tie-breaking contract (exact scalar replication)
------------------------------------------------

The scalar fitters take, per feature, ``np.argmax`` over bin scores
(first maximum wins) and then accept the first feature that *strictly*
improves the running best gain — initialised to ``1e-12`` for CART and
``0.0`` for XGB.  That is equivalent to a first-maximum argmax across
the (node, feature) gain matrix followed by one strict threshold test,
which is what step 3 computes.  Node sums are accumulated with
``np.bincount`` — strictly sequential in input order — and the scalar
fitters were aligned to the same order (see
:func:`repro.ml._histogram.sequential_sum`), so gains, values and hence
whole fitted forests match bit-for-bit.

Node numbering.  Levels create nodes breadth-first, but the scalar
recursion numbers them depth-first (each split allocates its two
children consecutively, splits execute in preorder).  The BFS arrays are
renumbered without any per-node loop: subtree sizes by one bottom-up
pass per level, preorder indices by one top-down pass per level, then
``newid(child) = 1 + 2 * preorder-rank-among-internal(parent) + side``
reproduces the scalar allocation order exactly, and one scatter writes
the per-group ``feature/threshold/left/right/value`` arrays in the
layout :meth:`repro.ml.tree._FlatTree.finalize` produces.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.config import DBEstConfig
from repro.errors import ModelTrainingError
from repro.ml.ensemble import EnsembleRegressor, default_constituents
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import PiecewiseLinearRegressor
from repro.ml.tree import DecisionTreeRegressor
from repro.ml.xgb import XGBRegressor
from repro.obs import get_registry

# Element budget for the per-level histogram tensor and blocked
# comparisons; matches the batched trainer's chunking budget.
_BLOCK_ELEMENTS = 1 << 22

# Regressor families the level-synchronous kernel can train.
_FOREST_REGRESSORS = ("tree", "gboost", "xgboost", "ensemble")


class _GroupBins:
    """Per-group quantile binning of the flat feature matrix.

    ``codes``: ``(R, d)`` int32 bin codes on each row's own group edges.
    ``n_bins``: ``(G, d)`` bins per group and feature (edges + 1).
    ``edges``: ``(G, d, W)`` edge tensor, ``+inf`` beyond a group's real
    edges — ``edges[g, f, b]`` is the raw threshold of split bin ``b``.
    """

    __slots__ = ("codes", "n_bins", "edges")

    def __init__(
        self, codes: np.ndarray, n_bins: np.ndarray, edges: np.ndarray
    ) -> None:
        self.codes = codes
        self.n_bins = n_bins
        self.edges = edges


def _compute_bins(
    x2d: np.ndarray, offsets: np.ndarray, max_bins: int
) -> _GroupBins:
    """Bin every group's features; bit-identical to per-group
    :class:`~repro.ml._histogram.BinnedFeatures` on each slice."""
    from repro.core.batched_train import _dedup_sorted_rows, segmented_quantiles

    n_rows, d = x2d.shape
    counts = np.diff(offsets)
    starts = offsets[:-1]
    n_groups = counts.shape[0]
    if not np.all(np.isfinite(x2d)):
        raise ModelTrainingError("feature matrix contains non-finite values")
    qs = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
    group_ids = np.repeat(np.arange(n_groups), counts)
    quant_all: list[np.ndarray] = []
    keep_all: list[np.ndarray] = []
    edge_counts = np.empty((n_groups, d), dtype=np.int64)
    for j in range(d):
        xj = np.ascontiguousarray(x2d[:, j])
        xj_sorted = xj[np.lexsort((xj, group_ids))]
        quant = segmented_quantiles(xj_sorted, starts, counts, qs)
        keep, _ = _dedup_sorted_rows(quant)
        # Edges at the group maximum separate nothing; dropping them makes
        # constant features unsplittable (same rule as compute_bin_edges).
        keep &= quant < np.maximum.reduceat(xj, starts)[:, None]
        edge_counts[:, j] = keep.sum(axis=1)
        quant_all.append(quant)
        keep_all.append(keep)
    width = int(edge_counts.max())
    edges = np.full((n_groups, d, width), np.inf)
    for j in range(d):
        keep = keep_all[j]
        quant = quant_all[j]
        pos = np.cumsum(keep, axis=1) - 1
        gi, qi = np.nonzero(keep)
        edges[gi, j, pos[gi, qi]] = quant[gi, qi]
    codes = np.empty((n_rows, d), dtype=np.int32)
    block = max(1, _BLOCK_ELEMENTS // max(d * width, 1))
    for r0 in range(0, n_rows, block):
        r1 = min(r0 + block, n_rows)
        gb = group_ids[r0:r1]
        # #{edges < x} == searchsorted(edges, x, side="left"); exact
        # comparisons keep ties in the same bin as the scalar path, and
        # the +inf padding never counts.
        codes[r0:r1] = (edges[gb] < x2d[r0:r1, :, None]).sum(axis=2)
    return _GroupBins(codes, edge_counts + 1, edges)


def _grow_forest(
    bins: _GroupBins,
    labels: np.ndarray,
    offsets: np.ndarray,
    *,
    kind: str,
    max_depth: int,
    min_samples_leaf: int = 1,
    min_samples_split: int = 2,
    min_child_weight: float = 1.0,
    reg_lambda: float = 0.0,
    gamma: float = 0.0,
    leaf_pred: np.ndarray,
) -> dict[str, np.ndarray]:
    """Grow one tree per group, all levels in lock-step.

    ``kind`` is ``"cart"`` (variance-reduction splits on ``labels``) or
    ``"xgb"`` (regularised gain on gradients ``labels`` with unit
    hessians).  ``leaf_pred`` receives every row's leaf value.  Returns
    the per-group node arrays in scalar DFS order plus ``offsets`` into
    them.  Child-size floors must be positive (``min_samples_leaf`` for
    CART, ``min_child_weight`` for XGB) so no empty child can be created.
    """
    registry = get_registry()
    t0 = perf_counter() if registry.enabled else 0.0
    codes = bins.codes
    n_groups = offsets.shape[0] - 1
    d = codes.shape[1]
    n_bin_cap = int(bins.n_bins.max())

    node_gid = np.arange(n_groups, dtype=np.int64)
    node_group = np.arange(n_groups, dtype=np.int64)
    rows = np.arange(offsets[-1], dtype=np.int64)
    block_counts = np.diff(offsets).astype(np.int64)
    n_total = n_groups

    feat_range = np.arange(d, dtype=np.int64)
    bin_range = np.arange(max(n_bin_cap - 1, 0), dtype=np.int64)
    levels: list[dict[str, np.ndarray]] = []
    depth = 0
    while node_gid.size:
        n_nodes = node_gid.size
        nf = block_counts.astype(np.float64)
        slot = np.repeat(np.arange(n_nodes, dtype=np.int64), block_counts)
        # bincount accumulates strictly in input order == the scalar
        # fitters' sequential node sums (see _histogram.sequential_sum).
        sums = np.bincount(slot, weights=labels[rows], minlength=n_nodes)
        if kind == "cart":
            value = sums / nf
            can_try = (depth < max_depth) & (block_counts >= min_samples_split)
        else:
            value = -sums / (nf + reg_lambda)
            can_try = (depth < max_depth) & (nf >= 2.0 * min_child_weight)

        feature_sel = np.full(n_nodes, -1, dtype=np.int64)
        split_bin_sel = np.zeros(n_nodes, dtype=np.int64)
        t_idx = np.flatnonzero(can_try)
        if t_idx.size and n_bin_cap > 1:
            _search_splits(
                bins, labels, kind, t_idx, can_try, slot, rows,
                node_group, block_counts, sums, nf,
                min_samples_leaf, min_child_weight, reg_lambda, gamma,
                feat_range, bin_range, feature_sel, split_bin_sel,
            )

        splitting = feature_sel >= 0
        threshold = np.zeros(n_nodes)
        s_idx = np.flatnonzero(splitting)
        if s_idx.size:
            threshold[s_idx] = bins.edges[
                node_group[s_idx], feature_sel[s_idx], split_bin_sel[s_idx]
            ]
        in_split = splitting[slot]
        retired = ~in_split
        leaf_pred[rows[retired]] = value[slot[retired]]

        n_splits = s_idx.size
        left_gid = np.full(n_nodes, -1, dtype=np.int64)
        right_gid = np.full(n_nodes, -1, dtype=np.int64)
        child_gid = n_total + np.arange(2 * n_splits, dtype=np.int64)
        left_gid[s_idx] = child_gid[0::2]
        right_gid[s_idx] = child_gid[1::2]
        levels.append({
            "gid": node_gid,
            "group": node_group,
            "value": value,
            "feature": np.where(splitting, feature_sel, -1),
            "threshold": threshold,
            "left": left_gid,
            "right": right_gid,
        })
        if n_splits == 0:
            break
        rows_s = rows[in_split]
        slot_s = slot[in_split]
        s_remap = np.full(n_nodes, -1, dtype=np.int64)
        s_remap[s_idx] = np.arange(n_splits, dtype=np.int64)
        local = s_remap[slot_s]
        go_left = (
            codes[rows_s, feature_sel[slot_s]].astype(np.int64)
            <= split_bin_sel[slot_s]
        )
        child_key = local * 2 + (1 - go_left.astype(np.int64))
        # Stable: children stay contiguous, rows keep original relative
        # order inside each child (the bit-parity invariant).
        order = np.argsort(child_key, kind="stable")
        rows = rows_s[order]
        block_counts = np.bincount(child_key, minlength=2 * n_splits)
        node_gid = child_gid
        node_group = np.repeat(node_group[s_idx], 2)
        n_total += 2 * n_splits
        depth += 1

    if registry.enabled:
        registry.histogram("repro_forest_grow_seconds").observe(
            perf_counter() - t0
        )
        registry.counter("repro_forest_levels_total").inc(len(levels))
        registry.counter("repro_forest_rows_total").inc(int(offsets[-1]))
        registry.counter("repro_forest_trees_total").inc(n_groups)
    return _renumber_to_dfs(levels, n_groups, n_total)


def _search_splits(
    bins: _GroupBins,
    labels: np.ndarray,
    kind: str,
    t_idx: np.ndarray,
    can_try: np.ndarray,
    slot: np.ndarray,
    rows: np.ndarray,
    node_group: np.ndarray,
    block_counts: np.ndarray,
    sums: np.ndarray,
    nf: np.ndarray,
    min_samples_leaf: int,
    min_child_weight: float,
    reg_lambda: float,
    gamma: float,
    feat_range: np.ndarray,
    bin_range: np.ndarray,
    feature_sel: np.ndarray,
    split_bin_sel: np.ndarray,
) -> None:
    """Histogram + cumsum gain search for one level's splittable nodes.

    Writes the chosen (feature, split_bin) into ``feature_sel`` /
    ``split_bin_sel`` (feature stays -1 where no split clears the gain
    threshold).  Nodes are processed in chunks bounded by the histogram
    tensor budget.
    """
    d = bins.codes.shape[1]
    n_bin_cap = int(bins.n_bins.max())
    n_try = t_idx.size
    in_try = can_try[slot]
    rows_t = rows[in_try]
    t_remap = np.full(can_try.shape[0], -1, dtype=np.int64)
    t_remap[t_idx] = np.arange(n_try, dtype=np.int64)
    slot_t = t_remap[slot[in_try]]
    y_t = labels[rows_t]
    nb_t = bins.n_bins[node_group[t_idx]]
    row_off = np.concatenate(([0], np.cumsum(block_counts[t_idx])))
    sums_t = sums[t_idx]
    nf_t = nf[t_idx]
    per_chunk = max(1, _BLOCK_ELEMENTS // (d * n_bin_cap))
    for c0 in range(0, n_try, per_chunk):
        c1 = min(c0 + per_chunk, n_try)
        tc = c1 - c0
        r0, r1 = row_off[c0], row_off[c1]
        cmat = bins.codes[rows_t[r0:r1]].astype(np.int64)
        local_slot = slot_t[r0:r1] - c0
        flat = (
            (local_slot[:, None] * d + feat_range[None, :]) * n_bin_cap + cmat
        ).ravel()
        length = tc * d * n_bin_cap
        y_c = y_t[r0:r1]
        cnt = np.bincount(flat, minlength=length).astype(np.float64)
        wsum = np.bincount(flat, weights=np.repeat(y_c, d), minlength=length)
        cnt = cnt.reshape(tc, d, n_bin_cap)
        wsum = wsum.reshape(tc, d, n_bin_cap)
        lc = np.cumsum(cnt, axis=2)[:, :, :-1]
        ls = np.cumsum(wsum, axis=2)[:, :, :-1]
        in_bins = bin_range[None, None, :] < (nb_t[c0:c1, :, None] - 1)
        n_chunk = nf_t[c0:c1]
        s_chunk = sums_t[c0:c1]
        if kind == "cart":
            rc = n_chunk[:, None, None] - lc
            rs = s_chunk[:, None, None] - ls
            valid = (
                (lc >= min_samples_leaf) & (rc >= min_samples_leaf) & in_bins
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                score = np.where(valid, ls**2 / lc + rs**2 / rc, -np.inf)
            sb = np.argmax(score, axis=2)
            best = np.take_along_axis(score, sb[:, :, None], axis=2)[:, :, 0]
            gain = best - (s_chunk * s_chunk / n_chunk)[:, None]
            fsel = np.argmax(gain, axis=1)
            gsel = np.take_along_axis(gain, fsel[:, None], axis=1)[:, 0]
            accept = gsel > 1e-12
        else:
            lam = reg_lambda
            hr = n_chunk[:, None, None] - lc
            gr = s_chunk[:, None, None] - ls
            parent = s_chunk * s_chunk / (n_chunk + lam)
            valid = (
                (lc >= min_child_weight) & (hr >= min_child_weight) & in_bins
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                gain_b = np.where(
                    valid,
                    0.5 * (
                        ls**2 / (lc + lam) + gr**2 / (hr + lam)
                        - parent[:, None, None]
                    ) - gamma,
                    -np.inf,
                )
            sb = np.argmax(gain_b, axis=2)
            best = np.take_along_axis(gain_b, sb[:, :, None], axis=2)[:, :, 0]
            fsel = np.argmax(best, axis=1)
            gsel = np.take_along_axis(best, fsel[:, None], axis=1)[:, 0]
            accept = gsel > 0.0
        feature_sel[t_idx[c0:c1]] = np.where(accept, fsel, -1)
        split_bin_sel[t_idx[c0:c1]] = np.where(
            accept, np.take_along_axis(sb, fsel[:, None], axis=1)[:, 0], 0
        )


def _renumber_to_dfs(
    levels: list[dict[str, np.ndarray]], n_groups: int, n_total: int
) -> dict[str, np.ndarray]:
    """Map BFS creation order to the scalar recursion's DFS node ids.

    The scalar ``_grow`` allocates both children at split time and splits
    execute in preorder, so the k-th internal node (in preorder, 0-based)
    hands its children ids ``1 + 2k`` and ``2 + 2k``; roots are 0.
    Computed with one bottom-up (subtree sizes) and one top-down
    (preorder index) pass per level — no per-node loop.
    """
    gid_group = np.concatenate([lv["group"] for lv in levels])
    gid_feature = np.concatenate([lv["feature"] for lv in levels])
    gid_threshold = np.concatenate([lv["threshold"] for lv in levels])
    gid_value = np.concatenate([lv["value"] for lv in levels])
    gid_left = np.concatenate([lv["left"] for lv in levels])
    gid_right = np.concatenate([lv["right"] for lv in levels])

    size = np.ones(n_total, dtype=np.int64)
    for lv in reversed(levels):
        internal = lv["feature"] >= 0
        if internal.any():
            parent = lv["gid"][internal]
            size[parent] += (
                size[lv["left"][internal]] + size[lv["right"][internal]]
            )
    pre = np.zeros(n_total, dtype=np.int64)
    for lv in levels:
        internal = lv["feature"] >= 0
        if internal.any():
            parent = lv["gid"][internal]
            left = lv["left"][internal]
            pre[left] = pre[parent] + 1
            pre[lv["right"][internal]] = pre[parent] + 1 + size[left]

    newid = np.zeros(n_total, dtype=np.int64)
    ii = np.flatnonzero(gid_feature >= 0)
    if ii.size:
        order = np.lexsort((pre[ii], gid_group[ii]))
        sorted_ii = ii[order]
        icounts = np.bincount(gid_group[ii], minlength=n_groups)
        istarts = np.concatenate(([0], np.cumsum(icounts[:-1])))
        irank = np.empty(n_total, dtype=np.int64)
        irank[sorted_ii] = (
            np.arange(ii.size, dtype=np.int64)
            - np.repeat(istarts, icounts)
        )
        newid[gid_left[ii]] = 1 + 2 * irank[ii]
        newid[gid_right[ii]] = 2 + 2 * irank[ii]

    node_counts = np.bincount(gid_group, minlength=n_groups)
    out_off = np.concatenate(([0], np.cumsum(node_counts))).astype(np.int64)
    posn = out_off[gid_group] + newid
    feature = np.empty(n_total, dtype=np.int32)
    threshold = np.empty(n_total, dtype=np.float64)
    value = np.empty(n_total, dtype=np.float64)
    left = np.empty(n_total, dtype=np.int32)
    right = np.empty(n_total, dtype=np.int32)
    left_local = np.full(n_total, -1, dtype=np.int64)
    right_local = np.full(n_total, -1, dtype=np.int64)
    left_local[ii] = newid[gid_left[ii]]
    right_local[ii] = newid[gid_right[ii]]
    feature[posn] = gid_feature
    threshold[posn] = gid_threshold
    value[posn] = gid_value
    left[posn] = left_local
    right[posn] = right_local
    return {
        "offsets": out_off,
        "feature": feature,
        "threshold": threshold,
        "left": left,
        "right": right,
        "value": value,
    }


def _slice_nodes(rec: dict[str, np.ndarray], g: int) -> dict[str, np.ndarray]:
    """Group ``g``'s flat node arrays (views into the stacked record)."""
    lo, hi = int(rec["offsets"][g]), int(rec["offsets"][g + 1])
    return {
        key: rec[key][lo:hi]
        for key in ("feature", "threshold", "left", "right", "value")
    }


# -- drivers -----------------------------------------------------------------


def _group_means(ys: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-group ``float(y.mean())`` — the boosters' base predictions.

    Deliberately per-group pairwise means (cheap: one call per group on a
    contiguous slice) so the base matches the scalar fit bit-for-bit.
    """
    n_groups = offsets.shape[0] - 1
    base = np.empty(n_groups)
    for g in range(n_groups):
        base[g] = ys[offsets[g]:offsets[g + 1]].mean()
    return base


def _fit_cart_forest(
    bins: _GroupBins,
    ys: np.ndarray,
    offsets: np.ndarray,
    *,
    max_depth: int,
    min_samples_leaf: int,
    min_samples_split: int,
) -> tuple[dict[str, np.ndarray], np.ndarray]:
    """One CART tree per group; returns (node record, in-sample pred)."""
    leaf_pred = np.empty(ys.shape[0])
    rec = _grow_forest(
        bins, ys, offsets, kind="cart", max_depth=max_depth,
        min_samples_leaf=min_samples_leaf,
        min_samples_split=min_samples_split, leaf_pred=leaf_pred,
    )
    return rec, leaf_pred


def _fit_gboost_forest(
    bins: _GroupBins,
    ys: np.ndarray,
    offsets: np.ndarray,
    *,
    n_estimators: int,
    learning_rate: float,
    max_depth: int,
    min_samples_leaf: int,
    min_samples_split: int,
) -> tuple[np.ndarray, list[dict[str, np.ndarray]], np.ndarray]:
    """All groups' gboost rounds in lock-step.

    Returns (per-group bases, per-round node records, in-sample pred).
    """
    base = _group_means(ys, offsets)
    prediction = np.repeat(base, np.diff(offsets))
    leaf_pred = np.empty(ys.shape[0])
    rounds: list[dict[str, np.ndarray]] = []
    for _ in range(n_estimators):
        residual = ys - prediction
        rounds.append(_grow_forest(
            bins, residual, offsets, kind="cart", max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            min_samples_split=min_samples_split, leaf_pred=leaf_pred,
        ))
        prediction = prediction + learning_rate * leaf_pred
    return base, rounds, prediction


def _fit_xgb_forest(
    bins: _GroupBins,
    ys: np.ndarray,
    offsets: np.ndarray,
    *,
    n_estimators: int,
    learning_rate: float,
    max_depth: int,
    min_child_weight: float,
    reg_lambda: float,
    gamma: float,
) -> tuple[np.ndarray, list[dict[str, np.ndarray]], np.ndarray]:
    """All groups' xgboost rounds in lock-step (unit hessians)."""
    base = _group_means(ys, offsets)
    prediction = np.repeat(base, np.diff(offsets))
    leaf_pred = np.empty(ys.shape[0])
    rounds: list[dict[str, np.ndarray]] = []
    for _ in range(n_estimators):
        grad = prediction - ys
        rounds.append(_grow_forest(
            bins, grad, offsets, kind="xgb", max_depth=max_depth,
            min_child_weight=min_child_weight, reg_lambda=reg_lambda,
            gamma=gamma, leaf_pred=leaf_pred,
        ))
        prediction = prediction + learning_rate * leaf_pred
    return base, rounds, prediction


def _build_gboost(
    base: np.ndarray,
    rounds: list[dict[str, np.ndarray]],
    g: int,
    n_features: int,
    proto: GradientBoostingRegressor,
    random_state: int | None,
) -> GradientBoostingRegressor:
    trees = [
        DecisionTreeRegressor.from_fit_state(
            _slice_nodes(rec, g), n_features,
            max_depth=proto.max_depth,
            min_samples_leaf=proto.min_samples_leaf,
            max_bins=proto.max_bins,
        )
        for rec in rounds
    ]
    return GradientBoostingRegressor.from_fit_state(
        float(base[g]), trees,
        learning_rate=proto.learning_rate, max_depth=proto.max_depth,
        min_samples_leaf=proto.min_samples_leaf, max_bins=proto.max_bins,
        random_state=random_state,
    )


def _build_xgb(
    base: np.ndarray,
    rounds: list[dict[str, np.ndarray]],
    g: int,
    proto: XGBRegressor,
    random_state: int | None,
) -> XGBRegressor:
    return XGBRegressor.from_fit_state(
        float(base[g]), [_slice_nodes(rec, g) for rec in rounds],
        learning_rate=proto.learning_rate, max_depth=proto.max_depth,
        reg_lambda=proto.reg_lambda, gamma=proto.gamma,
        min_child_weight=proto.min_child_weight, max_bins=proto.max_bins,
        random_state=random_state,
    )


def fit_forest_regressors(
    x2d: np.ndarray,
    ys: np.ndarray,
    offsets: np.ndarray,
    config: DBEstConfig,
) -> tuple[list, np.ndarray | None] | None:
    """Fit all groups' nonlinear regressors through the batched kernel.

    ``x2d`` is the flat ``(R, d)`` modelled-row matrix in group-major
    original order, ``offsets`` its group boundaries.  Returns
    ``(regressors, in_sample_pred)`` — the prediction is None for
    ensembles, whose residual pass runs per group — or None when
    ``config.regressor`` is not a forest family (callers fall back to the
    chunked per-group path).
    """
    if config.regressor not in _FOREST_REGRESSORS:
        return None
    n_groups = offsets.shape[0] - 1
    d = x2d.shape[1]
    seed = config.random_seed

    if config.regressor == "tree":
        proto = DecisionTreeRegressor()
        bins = _compute_bins(x2d, offsets, proto.max_bins)
        rec, pred = _fit_cart_forest(
            bins, ys, offsets, max_depth=proto.max_depth,
            min_samples_leaf=proto.min_samples_leaf,
            min_samples_split=proto.min_samples_split,
        )
        regressors: list = [
            DecisionTreeRegressor.from_fit_state(
                _slice_nodes(rec, g), d,
                max_depth=proto.max_depth,
                min_samples_leaf=proto.min_samples_leaf,
                min_samples_split=proto.min_samples_split,
                max_bins=proto.max_bins,
            )
            for g in range(n_groups)
        ]
        return regressors, pred

    if config.regressor == "gboost":
        proto = GradientBoostingRegressor(random_state=seed)
        stage_split = DecisionTreeRegressor(
            max_depth=proto.max_depth,
            min_samples_leaf=proto.min_samples_leaf,
            max_bins=proto.max_bins,
        ).min_samples_split
        bins = _compute_bins(x2d, offsets, proto.max_bins)
        base, rounds, pred = _fit_gboost_forest(
            bins, ys, offsets, n_estimators=proto.n_estimators,
            learning_rate=proto.learning_rate, max_depth=proto.max_depth,
            min_samples_leaf=proto.min_samples_leaf,
            min_samples_split=stage_split,
        )
        regressors = [
            _build_gboost(base, rounds, g, d, proto, seed)
            for g in range(n_groups)
        ]
        return regressors, pred

    if config.regressor == "xgboost":
        proto = XGBRegressor(random_state=seed)
        bins = _compute_bins(x2d, offsets, proto.max_bins)
        base, rounds, pred = _fit_xgb_forest(
            bins, ys, offsets, n_estimators=proto.n_estimators,
            learning_rate=proto.learning_rate, max_depth=proto.max_depth,
            min_child_weight=proto.min_child_weight,
            reg_lambda=proto.reg_lambda, gamma=proto.gamma,
        )
        regressors = [
            _build_xgb(base, rounds, g, proto, seed) for g in range(n_groups)
        ]
        return regressors, pred

    # Ensemble: gboost + xgboost constituents through the shared kernel,
    # PLR per group (a cheap exact lstsq, 1-D only), then the selector
    # stage exactly as the scalar fit runs it.
    factories = default_constituents()
    gb_proto = factories["gboost"]()
    xgb_proto = factories["xgboost"]()
    stage_split = DecisionTreeRegressor(
        max_depth=gb_proto.max_depth,
        min_samples_leaf=gb_proto.min_samples_leaf,
        max_bins=gb_proto.max_bins,
    ).min_samples_split
    bins = _compute_bins(x2d, offsets, gb_proto.max_bins)
    gb_base, gb_rounds, _ = _fit_gboost_forest(
        bins, ys, offsets, n_estimators=gb_proto.n_estimators,
        learning_rate=gb_proto.learning_rate, max_depth=gb_proto.max_depth,
        min_samples_leaf=gb_proto.min_samples_leaf,
        min_samples_split=stage_split,
    )
    xg_base, xg_rounds, _ = _fit_xgb_forest(
        bins, ys, offsets, n_estimators=xgb_proto.n_estimators,
        learning_rate=xgb_proto.learning_rate, max_depth=xgb_proto.max_depth,
        min_child_weight=xgb_proto.min_child_weight,
        reg_lambda=xgb_proto.reg_lambda, gamma=xgb_proto.gamma,
    )
    univariate = d == 1
    regressors = []
    for g in range(n_groups):
        seg = slice(int(offsets[g]), int(offsets[g + 1]))
        gx = x2d[seg]
        gy = ys[seg]
        # Insertion order mirrors the scalar fit's factory order.
        models: dict[str, object] = {
            "gboost": _build_gboost(gb_base, gb_rounds, g, d, gb_proto, None),
            "xgboost": _build_xgb(xg_base, xg_rounds, g, xgb_proto, None),
        }
        if univariate:
            plr = factories["plr"]()
            plr.fit(gx[:, 0], gy)
            models["plr"] = plr
        regressors.append(EnsembleRegressor.from_fitted_constituents(
            models, gx[:, 0] if univariate else gx, gy, random_state=seed,
        ))
    return regressors, None
